file(REMOVE_RECURSE
  "CMakeFiles/multirank_aggregate.dir/multirank_aggregate.cpp.o"
  "CMakeFiles/multirank_aggregate.dir/multirank_aggregate.cpp.o.d"
  "multirank_aggregate"
  "multirank_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirank_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
