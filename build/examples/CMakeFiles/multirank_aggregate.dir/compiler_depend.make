# Empty compiler generated dependencies file for multirank_aggregate.
# This may be replaced when dependencies are built.
