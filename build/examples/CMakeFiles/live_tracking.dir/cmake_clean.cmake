file(REMOVE_RECURSE
  "CMakeFiles/live_tracking.dir/live_tracking.cpp.o"
  "CMakeFiles/live_tracking.dir/live_tracking.cpp.o.d"
  "live_tracking"
  "live_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
