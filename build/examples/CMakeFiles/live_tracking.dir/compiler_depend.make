# Empty compiler generated dependencies file for live_tracking.
# This may be replaced when dependencies are built.
