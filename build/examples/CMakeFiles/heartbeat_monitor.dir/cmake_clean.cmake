file(REMOVE_RECURSE
  "CMakeFiles/heartbeat_monitor.dir/heartbeat_monitor.cpp.o"
  "CMakeFiles/heartbeat_monitor.dir/heartbeat_monitor.cpp.o.d"
  "heartbeat_monitor"
  "heartbeat_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heartbeat_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
