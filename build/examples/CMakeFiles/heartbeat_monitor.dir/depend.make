# Empty dependencies file for heartbeat_monitor.
# This may be replaced when dependencies are built.
