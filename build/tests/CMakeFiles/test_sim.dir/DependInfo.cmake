
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_engine.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_engine.cpp.o.d"
  "/root/repo/tests/sim/test_rankset.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_rankset.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_rankset.cpp.o.d"
  "/root/repo/tests/sim/test_registry.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_registry.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/incprof_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/incprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/incprof_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/ekg/CMakeFiles/incprof_ekg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/incprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gmon/CMakeFiles/incprof_gmon.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/incprof_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/incprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
