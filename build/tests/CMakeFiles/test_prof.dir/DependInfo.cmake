
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/prof/test_callgraph_profiler.cpp" "tests/CMakeFiles/test_prof.dir/prof/test_callgraph_profiler.cpp.o" "gcc" "tests/CMakeFiles/test_prof.dir/prof/test_callgraph_profiler.cpp.o.d"
  "/root/repo/tests/prof/test_collector.cpp" "tests/CMakeFiles/test_prof.dir/prof/test_collector.cpp.o" "gcc" "tests/CMakeFiles/test_prof.dir/prof/test_collector.cpp.o.d"
  "/root/repo/tests/prof/test_coverage.cpp" "tests/CMakeFiles/test_prof.dir/prof/test_coverage.cpp.o" "gcc" "tests/CMakeFiles/test_prof.dir/prof/test_coverage.cpp.o.d"
  "/root/repo/tests/prof/test_overhead.cpp" "tests/CMakeFiles/test_prof.dir/prof/test_overhead.cpp.o" "gcc" "tests/CMakeFiles/test_prof.dir/prof/test_overhead.cpp.o.d"
  "/root/repo/tests/prof/test_profiler_properties.cpp" "tests/CMakeFiles/test_prof.dir/prof/test_profiler_properties.cpp.o" "gcc" "tests/CMakeFiles/test_prof.dir/prof/test_profiler_properties.cpp.o.d"
  "/root/repo/tests/prof/test_sampler.cpp" "tests/CMakeFiles/test_prof.dir/prof/test_sampler.cpp.o" "gcc" "tests/CMakeFiles/test_prof.dir/prof/test_sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/incprof_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/incprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/incprof_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/ekg/CMakeFiles/incprof_ekg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/incprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gmon/CMakeFiles/incprof_gmon.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/incprof_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/incprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
