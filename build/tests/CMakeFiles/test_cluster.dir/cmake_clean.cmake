file(REMOVE_RECURSE
  "CMakeFiles/test_cluster.dir/cluster/test_dbscan.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_dbscan.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_distance.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_distance.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_kmeans.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_kmeans.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_kselect.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_kselect.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_matrix.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_matrix.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_quality.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_quality.cpp.o.d"
  "CMakeFiles/test_cluster.dir/cluster/test_standardize.cpp.o"
  "CMakeFiles/test_cluster.dir/cluster/test_standardize.cpp.o.d"
  "test_cluster"
  "test_cluster.pdb"
  "test_cluster[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
