
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_aggregate.cpp" "tests/CMakeFiles/test_core.dir/core/test_aggregate.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_aggregate.cpp.o.d"
  "/root/repo/tests/core/test_detect.cpp" "tests/CMakeFiles/test_core.dir/core/test_detect.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_detect.cpp.o.d"
  "/root/repo/tests/core/test_fastphase.cpp" "tests/CMakeFiles/test_core.dir/core/test_fastphase.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fastphase.cpp.o.d"
  "/root/repo/tests/core/test_features.cpp" "tests/CMakeFiles/test_core.dir/core/test_features.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_features.cpp.o.d"
  "/root/repo/tests/core/test_intervals.cpp" "tests/CMakeFiles/test_core.dir/core/test_intervals.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_intervals.cpp.o.d"
  "/root/repo/tests/core/test_lift.cpp" "tests/CMakeFiles/test_core.dir/core/test_lift.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_lift.cpp.o.d"
  "/root/repo/tests/core/test_merge.cpp" "tests/CMakeFiles/test_core.dir/core/test_merge.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_merge.cpp.o.d"
  "/root/repo/tests/core/test_online.cpp" "tests/CMakeFiles/test_core.dir/core/test_online.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_online.cpp.o.d"
  "/root/repo/tests/core/test_pipeline.cpp" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cpp.o.d"
  "/root/repo/tests/core/test_pipeline_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_pipeline_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pipeline_properties.cpp.o.d"
  "/root/repo/tests/core/test_rank.cpp" "tests/CMakeFiles/test_core.dir/core/test_rank.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_rank.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "/root/repo/tests/core/test_sites.cpp" "tests/CMakeFiles/test_core.dir/core/test_sites.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_sites.cpp.o.d"
  "/root/repo/tests/core/test_transitions.cpp" "tests/CMakeFiles/test_core.dir/core/test_transitions.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_transitions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/incprof_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/incprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/incprof_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/ekg/CMakeFiles/incprof_ekg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/incprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gmon/CMakeFiles/incprof_gmon.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/incprof_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/incprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
