file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_aggregate.cpp.o"
  "CMakeFiles/test_core.dir/core/test_aggregate.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_detect.cpp.o"
  "CMakeFiles/test_core.dir/core/test_detect.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fastphase.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fastphase.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_features.cpp.o"
  "CMakeFiles/test_core.dir/core/test_features.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_intervals.cpp.o"
  "CMakeFiles/test_core.dir/core/test_intervals.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_lift.cpp.o"
  "CMakeFiles/test_core.dir/core/test_lift.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_merge.cpp.o"
  "CMakeFiles/test_core.dir/core/test_merge.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_online.cpp.o"
  "CMakeFiles/test_core.dir/core/test_online.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pipeline.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pipeline.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pipeline_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pipeline_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_rank.cpp.o"
  "CMakeFiles/test_core.dir/core/test_rank.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_sites.cpp.o"
  "CMakeFiles/test_core.dir/core/test_sites.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_transitions.cpp.o"
  "CMakeFiles/test_core.dir/core/test_transitions.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
