# Empty dependencies file for test_ekg.
# This may be replaced when dependencies are built.
