file(REMOVE_RECURSE
  "CMakeFiles/test_ekg.dir/ekg/test_adapter.cpp.o"
  "CMakeFiles/test_ekg.dir/ekg/test_adapter.cpp.o.d"
  "CMakeFiles/test_ekg.dir/ekg/test_analysis.cpp.o"
  "CMakeFiles/test_ekg.dir/ekg/test_analysis.cpp.o.d"
  "CMakeFiles/test_ekg.dir/ekg/test_heartbeat.cpp.o"
  "CMakeFiles/test_ekg.dir/ekg/test_heartbeat.cpp.o.d"
  "CMakeFiles/test_ekg.dir/ekg/test_series.cpp.o"
  "CMakeFiles/test_ekg.dir/ekg/test_series.cpp.o.d"
  "CMakeFiles/test_ekg.dir/ekg/test_stream.cpp.o"
  "CMakeFiles/test_ekg.dir/ekg/test_stream.cpp.o.d"
  "test_ekg"
  "test_ekg.pdb"
  "test_ekg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ekg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
