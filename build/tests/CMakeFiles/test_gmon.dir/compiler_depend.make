# Empty compiler generated dependencies file for test_gmon.
# This may be replaced when dependencies are built.
