file(REMOVE_RECURSE
  "CMakeFiles/test_gmon.dir/gmon/test_binary_io.cpp.o"
  "CMakeFiles/test_gmon.dir/gmon/test_binary_io.cpp.o.d"
  "CMakeFiles/test_gmon.dir/gmon/test_callgraph.cpp.o"
  "CMakeFiles/test_gmon.dir/gmon/test_callgraph.cpp.o.d"
  "CMakeFiles/test_gmon.dir/gmon/test_flat_text.cpp.o"
  "CMakeFiles/test_gmon.dir/gmon/test_flat_text.cpp.o.d"
  "CMakeFiles/test_gmon.dir/gmon/test_robustness.cpp.o"
  "CMakeFiles/test_gmon.dir/gmon/test_robustness.cpp.o.d"
  "CMakeFiles/test_gmon.dir/gmon/test_scanner.cpp.o"
  "CMakeFiles/test_gmon.dir/gmon/test_scanner.cpp.o.d"
  "CMakeFiles/test_gmon.dir/gmon/test_snapshot.cpp.o"
  "CMakeFiles/test_gmon.dir/gmon/test_snapshot.cpp.o.d"
  "test_gmon"
  "test_gmon.pdb"
  "test_gmon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
