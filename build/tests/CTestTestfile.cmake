# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_gmon[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_prof[1]_include.cmake")
include("/root/repo/build/tests/test_ekg[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
add_test(tool_collect_smoke "/root/repo/build/tools/incprof_collect" "miniamr" "/root/repo/build/tests/tool_dumps")
set_tests_properties(tool_collect_smoke PROPERTIES  FIXTURES_SETUP "tool_dumps" PASS_REGULAR_EXPRESSION "dumps -> .*callgraph\\.bin" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;90;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_analyze_smoke "/root/repo/build/tools/incprof_analyze" "/root/repo/build/tests/tool_dumps" "--text" "--merge" "--lift" "/root/repo/build/tests/tool_dumps/callgraph.bin")
set_tests_properties(tool_analyze_smoke PROPERTIES  FIXTURES_REQUIRED "tool_dumps" PASS_REGULAR_EXPRESSION "instrumented functions" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;96;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_gmon2text_smoke "/root/repo/build/tools/gmon2text" "/root/repo/build/tests/tool_dumps")
set_tests_properties(tool_gmon2text_smoke PROPERTIES  FIXTURES_REQUIRED "tool_dumps" PASS_REGULAR_EXPRESSION "converted [0-9]+ dumps" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;103;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_analyze_rejects_bad_usage "/root/repo/build/tools/incprof_analyze")
set_tests_properties(tool_analyze_rejects_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;109;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_collect_rejects_unknown_app "/root/repo/build/tools/incprof_collect" "no_such_app" "/root/repo/build/tests/nope")
set_tests_properties(tool_collect_rejects_unknown_app PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;112;add_test;/root/repo/tests/CMakeLists.txt;0;")
