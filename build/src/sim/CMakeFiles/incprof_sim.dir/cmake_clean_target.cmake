file(REMOVE_RECURSE
  "libincprof_sim.a"
)
