file(REMOVE_RECURSE
  "CMakeFiles/incprof_sim.dir/engine.cpp.o"
  "CMakeFiles/incprof_sim.dir/engine.cpp.o.d"
  "CMakeFiles/incprof_sim.dir/rankset.cpp.o"
  "CMakeFiles/incprof_sim.dir/rankset.cpp.o.d"
  "CMakeFiles/incprof_sim.dir/registry.cpp.o"
  "CMakeFiles/incprof_sim.dir/registry.cpp.o.d"
  "libincprof_sim.a"
  "libincprof_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incprof_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
