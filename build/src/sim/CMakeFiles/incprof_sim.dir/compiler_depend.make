# Empty compiler generated dependencies file for incprof_sim.
# This may be replaced when dependencies are built.
