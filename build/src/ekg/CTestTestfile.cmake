# CMake generated Testfile for 
# Source directory: /root/repo/src/ekg
# Build directory: /root/repo/build/src/ekg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
