file(REMOVE_RECURSE
  "libincprof_ekg.a"
)
