
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ekg/adapter.cpp" "src/ekg/CMakeFiles/incprof_ekg.dir/adapter.cpp.o" "gcc" "src/ekg/CMakeFiles/incprof_ekg.dir/adapter.cpp.o.d"
  "/root/repo/src/ekg/analysis.cpp" "src/ekg/CMakeFiles/incprof_ekg.dir/analysis.cpp.o" "gcc" "src/ekg/CMakeFiles/incprof_ekg.dir/analysis.cpp.o.d"
  "/root/repo/src/ekg/heartbeat.cpp" "src/ekg/CMakeFiles/incprof_ekg.dir/heartbeat.cpp.o" "gcc" "src/ekg/CMakeFiles/incprof_ekg.dir/heartbeat.cpp.o.d"
  "/root/repo/src/ekg/series.cpp" "src/ekg/CMakeFiles/incprof_ekg.dir/series.cpp.o" "gcc" "src/ekg/CMakeFiles/incprof_ekg.dir/series.cpp.o.d"
  "/root/repo/src/ekg/stream.cpp" "src/ekg/CMakeFiles/incprof_ekg.dir/stream.cpp.o" "gcc" "src/ekg/CMakeFiles/incprof_ekg.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/incprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/incprof_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/incprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
