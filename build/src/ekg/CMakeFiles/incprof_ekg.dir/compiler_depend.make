# Empty compiler generated dependencies file for incprof_ekg.
# This may be replaced when dependencies are built.
