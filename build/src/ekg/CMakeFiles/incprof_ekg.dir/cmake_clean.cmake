file(REMOVE_RECURSE
  "CMakeFiles/incprof_ekg.dir/adapter.cpp.o"
  "CMakeFiles/incprof_ekg.dir/adapter.cpp.o.d"
  "CMakeFiles/incprof_ekg.dir/analysis.cpp.o"
  "CMakeFiles/incprof_ekg.dir/analysis.cpp.o.d"
  "CMakeFiles/incprof_ekg.dir/heartbeat.cpp.o"
  "CMakeFiles/incprof_ekg.dir/heartbeat.cpp.o.d"
  "CMakeFiles/incprof_ekg.dir/series.cpp.o"
  "CMakeFiles/incprof_ekg.dir/series.cpp.o.d"
  "CMakeFiles/incprof_ekg.dir/stream.cpp.o"
  "CMakeFiles/incprof_ekg.dir/stream.cpp.o.d"
  "libincprof_ekg.a"
  "libincprof_ekg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incprof_ekg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
