# Empty dependencies file for incprof_gmon.
# This may be replaced when dependencies are built.
