file(REMOVE_RECURSE
  "libincprof_gmon.a"
)
