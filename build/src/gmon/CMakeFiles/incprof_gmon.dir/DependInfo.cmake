
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gmon/binary_io.cpp" "src/gmon/CMakeFiles/incprof_gmon.dir/binary_io.cpp.o" "gcc" "src/gmon/CMakeFiles/incprof_gmon.dir/binary_io.cpp.o.d"
  "/root/repo/src/gmon/callgraph.cpp" "src/gmon/CMakeFiles/incprof_gmon.dir/callgraph.cpp.o" "gcc" "src/gmon/CMakeFiles/incprof_gmon.dir/callgraph.cpp.o.d"
  "/root/repo/src/gmon/flat_text.cpp" "src/gmon/CMakeFiles/incprof_gmon.dir/flat_text.cpp.o" "gcc" "src/gmon/CMakeFiles/incprof_gmon.dir/flat_text.cpp.o.d"
  "/root/repo/src/gmon/scanner.cpp" "src/gmon/CMakeFiles/incprof_gmon.dir/scanner.cpp.o" "gcc" "src/gmon/CMakeFiles/incprof_gmon.dir/scanner.cpp.o.d"
  "/root/repo/src/gmon/snapshot.cpp" "src/gmon/CMakeFiles/incprof_gmon.dir/snapshot.cpp.o" "gcc" "src/gmon/CMakeFiles/incprof_gmon.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/incprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
