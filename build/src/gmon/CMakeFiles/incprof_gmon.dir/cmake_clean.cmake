file(REMOVE_RECURSE
  "CMakeFiles/incprof_gmon.dir/binary_io.cpp.o"
  "CMakeFiles/incprof_gmon.dir/binary_io.cpp.o.d"
  "CMakeFiles/incprof_gmon.dir/callgraph.cpp.o"
  "CMakeFiles/incprof_gmon.dir/callgraph.cpp.o.d"
  "CMakeFiles/incprof_gmon.dir/flat_text.cpp.o"
  "CMakeFiles/incprof_gmon.dir/flat_text.cpp.o.d"
  "CMakeFiles/incprof_gmon.dir/scanner.cpp.o"
  "CMakeFiles/incprof_gmon.dir/scanner.cpp.o.d"
  "CMakeFiles/incprof_gmon.dir/snapshot.cpp.o"
  "CMakeFiles/incprof_gmon.dir/snapshot.cpp.o.d"
  "libincprof_gmon.a"
  "libincprof_gmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incprof_gmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
