file(REMOVE_RECURSE
  "libincprof_util.a"
)
