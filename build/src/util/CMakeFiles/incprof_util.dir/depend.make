# Empty dependencies file for incprof_util.
# This may be replaced when dependencies are built.
