file(REMOVE_RECURSE
  "CMakeFiles/incprof_util.dir/csv.cpp.o"
  "CMakeFiles/incprof_util.dir/csv.cpp.o.d"
  "CMakeFiles/incprof_util.dir/log.cpp.o"
  "CMakeFiles/incprof_util.dir/log.cpp.o.d"
  "CMakeFiles/incprof_util.dir/rng.cpp.o"
  "CMakeFiles/incprof_util.dir/rng.cpp.o.d"
  "CMakeFiles/incprof_util.dir/sparkline.cpp.o"
  "CMakeFiles/incprof_util.dir/sparkline.cpp.o.d"
  "CMakeFiles/incprof_util.dir/stats.cpp.o"
  "CMakeFiles/incprof_util.dir/stats.cpp.o.d"
  "CMakeFiles/incprof_util.dir/strings.cpp.o"
  "CMakeFiles/incprof_util.dir/strings.cpp.o.d"
  "CMakeFiles/incprof_util.dir/table.cpp.o"
  "CMakeFiles/incprof_util.dir/table.cpp.o.d"
  "libincprof_util.a"
  "libincprof_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incprof_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
