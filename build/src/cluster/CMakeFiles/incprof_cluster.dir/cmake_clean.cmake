file(REMOVE_RECURSE
  "CMakeFiles/incprof_cluster.dir/dbscan.cpp.o"
  "CMakeFiles/incprof_cluster.dir/dbscan.cpp.o.d"
  "CMakeFiles/incprof_cluster.dir/distance.cpp.o"
  "CMakeFiles/incprof_cluster.dir/distance.cpp.o.d"
  "CMakeFiles/incprof_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/incprof_cluster.dir/kmeans.cpp.o.d"
  "CMakeFiles/incprof_cluster.dir/kselect.cpp.o"
  "CMakeFiles/incprof_cluster.dir/kselect.cpp.o.d"
  "CMakeFiles/incprof_cluster.dir/matrix.cpp.o"
  "CMakeFiles/incprof_cluster.dir/matrix.cpp.o.d"
  "CMakeFiles/incprof_cluster.dir/quality.cpp.o"
  "CMakeFiles/incprof_cluster.dir/quality.cpp.o.d"
  "CMakeFiles/incprof_cluster.dir/standardize.cpp.o"
  "CMakeFiles/incprof_cluster.dir/standardize.cpp.o.d"
  "libincprof_cluster.a"
  "libincprof_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incprof_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
