# Empty compiler generated dependencies file for incprof_cluster.
# This may be replaced when dependencies are built.
