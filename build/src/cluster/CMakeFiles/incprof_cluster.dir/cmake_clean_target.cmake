file(REMOVE_RECURSE
  "libincprof_cluster.a"
)
