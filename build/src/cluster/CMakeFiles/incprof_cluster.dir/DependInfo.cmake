
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/dbscan.cpp" "src/cluster/CMakeFiles/incprof_cluster.dir/dbscan.cpp.o" "gcc" "src/cluster/CMakeFiles/incprof_cluster.dir/dbscan.cpp.o.d"
  "/root/repo/src/cluster/distance.cpp" "src/cluster/CMakeFiles/incprof_cluster.dir/distance.cpp.o" "gcc" "src/cluster/CMakeFiles/incprof_cluster.dir/distance.cpp.o.d"
  "/root/repo/src/cluster/kmeans.cpp" "src/cluster/CMakeFiles/incprof_cluster.dir/kmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/incprof_cluster.dir/kmeans.cpp.o.d"
  "/root/repo/src/cluster/kselect.cpp" "src/cluster/CMakeFiles/incprof_cluster.dir/kselect.cpp.o" "gcc" "src/cluster/CMakeFiles/incprof_cluster.dir/kselect.cpp.o.d"
  "/root/repo/src/cluster/matrix.cpp" "src/cluster/CMakeFiles/incprof_cluster.dir/matrix.cpp.o" "gcc" "src/cluster/CMakeFiles/incprof_cluster.dir/matrix.cpp.o.d"
  "/root/repo/src/cluster/quality.cpp" "src/cluster/CMakeFiles/incprof_cluster.dir/quality.cpp.o" "gcc" "src/cluster/CMakeFiles/incprof_cluster.dir/quality.cpp.o.d"
  "/root/repo/src/cluster/standardize.cpp" "src/cluster/CMakeFiles/incprof_cluster.dir/standardize.cpp.o" "gcc" "src/cluster/CMakeFiles/incprof_cluster.dir/standardize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/incprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
