# Empty dependencies file for incprof_prof.
# This may be replaced when dependencies are built.
