file(REMOVE_RECURSE
  "libincprof_prof.a"
)
