
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prof/callgraph_profiler.cpp" "src/prof/CMakeFiles/incprof_prof.dir/callgraph_profiler.cpp.o" "gcc" "src/prof/CMakeFiles/incprof_prof.dir/callgraph_profiler.cpp.o.d"
  "/root/repo/src/prof/collector.cpp" "src/prof/CMakeFiles/incprof_prof.dir/collector.cpp.o" "gcc" "src/prof/CMakeFiles/incprof_prof.dir/collector.cpp.o.d"
  "/root/repo/src/prof/coverage.cpp" "src/prof/CMakeFiles/incprof_prof.dir/coverage.cpp.o" "gcc" "src/prof/CMakeFiles/incprof_prof.dir/coverage.cpp.o.d"
  "/root/repo/src/prof/overhead.cpp" "src/prof/CMakeFiles/incprof_prof.dir/overhead.cpp.o" "gcc" "src/prof/CMakeFiles/incprof_prof.dir/overhead.cpp.o.d"
  "/root/repo/src/prof/sampler.cpp" "src/prof/CMakeFiles/incprof_prof.dir/sampler.cpp.o" "gcc" "src/prof/CMakeFiles/incprof_prof.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/incprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gmon/CMakeFiles/incprof_gmon.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/incprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
