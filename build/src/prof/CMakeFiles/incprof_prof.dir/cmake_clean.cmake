file(REMOVE_RECURSE
  "CMakeFiles/incprof_prof.dir/callgraph_profiler.cpp.o"
  "CMakeFiles/incprof_prof.dir/callgraph_profiler.cpp.o.d"
  "CMakeFiles/incprof_prof.dir/collector.cpp.o"
  "CMakeFiles/incprof_prof.dir/collector.cpp.o.d"
  "CMakeFiles/incprof_prof.dir/coverage.cpp.o"
  "CMakeFiles/incprof_prof.dir/coverage.cpp.o.d"
  "CMakeFiles/incprof_prof.dir/overhead.cpp.o"
  "CMakeFiles/incprof_prof.dir/overhead.cpp.o.d"
  "CMakeFiles/incprof_prof.dir/sampler.cpp.o"
  "CMakeFiles/incprof_prof.dir/sampler.cpp.o.d"
  "libincprof_prof.a"
  "libincprof_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incprof_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
