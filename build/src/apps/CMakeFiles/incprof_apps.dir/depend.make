# Empty dependencies file for incprof_apps.
# This may be replaced when dependencies are built.
