
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/gadget.cpp" "src/apps/CMakeFiles/incprof_apps.dir/gadget.cpp.o" "gcc" "src/apps/CMakeFiles/incprof_apps.dir/gadget.cpp.o.d"
  "/root/repo/src/apps/graph500.cpp" "src/apps/CMakeFiles/incprof_apps.dir/graph500.cpp.o" "gcc" "src/apps/CMakeFiles/incprof_apps.dir/graph500.cpp.o.d"
  "/root/repo/src/apps/harness.cpp" "src/apps/CMakeFiles/incprof_apps.dir/harness.cpp.o" "gcc" "src/apps/CMakeFiles/incprof_apps.dir/harness.cpp.o.d"
  "/root/repo/src/apps/mdlj.cpp" "src/apps/CMakeFiles/incprof_apps.dir/mdlj.cpp.o" "gcc" "src/apps/CMakeFiles/incprof_apps.dir/mdlj.cpp.o.d"
  "/root/repo/src/apps/miniamr.cpp" "src/apps/CMakeFiles/incprof_apps.dir/miniamr.cpp.o" "gcc" "src/apps/CMakeFiles/incprof_apps.dir/miniamr.cpp.o.d"
  "/root/repo/src/apps/miniapp.cpp" "src/apps/CMakeFiles/incprof_apps.dir/miniapp.cpp.o" "gcc" "src/apps/CMakeFiles/incprof_apps.dir/miniapp.cpp.o.d"
  "/root/repo/src/apps/minife.cpp" "src/apps/CMakeFiles/incprof_apps.dir/minife.cpp.o" "gcc" "src/apps/CMakeFiles/incprof_apps.dir/minife.cpp.o.d"
  "/root/repo/src/apps/workload_common.cpp" "src/apps/CMakeFiles/incprof_apps.dir/workload_common.cpp.o" "gcc" "src/apps/CMakeFiles/incprof_apps.dir/workload_common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/incprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/incprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ekg/CMakeFiles/incprof_ekg.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/incprof_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/incprof_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/gmon/CMakeFiles/incprof_gmon.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/incprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
