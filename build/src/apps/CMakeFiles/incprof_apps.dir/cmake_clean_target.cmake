file(REMOVE_RECURSE
  "libincprof_apps.a"
)
