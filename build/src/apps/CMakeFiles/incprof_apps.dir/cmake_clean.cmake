file(REMOVE_RECURSE
  "CMakeFiles/incprof_apps.dir/gadget.cpp.o"
  "CMakeFiles/incprof_apps.dir/gadget.cpp.o.d"
  "CMakeFiles/incprof_apps.dir/graph500.cpp.o"
  "CMakeFiles/incprof_apps.dir/graph500.cpp.o.d"
  "CMakeFiles/incprof_apps.dir/harness.cpp.o"
  "CMakeFiles/incprof_apps.dir/harness.cpp.o.d"
  "CMakeFiles/incprof_apps.dir/mdlj.cpp.o"
  "CMakeFiles/incprof_apps.dir/mdlj.cpp.o.d"
  "CMakeFiles/incprof_apps.dir/miniamr.cpp.o"
  "CMakeFiles/incprof_apps.dir/miniamr.cpp.o.d"
  "CMakeFiles/incprof_apps.dir/miniapp.cpp.o"
  "CMakeFiles/incprof_apps.dir/miniapp.cpp.o.d"
  "CMakeFiles/incprof_apps.dir/minife.cpp.o"
  "CMakeFiles/incprof_apps.dir/minife.cpp.o.d"
  "CMakeFiles/incprof_apps.dir/workload_common.cpp.o"
  "CMakeFiles/incprof_apps.dir/workload_common.cpp.o.d"
  "libincprof_apps.a"
  "libincprof_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incprof_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
