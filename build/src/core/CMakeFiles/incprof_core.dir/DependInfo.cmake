
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cpp" "src/core/CMakeFiles/incprof_core.dir/aggregate.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/aggregate.cpp.o.d"
  "/root/repo/src/core/detect.cpp" "src/core/CMakeFiles/incprof_core.dir/detect.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/detect.cpp.o.d"
  "/root/repo/src/core/fastphase.cpp" "src/core/CMakeFiles/incprof_core.dir/fastphase.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/fastphase.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/incprof_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/features.cpp.o.d"
  "/root/repo/src/core/intervals.cpp" "src/core/CMakeFiles/incprof_core.dir/intervals.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/intervals.cpp.o.d"
  "/root/repo/src/core/lift.cpp" "src/core/CMakeFiles/incprof_core.dir/lift.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/lift.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/core/CMakeFiles/incprof_core.dir/merge.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/merge.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/incprof_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/online.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/incprof_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/rank.cpp" "src/core/CMakeFiles/incprof_core.dir/rank.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/rank.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/incprof_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/report.cpp.o.d"
  "/root/repo/src/core/sites.cpp" "src/core/CMakeFiles/incprof_core.dir/sites.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/sites.cpp.o.d"
  "/root/repo/src/core/transitions.cpp" "src/core/CMakeFiles/incprof_core.dir/transitions.cpp.o" "gcc" "src/core/CMakeFiles/incprof_core.dir/transitions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gmon/CMakeFiles/incprof_gmon.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/incprof_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/incprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
