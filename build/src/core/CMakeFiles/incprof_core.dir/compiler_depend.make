# Empty compiler generated dependencies file for incprof_core.
# This may be replaced when dependencies are built.
