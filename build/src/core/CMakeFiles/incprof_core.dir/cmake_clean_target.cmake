file(REMOVE_RECURSE
  "libincprof_core.a"
)
