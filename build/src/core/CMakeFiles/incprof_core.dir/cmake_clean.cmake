file(REMOVE_RECURSE
  "CMakeFiles/incprof_core.dir/aggregate.cpp.o"
  "CMakeFiles/incprof_core.dir/aggregate.cpp.o.d"
  "CMakeFiles/incprof_core.dir/detect.cpp.o"
  "CMakeFiles/incprof_core.dir/detect.cpp.o.d"
  "CMakeFiles/incprof_core.dir/fastphase.cpp.o"
  "CMakeFiles/incprof_core.dir/fastphase.cpp.o.d"
  "CMakeFiles/incprof_core.dir/features.cpp.o"
  "CMakeFiles/incprof_core.dir/features.cpp.o.d"
  "CMakeFiles/incprof_core.dir/intervals.cpp.o"
  "CMakeFiles/incprof_core.dir/intervals.cpp.o.d"
  "CMakeFiles/incprof_core.dir/lift.cpp.o"
  "CMakeFiles/incprof_core.dir/lift.cpp.o.d"
  "CMakeFiles/incprof_core.dir/merge.cpp.o"
  "CMakeFiles/incprof_core.dir/merge.cpp.o.d"
  "CMakeFiles/incprof_core.dir/online.cpp.o"
  "CMakeFiles/incprof_core.dir/online.cpp.o.d"
  "CMakeFiles/incprof_core.dir/pipeline.cpp.o"
  "CMakeFiles/incprof_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/incprof_core.dir/rank.cpp.o"
  "CMakeFiles/incprof_core.dir/rank.cpp.o.d"
  "CMakeFiles/incprof_core.dir/report.cpp.o"
  "CMakeFiles/incprof_core.dir/report.cpp.o.d"
  "CMakeFiles/incprof_core.dir/sites.cpp.o"
  "CMakeFiles/incprof_core.dir/sites.cpp.o.d"
  "CMakeFiles/incprof_core.dir/transitions.cpp.o"
  "CMakeFiles/incprof_core.dir/transitions.cpp.o.d"
  "libincprof_core.a"
  "libincprof_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incprof_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
