file(REMOVE_RECURSE
  "CMakeFiles/incprof_analyze.dir/incprof_analyze.cpp.o"
  "CMakeFiles/incprof_analyze.dir/incprof_analyze.cpp.o.d"
  "incprof_analyze"
  "incprof_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incprof_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
