
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/incprof_analyze.cpp" "tools/CMakeFiles/incprof_analyze.dir/incprof_analyze.cpp.o" "gcc" "tools/CMakeFiles/incprof_analyze.dir/incprof_analyze.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/incprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gmon/CMakeFiles/incprof_gmon.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/incprof_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/incprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
