# Empty dependencies file for incprof_analyze.
# This may be replaced when dependencies are built.
