# Empty compiler generated dependencies file for incprof_collect.
# This may be replaced when dependencies are built.
