file(REMOVE_RECURSE
  "CMakeFiles/incprof_collect.dir/incprof_collect.cpp.o"
  "CMakeFiles/incprof_collect.dir/incprof_collect.cpp.o.d"
  "incprof_collect"
  "incprof_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incprof_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
