file(REMOVE_RECURSE
  "CMakeFiles/gmon2text.dir/gmon2text.cpp.o"
  "CMakeFiles/gmon2text.dir/gmon2text.cpp.o.d"
  "gmon2text"
  "gmon2text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmon2text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
