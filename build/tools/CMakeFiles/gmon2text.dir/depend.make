# Empty dependencies file for gmon2text.
# This may be replaced when dependencies are built.
