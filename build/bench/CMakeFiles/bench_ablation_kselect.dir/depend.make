# Empty dependencies file for bench_ablation_kselect.
# This may be replaced when dependencies are built.
