file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kselect.dir/bench_ablation_kselect.cpp.o"
  "CMakeFiles/bench_ablation_kselect.dir/bench_ablation_kselect.cpp.o.d"
  "bench_ablation_kselect"
  "bench_ablation_kselect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kselect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
