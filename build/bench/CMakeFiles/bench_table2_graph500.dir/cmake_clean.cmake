file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_graph500.dir/bench_table2_graph500.cpp.o"
  "CMakeFiles/bench_table2_graph500.dir/bench_table2_graph500.cpp.o.d"
  "bench_table2_graph500"
  "bench_table2_graph500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_graph500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
