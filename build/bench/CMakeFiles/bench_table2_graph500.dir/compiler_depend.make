# Empty compiler generated dependencies file for bench_table2_graph500.
# This may be replaced when dependencies are built.
