# Empty dependencies file for bench_ext_lammps_modes.
# This may be replaced when dependencies are built.
