file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_lammps_modes.dir/bench_ext_lammps_modes.cpp.o"
  "CMakeFiles/bench_ext_lammps_modes.dir/bench_ext_lammps_modes.cpp.o.d"
  "bench_ext_lammps_modes"
  "bench_ext_lammps_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_lammps_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
