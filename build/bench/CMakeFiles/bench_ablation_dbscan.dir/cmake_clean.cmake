file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dbscan.dir/bench_ablation_dbscan.cpp.o"
  "CMakeFiles/bench_ablation_dbscan.dir/bench_ablation_dbscan.cpp.o.d"
  "bench_ablation_dbscan"
  "bench_ablation_dbscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
