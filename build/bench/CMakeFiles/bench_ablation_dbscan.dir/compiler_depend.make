# Empty compiler generated dependencies file for bench_ablation_dbscan.
# This may be replaced when dependencies are built.
