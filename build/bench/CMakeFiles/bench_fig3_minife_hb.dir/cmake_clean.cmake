file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_minife_hb.dir/bench_fig3_minife_hb.cpp.o"
  "CMakeFiles/bench_fig3_minife_hb.dir/bench_fig3_minife_hb.cpp.o.d"
  "bench_fig3_minife_hb"
  "bench_fig3_minife_hb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_minife_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
