# Empty compiler generated dependencies file for bench_fig3_minife_hb.
# This may be replaced when dependencies are built.
