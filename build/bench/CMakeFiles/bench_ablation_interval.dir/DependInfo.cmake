
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_interval.cpp" "bench/CMakeFiles/bench_ablation_interval.dir/bench_ablation_interval.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_interval.dir/bench_ablation_interval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/incprof_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/incprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ekg/CMakeFiles/incprof_ekg.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/incprof_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/incprof_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/incprof_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gmon/CMakeFiles/incprof_gmon.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/incprof_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
