file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_miniamr.dir/bench_table4_miniamr.cpp.o"
  "CMakeFiles/bench_table4_miniamr.dir/bench_table4_miniamr.cpp.o.d"
  "bench_table4_miniamr"
  "bench_table4_miniamr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_miniamr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
