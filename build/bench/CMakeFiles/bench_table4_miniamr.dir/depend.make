# Empty dependencies file for bench_table4_miniamr.
# This may be replaced when dependencies are built.
