# Empty compiler generated dependencies file for bench_fig2_graph500_hb.
# This may be replaced when dependencies are built.
