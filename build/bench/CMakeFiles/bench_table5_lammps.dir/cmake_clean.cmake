file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_lammps.dir/bench_table5_lammps.cpp.o"
  "CMakeFiles/bench_table5_lammps.dir/bench_table5_lammps.cpp.o.d"
  "bench_table5_lammps"
  "bench_table5_lammps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_lammps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
