# Empty compiler generated dependencies file for bench_fig4_miniamr_hb.
# This may be replaced when dependencies are built.
