file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_miniamr_hb.dir/bench_fig4_miniamr_hb.cpp.o"
  "CMakeFiles/bench_fig4_miniamr_hb.dir/bench_fig4_miniamr_hb.cpp.o.d"
  "bench_fig4_miniamr_hb"
  "bench_fig4_miniamr_hb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_miniamr_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
