file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_online.dir/bench_ablation_online.cpp.o"
  "CMakeFiles/bench_ablation_online.dir/bench_ablation_online.cpp.o.d"
  "bench_ablation_online"
  "bench_ablation_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
