# Empty dependencies file for bench_fig5_lammps_hb.
# This may be replaced when dependencies are built.
