file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hb_phases.dir/bench_ext_hb_phases.cpp.o"
  "CMakeFiles/bench_ext_hb_phases.dir/bench_ext_hb_phases.cpp.o.d"
  "bench_ext_hb_phases"
  "bench_ext_hb_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hb_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
