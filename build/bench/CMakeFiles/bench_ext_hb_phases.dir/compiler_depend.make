# Empty compiler generated dependencies file for bench_ext_hb_phases.
# This may be replaced when dependencies are built.
