file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_minife.dir/bench_table3_minife.cpp.o"
  "CMakeFiles/bench_table3_minife.dir/bench_table3_minife.cpp.o.d"
  "bench_table3_minife"
  "bench_table3_minife.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_minife.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
