file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_gadget.dir/bench_table6_gadget.cpp.o"
  "CMakeFiles/bench_table6_gadget.dir/bench_table6_gadget.cpp.o.d"
  "bench_table6_gadget"
  "bench_table6_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
