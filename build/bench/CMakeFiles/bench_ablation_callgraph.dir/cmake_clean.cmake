file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_callgraph.dir/bench_ablation_callgraph.cpp.o"
  "CMakeFiles/bench_ablation_callgraph.dir/bench_ablation_callgraph.cpp.o.d"
  "bench_ablation_callgraph"
  "bench_ablation_callgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
