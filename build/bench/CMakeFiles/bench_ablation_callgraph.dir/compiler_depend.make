# Empty compiler generated dependencies file for bench_ablation_callgraph.
# This may be replaced when dependencies are built.
