# Empty dependencies file for bench_fig6_gadget_hb.
# This may be replaced when dependencies are built.
