file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_gadget_hb.dir/bench_fig6_gadget_hb.cpp.o"
  "CMakeFiles/bench_fig6_gadget_hb.dir/bench_fig6_gadget_hb.cpp.o.d"
  "bench_fig6_gadget_hb"
  "bench_fig6_gadget_hb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_gadget_hb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
