file(REMOVE_RECURSE
  "../lib/libbench_support.a"
  "../lib/libbench_support.pdb"
  "CMakeFiles/bench_support.dir/bench_common.cpp.o"
  "CMakeFiles/bench_support.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
