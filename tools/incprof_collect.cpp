// incprof_collect — the collection side of the framework as a CLI: runs
// one of the bundled mini-apps under the IncProf collector and leaves a
// directory of per-interval gmon-NNNNNN.out dumps (plus the final
// cumulative call graph as callgraph.bin), ready for incprof_analyze.
// This is the demo stand-in for LD_PRELOADing the real collector into a
// -pg-compiled application.
//
// Usage:
//   incprof_collect <app> <out_dir> [--interval <seconds>] [--seed <n>]
//
// Apps: graph500 minife miniamr lammps gadget

#include "apps/harness.hpp"
#include "apps/miniapp.hpp"
#include "gmon/callgraph.hpp"
#include "prof/callgraph_profiler.hpp"
#include "prof/collector.hpp"
#include "prof/sampler.hpp"
#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

using namespace incprof;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <app> <out_dir> [--interval seconds] "
                 "[--seed n] [--quiet] [--verbose]\napps:",
                 argv[0]);
    for (const auto& n : apps::app_names()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }
  const std::string app_name = argv[1];
  const std::filesystem::path out_dir = argv[2];
  double interval_sec = 1.0;
  std::uint64_t seed = 7;
  util::set_log_level(util::LogLevel::kInfo);
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_sec = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      util::set_log_level(util::LogLevel::kError);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      util::set_log_level(util::LogLevel::kDebug);
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }
  if (interval_sec <= 0.0) {
    std::fprintf(stderr, "interval must be positive\n");
    return 2;
  }

  try {
    util::log_info("collecting " + app_name + " at " +
                   std::to_string(interval_sec) + "s intervals -> " +
                   out_dir.string());
    auto app = apps::make_app(app_name, {});

    sim::EngineConfig ec;
    ec.seed = seed;
    ec.work_jitter_rel = 0.02;
    sim::ExecutionEngine eng(ec);

    prof::SamplingProfiler profiler(eng);
    prof::CallGraphProfiler callgraph(eng);
    prof::CollectorConfig cc;
    cc.interval_ns = sim::seconds(interval_sec);
    cc.dump_dir = out_dir;
    prof::IncProfCollector collector(profiler, cc);
    eng.add_listener(&profiler);
    eng.add_listener(&callgraph);
    eng.add_listener(&collector);

    app->run(eng);
    eng.finish();

    const auto graph = callgraph.snapshot(
        static_cast<std::uint32_t>(collector.dump_count()), eng.now());
    std::ofstream os(out_dir / "callgraph.bin",
                     std::ios::binary | std::ios::trunc);
    const std::string bytes = gmon::encode_call_graph(graph);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));

    std::printf("%s: %.1f virtual seconds, %zu dumps -> %s "
                "(+ callgraph.bin, %zu arcs)\n",
                app_name.c_str(), sim::to_seconds(eng.now()),
                collector.dump_count(), out_dir.string().c_str(),
                graph.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
