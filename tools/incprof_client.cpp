// incprof_client — replays an incprof_collect dump directory into a
// running incprofd as one or more concurrent sessions: the stand-in for
// a fleet of deployed, collector-instrumented processes all shipping
// their per-interval profiles to the central monitor.
//
// Usage:
//   incprof_client <dump_dir> [options]
//
// Options:
//   --host <h>        daemon host (default 127.0.0.1)
//   --port <n>        daemon port (default 7077)
//   --endpoint <h:p>  host and port in one flag ("gw.local:7077") — the
//                     form gateway redirect hints use; exit 2 when
//                     malformed
//   --sessions <n>    concurrent replay sessions (default 1)
//   --name <s>        client name prefix in the hello (default dump dir)
//   --retries <n>     connection attempts per session (default 1 = no
//                     retry); with more, a lost connection reconnects
//                     with exponential backoff and resumes the session
//   --backoff-ms <n>  initial reconnect backoff (default 20)
//   --no-events       do not subscribe to phase-event pushes
//   --trace-id <n>    originate this 64-bit trace id (hex with 0x prefix
//                     or decimal) instead of deriving one per session —
//                     lets an operator pin a known id to grep for in the
//                     fleet-merged /trace.json
//   --quiet           suppress the per-event log lines

#include "service/replay.hpp"
#include "service/tcp.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace incprof;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dump_dir> [--host h] [--port n] "
               "[--endpoint h:p] [--sessions n] [--name s] [--retries n] "
               "[--backoff-ms n] [--no-events] [--trace-id n] [--quiet] "
               "[--verbose]\n",
               argv0);
  return 2;
}

/// Parses an integer flag value or exits 2 with a message naming the
/// flag, the offending value, and the accepted range.
std::int64_t flag_int(const char* flag, const char* value,
                      std::int64_t lo, std::int64_t hi) {
  std::int64_t out = 0;
  if (!util::parse_int(value, lo, hi, out)) {
    std::fprintf(stderr,
                 "%s: invalid value '%s' (expected integer in [%lld, "
                 "%lld])\n",
                 flag, value, static_cast<long long>(lo),
                 static_cast<long long>(hi));
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string dump_dir = argv[1];
  std::string host = "127.0.0.1";
  std::uint16_t port = 7077;
  std::size_t sessions = 1;
  std::string name = dump_dir;
  std::size_t retries = 1;
  std::chrono::milliseconds backoff{20};
  bool subscribe = true;
  bool quiet = false;
  std::uint64_t trace_id = 0;  // 0 = derive per session
  util::set_log_level(util::LogLevel::kInfo);

  for (int i = 2; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      host = need("--host");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(
          flag_int("--port", need("--port"), 1, 65535));
    } else if (std::strcmp(argv[i], "--endpoint") == 0) {
      const char* value = need("--endpoint");
      if (!util::parse_endpoint(value, host, port)) {
        std::fprintf(stderr,
                     "--endpoint: invalid value '%s' (expected "
                     "host:port with port in [1, 65535])\n",
                     value);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      sessions = static_cast<std::size_t>(
          flag_int("--sessions", need("--sessions"), 1, 4096));
    } else if (std::strcmp(argv[i], "--retries") == 0) {
      retries = static_cast<std::size_t>(
          flag_int("--retries", need("--retries"), 1, 1000));
    } else if (std::strcmp(argv[i], "--backoff-ms") == 0) {
      backoff = std::chrono::milliseconds(
          flag_int("--backoff-ms", need("--backoff-ms"), 1, 60000));
    } else if (std::strcmp(argv[i], "--name") == 0) {
      name = need("--name");
    } else if (std::strcmp(argv[i], "--no-events") == 0) {
      subscribe = false;
    } else if (std::strcmp(argv[i], "--trace-id") == 0) {
      const char* value = need("--trace-id");
      char* end = nullptr;
      errno = 0;
      trace_id = std::strtoull(value, &end, 0);  // 0x.. hex or decimal
      if (errno != 0 || end == value || *end != '\0' || trace_id == 0) {
        std::fprintf(stderr,
                     "--trace-id: invalid value '%s' (expected nonzero "
                     "u64, hex with 0x prefix or decimal)\n",
                     value);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
      util::set_log_level(util::LogLevel::kError);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      util::set_log_level(util::LogLevel::kDebug);
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return usage(argv[0]);
    }
  }
  try {
    const auto snapshots = service::load_replay_dumps(dump_dir);
    if (snapshots.empty()) {
      std::fprintf(stderr, "no gmon-*.out dumps in %s\n", dump_dir.c_str());
      return 1;
    }
    std::printf("replaying %zu dumps from %s as %zu session(s) -> %s:%u\n",
                snapshots.size(), dump_dir.c_str(), sessions, host.c_str(),
                port);

    std::vector<service::ReplayResult> results(sessions);
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (std::size_t i = 0; i < sessions; ++i) {
      threads.emplace_back([&, i] {
        service::ReplayOptions opts;
        opts.client_name = name + "#" + std::to_string(i);
        opts.subscribe_events = subscribe;
        opts.query_status = true;
        // Pinned id + session index keeps concurrent sessions'
        // traces distinct while still grep-able from the flag value.
        opts.trace_id = trace_id == 0 ? 0 : trace_id + i;
        try {
          if (retries > 1) {
            service::RetryPolicy policy;
            policy.max_attempts = retries;
            policy.initial_backoff = backoff;
            policy.seed = 0x5eed5eedULL + i;
            results[i] = service::replay_session_resilient(
                [&] { return service::tcp_connect(host, port); },
                snapshots, opts, policy);
          } else {
            auto conn = service::tcp_connect(host, port);
            results[i] = service::replay_session(*conn, snapshots, opts);
          }
        } catch (const std::exception& e) {
          results[i].error = e.what();
        }
      });
    }
    for (auto& t : threads) t.join();

    std::size_t failed = 0;
    for (std::size_t i = 0; i < sessions; ++i) {
      const auto& r = results[i];
      if (!r.ok) {
        ++failed;
        util::log_error("session " + std::to_string(i) + " failed: " +
                        r.error);
        continue;
      }
      std::printf("session %u: %zu snapshots sent, %zu phase events, "
                  "trace 0x%llx",
                  r.session_id, r.snapshots_sent, r.events.size(),
                  static_cast<unsigned long long>(r.trace_id));
      if (r.reconnects > 0) {
        std::printf(" (%zu reconnects)", r.reconnects);
      }
      std::printf("\n");
      if (!quiet) {
        for (const auto& ev : r.events) {
          if (ev.new_phase) {
            std::printf("  t=%4us  NEW phase %u discovered\n", ev.interval,
                        ev.phase);
          } else if (ev.transition) {
            std::printf("  t=%4us  transition -> phase %u (distance %.2f)\n",
                        ev.interval, ev.phase, ev.distance);
          }
        }
      }
      if (!r.status_text.empty()) {
        std::printf("  server: %s\n", r.status_text.c_str());
      }
    }
    if (failed > 0) {
      std::fprintf(stderr, "%zu/%zu sessions failed\n", failed, sessions);
      return 1;
    }
    std::printf("all %zu sessions completed\n", sessions);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
