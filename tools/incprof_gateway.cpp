// incprof_gateway — the fleet coordinator: N incprofd shards behind one
// client-facing port. Clients (incprof_client, or anything speaking
// service/protocol) connect here exactly as they would to a single
// daemon; the gateway routes each session to a shard by consistent
// hash, proxies frames verbatim, migrates sessions off dead or drained
// shards via the protocol's resume path, and serves the merged fleet
// telemetry over HTTP.
//
// Usage:
//   incprof_gateway --shard <id>=<host:port> [--shard ...] [options]
//
// Options:
//   --shard <spec>      one backend incprofd; <spec> is "<id>=<host:port>"
//                       (<id> must equal that daemon's --shard-id) or
//                       plain "<host:port>" (ids auto-assigned 1, 2, ...
//                       in flag order). Repeatable; at least one.
//   --port <n>          frontend port clients dial (default 7078;
//                       0 = ephemeral)
//   --obs-port <n>      serve merged GET /metrics, /healthz, /fleet.json,
//                       /trace.json
//                       on this port (0 = ephemeral; off unless given)
//   --pull-ms <n>       aggregator pull cadence (default 1000)
//   --pull-timeout-ms <n> per-shard control deadline (default 1000)
//   --vnodes <n>        virtual nodes per shard on the ring (default 64)
//   --port-file <path>  write bound ports ("port <n>", "obs_port <n>")
//   --report-every <s>  seconds between fleet reports (default 10)
//   --max-seconds <s>   exit after this long (default: until SIGINT)
//   --quiet / --verbose log level

#include "fleet/gateway.hpp"
#include "obs/http.hpp"
#include "service/tcp.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace incprof;

namespace {

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --shard <id>=<host:port> [--shard ...] "
               "[--port n] [--obs-port n] [--pull-ms n] "
               "[--pull-timeout-ms n] [--vnodes n] [--port-file path] "
               "[--report-every s] [--max-seconds s] [--quiet] "
               "[--verbose]\n",
               argv0);
  return 2;
}

/// Parses an integer flag value or exits 2 with a message naming the
/// flag, the offending value, and the accepted range.
std::int64_t flag_int(const char* flag, const char* value,
                      std::int64_t lo, std::int64_t hi) {
  std::int64_t out = 0;
  if (!util::parse_int(value, lo, hi, out)) {
    std::fprintf(stderr,
                 "%s: invalid value '%s' (expected integer in [%lld, "
                 "%lld])\n",
                 flag, value, static_cast<long long>(lo),
                 static_cast<long long>(hi));
    std::exit(2);
  }
  return out;
}

struct ShardSpec {
  std::uint32_t id = 0;
  std::string host;
  std::uint16_t port = 0;
};

/// "<id>=<host:port>" or "<host:port>" (id auto-assigned by the caller).
bool parse_shard_spec(std::string_view value, std::uint32_t auto_id,
                      ShardSpec& out) {
  ShardSpec spec;
  std::string_view endpoint = value;
  const auto eq = value.find('=');
  if (eq != std::string_view::npos) {
    std::int64_t id = 0;
    if (!util::parse_int(value.substr(0, eq), 0, service::kMaxShardId,
                         id)) {
      return false;
    }
    spec.id = static_cast<std::uint32_t>(id);
    endpoint = value.substr(eq + 1);
  } else {
    spec.id = auto_id;
  }
  if (!util::parse_endpoint(endpoint, spec.host, spec.port)) return false;
  out = spec;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 7078;
  int obs_port = -1;
  double report_every = 10.0;
  double max_seconds = 0.0;
  std::string port_file;
  std::vector<ShardSpec> shards;
  fleet::GatewayConfig cfg;
  util::set_log_level(util::LogLevel::kInfo);

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--shard") == 0) {
      const char* value = need("--shard");
      ShardSpec spec;
      if (!parse_shard_spec(
              value, static_cast<std::uint32_t>(shards.size() + 1), spec)) {
        std::fprintf(stderr,
                     "--shard: invalid value '%s' (expected "
                     "[id=]host:port)\n",
                     value);
        return 2;
      }
      shards.push_back(std::move(spec));
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(
          flag_int("--port", need("--port"), 0, 65535));
    } else if (std::strcmp(argv[i], "--obs-port") == 0) {
      obs_port = static_cast<int>(
          flag_int("--obs-port", need("--obs-port"), 0, 65535));
    } else if (std::strcmp(argv[i], "--pull-ms") == 0) {
      cfg.pull_period = std::chrono::milliseconds(
          flag_int("--pull-ms", need("--pull-ms"), 1, 3600000));
    } else if (std::strcmp(argv[i], "--pull-timeout-ms") == 0) {
      cfg.pull_timeout = std::chrono::milliseconds(flag_int(
          "--pull-timeout-ms", need("--pull-timeout-ms"), 1, 3600000));
    } else if (std::strcmp(argv[i], "--vnodes") == 0) {
      cfg.vnodes_per_shard = static_cast<std::size_t>(
          flag_int("--vnodes", need("--vnodes"), 1, 4096));
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      port_file = need("--port-file");
    } else if (std::strcmp(argv[i], "--report-every") == 0) {
      report_every = std::atof(need("--report-every"));
    } else if (std::strcmp(argv[i], "--max-seconds") == 0) {
      max_seconds = std::atof(need("--max-seconds"));
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      util::set_log_level(util::LogLevel::kError);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      util::set_log_level(util::LogLevel::kDebug);
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return usage(argv[0]);
    }
  }
  if (shards.empty()) {
    std::fprintf(stderr, "at least one --shard is required\n");
    return usage(argv[0]);
  }

  try {
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    service::TcpListener frontend(port);
    fleet::Gateway gateway(frontend, cfg);
    for (const auto& spec : shards) {
      gateway.add_shard(spec.id,
                        [host = spec.host, backend_port = spec.port] {
                          return service::tcp_connect(host, backend_port);
                        });
      std::printf("incprof_gateway: shard %u at %s:%u\n", spec.id,
                  spec.host.c_str(), spec.port);
    }
    gateway.start();

    std::unique_ptr<obs::HttpEndpoint> obs_endpoint;
    if (obs_port >= 0) {
      obs_endpoint = std::make_unique<obs::HttpEndpoint>(
          static_cast<std::uint16_t>(obs_port), gateway.http_handler());
      std::printf("incprof_gateway: obs endpoint on port %u "
                  "(GET /metrics /healthz /fleet.json /trace.json)\n",
                  obs_endpoint->port());
    }
    std::printf("incprof_gateway: listening on port %u (%zu shards)\n",
                frontend.port(), shards.size());
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::ofstream pf(port_file, std::ios::trunc);
      if (!pf) {
        std::fprintf(stderr, "incprof_gateway: cannot write %s\n",
                     port_file.c_str());
        return 1;
      }
      pf << "port " << frontend.port() << '\n';
      if (obs_endpoint) pf << "obs_port " << obs_endpoint->port() << '\n';
    }

    const auto start = std::chrono::steady_clock::now();
    auto next_report = start + std::chrono::duration<double>(report_every);
    while (!g_interrupted.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const auto now = std::chrono::steady_clock::now();
      if (max_seconds > 0.0 &&
          now - start >= std::chrono::duration<double>(max_seconds)) {
        break;
      }
      if (report_every > 0.0 && now >= next_report) {
        const auto view = gateway.view();
        std::size_t alive = 0;
        for (const auto& s : view.shards) {
          if (s.alive) ++alive;
        }
        std::printf("fleet: %zu/%zu shards up, %llu open sessions, "
                    "%llu intervals\n",
                    alive, view.shards.size(),
                    static_cast<unsigned long long>(
                        view.merged.open_sessions),
                    static_cast<unsigned long long>(
                        view.merged.total_intervals));
        std::fflush(stdout);
        next_report = now + std::chrono::duration<double>(report_every);
      }
    }

    gateway.stop();
    if (obs_endpoint) obs_endpoint->stop();
    const auto view = gateway.view();
    std::printf("incprof_gateway: proxied %llu connections; fleet saw "
                "%llu intervals across %zu shards\n",
                static_cast<unsigned long long>(
                    gateway.connections_accepted()),
                static_cast<unsigned long long>(
                    view.merged.total_intervals),
                view.shards.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
