// incprofd — the multi-session phase-detection daemon: the
// monitoring-side endpoint of the framework (the paper ships AppEKG
// records through LDMS; incprofd is that collector's stand-in). Clients
// (incprof_client, or anything speaking service/protocol) stream
// profile snapshots and heartbeat batches; the daemon tracks phases per
// session and prints a periodic fleet report. With --obs-port it also
// serves its own telemetry over HTTP: Prometheus metrics, a health
// probe, and a Chrome/Perfetto trace of the frame path.
//
// Usage:
//   incprofd [options]                     serve TCP
//   incprofd --selftest <dump_dir> [opts]  end-to-end self check: serve
//                                          on an ephemeral port, replay
//                                          <dump_dir> over real sockets
//                                          as N local sessions, report
//
// Options:
//   --port <n>           TCP port (default 7077; 0 = ephemeral)
//   --obs-port <n>       also serve GET /metrics, /healthz, /trace.json
//                        over HTTP on this port (0 = ephemeral)
//   --workers <n>        tracker worker threads (default 4)
//   --queue-capacity <n> per-session frame queue bound (default 256)
//   --report-every <s>   seconds between fleet reports (default 10)
//   --max-seconds <s>    exit after this long (default: run until EOF
//                        on stdin or SIGINT)
//   --metrics-csv <path> write the metrics registry as CSV on exit
//   --fleet-csv <path>   write the per-session fleet table on exit
//   --sessions <n>       (selftest) parallel replay sessions, default 4
//   --quiet              only errors on stderr
//   --verbose            debug-level diagnostics on stderr

#include "obs/http.hpp"
#include "obs/trace.hpp"
#include "service/replay.hpp"
#include "service/server.hpp"
#include "service/tcp.hpp"
#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace incprof;

namespace {

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port n] [--obs-port n] [--workers n] "
               "[--queue-capacity n] [--report-every s] [--max-seconds s] "
               "[--metrics-csv path] [--fleet-csv path] [--quiet] "
               "[--verbose]\n"
               "       %s --selftest <dump_dir> [--sessions n] [--workers n]\n",
               argv0, argv0);
  return 2;
}

void write_csv_file(const std::string& path, const auto& writer) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    util::log_error("incprofd: cannot write " + path);
    return;
  }
  writer(os);
}

std::unique_ptr<obs::HttpEndpoint> start_obs_endpoint(
    int obs_port, service::Server& server) {
  if (obs_port < 0) return nullptr;
  auto endpoint = std::make_unique<obs::HttpEndpoint>(
      static_cast<std::uint16_t>(obs_port),
      obs::make_obs_handler(server.metrics(), obs::trace()));
  std::printf("incprofd: obs endpoint on port %u "
              "(GET /metrics /healthz /trace.json)\n",
              endpoint->port());
  std::fflush(stdout);
  return endpoint;
}

int run_selftest(const std::string& dump_dir, std::size_t sessions,
                 int obs_port, service::ServerConfig cfg) {
  const auto snapshots = service::load_replay_dumps(dump_dir);
  if (snapshots.empty()) {
    util::log_error("incprofd: no dumps in " + dump_dir);
    return 1;
  }

  // The selftest asserts lossless delivery, so the queue bound must
  // cover a whole replay arriving faster than the trackers drain it.
  cfg.session.queue_capacity =
      std::max(cfg.session.queue_capacity, snapshots.size() + 16);

  service::TcpListener listener(0);
  service::Server server(listener, cfg);
  server.start();
  const auto obs_endpoint = start_obs_endpoint(obs_port, server);
  std::printf("incprofd selftest: port %u, %zu dumps, %zu sessions\n",
              listener.port(), snapshots.size(), sessions);

  std::vector<service::ReplayResult> results(sessions);
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      service::ReplayOptions opts;
      opts.client_name = "selftest-" + std::to_string(i);
      opts.subscribe_events = true;
      opts.query_status = true;
      try {
        auto conn = service::tcp_connect("127.0.0.1", listener.port());
        results[i] = service::replay_session(*conn, snapshots, opts);
      } catch (const std::exception& e) {
        results[i].error = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();
  server.stop();

  std::size_t ok = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto& r = results[i];
    if (r.ok && r.events.size() == snapshots.size()) {
      ++ok;
    } else {
      util::log_error("session " + std::to_string(i) + " failed: " +
                      r.error + " (" + std::to_string(r.events.size()) +
                      "/" + std::to_string(snapshots.size()) + " events)");
    }
    if (!r.status_text.empty()) std::printf("  %s\n", r.status_text.c_str());
  }
  std::printf("%s", server.fleet().render().c_str());
  std::printf("selftest: %zu/%zu sessions ok, %llu frames, %llu dropped\n",
              ok, sessions,
              static_cast<unsigned long long>(
                  server.metrics().counter_value("frames_received")),
              static_cast<unsigned long long>(
                  server.metrics().counter_value("frames_dropped")));
  return ok == sessions ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 7077;
  int obs_port = -1;  // off unless --obs-port is given
  double report_every = 10.0;
  double max_seconds = 0.0;
  std::size_t sessions = 4;
  std::string metrics_csv;
  std::string fleet_csv;
  std::string selftest_dir;
  service::ServerConfig cfg;
  util::set_log_level(util::LogLevel::kInfo);

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(std::atoi(need("--port")));
    } else if (std::strcmp(argv[i], "--obs-port") == 0) {
      obs_port = std::atoi(need("--obs-port"));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      cfg.worker_threads =
          static_cast<std::size_t>(std::atoll(need("--workers")));
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      cfg.session.queue_capacity =
          static_cast<std::size_t>(std::atoll(need("--queue-capacity")));
    } else if (std::strcmp(argv[i], "--report-every") == 0) {
      report_every = std::atof(need("--report-every"));
    } else if (std::strcmp(argv[i], "--max-seconds") == 0) {
      max_seconds = std::atof(need("--max-seconds"));
    } else if (std::strcmp(argv[i], "--metrics-csv") == 0) {
      metrics_csv = need("--metrics-csv");
    } else if (std::strcmp(argv[i], "--fleet-csv") == 0) {
      fleet_csv = need("--fleet-csv");
    } else if (std::strcmp(argv[i], "--selftest") == 0) {
      selftest_dir = need("--selftest");
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      sessions = static_cast<std::size_t>(std::atoll(need("--sessions")));
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      util::set_log_level(util::LogLevel::kError);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      util::set_log_level(util::LogLevel::kDebug);
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return usage(argv[0]);
    }
  }
  if (cfg.worker_threads == 0 || cfg.session.queue_capacity == 0 ||
      sessions == 0) {
    std::fprintf(stderr, "workers, queue-capacity and sessions must be > 0\n");
    return usage(argv[0]);
  }
  if (obs_port > 65535) {
    std::fprintf(stderr, "--obs-port must be a port number\n");
    return usage(argv[0]);
  }

  try {
    if (!selftest_dir.empty()) {
      return run_selftest(selftest_dir, sessions, obs_port, cfg);
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    service::TcpListener listener(port);
    service::Server server(listener, cfg);
    server.start();
    const auto obs_endpoint = start_obs_endpoint(obs_port, server);
    std::printf("incprofd: listening on port %u (%zu workers, queue %zu)\n",
                listener.port(), cfg.worker_threads,
                cfg.session.queue_capacity);
    std::fflush(stdout);

    const auto start = std::chrono::steady_clock::now();
    auto next_report =
        start + std::chrono::duration<double>(report_every);
    while (!g_interrupted.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const auto now = std::chrono::steady_clock::now();
      if (max_seconds > 0.0 &&
          now - start >= std::chrono::duration<double>(max_seconds)) {
        break;
      }
      if (report_every > 0.0 && now >= next_report) {
        std::printf("%s", server.fleet().render().c_str());
        std::fflush(stdout);
        next_report = now + std::chrono::duration<double>(report_every);
      }
    }

    server.stop();
    std::printf("%s", server.fleet().render().c_str());
    if (!metrics_csv.empty()) {
      write_csv_file(metrics_csv,
                     [&](std::ostream& os) { server.metrics().write_csv(os); });
    }
    if (!fleet_csv.empty()) {
      write_csv_file(fleet_csv,
                     [&](std::ostream& os) { server.fleet().write_csv(os); });
    }
    std::printf("incprofd: served %llu sessions, %llu frames (%llu dropped)\n",
                static_cast<unsigned long long>(
                    server.metrics().counter_value("sessions_opened")),
                static_cast<unsigned long long>(
                    server.metrics().counter_value("frames_received")),
                static_cast<unsigned long long>(
                    server.metrics().counter_value("frames_dropped")));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
