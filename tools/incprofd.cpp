// incprofd — the multi-session phase-detection daemon: the
// monitoring-side endpoint of the framework (the paper ships AppEKG
// records through LDMS; incprofd is that collector's stand-in). Clients
// (incprof_client, or anything speaking service/protocol) stream
// profile snapshots and heartbeat batches; the daemon tracks phases per
// session and prints a periodic fleet report. With --obs-port it also
// serves its own telemetry over HTTP: Prometheus metrics, a health
// probe, and a Chrome/Perfetto trace of the frame path.
//
// Usage:
//   incprofd [options]                     serve TCP
//   incprofd --selftest <dump_dir> [opts]  end-to-end self check: serve
//                                          on an ephemeral port, replay
//                                          <dump_dir> over real sockets
//                                          as N local sessions, report
//   incprofd --selftest-chaos <dump_dir>   same, but half the sessions
//                                          send through a seeded
//                                          fault-injecting transport
//                                          (drops, corruption, truncation,
//                                          disconnects); asserts the
//                                          clean half is undisturbed
//
// Options:
//   --port <n>           TCP port (default 7077; 0 = ephemeral)
//   --obs-port <n>       also serve GET /metrics, /healthz, /trace.json
//                        over HTTP on this port (0 = ephemeral)
//   --shard-id <n>       this daemon's shard id behind incprof_gateway
//                        (default 0 = standalone); session ids come from
//                        the shard's disjoint range so the gateway can
//                        route resumes by id alone
//   --streaming          bounded per-session trackers: hash-sketched
//                        fixed-width feature vectors, EWMA centroids
//                        with online phase merging, and a bounded
//                        assignment ring — O(1) work and memory per
//                        interval regardless of session length (the
//                        fleet-scale mode; default off = exact
//                        growing-column reference trackers)
//   --sketch-width <n>   feature sketch width with --streaming
//                        (default 256)
//   --port-file <path>   after binding, write the bound ports ("port
//                        <n>", "obs_port <n>" lines) — how scripts find
//                        ephemeral (--port 0) listeners
//   --threads <n>        tracker worker threads: 0 = hardware
//                        concurrency (default), 1 = single worker
//   --workers <n>        alias for --threads (kept for old scripts;
//                        accepts 1..1024 only)
//   --queue-capacity <n> per-session frame queue bound (default 256)
//   --error-budget <n>   malformed frames tolerated per session before
//                        quarantine (default 4)
//   --resume-grace-ms <n>  keep abruptly-disconnected sessions resumable
//                        for this long (default 0 = off)
//   --idle-timeout-ms <n>  reap sessions silent for this long (0 = off)
//   --read-timeout-ms <n>  per-connection receive deadline (0 = off)
//   --postmortem-dir <path>  write a flight-recorder postmortem JSON
//                        (last events, offending frames) here whenever a
//                        session is quarantined; empty = off
//   --report-every <s>   seconds between fleet reports (default 10)
//   --max-seconds <s>    exit after this long (default: run until EOF
//                        on stdin or SIGINT)
//   --metrics-csv <path> write the metrics registry as CSV on exit
//   --fleet-csv <path>   write the per-session fleet table on exit
//   --sessions <n>       (selftest) parallel replay sessions, default 4
//   --chaos-seed <n>     (selftest-chaos) fault schedule seed, default 1
//   --chaos-rate <f>     (selftest-chaos) per-frame fault probability,
//                        default 0.15
//   --quiet              only errors on stderr
//   --verbose            debug-level diagnostics on stderr

#include "cluster/simd/simd.hpp"
#include "obs/http.hpp"
#include "obs/trace.hpp"
#include "service/faults.hpp"
#include "service/replay.hpp"
#include "service/server.hpp"
#include "service/tcp.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

using namespace incprof;

namespace {

std::atomic<bool> g_interrupted{false};

void on_signal(int) { g_interrupted.store(true); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port n] [--obs-port n] [--shard-id n] "
               "[--port-file path] [--threads n] [--workers n] "
               "[--streaming] [--simd auto|avx2|neon|scalar] "
               "[--sketch-width n] "
               "[--queue-capacity n] [--error-budget n] "
               "[--resume-grace-ms n] [--idle-timeout-ms n] "
               "[--read-timeout-ms n] [--postmortem-dir path] "
               "[--report-every s] [--max-seconds s] "
               "[--metrics-csv path] [--fleet-csv path] [--quiet] "
               "[--verbose]\n"
               "       %s --selftest <dump_dir> [--sessions n] [--workers n]\n"
               "       %s --selftest-chaos <dump_dir> [--sessions n] "
               "[--chaos-seed n] [--chaos-rate f]\n",
               argv0, argv0, argv0);
  return 2;
}

/// Parses an integer flag value or exits 2 with a message naming the
/// flag, the offending value, and the accepted range.
std::int64_t flag_int(const char* flag, const char* value,
                      std::int64_t lo, std::int64_t hi) {
  std::int64_t out = 0;
  if (!util::parse_int(value, lo, hi, out)) {
    std::fprintf(stderr,
                 "%s: invalid value '%s' (expected integer in [%lld, "
                 "%lld])\n",
                 flag, value, static_cast<long long>(lo),
                 static_cast<long long>(hi));
    std::exit(2);
  }
  return out;
}

void write_csv_file(const std::string& path, const auto& writer) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    util::log_error("incprofd: cannot write " + path);
    return;
  }
  writer(os);
}

std::unique_ptr<obs::HttpEndpoint> start_obs_endpoint(
    int obs_port, service::Server& server) {
  if (obs_port < 0) return nullptr;
  // The stock obs routes plus the live flight-recorder view:
  // GET /sessions/<id>.json dumps session <id>'s last-events ring.
  auto base = obs::make_obs_handler(server.metrics(), obs::trace());
  auto handler = [base = std::move(base),
                  &server](const std::string& path) -> obs::HttpResponse {
    constexpr std::string_view kPrefix = "/sessions/";
    constexpr std::string_view kSuffix = ".json";
    if (path.size() > kPrefix.size() + kSuffix.size() &&
        path.compare(0, kPrefix.size(), kPrefix) == 0 &&
        path.compare(path.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) == 0) {
      const std::string id_text = path.substr(
          kPrefix.size(), path.size() - kPrefix.size() - kSuffix.size());
      std::int64_t id = 0;
      if (util::parse_int(id_text, 1, std::numeric_limits<std::uint32_t>::max(),
                          id)) {
        std::string body =
            server.session_flight_json(static_cast<std::uint32_t>(id));
        if (!body.empty()) {
          return {200, "application/json", std::move(body)};
        }
      }
      return {404, "text/plain; charset=utf-8", "no such session\n"};
    }
    return base(path);
  };
  auto endpoint = std::make_unique<obs::HttpEndpoint>(
      static_cast<std::uint16_t>(obs_port), std::move(handler));
  std::printf("incprofd: obs endpoint on port %u "
              "(GET /metrics /healthz /trace.json /sessions/<id>.json)\n",
              endpoint->port());
  std::fflush(stdout);
  return endpoint;
}

int run_selftest(const std::string& dump_dir, std::size_t sessions,
                 int obs_port, service::ServerConfig cfg) {
  const auto snapshots = service::load_replay_dumps(dump_dir);
  if (snapshots.empty()) {
    util::log_error("incprofd: no dumps in " + dump_dir);
    return 1;
  }

  // The selftest asserts lossless delivery, so the queue bound must
  // cover a whole replay arriving faster than the trackers drain it.
  cfg.session.queue_capacity =
      std::max(cfg.session.queue_capacity, snapshots.size() + 16);

  service::TcpListener listener(0);
  service::Server server(listener, cfg);
  server.start();
  const auto obs_endpoint = start_obs_endpoint(obs_port, server);
  std::printf("incprofd selftest: port %u, %zu dumps, %zu sessions\n",
              listener.port(), snapshots.size(), sessions);

  std::vector<service::ReplayResult> results(sessions);
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    clients.emplace_back([&, i] {
      service::ReplayOptions opts;
      opts.client_name = "selftest-" + std::to_string(i);
      opts.subscribe_events = true;
      opts.query_status = true;
      try {
        auto conn = service::tcp_connect("127.0.0.1", listener.port());
        results[i] = service::replay_session(*conn, snapshots, opts);
      } catch (const std::exception& e) {
        results[i].error = e.what();
      }
    });
  }
  for (auto& t : clients) t.join();
  server.stop();

  std::size_t ok = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    const auto& r = results[i];
    if (r.ok && r.events.size() == snapshots.size()) {
      ++ok;
    } else {
      util::log_error("session " + std::to_string(i) + " failed: " +
                      r.error + " (" + std::to_string(r.events.size()) +
                      "/" + std::to_string(snapshots.size()) + " events)");
    }
    if (!r.status_text.empty()) std::printf("  %s\n", r.status_text.c_str());
  }
  std::printf("%s", server.fleet().render().c_str());
  std::printf("selftest: %zu/%zu sessions ok, %llu frames, %llu dropped\n",
              ok, sessions,
              static_cast<unsigned long long>(
                  server.metrics().counter_value("frames_received")),
              static_cast<unsigned long long>(
                  server.metrics().counter_value("frames_dropped")));
  return ok == sessions ? 0 : 1;
}

/// Chaos self check: N parallel replay sessions against a real TCP
/// server, the odd-numbered half sending through a seeded
/// FaultInjectingConnection on their first attempt (reconnects are
/// clean, so every session eventually converges). Passes when every
/// session completes and every clean session got a phase event per
/// snapshot — injected faults must never disturb healthy neighbors.
int run_selftest_chaos(const std::string& dump_dir, std::size_t sessions,
                       int obs_port, service::ServerConfig cfg,
                       std::uint64_t seed, double rate) {
  const auto snapshots = service::load_replay_dumps(dump_dir);
  if (snapshots.empty()) {
    util::log_error("incprofd: no dumps in " + dump_dir);
    return 1;
  }
  cfg.session.queue_capacity =
      std::max(cfg.session.queue_capacity, snapshots.size() + 16);
  // Chaos needs the fault-tolerance machinery on; keep explicit flags.
  if (cfg.resume_grace.count() == 0) {
    cfg.resume_grace = std::chrono::milliseconds(2000);
  }
  if (cfg.read_timeout.count() == 0) {
    cfg.read_timeout = std::chrono::milliseconds(2000);
  }

  service::TcpListener listener(0);
  service::Server server(listener, cfg);
  server.start();
  const auto obs_endpoint = start_obs_endpoint(obs_port, server);
  std::printf("incprofd chaos selftest: port %u, %zu dumps, %zu sessions "
              "(seed %llu, rate %.2f)\n",
              listener.port(), snapshots.size(), sessions,
              static_cast<unsigned long long>(seed), rate);

  std::vector<service::ReplayResult> results(sessions);
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    const bool faulty = (i % 2) == 1;
    clients.emplace_back([&, i, faulty] {
      service::ReplayOptions opts;
      opts.client_name =
          std::string(faulty ? "chaos-" : "clean-") + std::to_string(i);
      opts.subscribe_events = !faulty;
      opts.query_status = true;
      service::RetryPolicy policy;
      policy.max_attempts = 8;
      policy.initial_backoff = std::chrono::milliseconds(10);
      policy.seed = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
      std::size_t attempts = 0;
      results[i] = service::replay_session_resilient(
          [&]() -> std::unique_ptr<service::Connection> {
            auto conn = service::tcp_connect("127.0.0.1", listener.port());
            if (faulty && attempts++ == 0) {
              return std::make_unique<service::FaultInjectingConnection>(
                  std::move(conn),
                  service::FaultPlan::from_seed(seed + i, rate,
                                                snapshots.size() + 8),
                  std::chrono::milliseconds(2));
            }
            return conn;
          },
          snapshots, opts, policy);
    });
  }
  for (auto& t : clients) t.join();
  server.stop();

  std::size_t ok = 0;
  std::size_t clean_ok = 0;
  const std::size_t clean_total = (sessions + 1) / 2;  // even indices
  for (std::size_t i = 0; i < sessions; ++i) {
    const bool faulty = (i % 2) == 1;
    const auto& r = results[i];
    if (!r.ok) {
      util::log_error("session " + std::to_string(i) + " failed: " +
                      r.error);
      continue;
    }
    ++ok;
    if (!faulty) {
      if (r.events.size() == snapshots.size()) {
        ++clean_ok;
      } else {
        util::log_error("clean session " + std::to_string(i) + " got " +
                        std::to_string(r.events.size()) + "/" +
                        std::to_string(snapshots.size()) + " events");
      }
    }
  }

  const auto& m = server.metrics();
  std::printf("%s", server.fleet().render().c_str());
  std::printf(
      "chaos: %zu/%zu sessions ok, clean %zu/%zu undisturbed, "
      "%llu rejected, %llu quarantined, %llu reconnects\n",
      ok, sessions, clean_ok, clean_total,
      static_cast<unsigned long long>(m.counter_value("frames_rejected")),
      static_cast<unsigned long long>(
          m.counter_value("sessions_quarantined")),
      static_cast<unsigned long long>(m.counter_value("reconnects")));
  return (ok == sessions && clean_ok == clean_total) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 7077;
  int obs_port = -1;  // off unless --obs-port is given
  double report_every = 10.0;
  double max_seconds = 0.0;
  std::size_t sessions = 4;
  std::uint64_t chaos_seed = 1;
  double chaos_rate = 0.15;
  std::string metrics_csv;
  std::string fleet_csv;
  std::string selftest_dir;
  std::string chaos_dir;
  std::string port_file;
  service::ServerConfig cfg;
  util::set_log_level(util::LogLevel::kInfo);

  for (int i = 1; i < argc; ++i) {
    const auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(
          flag_int("--port", need("--port"), 0, 65535));
    } else if (std::strcmp(argv[i], "--obs-port") == 0) {
      obs_port = static_cast<int>(
          flag_int("--obs-port", need("--obs-port"), 0, 65535));
    } else if (std::strcmp(argv[i], "--shard-id") == 0) {
      cfg.shard_id = static_cast<std::uint32_t>(
          flag_int("--shard-id", need("--shard-id"), 0,
                   service::kMaxShardId));
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      port_file = need("--port-file");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      cfg.worker_threads = static_cast<std::size_t>(
          flag_int("--threads", need("--threads"), 0, 1024));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      cfg.worker_threads = static_cast<std::size_t>(
          flag_int("--workers", need("--workers"), 1, 1024));
    } else if (std::strcmp(argv[i], "--streaming") == 0) {
      cfg.session.tracker.streaming = true;
    } else if (std::strcmp(argv[i], "--simd") == 0) {
      const char* tier_arg = need("--simd");
      cluster::simd::Tier tier;
      if (!cluster::simd::parse_tier(tier_arg, tier) ||
          !cluster::simd::set_active_tier(tier)) {
        std::fprintf(stderr,
                     "--simd: invalid or unsupported tier '%s' (expected "
                     "auto, avx2, neon, or scalar; detected: %s)\n",
                     tier_arg,
                     cluster::simd::tier_name(cluster::simd::detected_tier()));
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--sketch-width") == 0) {
      cfg.session.tracker.sketch_width = static_cast<std::size_t>(
          flag_int("--sketch-width", need("--sketch-width"), 1, 1 << 20));
    } else if (std::strcmp(argv[i], "--queue-capacity") == 0) {
      cfg.session.queue_capacity = static_cast<std::size_t>(flag_int(
          "--queue-capacity", need("--queue-capacity"), 1, 1 << 24));
    } else if (std::strcmp(argv[i], "--error-budget") == 0) {
      cfg.protocol_error_budget = static_cast<std::uint32_t>(
          flag_int("--error-budget", need("--error-budget"), 0, 1 << 20));
    } else if (std::strcmp(argv[i], "--resume-grace-ms") == 0) {
      cfg.resume_grace = std::chrono::milliseconds(flag_int(
          "--resume-grace-ms", need("--resume-grace-ms"), 0, 86400000));
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      cfg.idle_timeout = std::chrono::milliseconds(flag_int(
          "--idle-timeout-ms", need("--idle-timeout-ms"), 0, 86400000));
    } else if (std::strcmp(argv[i], "--read-timeout-ms") == 0) {
      cfg.read_timeout = std::chrono::milliseconds(flag_int(
          "--read-timeout-ms", need("--read-timeout-ms"), 0, 86400000));
    } else if (std::strcmp(argv[i], "--postmortem-dir") == 0) {
      cfg.postmortem_dir = need("--postmortem-dir");
    } else if (std::strcmp(argv[i], "--report-every") == 0) {
      report_every = std::atof(need("--report-every"));
    } else if (std::strcmp(argv[i], "--max-seconds") == 0) {
      max_seconds = std::atof(need("--max-seconds"));
    } else if (std::strcmp(argv[i], "--metrics-csv") == 0) {
      metrics_csv = need("--metrics-csv");
    } else if (std::strcmp(argv[i], "--fleet-csv") == 0) {
      fleet_csv = need("--fleet-csv");
    } else if (std::strcmp(argv[i], "--selftest") == 0) {
      selftest_dir = need("--selftest");
    } else if (std::strcmp(argv[i], "--selftest-chaos") == 0) {
      chaos_dir = need("--selftest-chaos");
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      sessions = static_cast<std::size_t>(
          flag_int("--sessions", need("--sessions"), 1, 4096));
    } else if (std::strcmp(argv[i], "--chaos-seed") == 0) {
      chaos_seed = static_cast<std::uint64_t>(flag_int(
          "--chaos-seed", need("--chaos-seed"), 0,
          std::numeric_limits<std::int64_t>::max()));
    } else if (std::strcmp(argv[i], "--chaos-rate") == 0) {
      chaos_rate = std::atof(need("--chaos-rate"));
      if (chaos_rate < 0.0 || chaos_rate > 1.0) {
        std::fprintf(stderr, "--chaos-rate must be in [0, 1]\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      util::set_log_level(util::LogLevel::kError);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      util::set_log_level(util::LogLevel::kDebug);
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return usage(argv[0]);
    }
  }
  try {
    if (!chaos_dir.empty()) {
      return run_selftest_chaos(chaos_dir, sessions, obs_port, cfg,
                                chaos_seed, chaos_rate);
    }
    if (!selftest_dir.empty()) {
      return run_selftest(selftest_dir, sessions, obs_port, cfg);
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    service::TcpListener listener(port);
    service::Server server(listener, cfg);
    server.start();
    const auto obs_endpoint = start_obs_endpoint(obs_port, server);
    std::printf("incprofd: listening on port %u (%zu workers, queue %zu, "
                "shard %u, %s trackers)\n",
                listener.port(), server.worker_count(),
                cfg.session.queue_capacity, cfg.shard_id,
                cfg.session.tracker.streaming ? "streaming" : "exact");
    std::fflush(stdout);
    if (!port_file.empty()) {
      std::ofstream pf(port_file, std::ios::trunc);
      if (!pf) {
        std::fprintf(stderr, "incprofd: cannot write %s\n",
                     port_file.c_str());
        return 1;
      }
      pf << "port " << listener.port() << '\n';
      if (obs_endpoint) pf << "obs_port " << obs_endpoint->port() << '\n';
    }

    const auto start = std::chrono::steady_clock::now();
    auto next_report =
        start + std::chrono::duration<double>(report_every);
    while (!g_interrupted.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const auto now = std::chrono::steady_clock::now();
      if (max_seconds > 0.0 &&
          now - start >= std::chrono::duration<double>(max_seconds)) {
        break;
      }
      if (report_every > 0.0 && now >= next_report) {
        std::printf("%s", server.fleet().render().c_str());
        std::fflush(stdout);
        next_report = now + std::chrono::duration<double>(report_every);
      }
    }

    server.stop();
    std::printf("%s", server.fleet().render().c_str());
    if (!metrics_csv.empty()) {
      write_csv_file(metrics_csv,
                     [&](std::ostream& os) { server.metrics().write_csv(os); });
    }
    if (!fleet_csv.empty()) {
      write_csv_file(fleet_csv,
                     [&](std::ostream& os) { server.fleet().write_csv(os); });
    }
    std::printf("incprofd: served %llu sessions, %llu frames (%llu dropped)\n",
                static_cast<unsigned long long>(
                    server.metrics().counter_value("sessions_opened")),
                static_cast<unsigned long long>(
                    server.metrics().counter_value("frames_received")),
                static_cast<unsigned long long>(
                    server.metrics().counter_value("frames_dropped")));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
