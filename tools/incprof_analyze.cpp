// incprof_analyze — the offline analysis tool of the IncProf framework:
// point it at a directory of per-interval profile dumps (gmon-NNNNNN.out
// binary files from the collector, or flat-NNNNNN.txt gprof reports) and
// it prints the k-selection diagnostics, the detected phases, and the
// Algorithm 1 instrumentation-site table.
//
// Usage:
//   incprof_analyze <dump_dir> [options]
//
// Options:
//   --text             parse flat-*.txt reports (converting binary dumps
//                      first if needed) — the paper's gprof-text path
//   --merge            merge phases with identical site functions
//   --silhouette       select k by silhouette instead of the elbow
//   --standardize      z-score feature columns before clustering
//   --threshold <f>    coverage threshold for site selection (default .95)
//   --kmax <n>         upper bound of the k sweep (default 8)
//   --threads <n>      analysis threads: 0 = hardware concurrency
//                      (default), 1 = serial; results are identical at
//                      any value, only wall time changes
//   --simd <tier>      distance-kernel tier: auto (default, best the
//                      CPU supports), avx2, neon, or scalar; every
//                      tier is bit-identical, only wall time changes
//   --fp32             compute the pairwise-distance cache in float
//                      (faster, half the memory; results may diverge
//                      from the fp64 engine — opt-in, outside the
//                      determinism contract)
//   --fp32-verify      with --fp32, also build the fp64 cache and
//                      report the max relative divergence
//   --lift <file>      lift sites using a binary call-graph snapshot
//   --csv <file>       also write the per-interval feature matrix as CSV
//   --online           additionally replay the dumps through the
//                      online tracker and print the transition model
//   --streaming        use the bounded streaming tracker for the
//                      --online replay (hash-sketched features, EWMA
//                      centroids, online merges); implies --online
//   --sketch-width <n> feature sketch width with --streaming
//                      (default 256)

#include "cluster/simd/simd.hpp"
#include "core/fastphase.hpp"
#include "core/lift.hpp"
#include "core/online.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/transitions.hpp"
#include "gmon/callgraph.hpp"
#include "gmon/scanner.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace incprof;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <dump_dir> [--text] [--merge] [--silhouette] [--online] "
               "[--streaming] [--sketch-width n] "
               "[--standardize] [--threshold f] [--kmax n] [--threads n] "
               "[--simd auto|avx2|neon|scalar] [--fp32] [--fp32-verify] "
               "[--lift callgraph.bin] [--csv intervals.csv] "
               "[--quiet] [--verbose]\n",
               argv0);
  return 2;
}

void write_intervals_csv(const core::IntervalData& data,
                         const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    util::log_error("cannot write " + path);
    return;
  }
  util::CsvWriter w(os);
  std::vector<std::string> header{"interval"};
  for (const auto& name : data.function_names()) {
    header.push_back(name + "_self_s");
    header.push_back(name + "_calls");
  }
  w.row(header);
  for (std::size_t i = 0; i < data.num_intervals(); ++i) {
    std::vector<std::string> row{std::to_string(i)};
    for (std::size_t f = 0; f < data.num_functions(); ++f) {
      row.push_back(util::format_fixed(data.self_seconds().at(i, f), 6));
      row.push_back(util::format_fixed(data.calls().at(i, f), 0));
    }
    w.row(row);
  }
  util::log_info("interval matrix written to " + path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string dump_dir = argv[1];

  core::PipelineConfig cfg;
  core::OnlineConfig online_cfg;
  std::string lift_path;
  std::string csv_path;
  bool online = false;
  util::set_log_level(util::LogLevel::kInfo);
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--text") == 0) {
      cfg.text_round_trip = true;
    } else if (std::strcmp(arg, "--merge") == 0) {
      cfg.merge_phases = true;
    } else if (std::strcmp(arg, "--silhouette") == 0) {
      cfg.detector.selection = cluster::KSelection::kSilhouette;
    } else if (std::strcmp(arg, "--standardize") == 0) {
      cfg.features.standardize = true;
    } else if (std::strcmp(arg, "--threshold") == 0 && i + 1 < argc) {
      cfg.selector.coverage_threshold = std::atof(argv[++i]);
    } else if (std::strcmp(arg, "--kmax") == 0 && i + 1 < argc) {
      std::int64_t kmax = 0;
      if (!util::parse_int(argv[++i], 1, 1024, kmax)) {
        std::fprintf(stderr,
                     "--kmax: invalid value '%s' (expected integer in "
                     "[1, 1024])\n",
                     argv[i]);
        return 2;
      }
      cfg.detector.k_max = static_cast<std::size_t>(kmax);
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      std::int64_t threads = 0;
      if (!util::parse_int(argv[++i], 0, 1024, threads)) {
        std::fprintf(stderr,
                     "--threads: invalid value '%s' (expected integer in "
                     "[0, 1024]; 0 = hardware concurrency)\n",
                     argv[i]);
        return 2;
      }
      cfg.threads = static_cast<std::size_t>(threads);
    } else if (std::strcmp(arg, "--simd") == 0 && i + 1 < argc) {
      cluster::simd::Tier tier;
      if (!cluster::simd::parse_tier(argv[++i], tier)) {
        std::fprintf(stderr,
                     "--simd: invalid tier '%s' (expected auto, avx2, "
                     "neon, or scalar)\n",
                     argv[i]);
        return 2;
      }
      if (!cluster::simd::set_active_tier(tier)) {
        std::fprintf(stderr,
                     "--simd: tier '%s' is not supported on this CPU "
                     "(detected: %s)\n",
                     argv[i],
                     cluster::simd::tier_name(cluster::simd::detected_tier()));
        return 2;
      }
    } else if (std::strcmp(arg, "--fp32") == 0) {
      cfg.fp32_distance = true;
    } else if (std::strcmp(arg, "--fp32-verify") == 0) {
      cfg.fp32_distance = true;
      cfg.fp32_verify = true;
    } else if (std::strcmp(arg, "--lift") == 0 && i + 1 < argc) {
      lift_path = argv[++i];
    } else if (std::strcmp(arg, "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(arg, "--online") == 0) {
      online = true;
    } else if (std::strcmp(arg, "--streaming") == 0) {
      online = true;
      online_cfg.streaming = true;
    } else if (std::strcmp(arg, "--sketch-width") == 0 && i + 1 < argc) {
      std::int64_t width = 0;
      if (!util::parse_int(argv[++i], 1, 1 << 20, width)) {
        std::fprintf(stderr,
                     "--sketch-width: invalid value '%s' (expected "
                     "integer in [1, %d])\n",
                     argv[i], 1 << 20);
        return 2;
      }
      online_cfg.sketch_width = static_cast<std::size_t>(width);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      util::set_log_level(util::LogLevel::kError);
    } else if (std::strcmp(arg, "--verbose") == 0) {
      util::set_log_level(util::LogLevel::kDebug);
    } else {
      return usage(argv[0]);
    }
  }

  try {
    const core::PhaseAnalysis analysis =
        core::analyze_dump_dir(dump_dir, cfg);

    std::printf("%zu intervals, %zu profiled functions, total self time "
                "%.1f s\n\n",
                analysis.intervals.num_intervals(),
                analysis.intervals.num_functions(),
                analysis.intervals.total_self_seconds());
    std::printf("%s\n\n",
                core::diagnose_fast_phases(analysis.intervals).summary()
                    .c_str());
    std::printf("%s\n", core::render_k_sweep(analysis.detection.sweep,
                                             analysis.chosen_sweep_index)
                            .c_str());
    std::printf("%s\n",
                core::render_phase_summary(analysis.sites).c_str());

    core::SiteSelectionResult sites = analysis.sites;
    if (!lift_path.empty()) {
      std::ifstream is(lift_path, std::ios::binary);
      if (!is) {
        util::log_error("cannot read " + lift_path);
        return 1;
      }
      const std::string bytes((std::istreambuf_iterator<char>(is)),
                              std::istreambuf_iterator<char>());
      const auto graph = gmon::decode_call_graph(bytes);
      const core::LiftResult lifted = core::lift_sites(sites, graph);
      for (const auto& d : lifted.decisions) {
        std::printf("lifted (phase %zu): %s -> %s\n", d.phase,
                    d.original.c_str(), d.lifted_to.c_str());
      }
      sites = lifted.sites;
    }
    std::printf("%s\n",
                core::render_site_table(dump_dir, sites, {}).c_str());

    if (!csv_path.empty()) {
      write_intervals_csv(analysis.intervals, csv_path);
    }

    if (online) {
      auto dumps = gmon::load_binary_dumps(dump_dir);
      // The offline tool replays bounded sessions: size the streaming
      // window to cover the whole replay so the transition model sees
      // every interval.
      online_cfg.assignment_window =
          std::max<std::size_t>(online_cfg.assignment_window, dumps.size());
      core::OnlinePhaseTracker tracker(online_cfg);
      for (auto& snap : dumps) tracker.observe(std::move(snap));
      // Model over phase *slots*: streaming merges keep historical slot
      // ids in the assignment stream.
      const auto model = core::PhaseTransitionModel::from_assignments(
          tracker.recent_assignments(), tracker.num_phase_slots());
      std::printf("streaming replay (%s): %zu phases, %zu transitions",
                  online_cfg.streaming ? "sketched" : "exact",
                  tracker.num_phases(), model.num_transitions());
      if (online_cfg.streaming) {
        std::printf(", sketch width %zu, DB %.3f, ~%zu KiB state",
                    online_cfg.sketch_width, tracker.davies_bouldin(),
                    tracker.state_bytes() / 1024);
      }
      std::printf("\n%s\n", model.render().c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
