// gmon2text — the "invoke the gprof command line tool to convert the
// data into standard gprof textual reports" step (paper, Section IV) as
// a standalone utility: converts every binary gmon-NNNNNN.out dump in a
// directory to a flat-NNNNNN.txt gprof-style report next to it, or
// prints a single dump's report to stdout.
//
// Usage:
//   gmon2text <dump_dir>            convert all dumps in the directory
//   gmon2text <gmon-file>           print one dump's flat profile

#include "gmon/binary_io.hpp"
#include "gmon/flat_text.hpp"
#include "gmon/scanner.hpp"
#include "util/log.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

using namespace incprof;

int main(int argc, char** argv) {
  util::set_log_level(util::LogLevel::kInfo);
  const char* target_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quiet") == 0) {
      util::set_log_level(util::LogLevel::kError);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      util::set_log_level(util::LogLevel::kDebug);
    } else if (target_arg == nullptr) {
      target_arg = argv[i];
    } else {
      target_arg = nullptr;
      break;
    }
  }
  if (target_arg == nullptr) {
    std::fprintf(stderr, "usage: %s <dump_dir | gmon-file> [--quiet]\n",
                 argv[0]);
    return 2;
  }
  const std::filesystem::path target = target_arg;
  try {
    if (std::filesystem::is_directory(target)) {
      util::log_info("converting dumps in " + target.string());
      const std::size_t n = gmon::convert_dumps_to_text(
          target, gmon::FlatTextOptions{}.sample_period_ns);
      std::printf("converted %zu dumps in %s\n", n,
                  target.string().c_str());
      return n > 0 ? 0 : 1;
    }
    const gmon::ProfileSnapshot snap = gmon::read_binary_file(target);
    std::fputs(gmon::format_flat_profile(snap).c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
