// incprof_lint: the repo's concurrency/style gate. A deliberately
// libclang-free, regex-grade scanner over src/ that enforces the
// invariants the thread-safety annotations rely on:
//
//   bare-mutex   no std::mutex / lock_guard / unique_lock /
//                condition_variable outside util/thread_annotations.hpp
//                — everything must go through util::Mutex so Clang's
//                thread-safety analysis can see every acquisition.
//   detach       no zero-argument .detach() calls: a detached thread
//                outlives stop()/join accounting and is unprovable.
//                (Session::detach(now_ns) takes an argument and is a
//                different, resumable-session concept — not matched.)
//   metric-name  every literal registered via counter("...") /
//                gauge("...") / histogram("...") matches
//                [a-z_]+(\{.*\})?, keeping the Prometheus exposition
//                valid without per-name escaping.
//   naked-new    no naked `new` / `malloc(` — ownership goes through
//                make_unique/make_shared/containers.
//
// False positives are silenced in place with a trailing
//   // incprof-lint: allow(<rule>)
// comment on the offending line. Exit status: 0 when clean, 1 when any
// finding is reported, 2 on usage/IO errors.
//
// Usage: incprof_lint [repo-root]    (default: .)
//        incprof_lint --self-test    (prove each rule fires on a
//                                     seeded violation; exits non-zero
//                                     if any rule failed to fire)

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string detail;
};

/// Per-line views of one translation unit. `code` has comments and
/// string/char literals blanked (structure preserved so columns still
/// line up); `no_comments` keeps the literals, for the metric-name
/// rule which must read them.
struct FileViews {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> no_comments;
};

/// One-pass lexer: good enough C++ tokenization to blank comments,
/// string literals ("...", with escapes), char literals and raw
/// strings (R"delim(...)delim"), all of which may span lines.
FileViews make_views(const std::string& text) {
  enum class State { kCode, kLineComment, kBlockComment, kString,
                     kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the )delim" terminator
  std::string line_raw, line_code, line_nc;
  FileViews views;

  auto flush_line = [&] {
    views.raw.push_back(line_raw);
    views.code.push_back(line_code);
    views.no_comments.push_back(line_nc);
    line_raw.clear();
    line_code.clear();
    line_nc.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    line_raw.push_back(c);
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          line_code += ' ';
          line_nc += ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          line_raw.push_back(next);
          line_code += "  ";
          line_nc += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string? The R must directly precede the quote and not
          // be part of an identifier (LR"..." etc. treated the same).
          std::size_t j = line_code.size();
          if (j >= 1 && line_code[j - 1] == 'R' &&
              (j < 2 || (!std::isalnum(static_cast<unsigned char>(
                             line_code[j - 2])) &&
                         line_code[j - 2] != '_'))) {
            state = State::kRawString;
            raw_delim = ")";
            for (std::size_t k = i + 1;
                 k < text.size() && text[k] != '(' && text[k] != '\n';
                 ++k) {
              raw_delim.push_back(text[k]);
            }
            raw_delim.push_back('"');
          } else {
            state = State::kString;
          }
          line_code.push_back('"');
          line_nc.push_back('"');
        } else if (c == '\'') {
          state = State::kChar;
          line_code.push_back('\'');
          line_nc.push_back('\'');
        } else {
          line_code.push_back(c);
          line_nc.push_back(c);
        }
        break;
      case State::kLineComment:
        line_code += ' ';
        line_nc += ' ';
        break;
      case State::kBlockComment:
        line_code += ' ';
        line_nc += ' ';
        if (c == '*' && next == '/') {
          state = State::kCode;
          line_raw.push_back(next);
          line_code += ' ';
          line_nc += ' ';
          ++i;
        }
        break;
      case State::kString:
        line_nc.push_back(c);
        if (c == '\\' && next != '\0') {
          line_raw.push_back(next);
          line_nc.push_back(next);
          line_code += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          line_code.push_back('"');
        } else {
          line_code.push_back(' ');
        }
        break;
      case State::kChar:
        line_nc.push_back(c);
        if (c == '\\' && next != '\0') {
          line_raw.push_back(next);
          line_nc.push_back(next);
          line_code += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          line_code.push_back('\'');
        } else {
          line_code.push_back(' ');
        }
        break;
      case State::kRawString:
        line_nc.push_back(c);
        line_code.push_back(c == '"' ? '"' : ' ');
        if (c == raw_delim.back() && line_raw.size() >= raw_delim.size() &&
            line_raw.compare(line_raw.size() - raw_delim.size(),
                             raw_delim.size(), raw_delim) == 0) {
          state = State::kCode;
        }
        break;
    }
  }
  flush_line();
  return views;
}

bool suppressed(const std::string& raw_line, std::string_view rule) {
  const std::string marker =
      "incprof-lint: allow(" + std::string(rule) + ")";
  return raw_line.find(marker) != std::string::npos;
}

const std::regex kBareMutexRe(
    R"(std\s*::\s*(recursive_mutex|recursive_timed_mutex|timed_mutex|shared_mutex|shared_timed_mutex|mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable_any|condition_variable)\b)");
const std::regex kDetachRe(R"((\.|->)\s*detach\s*\(\s*\))");
const std::regex kMetricCallRe(
    R"(\b(counter|gauge|histogram)\s*\(\s*"((?:[^"\\]|\\.)*)\")");
const std::regex kMetricNameRe(R"([a-z_]+(\{.*\})?)");
const std::regex kNakedNewRe(R"(\bnew\b)");
const std::regex kMallocRe(R"(\b(malloc|calloc|realloc|free)\s*\()");

void lint_file(const std::string& display_path, const FileViews& views,
               bool is_annotations_header,
               std::vector<Finding>& findings) {
  for (std::size_t n = 0; n < views.code.size(); ++n) {
    const std::string& raw = views.raw[n];
    const std::string& code = views.code[n];
    const std::string& nc = views.no_comments[n];
    const std::size_t line_no = n + 1;
    std::smatch m;

    if (!is_annotations_header &&
        std::regex_search(code, m, kBareMutexRe) &&
        !suppressed(raw, "bare-mutex")) {
      findings.push_back(
          {display_path, line_no, "bare-mutex",
           "use util::Mutex / util::MutexLock / util::CondVar from "
           "util/thread_annotations.hpp instead of std::" +
               m[1].str()});
    }

    if (std::regex_search(code, m, kDetachRe) &&
        !suppressed(raw, "detach")) {
      findings.push_back({display_path, line_no, "detach",
                          "detached threads escape join accounting; "
                          "track and join the thread instead"});
    }

    // Metric names live in string literals, so match against the
    // comment-stripped (literal-preserving) view.
    for (auto it = std::sregex_iterator(nc.begin(), nc.end(),
                                        kMetricCallRe);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[2].str();
      if (!std::regex_match(name, kMetricNameRe) &&
          !suppressed(raw, "metric-name")) {
        findings.push_back(
            {display_path, line_no, "metric-name",
             "metric name \"" + name +
                 "\" does not match [a-z_]+(\\{.*\\})?"});
      }
    }

    if ((std::regex_search(code, m, kNakedNewRe) ||
         std::regex_search(code, m, kMallocRe)) &&
        !suppressed(raw, "naked-new")) {
      findings.push_back({display_path, line_no, "naked-new",
                          "allocate through make_unique/make_shared "
                          "or a container"});
    }
  }
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

int lint_tree(const fs::path& root) {
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::cerr << "incprof_lint: no src/ directory under " << root
              << "\n";
    return 2;
  }
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "incprof_lint: cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string display =
        fs::relative(path, root).generic_string();
    const bool is_annotations_header =
        display == "src/util/thread_annotations.hpp";
    lint_file(display, make_views(buf.str()), is_annotations_header,
              findings);
  }
  for (const Finding& f : findings) {
    std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.detail << "\n";
  }
  if (findings.empty()) {
    std::cout << "incprof_lint: " << files.size() << " files clean\n";
    return 0;
  }
  std::cerr << "incprof_lint: " << findings.size() << " finding(s) in "
            << files.size() << " files\n";
  return 1;
}

/// Each rule must fire on its seeded violation and stay silent on the
/// idiomatic replacement — the lint gate proves itself before it is
/// allowed to gate anything.
int self_test() {
  struct Case {
    const char* rule;       // expected rule, "" = expect clean
    const char* snippet;
  };
  const Case cases[] = {
      {"bare-mutex", "std::mutex mu_;\n"},
      {"bare-mutex", "std::lock_guard lock(mu_);\n"},
      {"bare-mutex", "std::condition_variable cv_;\n"},
      {"", "util::Mutex mu_;\nutil::MutexLock lock(mu_);\n"},
      {"", "// std::mutex in a comment is fine\n"},
      {"", "const char* s = \"std::mutex\";\n"},
      {"detach", "worker.detach();\n"},
      {"detach", "thread_->detach( );\n"},
      {"", "session->detach(obs::now_ns());\n"},  // resumable session
      {"metric-name", "registry.counter(\"Bad-Name\").add();\n"},
      {"metric-name", "registry.gauge(\"camelCase\").set(1);\n"},
      {"", "registry.counter(\"frames_received\").add();\n"},
      {"", "registry.histogram(\"frame_stage_ns\").record(1);\n"},
      {"naked-new", "auto* p = new Widget();\n"},
      {"naked-new", "void* p = malloc(64);\n"},
      {"", "auto p = std::make_unique<Widget>();\n"},
      {"", "std::mutex mu_;  // incprof-lint: allow(bare-mutex)\n"},
  };
  int failures = 0;
  for (const Case& c : cases) {
    std::vector<Finding> findings;
    lint_file("<self-test>", make_views(c.snippet), false, findings);
    const bool flagged =
        !findings.empty() && findings.front().rule == c.rule;
    const bool ok = *c.rule == '\0' ? findings.empty() : flagged;
    if (!ok) {
      ++failures;
      std::cerr << "self-test FAILED for snippet: " << c.snippet
                << "  expected "
                << (*c.rule == '\0' ? std::string("clean")
                                    : std::string(c.rule))
                << ", got "
                << (findings.empty() ? std::string("clean")
                                     : findings.front().rule)
                << "\n";
    }
  }
  if (failures == 0) {
    std::cout << "incprof_lint: self-test passed ("
              << sizeof(cases) / sizeof(cases[0]) << " cases)\n";
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::cerr << "usage: incprof_lint [repo-root | --self-test]\n";
    return 2;
  }
  const std::string arg = argc == 2 ? argv[1] : ".";
  if (arg == "--self-test") return self_test();
  if (arg == "--help" || arg == "-h") {
    std::cout << "usage: incprof_lint [repo-root | --self-test]\n";
    return 0;
  }
  return lint_tree(fs::path(arg));
}
