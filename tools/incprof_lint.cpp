// incprof_lint v2: the repo's static-analysis gate, built on the
// src/analysis library (lexer -> scope/lock tracker -> rules). Still
// deliberately libclang-free; DESIGN §10 documents what that buys and
// what it costs. Eight rules:
//
//   bare-mutex       no std::mutex / lock_guard / unique_lock /
//                    condition_variable outside
//                    util/thread_annotations.hpp — everything goes
//                    through util::Mutex so Clang's thread-safety
//                    analysis can see every acquisition.
//   detach           no zero-argument .detach(): a detached thread
//                    outlives stop()/join accounting.
//   metric-name      every literal registered via counter("...") /
//                    gauge("...") / histogram("...") matches
//                    [a-z_][a-z0-9_]*(\{.*\})?.
//   naked-new        no naked `new` / `malloc(` — ownership goes
//                    through make_unique/make_shared/containers.
//   lock-order       every util::MutexLock acquisition names a mutex
//                    declared in src/analysis/lock_order.txt, and
//                    nested acquisitions follow its partial order
//                    (the machine-readable DESIGN §5.3 hierarchy).
//   lock-across-io   no blocking call (send/recv/read/write/poll/
//                    select/accept/connect/sleep_for/flush/join)
//                    inside a live lock region.
//   determinism      src/cluster + src/core must not read wall
//                    clocks, process entropy, or the environment
//                    (random_device, rand(, time(, system_clock,
//                    getenv) — the §6 replay contract.
//   metric-registry  cross-file: metric/span names keep one type,
//                    the fleet_ prefix stays reserved for the
//                    gateway's merged exposition, and every metric
//                    cited in README.md / DESIGN.md exists in code.
//
// Scans src/, tools/ and tests/ with per-directory profiles (see
// src/analysis/analyzer.hpp); the seeded fixtures under
// tests/lint_seed and tests/analysis/corpus are skipped unless passed
// as the root themselves. False positives are silenced in place with
//   // incprof-lint: allow(<rule>)
// on the offending line. Exit status: 0 clean, 1 findings, 2 on
// usage/IO errors.
//
// Usage: incprof_lint [repo-root]
//            [--format text|json|sarif]
//            [--rules r1,r2,...]
//            [--baseline FILE] [--write-baseline FILE]
//        incprof_lint --self-test

#include <algorithm>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/lexer.hpp"
#include "analysis/lock_order.hpp"
#include "analysis/rules.hpp"
#include "analysis/scope.hpp"

namespace {

namespace analysis = incprof::analysis;

// ---------------------------------------------------------------------------
// Self-test: every rule must fire on its seeded violation, stay silent
// on the idiomatic replacement, and — unlike v1, which only looked at
// the first finding's rule — produce EXACTLY the expected finding set.

struct Expected {
  std::size_t line;
  const char* rule;
};

struct Case {
  const char* name;
  const char* path;      // pseudo repo-relative path; drives the profile
  const char* snippet;
  const char* manifest;  // lock-order manifest; nullptr = none loaded
  std::vector<Expected> expect;
};

const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      // --- bare-mutex -----------------------------------------------------
      {"bare-mutex/mutex", "src/core/selftest.cpp", "std::mutex mu_;\n",
       nullptr, {{1, "bare-mutex"}}},
      {"bare-mutex/lock_guard", "src/core/selftest.cpp",
       "std::lock_guard lock(mu_);\n", nullptr, {{1, "bare-mutex"}}},
      {"bare-mutex/condvar", "src/core/selftest.cpp",
       "std::condition_variable cv_;\n", nullptr, {{1, "bare-mutex"}}},
      {"bare-mutex/wrapped-clean", "src/core/selftest.cpp",
       "util::Mutex mu_;\nutil::MutexLock lock(mu_);\n", "leaf mu_\n", {}},
      {"bare-mutex/comment-clean", "src/core/selftest.cpp",
       "// std::mutex in a comment is fine\n", nullptr, {}},
      {"bare-mutex/string-clean", "src/core/selftest.cpp",
       "const char* s = \"std::mutex\";\n", nullptr, {}},
      {"bare-mutex/allow", "src/core/selftest.cpp",
       "std::mutex mu_;  // incprof-lint: allow(bare-mutex)\n", nullptr,
       {}},
      {"bare-mutex/annotations-header-exempt",
       "src/util/thread_annotations.hpp", "std::mutex raw_;\n", nullptr,
       {}},
      // The C++14 digit-separator regression: the v1 lexer treated the
      // ' in 10'000 as the start of a char literal and swallowed the
      // rest of the file, hiding the violation on the next line.
      {"lexer/digit-separator", "src/core/selftest.cpp",
       "long long budget = 10'000;\nstd::mutex late_mu_;\n", nullptr,
       {{2, "bare-mutex"}}},
      {"lexer/char-literal-still-blanked", "src/core/selftest.cpp",
       "char c = 'x'; std::mutex m_;\n", nullptr, {{1, "bare-mutex"}}},
      {"lexer/prefixed-char-literal", "src/core/selftest.cpp",
       "auto q = U'\"'; std::mutex m_;\n", nullptr, {{1, "bare-mutex"}}},
      // --- detach ---------------------------------------------------------
      {"detach/dot", "src/core/selftest.cpp", "worker.detach();\n",
       nullptr, {{1, "detach"}}},
      {"detach/arrow", "src/core/selftest.cpp",
       "thread_->detach( );\n", nullptr, {{1, "detach"}}},
      {"detach/session-clean", "src/core/selftest.cpp",
       "session->detach(obs::now_ns());\n", nullptr, {}},
      // --- metric-name ----------------------------------------------------
      {"metric-name/dash", "src/core/selftest.cpp",
       "registry.counter(\"Bad-Name\").add();\n", nullptr,
       {{1, "metric-name"}}},
      {"metric-name/camel", "src/core/selftest.cpp",
       "registry.gauge(\"camelCase\").set(1);\n", nullptr,
       {{1, "metric-name"}}},
      {"metric-name/leading-digit", "src/core/selftest.cpp",
       "registry.counter(\"2fast\").add();\n", nullptr,
       {{1, "metric-name"}}},
      {"metric-name/digits-clean", "src/core/selftest.cpp",
       "registry.counter(\"shared_0\").add();\n", nullptr, {}},
      {"metric-name/labels-clean", "src/core/selftest.cpp",
       "registry.histogram(\"frame_stage_ns\").record(1);\n", nullptr,
       {}},
      // --- naked-new ------------------------------------------------------
      {"naked-new/new", "src/core/selftest.cpp",
       "auto* p = new Widget();\n", nullptr, {{1, "naked-new"}}},
      {"naked-new/malloc", "src/core/selftest.cpp",
       "void* p = malloc(64);\n", nullptr, {{1, "naked-new"}}},
      {"naked-new/make-unique-clean", "src/core/selftest.cpp",
       "auto p = std::make_unique<Widget>();\n", nullptr, {}},
      {"naked-new/include-clean", "src/core/selftest.cpp",
       "#include <new>\n", nullptr, {}},
      {"naked-new/tests-profile-clean", "tests/selftest.cpp",
       "auto* p = new Widget();\n", nullptr, {}},
      // --- determinism ----------------------------------------------------
      {"determinism/random-device", "src/cluster/selftest.cpp",
       "auto seed = std::random_device{}();\n", nullptr,
       {{1, "determinism"}}},
      {"determinism/srand-time", "src/cluster/selftest.cpp",
       "std::srand(time(nullptr));\n", nullptr, {{1, "determinism"}}},
      {"determinism/system-clock", "src/core/selftest.cpp",
       "auto t = std::chrono::system_clock::now();\n", nullptr,
       {{1, "determinism"}}},
      {"determinism/getenv", "src/cluster/selftest.cpp",
       "const char* home = getenv(\"HOME\");\n", nullptr,
       {{1, "determinism"}}},
      {"determinism/fast-math-pragma", "src/cluster/selftest.cpp",
       "#pragma float_control(precise, off)\n", nullptr,
       {{1, "determinism"}}},
      {"determinism/fast-math-optimize", "src/cluster/selftest.cpp",
       "__attribute__((optimize(\"fast-math\"))) double hot();\n", nullptr,
       {{1, "determinism"}}},
      {"determinism/comment-clean", "src/cluster/selftest.cpp",
       "// system_clock would break replay here\n", nullptr, {}},
      {"determinism/fast-math-comment-clean", "src/cluster/selftest.cpp",
       "// -ffast-math must never be enabled for this TU\n", nullptr, {}},
      {"determinism/rng-clean", "src/cluster/selftest.cpp",
       "util::Rng rng(seed);\n", nullptr, {}},
      {"determinism/outside-kernel-clean", "src/service/selftest.cpp",
       "auto t = std::chrono::system_clock::now();\n", nullptr, {}},
      {"determinism/tools-clean", "tools/selftest.cpp",
       "auto t = std::chrono::system_clock::now();\n", nullptr, {}},
      // --- lock-order -----------------------------------------------------
      {"lock-order/in-order-clean", "src/service/selftest.cpp",
       "void Pipeline::step() {\n"
       "  util::MutexLock a(call_mu_);\n"
       "  util::MutexLock b(mu_);\n"
       "}\n",
       "order Pipeline::call_mu_ > Pipeline::mu_\n", {}},
      {"lock-order/reversed", "src/service/selftest.cpp",
       "void Pipeline::step() {\n"
       "  util::MutexLock b(mu_);\n"
       "  util::MutexLock a(call_mu_);\n"
       "}\n",
       "order Pipeline::call_mu_ > Pipeline::mu_\n",
       {{3, "lock-order"}}},
      {"lock-order/leaf-violated", "src/service/selftest.cpp",
       "void Sink::flush_all() {\n"
       "  util::MutexLock l(mu_);\n"
       "  util::MutexLock m(aux_mu_);\n"
       "}\n",
       "leaf Sink::mu_\nleaf Sink::aux_mu_\n", {{3, "lock-order"}}},
      {"lock-order/unknown-mutex", "src/service/selftest.cpp",
       "void Sink::flush_all() {\n"
       "  util::MutexLock l(rogue_mu_);\n"
       "}\n",
       "leaf Sink::mu_\n", {{2, "lock-order"}}},
      {"lock-order/in-class-key", "src/service/selftest.cpp",
       "class Handler {\n"
       "  void bump() {\n"
       "    util::MutexLock lock(mu_);\n"
       "  }\n"
       "};\n",
       "leaf Handler::mu_\n", {}},
      {"lock-order/file-scope-key", "src/util/selftest.cpp",
       "util::Mutex g_sink_mu;\n"
       "void log_line() {\n"
       "  util::MutexLock lock(g_sink_mu);\n"
       "}\n",
       "leaf g_sink_mu\n", {}},
      // The server.cpp reaper pattern: unlock before taking the other
      // leaf, re-lock after — two disjoint regions, no nesting.
      {"lock-order/unlock-splits-region", "src/service/selftest.cpp",
       "void Server::reaper_loop() {\n"
       "  util::MutexLock lock(reaper_mu_);\n"
       "  lock.unlock();\n"
       "  {\n"
       "    util::MutexLock handlers(handlers_mu_);\n"
       "    prune();\n"
       "  }\n"
       "  lock.lock();\n"
       "}\n",
       "leaf Server::reaper_mu_\nleaf Server::handlers_mu_\n", {}},
      {"lock-order/no-unlock-nests", "src/service/selftest.cpp",
       "void Server::reaper_loop() {\n"
       "  util::MutexLock lock(reaper_mu_);\n"
       "  {\n"
       "    util::MutexLock handlers(handlers_mu_);\n"
       "    prune();\n"
       "  }\n"
       "}\n",
       "leaf Server::reaper_mu_\nleaf Server::handlers_mu_\n",
       {{4, "lock-order"}}},
      {"lock-order/allow", "src/service/selftest.cpp",
       "void Sink::flush_all() {\n"
       "  util::MutexLock l(mu_);\n"
       "  util::MutexLock m(aux_mu_);  // incprof-lint: "
       "allow(lock-order)\n"
       "}\n",
       "leaf Sink::mu_\nleaf Sink::aux_mu_\n", {}},
      // --- lock-across-io -------------------------------------------------
      {"lock-across-io/send", "src/service/selftest.cpp",
       "void Worker::run() {\n"
       "  util::MutexLock lock(mu_);\n"
       "  ::send(fd_, buf, n, 0);\n"
       "}\n",
       "leaf Worker::mu_\n", {{3, "lock-across-io"}}},
      {"lock-across-io/join", "src/service/selftest.cpp",
       "void Worker::stop() {\n"
       "  util::MutexLock lock(mu_);\n"
       "  t.join();\n"
       "}\n",
       "leaf Worker::mu_\n", {{3, "lock-across-io"}}},
      {"lock-across-io/release-first-clean", "src/service/selftest.cpp",
       "void Worker::run() {\n"
       "  {\n"
       "    util::MutexLock lock(mu_);\n"
       "    n = fill(buf);\n"
       "  }\n"
       "  ::send(fd_, buf, n, 0);\n"
       "}\n",
       "leaf Worker::mu_\n", {}},
      {"lock-across-io/unlock-toggle-clean", "src/service/selftest.cpp",
       "void Worker::run() {\n"
       "  util::MutexLock lock(mu_);\n"
       "  prepare();\n"
       "  lock.unlock();\n"
       "  ::send(fd_, buf, n, 0);\n"
       "  lock.lock();\n"
       "  done_ = true;\n"
       "}\n",
       "leaf Worker::mu_\n", {}},
      {"lock-across-io/allow", "src/service/selftest.cpp",
       "void Worker::run() {\n"
       "  util::MutexLock lock(mu_);\n"
       "  ::send(fd_, buf, n, 0);  // incprof-lint: "
       "allow(lock-across-io)\n"
       "}\n",
       "leaf Worker::mu_\n", {}},
  };
  return kCases;
}

std::vector<analysis::Finding> run_case(const Case& c,
                                        std::string* manifest_error) {
  const analysis::FileViews views = analysis::make_views(c.snippet);
  const analysis::LockAnalysis locks = analysis::analyze_locks(views);
  analysis::LockOrder order;
  bool have_order = false;
  if (c.manifest != nullptr) {
    std::string err;
    order = analysis::LockOrder::parse(c.manifest, &err);
    if (!err.empty()) {
      *manifest_error = err;
    } else {
      have_order = true;
    }
  }
  analysis::FileProfile profile = analysis::profile_for_path(c.path);
  if (!have_order) profile.rules.lock_order = false;

  analysis::FileCheckInput input;
  input.display_path = c.path;
  input.views = &views;
  input.locks = &locks;
  input.order = have_order ? &order : nullptr;
  input.rules = profile.rules;
  input.is_annotations_header =
      std::string(c.path) == "src/util/thread_annotations.hpp";
  std::vector<analysis::Finding> findings;
  analysis::check_file(input, findings);
  return findings;
}

std::string finding_set_string(
    const std::vector<std::pair<std::size_t, std::string>>& set) {
  if (set.empty()) return "clean";
  std::ostringstream os;
  for (std::size_t i = 0; i < set.size(); ++i) {
    os << (i ? ", " : "") << set[i].first << ":" << set[i].second;
  }
  return os.str();
}

/// Cross-file metric-registry self-test: feed pseudo files through the
/// same MetricRegistryCheck the tree scan uses.
struct RegistryCase {
  const char* name;
  std::vector<std::pair<const char*, const char*>> sources;
  std::vector<std::pair<const char*, const char*>> docs;
  // expected findings as (file, line); the rule is always metric-registry
  std::vector<std::pair<const char*, std::size_t>> expect;
};

const std::vector<RegistryCase>& registry_cases() {
  static const std::vector<RegistryCase> kCases = {
      {"registry/cited-and-registered-clean",
       {{"src/obs/a.cpp", "r.counter(\"obs_scrapes\").add();\n"}},
       {{"README.md", "Scrapes show up in `obs_scrapes`.\n"}},
       {}},
      {"registry/type-drift",
       {{"src/obs/a.cpp", "r.counter(\"queue_depth\").add();\n"},
        {"src/obs/b.cpp", "r.gauge(\"queue_depth\").set(3);\n"}},
       {},
       {{"src/obs/b.cpp", 1}}},
      {"registry/span-metric-collision",
       {{"src/prof/a.cpp", "obs::ScopedSpan span(\"session.reap\");\n"},
        {"src/prof/b.cpp", "r.counter(\"session.reap\").add();\n"}},
       {},
       {{"src/prof/a.cpp", 1}}},
      {"registry/fleet-prefix-reserved",
       {{"src/core/m.cpp", "r.counter(\"fleet_rogue_total\").add();\n"}},
       {},
       {{"src/core/m.cpp", 1}}},
      {"registry/doc-drift",
       {{"src/obs/a.cpp", "r.counter(\"obs_scrapes\").add();\n"}},
       {{"DESIGN.md",
         "Intro line.\nWatch `ghost_metric_total` for trouble.\n"}},
       {{"DESIGN.md", 2}}},
      {"registry/fleet-synthesis-and-derivation-clean",
       {{"src/service/a.cpp",
         "r.histogram(\"frame_stage_ns\").record(1);\n"},
        {"src/fleet/g.cpp",
         "out += gauge_line(\"fleet_shards\", n);\n"}},
       {{"README.md",
         "The gateway exposes `fleet_shards` and "
         "`fleet_frame_stage_ns_count`.\n"}},
       {}},
      {"registry/doc-labels-clean",
       {{"src/service/a.cpp",
         "r.histogram(\"frame_stage_ns\").record(1);\n"}},
       {{"DESIGN.md",
         "Stage cost lands in `frame_stage_ns{stage=\"decode\"}`.\n"}},
       {}},
  };
  return kCases;
}

int self_test() {
  int failures = 0;

  for (const Case& c : cases()) {
    std::string manifest_error;
    const std::vector<analysis::Finding> findings =
        run_case(c, &manifest_error);
    if (!manifest_error.empty()) {
      ++failures;
      std::cerr << "self-test FAILED [" << c.name
                << "]: manifest did not parse: " << manifest_error
                << "\n";
      continue;
    }
    std::vector<std::pair<std::size_t, std::string>> got, want;
    for (const analysis::Finding& f : findings) {
      got.emplace_back(f.line, f.rule);
    }
    for (const Expected& e : c.expect) {
      want.emplace_back(e.line, e.rule);
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    if (got != want) {
      ++failures;
      std::cerr << "self-test FAILED [" << c.name << "]: expected {"
                << finding_set_string(want) << "}, got {"
                << finding_set_string(got) << "}\n";
      for (const analysis::Finding& f : findings) {
        std::cerr << "    " << f.line << ": [" << f.rule << "] "
                  << f.detail << "\n";
      }
    }
  }

  for (const RegistryCase& c : registry_cases()) {
    analysis::MetricRegistryCheck registry;
    for (const auto& [path, text] : c.sources) {
      registry.scan_source(path, analysis::make_views(text));
    }
    for (const auto& [path, text] : c.docs) {
      registry.scan_docs(path, text);
    }
    std::vector<analysis::Finding> findings;
    registry.finish(findings);
    std::vector<std::pair<std::string, std::size_t>> got, want;
    for (const analysis::Finding& f : findings) {
      got.emplace_back(f.file, f.line);
    }
    for (const auto& [file, line] : c.expect) {
      want.emplace_back(file, line);
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    if (got != want) {
      ++failures;
      std::cerr << "self-test FAILED [" << c.name << "]:\n";
      for (const analysis::Finding& f : findings) {
        std::cerr << "    " << f.file << ":" << f.line << ": ["
                  << f.rule << "] " << f.detail << "\n";
      }
      if (findings.empty()) std::cerr << "    (clean)\n";
    }
  }

  if (failures == 0) {
    std::cout << "incprof_lint: self-test passed ("
              << cases().size() + registry_cases().size()
              << " cases)\n";
    return 0;
  }
  std::cerr << "incprof_lint: self-test: " << failures
            << " case(s) failed\n";
  return 1;
}

// ---------------------------------------------------------------------------

int usage(int exit_code) {
  (exit_code == 0 ? std::cout : std::cerr)
      << "usage: incprof_lint [repo-root]\n"
         "           [--format text|json|sarif]\n"
         "           [--rules rule1,rule2,...]\n"
         "           [--baseline FILE] [--write-baseline FILE]\n"
         "       incprof_lint --self-test\n";
  return exit_code;
}

bool read_text_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool root_set = false;
  std::string format = "text";
  std::string baseline_path;
  std::string write_baseline_path;
  analysis::AnalyzeOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "incprof_lint: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--self-test") {
      return self_test();
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else if (arg == "--format") {
      const char* v = value("--format");
      if (v == nullptr) return 2;
      format = v;
      if (format != "text" && format != "json" && format != "sarif") {
        std::cerr << "incprof_lint: unknown format '" << format
                  << "'\n";
        return 2;
      }
    } else if (arg == "--baseline") {
      const char* v = value("--baseline");
      if (v == nullptr) return 2;
      baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = value("--write-baseline");
      if (v == nullptr) return 2;
      write_baseline_path = v;
    } else if (arg == "--rules") {
      const char* v = value("--rules");
      if (v == nullptr) return 2;
      std::istringstream is(v);
      std::string rule;
      while (std::getline(is, rule, ',')) {
        if (rule.empty()) continue;
        const auto& all = analysis::all_rules();
        if (std::find(all.begin(), all.end(), rule) == all.end()) {
          std::cerr << "incprof_lint: unknown rule '" << rule << "'\n";
          return 2;
        }
        options.rules.insert(rule);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "incprof_lint: unknown flag '" << arg << "'\n";
      return usage(2);
    } else if (!root_set) {
      root = arg;
      root_set = true;
    } else {
      return usage(2);
    }
  }

  const analysis::AnalyzeResult result =
      analysis::analyze_tree(root, options);
  if (result.files_scanned == 0 && result.errors.empty()) {
    std::cerr << "incprof_lint: nothing to scan under " << root
              << " (no src/, tools/ or tests/ sources)\n";
    return 2;
  }
  for (const std::string& error : result.errors) {
    std::cerr << "incprof_lint: " << error << "\n";
  }
  if (!result.errors.empty()) return 2;

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << analysis::render_baseline(result.findings);
    if (!out) {
      std::cerr << "incprof_lint: cannot write " << write_baseline_path
                << "\n";
      return 2;
    }
    std::cout << "incprof_lint: wrote " << result.findings.size()
              << " baseline entr"
              << (result.findings.size() == 1 ? "y" : "ies") << " to "
              << write_baseline_path << "\n";
    return 0;
  }

  std::vector<analysis::Finding> findings = result.findings;
  if (!baseline_path.empty()) {
    std::string baseline_text;
    if (!read_text_file(baseline_path, &baseline_text)) {
      std::cerr << "incprof_lint: cannot read baseline "
                << baseline_path << "\n";
      return 2;
    }
    findings = analysis::apply_baseline(findings, baseline_text);
  }

  analysis::AnalyzeResult reported = result;
  reported.findings = findings;
  if (format == "json") {
    std::cout << analysis::format_json(reported);
  } else if (format == "sarif") {
    std::cout << analysis::format_sarif(reported);
  } else {
    for (const analysis::Finding& f : findings) {
      std::cerr << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.detail << "\n";
    }
    if (findings.empty()) {
      std::cout << "incprof_lint: " << result.files_scanned
                << " files clean\n";
    } else {
      std::cerr << "incprof_lint: " << findings.size()
                << " finding(s) in " << result.files_scanned
                << " files\n";
    }
  }
  return findings.empty() ? 0 : 1;
}
