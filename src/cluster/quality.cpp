#include "cluster/quality.hpp"

#include "cluster/distance.hpp"
#include "cluster/distance_cache.hpp"
#include "cluster/simd/simd.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

namespace incprof::cluster {

namespace {

/// Silhouette of point i given its full distance row (row_dist[j] is
/// the Euclidean distance i<->j; the diagonal entry is skipped). The
/// accumulation walks j in index order — the same addition sequence as
/// the historical per-pair loop — so cached, uncached, and batched
/// fills all produce bitwise-identical silhouettes.
double point_silhouette(const std::vector<double>& row_dist, std::size_t n,
                        std::size_t k,
                        const std::vector<std::size_t>& assignments,
                        const std::vector<std::size_t>& sizes,
                        std::size_t i, std::vector<double>& mean_dist) {
  mean_dist.assign(k, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    if (i == j) continue;
    mean_dist[assignments[j]] += row_dist[j];
  }
  const std::size_t ci = assignments[i];
  if (sizes[ci] <= 1) return 0.0;  // singleton: silhouette defined as 0
  const double a = mean_dist[ci] / static_cast<double>(sizes[ci] - 1);
  double b = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < k; ++c) {
    if (c == ci || sizes[c] == 0) continue;
    b = std::min(b, mean_dist[c] / static_cast<double>(sizes[c]));
  }
  const double denom = std::max(a, b);
  return denom > 0.0 ? (b - a) / denom : 0.0;
}

/// `fill(i, row_dist)` writes point i's full Euclidean distance row.
template <typename FillFn>
double mean_silhouette_impl(const FillFn& fill, std::size_t n,
                            const std::vector<std::size_t>& assignments,
                            util::ThreadPool* pool) {
  const std::size_t k =
      1 + *std::max_element(assignments.begin(), assignments.end());
  if (k <= 1 || n <= k) return 0.0;

  std::vector<std::size_t> sizes(k, 0);
  for (auto a : assignments) ++sizes[a];

  std::vector<double> sil(n, 0.0);
  if (pool != nullptr) {
    pool->parallel_for(n, [&](std::size_t i) {
      std::vector<double> row_dist(n);
      std::vector<double> mean_dist;
      fill(i, row_dist);
      sil[i] = point_silhouette(row_dist, n, k, assignments, sizes, i,
                                mean_dist);
    });
  } else {
    std::vector<double> row_dist(n);
    std::vector<double> mean_dist;
    for (std::size_t i = 0; i < n; ++i) {
      fill(i, row_dist);
      sil[i] = point_silhouette(row_dist, n, k, assignments, sizes, i,
                                mean_dist);
    }
  }

  // Serial reduction in row order — the same addition sequence as the
  // historical single-loop implementation, so parallel == serial bitwise.
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sizes[assignments[i]] > 1) total += sil[i];
  }
  return total / static_cast<double>(n);
}

}  // namespace

double mean_silhouette(const Matrix& points,
                       const std::vector<std::size_t>& assignments) {
  return mean_silhouette(points, assignments, nullptr, nullptr);
}

double mean_silhouette(const Matrix& points,
                       const std::vector<std::size_t>& assignments,
                       const DistanceCache* cache, util::ThreadPool* pool) {
  const std::size_t n = points.rows();
  if (assignments.size() != n) {
    throw std::invalid_argument("mean_silhouette: size mismatch");
  }
  if (n == 0) return 0.0;
  if (cache != nullptr && cache->size() == n) {
    return mean_silhouette_impl(
        [cache, n](std::size_t i, std::vector<double>& row_dist) {
          for (std::size_t j = 0; j < n; ++j) row_dist[j] = cache->dist(i, j);
        },
        n, assignments, pool);
  }
  // Uncached: one batched d2 row per point, then the same per-entry
  // sqrt that euclidean() applies.
  std::vector<const double*> row_ptrs(n);
  for (std::size_t j = 0; j < n; ++j) row_ptrs[j] = points.row_ptr(j);
  const simd::BatchKernels& kern = simd::kernels();
  return mean_silhouette_impl(
      [&](std::size_t i, std::vector<double>& row_dist) {
        kern.squared_euclidean(points.row_ptr(i), row_ptrs.data(), n,
                               points.cols(), row_dist.data());
        for (std::size_t j = 0; j < n; ++j) row_dist[j] = std::sqrt(row_dist[j]);
      },
      n, assignments, pool);
}

double adjusted_rand_index(const std::vector<std::size_t>& a,
                           const std::vector<std::size_t>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("adjusted_rand_index: size mismatch");
  }
  const std::size_t n = a.size();
  if (n < 2) return 1.0;

  std::map<std::pair<std::size_t, std::size_t>, double> joint;
  std::map<std::size_t, double> ra, rb;
  for (std::size_t i = 0; i < n; ++i) {
    joint[{a[i], b[i]}] += 1.0;
    ra[a[i]] += 1.0;
    rb[b[i]] += 1.0;
  }
  auto comb2 = [](double x) { return x * (x - 1.0) / 2.0; };
  double sum_joint = 0.0, sum_a = 0.0, sum_b = 0.0;
  for (const auto& [key, cnt] : joint) sum_joint += comb2(cnt);
  for (const auto& [key, cnt] : ra) sum_a += comb2(cnt);
  for (const auto& [key, cnt] : rb) sum_b += comb2(cnt);
  const double total = comb2(static_cast<double>(n));
  const double expected = sum_a * sum_b / total;
  const double max_index = 0.5 * (sum_a + sum_b);
  const double denom = max_index - expected;
  if (denom == 0.0) return 1.0;  // both partitions trivial and identical
  return (sum_joint - expected) / denom;
}

double purity(const std::vector<std::size_t>& predicted,
              const std::vector<std::size_t>& truth) {
  if (predicted.size() != truth.size()) {
    throw std::invalid_argument("purity: size mismatch");
  }
  if (predicted.empty()) return 1.0;
  std::map<std::size_t, std::map<std::size_t, std::size_t>> table;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    ++table[predicted[i]][truth[i]];
  }
  std::size_t correct = 0;
  for (const auto& [cluster, hist] : table) {
    std::size_t best = 0;
    for (const auto& [label, cnt] : hist) best = std::max(best, cnt);
    correct += best;
  }
  return static_cast<double>(correct) /
         static_cast<double>(predicted.size());
}

}  // namespace incprof::cluster
