#include "cluster/kselect.hpp"

#include "cluster/distance_cache.hpp"
#include "cluster/quality.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace incprof::cluster {

namespace {

/// Largest input for which sweep_k builds a DistanceCache on its own:
/// 16384 rows is a ~1 GB condensed buffer, the most we silently spend.
/// Callers with bigger inputs (or tighter budgets) pass their own cache
/// or live with the O(n^2 d) recomputation.
constexpr std::size_t kAutoCacheMaxRows = 16384;

}  // namespace

std::vector<double> KSweep::inertia_curve() const {
  std::vector<double> out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.push_back(e.result.inertia);
  return out;
}

KSweep sweep_k(const Matrix& points, std::size_t k_max,
               const KMeansConfig& base) {
  return sweep_k(points, k_max, base, nullptr, nullptr);
}

KSweep sweep_k(const Matrix& points, std::size_t k_max,
               const KMeansConfig& base, util::ThreadPool* pool,
               const DistanceCache* cache) {
  if (k_max == 0) throw std::invalid_argument("sweep_k: k_max must be >= 1");
  KSweep sweep;
  const std::size_t top = std::min(k_max, points.rows());
  if (top == 0) return sweep;

  DistanceCache local_cache;
  if (cache == nullptr && points.rows() >= 2 &&
      points.rows() <= kAutoCacheMaxRows) {
    local_cache = DistanceCache::build(points, pool);
    cache = &local_cache;
  }

  // Derive every restart's RNG stream serially, in exactly the order the
  // serial path consumes them (fresh Rng(seed) per k, split() in restart
  // order), before anything fans out — the grid can then run the cells
  // in any interleaving without perturbing seeding.
  const std::size_t restarts = std::max<std::size_t>(1, base.n_init);
  std::vector<util::Rng> rngs;
  rngs.reserve(top * restarts);
  for (std::size_t k = 1; k <= top; ++k) {
    util::Rng rng(base.seed);
    for (std::size_t s = 0; s < restarts; ++s) rngs.push_back(rng.split());
  }

  // Fan out the k x restart grid: each cell is one independent restart
  // writing its own slot. Inside a grid task a nested parallel_for runs
  // inline, so passing the pool down is harmless; it only buys extra
  // parallelism on the serial-grid path.
  std::vector<KMeansResult> grid(top * restarts);
  auto run_cell = [&](std::size_t idx) {
    KMeansConfig cfg = base;
    cfg.k = idx / restarts + 1;
    util::Rng rng = rngs[idx];
    grid[idx] = kmeans_run(points, cfg, rng, pool);
  };
  if (pool != nullptr) {
    pool->parallel_for(grid.size(), run_cell);
  } else {
    for (std::size_t idx = 0; idx < grid.size(); ++idx) run_cell(idx);
  }

  // Pick each k's winner by strict `<` in restart order — the same
  // tie-breaking the serial restart loop applies.
  for (std::size_t ki = 0; ki < top; ++ki) {
    std::size_t best = ki * restarts;
    for (std::size_t s = 1; s < restarts; ++s) {
      const std::size_t idx = ki * restarts + s;
      if (grid[idx].inertia < grid[best].inertia) best = idx;
    }
    KSweepEntry entry;
    entry.k = ki + 1;
    entry.result = std::move(grid[best]);
    std::vector<bool> seen(entry.k, false);
    for (auto a : entry.result.assignments) seen[a] = true;
    entry.result.populated_clusters = static_cast<std::size_t>(
        std::count(seen.begin(), seen.end(), true));
    entry.silhouette =
        entry.k >= 2
            ? mean_silhouette(points, entry.result.assignments, cache, pool)
            : 0.0;
    sweep.entries.push_back(std::move(entry));
  }
  return sweep;
}

std::size_t select_elbow(const KSweep& sweep) {
  const auto& es = sweep.entries;
  if (es.empty()) throw std::invalid_argument("select_elbow: empty sweep");

  // A flat curve (WCSS barely improves with k) means one phase. This
  // guard must run before any short-sweep shortcut: returning the last
  // entry unconditionally made a structureless 2-entry sweep report
  // k=2 every time.
  if (es.front().result.inertia - es.back().result.inertia <=
      1e-9 * std::max(std::fabs(es.front().result.inertia), 1.0)) {
    return 0;
  }
  if (es.size() <= 2) return es.size() - 1;

  // WCSS decays roughly geometrically in k for well-separated phases, so
  // the elbow is found on the log curve (the standard kneedle transform
  // for exponential decay); on the linear curve the first one or two
  // drops dominate and finer phase structure is never selected.
  const double floor_val = 1e-12 * std::max(es.front().result.inertia, 1.0);
  auto logy = [&](std::size_t i) {
    return std::log(std::max(es[i].result.inertia, floor_val));
  };

  const double x0 = static_cast<double>(es.front().k);
  const double y0 = logy(0);
  const double x1 = static_cast<double>(es.back().k);
  const double y1 = logy(es.size() - 1);

  const double span = y0 - y1;
  if (span <= 1e-12) {
    // Degenerate on the log curve too: one phase.
    return 0;
  }

  // Distance from each point to the chord (x0,y0)-(x1,y1), with both
  // axes normalized to [0,1] so k steps and log-WCSS are comparable.
  const double dx = x1 - x0;
  double best = -1.0;
  std::size_t besti = 0;
  for (std::size_t i = 0; i < es.size(); ++i) {
    const double xn = (static_cast<double>(es[i].k) - x0) / dx;
    const double yn = (logy(i) - y1) / span;  // 1 at k=1 -> 0 at k_max
    // Chord in normalized space runs (0,1) -> (1,0): x + y - 1 = 0.
    const double dist = (1.0 - xn - yn) / std::sqrt(2.0);
    // Points *below* the chord (convex decreasing curve) have dist > 0.
    if (dist > best) {
      best = dist;
      besti = i;
    }
  }
  return besti;
}

std::size_t select_silhouette(const KSweep& sweep) {
  const auto& es = sweep.entries;
  if (es.empty()) {
    throw std::invalid_argument("select_silhouette: empty sweep");
  }
  double best = 0.0;
  std::size_t besti = 0;  // k = 1 fallback
  for (std::size_t i = 0; i < es.size(); ++i) {
    if (es[i].k < 2) continue;
    if (es[i].silhouette > best) {
      best = es[i].silhouette;
      besti = i;
    }
  }
  return besti;
}

const KSweepEntry& select_k(const KSweep& sweep, KSelection rule) {
  const std::size_t i = rule == KSelection::kElbow
                            ? select_elbow(sweep)
                            : select_silhouette(sweep);
  return sweep.entries[i];
}

}  // namespace incprof::cluster
