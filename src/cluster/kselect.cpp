#include "cluster/kselect.hpp"

#include "cluster/quality.hpp"

#include <cmath>
#include <stdexcept>

namespace incprof::cluster {

std::vector<double> KSweep::inertia_curve() const {
  std::vector<double> out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.push_back(e.result.inertia);
  return out;
}

KSweep sweep_k(const Matrix& points, std::size_t k_max,
               const KMeansConfig& base) {
  if (k_max == 0) throw std::invalid_argument("sweep_k: k_max must be >= 1");
  KSweep sweep;
  const std::size_t top = std::min(k_max, points.rows());
  for (std::size_t k = 1; k <= top; ++k) {
    KMeansConfig cfg = base;
    cfg.k = k;
    KSweepEntry entry;
    entry.k = k;
    entry.result = kmeans(points, cfg);
    entry.silhouette =
        k >= 2 ? mean_silhouette(points, entry.result.assignments) : 0.0;
    sweep.entries.push_back(std::move(entry));
  }
  return sweep;
}

std::size_t select_elbow(const KSweep& sweep) {
  const auto& es = sweep.entries;
  if (es.empty()) throw std::invalid_argument("select_elbow: empty sweep");
  if (es.size() <= 2) return es.size() - 1;

  // WCSS decays roughly geometrically in k for well-separated phases, so
  // the elbow is found on the log curve (the standard kneedle transform
  // for exponential decay); on the linear curve the first one or two
  // drops dominate and finer phase structure is never selected.
  const double floor_val = 1e-12 * std::max(es.front().result.inertia, 1.0);
  auto logy = [&](std::size_t i) {
    return std::log(std::max(es[i].result.inertia, floor_val));
  };

  const double x0 = static_cast<double>(es.front().k);
  const double y0 = logy(0);
  const double x1 = static_cast<double>(es.back().k);
  const double y1 = logy(es.size() - 1);

  const double span = y0 - y1;
  if (es.front().result.inertia - es.back().result.inertia <=
          1e-9 * std::max(std::fabs(es.front().result.inertia), 1.0) ||
      span <= 1e-12) {
    // WCSS barely improves with k: one phase.
    return 0;
  }

  // Distance from each point to the chord (x0,y0)-(x1,y1), with both
  // axes normalized to [0,1] so k steps and log-WCSS are comparable.
  const double dx = x1 - x0;
  double best = -1.0;
  std::size_t besti = 0;
  for (std::size_t i = 0; i < es.size(); ++i) {
    const double xn = (static_cast<double>(es[i].k) - x0) / dx;
    const double yn = (logy(i) - y1) / span;  // 1 at k=1 -> 0 at k_max
    // Chord in normalized space runs (0,1) -> (1,0): x + y - 1 = 0.
    const double dist = (1.0 - xn - yn) / std::sqrt(2.0);
    // Points *below* the chord (convex decreasing curve) have dist > 0.
    if (dist > best) {
      best = dist;
      besti = i;
    }
  }
  return besti;
}

std::size_t select_silhouette(const KSweep& sweep) {
  const auto& es = sweep.entries;
  if (es.empty()) {
    throw std::invalid_argument("select_silhouette: empty sweep");
  }
  double best = 0.0;
  std::size_t besti = 0;  // k = 1 fallback
  for (std::size_t i = 0; i < es.size(); ++i) {
    if (es[i].k < 2) continue;
    if (es[i].silhouette > best) {
      best = es[i].silhouette;
      besti = i;
    }
  }
  return besti;
}

const KSweepEntry& select_k(const KSweep& sweep, KSelection rule) {
  const std::size_t i = rule == KSelection::kElbow
                            ? select_elbow(sweep)
                            : select_silhouette(sweep);
  return sweep.entries[i];
}

}  // namespace incprof::cluster
