// Row-major dense matrix of doubles. This is the interval-by-function
// feature matrix that the phase detector clusters: one row per profiling
// interval, one column per observed function.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace incprof::cluster {

/// Dense row-major matrix. Rows are observations (intervals), columns are
/// features (per-function self seconds). Value semantics throughout.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates from explicit row-major data; data.size() must equal
  /// rows * cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// Element access (bounds-checked in debug builds).
  double& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// One full row as a contiguous span.
  std::span<const double> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies one column into a fresh vector.
  std::vector<double> column(std::size_t c) const;

  /// Appends a row; row.size() must equal cols() (or the matrix must be
  /// empty, in which case it fixes the column count).
  void append_row(std::span<const double> row);

  /// Underlying row-major storage.
  std::span<const double> data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace incprof::cluster
