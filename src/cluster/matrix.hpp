// Row-major dense matrix of doubles. This is the interval-by-function
// feature matrix that the phase detector clusters: one row per profiling
// interval, one column per observed function.
//
// Storage is 64-byte-aligned with the row stride padded up to a whole
// cache line (8 doubles), so every row starts on an aligned boundary
// and the SIMD kernels' vector loads never straddle rows. The padding
// is storage-only: row() spans stay cols() wide and the kernels iterate
// exactly cols() dimensions, so the pad lanes never enter a reduction
// (summing even a +0.0 pad would flip a -0.0 accumulator's sign bit
// and break the §6 bitwise contract).
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "cluster/aligned.hpp"
#include "cluster/checked.hpp"

namespace incprof::cluster {

/// Thrown for shapes whose element count does not fit in memory
/// arithmetic (rows * stride overflowing size_t). Typed so the
/// pipeline boundary can report "impossible shape" distinctly from
/// allocation failure.
class ShapeError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Dense row-major matrix. Rows are observations (intervals), columns are
/// features (per-function self seconds). Value semantics throughout.
class Matrix {
 public:
  /// Row stride granularity in doubles: one 64-byte cache line.
  static constexpr std::size_t kRowAlignDoubles = 8;

  Matrix() = default;

  /// Creates a rows x cols matrix of zeros. Throws ShapeError when the
  /// padded element count overflows size_t.
  Matrix(std::size_t rows, std::size_t cols);

  /// Creates from explicit row-major (unpadded) data; data.size() must
  /// equal rows * cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// Doubles between consecutive row starts (cols() rounded up to a
  /// cache line; 0 for a matrix with no columns).
  std::size_t stride() const noexcept { return stride_; }

  /// Element access (bounds-checked in debug builds).
  double& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }
  double at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * stride_ + c];
  }

  /// One full row as a contiguous span of cols() doubles (the stride
  /// padding is not part of the row).
  std::span<const double> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * stride_, cols_};
  }
  std::span<double> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * stride_, cols_};
  }

  /// Raw 64-byte-aligned pointer to row r, for the batch kernels.
  const double* row_ptr(std::size_t r) const noexcept {
    assert(r < rows_);
    return data_.data() + r * stride_;
  }

  /// Copies one column into a fresh vector.
  std::vector<double> column(std::size_t c) const;

  /// Appends a row; row.size() must equal cols() (or the matrix must be
  /// empty, in which case it fixes the column count). Throws ShapeError
  /// when the grown storage size would overflow.
  void append_row(std::span<const double> row);

  /// Underlying padded storage (rows() * stride() doubles). Rows are
  /// separated by zeroed pad lanes — iterate row() spans, not this,
  /// when summing values.
  std::span<const double> storage() const noexcept { return data_; }

 private:
  static std::size_t padded_stride(std::size_t cols);
  /// rows * stride elements, or throws ShapeError.
  static std::size_t checked_extent(std::size_t rows, std::size_t stride);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t stride_ = 0;
  std::vector<double, AlignedAllocator<double, 64>> data_;
};

}  // namespace incprof::cluster
