#include "cluster/distance.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cluster/simd/kernels_ref.hpp"

namespace incprof::cluster {
namespace {

// Always-on precondition check. The old assert() vanished in release
// builds and a mismatched pair of spans silently read out of bounds;
// the cost of this branch is one predicted-not-taken compare per call
// (measured in bench_micro_pipeline's per-kernel rows). Aborting is
// deliberate: a width mismatch is a caller bug, not an input error,
// and continuing would cluster on garbage.
inline void check_same_size(std::span<const double> a,
                            std::span<const double> b,
                            const char* kernel) noexcept {
  if (a.size() != b.size()) [[unlikely]] {
    std::fprintf(stderr,
                 "incprof: %s called with mismatched spans (%zu vs %zu)\n",
                 kernel, a.size(), b.size());
    std::abort();
  }
}

}  // namespace

double squared_euclidean(std::span<const double> a,
                         std::span<const double> b) noexcept {
  check_same_size(a, b, "squared_euclidean");
  return simd::ref::squared_euclidean(a.data(), b.data(), a.size());
}

double euclidean(std::span<const double> a,
                 std::span<const double> b) noexcept {
  return std::sqrt(squared_euclidean(a, b));
}

double manhattan(std::span<const double> a,
                 std::span<const double> b) noexcept {
  check_same_size(a, b, "manhattan");
  return simd::ref::manhattan(a.data(), b.data(), a.size());
}

double cosine(std::span<const double> a, std::span<const double> b) noexcept {
  check_same_size(a, b, "cosine");
  return simd::ref::cosine(a.data(), b.data(), a.size());
}

}  // namespace incprof::cluster
