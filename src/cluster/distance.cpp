#include "cluster/distance.hpp"

#include <cassert>
#include <cmath>

namespace incprof::cluster {

double squared_euclidean(std::span<const double> a,
                         std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double euclidean(std::span<const double> a,
                 std::span<const double> b) noexcept {
  return std::sqrt(squared_euclidean(a, b));
}

double manhattan(std::span<const double> a,
                 std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

double cosine(std::span<const double> a, std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  // A zero vector has no direction: against another zero vector it is
  // identical (distance 0), but against any busy interval it must be
  // maximally distant — returning 0 here made every idle interval look
  // identical to every busy one.
  if (na == 0.0 && nb == 0.0) return 0.0;
  if (na == 0.0 || nb == 0.0) return 1.0;
  double sim = dot / (std::sqrt(na) * std::sqrt(nb));
  if (sim > 1.0) sim = 1.0;
  if (sim < -1.0) sim = -1.0;
  return 1.0 - sim;
}

}  // namespace incprof::cluster
