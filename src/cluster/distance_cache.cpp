#include "cluster/distance_cache.hpp"

#include <algorithm>
#include <cmath>
#include <new>
#include <string>

#include "cluster/aligned.hpp"
#include "cluster/simd/simd.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace incprof::cluster {
namespace {

/// Condensed-size guard shared by both builds: the pair count and its
/// byte size must fit, and the resize must succeed. Returns false
/// (logging why) for adversarial n instead of UB or an escaping
/// bad_alloc.
bool reserve_condensed(std::size_t n, std::vector<double>& d2) {
  const auto pairs = checked_pair_count(n);
  if (!pairs || !checked_mul(*pairs, sizeof(double))) {
    util::log_error("DistanceCache: condensed size for n=" +
                    std::to_string(n) +
                    " rows overflows; returning empty cache");
    return false;
  }
  try {
    d2.resize(*pairs);
  } catch (const std::bad_alloc&) {
    util::log_error("DistanceCache: allocation of " +
                    std::to_string(*pairs) +
                    " entries failed; returning empty cache");
    return false;
  }
  return true;
}

}  // namespace

DistanceCache DistanceCache::build(const Matrix& points,
                                   util::ThreadPool* pool) {
  DistanceCache cache;
  const std::size_t n = points.rows();
  if (n < 2) {
    cache.n_ = n;
    return cache;
  }
  if (!reserve_condensed(n, cache.d2_)) return cache;
  cache.n_ = n;

  // One pointer per row, so each condensed row fills with a single
  // batched kernel call over the rows after i.
  std::vector<const double*> row_ptrs(n);
  for (std::size_t i = 0; i < n; ++i) row_ptrs[i] = points.row_ptr(i);
  const simd::BatchKernels& kernels = simd::kernels();
  const std::size_t d = points.cols();

  auto fill_row = [&](std::size_t i) {
    const std::size_t base = i * (2 * n - i - 1) / 2;
    kernels.squared_euclidean(row_ptrs[i], row_ptrs.data() + i + 1,
                              n - i - 1, d, cache.d2_.data() + base);
  };

  if (pool != nullptr) {
    // One task per row: early rows carry more columns, but the pool's
    // index-claiming balances the tail automatically.
    pool->parallel_for(n - 1, fill_row);
  } else {
    for (std::size_t i = 0; i + 1 < n; ++i) fill_row(i);
  }
  return cache;
}

DistanceCache DistanceCache::build_fp32(const Matrix& points,
                                        util::ThreadPool* pool) {
  DistanceCache cache;
  const std::size_t n = points.rows();
  if (n < 2) {
    cache.n_ = n;
    return cache;
  }
  if (!reserve_condensed(n, cache.d2_)) return cache;
  cache.n_ = n;

  // Narrow the rows into an aligned float copy with the same padded
  // stride discipline as Matrix.
  const std::size_t d = points.cols();
  const std::size_t stride = (d + 15) / 16 * 16;  // 64 bytes of floats
  std::vector<float, AlignedAllocator<float, 64>> narrowed;
  const auto extent = checked_mul(n, stride);
  if (!extent || !checked_mul(*extent, sizeof(float))) {
    util::log_error("DistanceCache: fp32 buffer for n=" + std::to_string(n) +
                    " rows overflows; returning empty cache");
    cache.n_ = 0;
    cache.d2_.clear();
    return cache;
  }
  try {
    narrowed.resize(*extent, 0.0f);
  } catch (const std::bad_alloc&) {
    util::log_error("DistanceCache: fp32 buffer allocation failed; "
                    "returning empty cache");
    cache.n_ = 0;
    cache.d2_.clear();
    return cache;
  }
  std::vector<const float*> row_ptrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    float* dst = narrowed.data() + i * stride;
    const auto src = points.row(i);
    for (std::size_t j = 0; j < d; ++j) dst[j] = static_cast<float>(src[j]);
    row_ptrs[i] = dst;
  }

  const simd::BatchKernels& kernels = simd::kernels();
  auto fill_row = [&](std::size_t i) {
    const std::size_t base = i * (2 * n - i - 1) / 2;
    const std::size_t count = n - i - 1;
    float out32[256];
    std::size_t done = 0;
    while (done < count) {
      const std::size_t chunk = std::min<std::size_t>(256, count - done);
      kernels.squared_euclidean_f32(row_ptrs[i],
                                    row_ptrs.data() + i + 1 + done, chunk, d,
                                    out32);
      double* dst = cache.d2_.data() + base + done;
      for (std::size_t t = 0; t < chunk; ++t) {
        dst[t] = static_cast<double>(out32[t]);
      }
      done += chunk;
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(n - 1, fill_row);
  } else {
    for (std::size_t i = 0; i + 1 < n; ++i) fill_row(i);
  }
  return cache;
}

double DistanceCache::max_relative_divergence(
    const DistanceCache& a, const DistanceCache& b) noexcept {
  if (a.n_ != b.n_ || a.d2_.size() != b.d2_.size()) return 0.0;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.d2_.size(); ++i) {
    const double denom = std::max(std::fabs(b.d2_[i]), 1e-12);
    const double rel = std::fabs(a.d2_[i] - b.d2_[i]) / denom;
    if (rel > worst) worst = rel;
  }
  return worst;
}

}  // namespace incprof::cluster
