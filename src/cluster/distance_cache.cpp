#include "cluster/distance_cache.hpp"

#include "cluster/distance.hpp"
#include "util/thread_pool.hpp"

namespace incprof::cluster {

DistanceCache DistanceCache::build(const Matrix& points,
                                   util::ThreadPool* pool) {
  DistanceCache cache;
  const std::size_t n = points.rows();
  cache.n_ = n;
  if (n < 2) return cache;
  cache.d2_.resize(n * (n - 1) / 2);

  auto fill_row = [&](std::size_t i) {
    const std::size_t base = i * (2 * n - i - 1) / 2;
    const auto ri = points.row(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      cache.d2_[base + (j - i - 1)] = squared_euclidean(ri, points.row(j));
    }
  };

  if (pool != nullptr) {
    // One task per row: early rows carry more columns, but the pool's
    // index-claiming balances the tail automatically.
    pool->parallel_for(n - 1, fill_row);
  } else {
    for (std::size_t i = 0; i + 1 < n; ++i) fill_row(i);
  }
  return cache;
}

}  // namespace incprof::cluster
