// Lloyd's k-means with k-means++ seeding. This is the clustering step of
// the IncProf pipeline (paper, Section V-A): each profiling interval is a
// point, each resulting cluster is interpreted as an application phase.
#pragma once

#include "cluster/matrix.hpp"

#include <cstdint>
#include <vector>

namespace incprof::util {
class Rng;
class ThreadPool;
}  // namespace incprof::util

namespace incprof::cluster {

/// k-means configuration.
struct KMeansConfig {
  /// Number of clusters; must be >= 1.
  std::size_t k = 1;
  /// Lloyd iteration cap per restart.
  std::size_t max_iters = 100;
  /// Independent k-means++ restarts; the lowest-inertia run wins.
  std::size_t n_init = 8;
  /// Seed for the deterministic PRNG driving the restarts.
  std::uint64_t seed = 42;
  /// Convergence threshold on total centroid movement (squared L2).
  double tol = 1e-10;
};

/// Result of one k-means fit.
struct KMeansResult {
  /// assignments[r] = cluster index of row r, in [0, k).
  std::vector<std::size_t> assignments;
  /// k x d centroid matrix (in the same feature space as the input).
  Matrix centroids;
  /// Within-cluster sum of squared distances (inertia / WCSS).
  double inertia = 0.0;
  /// Lloyd iterations used by the winning restart.
  std::size_t iterations = 0;
  /// Number of clusters actually populated (empty clusters are re-seeded,
  /// so this equals k except in degenerate inputs with < k distinct rows).
  std::size_t populated_clusters = 0;

  /// Number of points assigned to cluster `c`.
  std::size_t cluster_size(std::size_t c) const noexcept;
};

/// Runs k-means on `points` (rows = observations). Throws
/// std::invalid_argument if points is empty or config.k == 0.
/// k larger than the number of rows is clamped to the row count.
/// A ThreadPool parallelizes the Lloyd assignment step for large inputs;
/// results are bit-identical to the serial path (per-row distances are
/// independent slots, the inertia is reduced serially in row order).
KMeansResult kmeans(const Matrix& points, const KMeansConfig& config,
                    util::ThreadPool* pool = nullptr);

/// One restart: k-means++ seeding plus Lloyd iteration driven by the
/// caller's RNG stream. This is the unit the parallel k-sweep fans out —
/// derive one Rng per restart serially (rng.split() in restart order),
/// then each grid cell runs independently. `populated_clusters` is left
/// at 0; multi-restart wrappers fill it for the winning run.
KMeansResult kmeans_run(const Matrix& points, const KMeansConfig& config,
                        util::Rng& rng, util::ThreadPool* pool = nullptr);

}  // namespace incprof::cluster
