#include "cluster/dbscan.hpp"

#include "cluster/distance.hpp"
#include "cluster/distance_cache.hpp"
#include "cluster/simd/simd.hpp"
#include "util/stats.hpp"

#include <cmath>

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace incprof::cluster {

std::vector<std::size_t> DbscanResult::labels_noise_absorbed(
    const Matrix& points) const {
  std::vector<std::size_t> out = labels;
  if (num_clusters == 0) return out;
  const std::size_t n = out.size();
  // One batched distance row per noise point; the strict-< first-wins
  // scan over non-noise j in index order is unchanged, so winners match
  // the historical per-pair loop bitwise.
  std::vector<const double*> row_ptrs(n);
  for (std::size_t j = 0; j < n; ++j) row_ptrs[j] = points.row_ptr(j);
  std::vector<double> d2(n);
  const simd::BatchKernels& kern = simd::kernels();
  for (std::size_t i = 0; i < n; ++i) {
    if (out[i] != kNoise) continue;
    kern.squared_euclidean(points.row_ptr(i), row_ptrs.data(), n,
                           points.cols(), d2.data());
    double best = std::numeric_limits<double>::max();
    std::size_t best_label = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (labels[j] == kNoise) continue;
      if (d2[j] < best) {
        best = d2[j];
        best_label = labels[j];
      }
    }
    out[i] = best_label;
  }
  return out;
}

DbscanResult dbscan(const Matrix& points, const DbscanConfig& config,
                    const DistanceCache* cache) {
  if (config.eps <= 0.0) {
    throw std::invalid_argument("dbscan: eps must be positive");
  }
  const std::size_t n = points.rows();
  DbscanResult res;
  res.labels.assign(n, DbscanResult::kNoise);
  if (n == 0) return res;

  const double eps2 = config.eps * config.eps;
  // Uncached scans batch one full distance row per query point; the
  // cached path reads the precomputed condensed entries (same IEEE
  // values either way, see DistanceCache).
  std::vector<const double*> row_ptrs;
  std::vector<double> d2_row(n);
  if (cache == nullptr) {
    row_ptrs.resize(n);
    for (std::size_t j = 0; j < n; ++j) row_ptrs[j] = points.row_ptr(j);
  }
  const simd::BatchKernels& kern = simd::kernels();
  auto neighbors = [&](std::size_t i) {
    std::vector<std::size_t> out;
    if (cache != nullptr) {
      for (std::size_t j = 0; j < n; ++j) {
        if (cache->dist2(i, j) <= eps2) out.push_back(j);
      }
      return out;
    }
    kern.squared_euclidean(points.row_ptr(i), row_ptrs.data(), n,
                           points.cols(), d2_row.data());
    for (std::size_t j = 0; j < n; ++j) {
      if (d2_row[j] <= eps2) out.push_back(j);
    }
    return out;
  };

  std::vector<bool> visited(n, false);
  std::vector<bool> queued(n, false);
  std::size_t next_label = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = true;
    auto nb = neighbors(i);
    if (nb.size() < config.min_pts) continue;  // stays noise unless reached

    const std::size_t label = next_label++;
    res.labels[i] = label;
    std::deque<std::size_t> frontier;
    // Admission filter: a point enters the frontier at most once per
    // cluster expansion. A visited point would only get its noise label
    // absorbed on dequeue, so do that here instead of queueing it —
    // dense data used to inflate the frontier to O(n^2) entries, one
    // per (core point, neighbor) edge.
    auto admit = [&](std::size_t j) {
      if (visited[j]) {
        if (res.labels[j] == DbscanResult::kNoise) res.labels[j] = label;
        return;
      }
      if (queued[j]) return;
      queued[j] = true;
      frontier.push_back(j);
      res.peak_frontier = std::max(res.peak_frontier, frontier.size());
    };
    for (auto j : nb) admit(j);
    while (!frontier.empty()) {
      const std::size_t j = frontier.front();
      frontier.pop_front();
      queued[j] = false;
      if (res.labels[j] == DbscanResult::kNoise) res.labels[j] = label;
      if (visited[j]) continue;
      visited[j] = true;
      auto nb2 = neighbors(j);
      if (nb2.size() >= config.min_pts) {
        for (auto q : nb2) admit(q);
      }
    }
  }
  res.num_clusters = next_label;
  res.num_noise = static_cast<std::size_t>(
      std::count(res.labels.begin(), res.labels.end(),
                 DbscanResult::kNoise));
  return res;
}

double suggest_eps(const Matrix& points, std::size_t min_pts,
                   double quantile, const DistanceCache* cache) {
  const std::size_t n = points.rows();
  if (n == 0) return 1.0;
  const std::size_t k = std::min(min_pts, n - 1);
  if (k == 0) return 1.0;

  std::vector<double> kdist;
  kdist.reserve(n);
  std::vector<double> d(n);
  std::vector<const double*> row_ptrs;
  if (cache == nullptr) {
    row_ptrs.resize(n);
    for (std::size_t j = 0; j < n; ++j) row_ptrs[j] = points.row_ptr(j);
  }
  const simd::BatchKernels& kern = simd::kernels();
  for (std::size_t i = 0; i < n; ++i) {
    if (cache != nullptr) {
      for (std::size_t j = 0; j < n; ++j) d[j] = cache->dist(i, j);
    } else {
      // Batched d2 row, then the same per-entry sqrt euclidean() takes.
      kern.squared_euclidean(points.row_ptr(i), row_ptrs.data(), n,
                             points.cols(), d.data());
      for (std::size_t j = 0; j < n; ++j) d[j] = std::sqrt(d[j]);
    }
    std::nth_element(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(k),
                     d.end());
    kdist.push_back(d[k]);
  }
  const double eps = util::percentile(kdist, quantile * 100.0);
  return eps > 0.0 ? eps : 1.0;
}

}  // namespace incprof::cluster
