// Overflow-checked size arithmetic for the kernel layer. Matrix shapes
// and DistanceCache sizes come from client-supplied snapshot counts;
// `rows * cols` and `n * (n - 1) / 2` silently wrap for adversarial
// inputs and then resize() either UB-indexes or throws bad_alloc from
// deep inside a worker. Every size computation in src/cluster routes
// through these helpers instead.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>

namespace incprof::cluster {

/// a * b, or nullopt on size_t overflow.
constexpr std::optional<std::size_t> checked_mul(std::size_t a,
                                                 std::size_t b) noexcept {
  if (a != 0 && b > std::numeric_limits<std::size_t>::max() / a) {
    return std::nullopt;
  }
  return a * b;
}

/// a + b, or nullopt on size_t overflow.
constexpr std::optional<std::size_t> checked_add(std::size_t a,
                                                 std::size_t b) noexcept {
  if (b > std::numeric_limits<std::size_t>::max() - a) return std::nullopt;
  return a + b;
}

/// n * (n - 1) / 2 — the condensed pair count — or nullopt on
/// overflow. Divides the even factor first so the intermediate never
/// exceeds the result.
constexpr std::optional<std::size_t> checked_pair_count(
    std::size_t n) noexcept {
  if (n < 2) return 0;
  const std::size_t half = (n % 2 == 0) ? n / 2 : (n - 1) / 2;
  const std::size_t other = (n % 2 == 0) ? n - 1 : n;
  return checked_mul(half, other);
}

}  // namespace incprof::cluster
