// Minimal over-aligned allocator for the kernel layer's storage.
// Matrix rows start on 64-byte boundaries (cache line == one ymm pair)
// so vector loads never straddle rows or lines; std::allocator only
// guarantees alignof(double).
#pragma once

#include <cstddef>
#include <new>

namespace incprof::cluster {

template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two >= alignof(T)");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc();
    // Raw aligned form — the allocator IS the owning abstraction here.
    return static_cast<T*>(::operator new(  // incprof-lint: allow(naked-new)
        n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

}  // namespace incprof::cluster
