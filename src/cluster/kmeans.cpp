#include "cluster/kmeans.hpp"

#include "cluster/distance.hpp"
#include "cluster/simd/simd.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace incprof::cluster {

std::size_t KMeansResult::cluster_size(std::size_t c) const noexcept {
  std::size_t n = 0;
  for (auto a : assignments) {
    if (a == c) ++n;
  }
  return n;
}

namespace {

/// Rows per parallel assignment task; fixed (never derived from the
/// thread count) so the work decomposition — and therefore every
/// floating-point reduction order — is identical at any pool size.
constexpr std::size_t kAssignBlock = 256;

/// k-means++ seeding: first centroid uniform, each next centroid chosen
/// with probability proportional to squared distance from nearest chosen.
Matrix seed_centroids(const Matrix& pts, std::size_t k, util::Rng& rng) {
  const std::size_t n = pts.rows();
  const std::size_t d = pts.cols();
  Matrix centroids(k, d);

  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  std::size_t first = static_cast<std::size_t>(rng.next_below(n));
  for (std::size_t c = 0; c < d; ++c) centroids.at(0, c) = pts.at(first, c);

  // Batched distance-to-last-centroid scan. The SIMD kernels evaluate
  // squared_euclidean(centroid, point): fl(a-b) == -fl(b-a) exactly, so
  // the squared terms — and the whole reduction — are bitwise-identical
  // to the historical (point, centroid) orientation.
  std::vector<const double*> row_ptrs(n);
  for (std::size_t r = 0; r < n; ++r) row_ptrs[r] = pts.row_ptr(r);
  std::vector<double> d2_scan(n);
  const simd::BatchKernels& kern = simd::kernels();

  for (std::size_t ci = 1; ci < k; ++ci) {
    kern.squared_euclidean(centroids.row_ptr(ci - 1), row_ptrs.data(), n, d,
                           d2_scan.data());
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      dist2[r] = std::min(dist2[r], d2_scan[r]);
      total += dist2[r];
    }
    std::size_t chosen = 0;
    if (total <= 0.0) {
      // All points coincide with chosen centroids; pick uniformly.
      chosen = static_cast<std::size_t>(rng.next_below(n));
    } else {
      double target = rng.next_double() * total;
      for (std::size_t r = 0; r < n; ++r) {
        target -= dist2[r];
        if (target <= 0.0) {
          chosen = r;
          break;
        }
        chosen = r;
      }
    }
    for (std::size_t c = 0; c < d; ++c) {
      centroids.at(ci, c) = pts.at(chosen, c);
    }
  }
  return centroids;
}

struct LloydRun {
  std::vector<std::size_t> assignments;
  Matrix centroids;
  double inertia = 0.0;
  std::size_t iterations = 0;
};

/// Nearest-centroid search for one fixed block of rows, batched: one
/// SIMD kernel call per centroid over the whole block, then a strict-<
/// argmin per row in centroid order — the exact comparison sequence
/// (including the max() sentinel start) the historical per-row scalar
/// loop performed, so winners and distances are bitwise-identical.
inline void assign_block(const Matrix& pts, const Matrix& centroids,
                         std::size_t k, std::size_t lo, std::size_t hi,
                         double* best, std::size_t* besti) {
  const simd::BatchKernels& kern = simd::kernels();
  const std::size_t cnt = hi - lo;
  const std::size_t d = pts.cols();
  const double* rows[kAssignBlock];
  double cur[kAssignBlock];
  for (std::size_t i = 0; i < cnt; ++i) rows[i] = pts.row_ptr(lo + i);
  for (std::size_t i = 0; i < cnt; ++i) {
    best[i] = std::numeric_limits<double>::max();
    besti[i] = 0;
  }
  for (std::size_t c = 0; c < k; ++c) {
    kern.squared_euclidean(centroids.row_ptr(c), rows, cnt, d, cur);
    for (std::size_t i = 0; i < cnt; ++i) {
      if (cur[i] < best[i]) {
        best[i] = cur[i];
        besti[i] = c;
      }
    }
  }
}

/// One full assignment pass. Rows are always processed in fixed
/// kAssignBlock chunks (per-row results are independent slots) whether
/// the blocks run serially or on the pool, and the inertia is then
/// reduced serially in row order — so the answer is bit-identical at
/// any pool size.
double assignment_pass(const Matrix& pts, const Matrix& centroids,
                       std::size_t k, std::vector<std::size_t>& assignments,
                       std::vector<double>& best_dist,
                       util::ThreadPool* pool) {
  const std::size_t n = pts.rows();
  const std::size_t blocks = (n + kAssignBlock - 1) / kAssignBlock;
  auto run_block = [&](std::size_t b) {
    const std::size_t lo = b * kAssignBlock;
    const std::size_t hi = std::min(n, lo + kAssignBlock);
    assign_block(pts, centroids, k, lo, hi, best_dist.data() + lo,
                 assignments.data() + lo);
  };
  if (pool != nullptr && n >= 2 * kAssignBlock) {
    pool->parallel_for(blocks, run_block);
  } else {
    for (std::size_t b = 0; b < blocks; ++b) run_block(b);
  }
  double inertia = 0.0;
  for (std::size_t r = 0; r < n; ++r) inertia += best_dist[r];
  return inertia;
}

LloydRun lloyd(const Matrix& pts, Matrix centroids,
               const KMeansConfig& cfg, util::Rng& rng,
               util::ThreadPool* pool) {
  const std::size_t n = pts.rows();
  const std::size_t d = pts.cols();
  const std::size_t k = centroids.rows();

  LloydRun run;
  run.assignments.assign(n, 0);
  std::vector<double> best_dist(n, 0.0);
  std::vector<std::size_t> counts(k, 0);

  for (std::size_t iter = 0; iter < cfg.max_iters; ++iter) {
    run.iterations = iter + 1;

    // Assignment step.
    run.inertia =
        assignment_pass(pts, centroids, k, run.assignments, best_dist, pool);

    // Update step.
    Matrix next(k, d);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t c = run.assignments[r];
      ++counts[c];
      for (std::size_t j = 0; j < d; ++j) next.at(c, j) += pts.at(r, j);
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point so k stays honest.
        const std::size_t r = static_cast<std::size_t>(rng.next_below(n));
        for (std::size_t j = 0; j < d; ++j) next.at(c, j) = pts.at(r, j);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t j = 0; j < d; ++j) next.at(c, j) *= inv;
    }

    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      movement += squared_euclidean(centroids.row(c), next.row(c));
    }
    centroids = std::move(next);
    if (movement <= cfg.tol) break;
  }

  // Final assignment against the last centroids so assignments and
  // centroids are mutually consistent.
  run.inertia =
      assignment_pass(pts, centroids, k, run.assignments, best_dist, pool);
  run.centroids = std::move(centroids);
  return run;
}

}  // namespace

KMeansResult kmeans_run(const Matrix& points, const KMeansConfig& config,
                        util::Rng& rng, util::ThreadPool* pool) {
  if (points.rows() == 0 || points.cols() == 0) {
    throw std::invalid_argument("kmeans: empty input matrix");
  }
  if (config.k == 0) {
    throw std::invalid_argument("kmeans: k must be >= 1");
  }
  const std::size_t k = std::min(config.k, points.rows());
  Matrix seeds = seed_centroids(points, k, rng);
  LloydRun run = lloyd(points, std::move(seeds), config, rng, pool);
  KMeansResult result;
  result.assignments = std::move(run.assignments);
  result.centroids = std::move(run.centroids);
  result.inertia = run.inertia;
  result.iterations = run.iterations;
  return result;
}

KMeansResult kmeans(const Matrix& points, const KMeansConfig& config,
                    util::ThreadPool* pool) {
  if (points.rows() == 0 || points.cols() == 0) {
    throw std::invalid_argument("kmeans: empty input matrix");
  }
  if (config.k == 0) {
    throw std::invalid_argument("kmeans: k must be >= 1");
  }
  const std::size_t k = std::min(config.k, points.rows());

  util::Rng rng(config.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();

  const std::size_t restarts = std::max<std::size_t>(1, config.n_init);
  for (std::size_t s = 0; s < restarts; ++s) {
    util::Rng run_rng = rng.split();
    KMeansResult run = kmeans_run(points, config, run_rng, pool);
    if (run.inertia < best.inertia) {
      best = std::move(run);
    }
  }

  std::vector<bool> seen(k, false);
  for (auto a : best.assignments) seen[a] = true;
  best.populated_clusters =
      static_cast<std::size_t>(std::count(seen.begin(), seen.end(), true));
  return best;
}

}  // namespace incprof::cluster
