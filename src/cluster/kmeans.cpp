#include "cluster/kmeans.hpp"

#include "cluster/distance.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace incprof::cluster {

std::size_t KMeansResult::cluster_size(std::size_t c) const noexcept {
  std::size_t n = 0;
  for (auto a : assignments) {
    if (a == c) ++n;
  }
  return n;
}

namespace {

/// k-means++ seeding: first centroid uniform, each next centroid chosen
/// with probability proportional to squared distance from nearest chosen.
Matrix seed_centroids(const Matrix& pts, std::size_t k, util::Rng& rng) {
  const std::size_t n = pts.rows();
  const std::size_t d = pts.cols();
  Matrix centroids(k, d);

  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  std::size_t first = static_cast<std::size_t>(rng.next_below(n));
  for (std::size_t c = 0; c < d; ++c) centroids.at(0, c) = pts.at(first, c);

  for (std::size_t ci = 1; ci < k; ++ci) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double d2 = squared_euclidean(pts.row(r), centroids.row(ci - 1));
      dist2[r] = std::min(dist2[r], d2);
      total += dist2[r];
    }
    std::size_t chosen = 0;
    if (total <= 0.0) {
      // All points coincide with chosen centroids; pick uniformly.
      chosen = static_cast<std::size_t>(rng.next_below(n));
    } else {
      double target = rng.next_double() * total;
      for (std::size_t r = 0; r < n; ++r) {
        target -= dist2[r];
        if (target <= 0.0) {
          chosen = r;
          break;
        }
        chosen = r;
      }
    }
    for (std::size_t c = 0; c < d; ++c) {
      centroids.at(ci, c) = pts.at(chosen, c);
    }
  }
  return centroids;
}

struct LloydRun {
  std::vector<std::size_t> assignments;
  Matrix centroids;
  double inertia = 0.0;
  std::size_t iterations = 0;
};

LloydRun lloyd(const Matrix& pts, Matrix centroids,
               const KMeansConfig& cfg, util::Rng& rng) {
  const std::size_t n = pts.rows();
  const std::size_t d = pts.cols();
  const std::size_t k = centroids.rows();

  LloydRun run;
  run.assignments.assign(n, 0);
  std::vector<std::size_t> counts(k, 0);

  for (std::size_t iter = 0; iter < cfg.max_iters; ++iter) {
    run.iterations = iter + 1;

    // Assignment step.
    run.inertia = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      double best = std::numeric_limits<double>::max();
      std::size_t besti = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d2 = squared_euclidean(pts.row(r), centroids.row(c));
        if (d2 < best) {
          best = d2;
          besti = c;
        }
      }
      run.assignments[r] = besti;
      run.inertia += best;
    }

    // Update step.
    Matrix next(k, d);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t c = run.assignments[r];
      ++counts[c];
      for (std::size_t j = 0; j < d; ++j) next.at(c, j) += pts.at(r, j);
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point so k stays honest.
        const std::size_t r = static_cast<std::size_t>(rng.next_below(n));
        for (std::size_t j = 0; j < d; ++j) next.at(c, j) = pts.at(r, j);
        continue;
      }
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t j = 0; j < d; ++j) next.at(c, j) *= inv;
    }

    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      movement += squared_euclidean(centroids.row(c), next.row(c));
    }
    centroids = std::move(next);
    if (movement <= cfg.tol) break;
  }

  // Final assignment against the last centroids so assignments and
  // centroids are mutually consistent.
  run.inertia = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double best = std::numeric_limits<double>::max();
    std::size_t besti = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d2 = squared_euclidean(pts.row(r), centroids.row(c));
      if (d2 < best) {
        best = d2;
        besti = c;
      }
    }
    run.assignments[r] = besti;
    run.inertia += best;
  }
  run.centroids = std::move(centroids);
  return run;
}

}  // namespace

KMeansResult kmeans(const Matrix& points, const KMeansConfig& config) {
  if (points.rows() == 0 || points.cols() == 0) {
    throw std::invalid_argument("kmeans: empty input matrix");
  }
  if (config.k == 0) {
    throw std::invalid_argument("kmeans: k must be >= 1");
  }
  const std::size_t k = std::min(config.k, points.rows());

  util::Rng rng(config.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();

  const std::size_t restarts = std::max<std::size_t>(1, config.n_init);
  for (std::size_t s = 0; s < restarts; ++s) {
    util::Rng run_rng = rng.split();
    Matrix seeds = seed_centroids(points, k, run_rng);
    LloydRun run = lloyd(points, std::move(seeds), config, run_rng);
    if (run.inertia < best.inertia) {
      best.assignments = std::move(run.assignments);
      best.centroids = std::move(run.centroids);
      best.inertia = run.inertia;
      best.iterations = run.iterations;
    }
  }

  std::vector<bool> seen(k, false);
  for (auto a : best.assignments) seen[a] = true;
  best.populated_clusters =
      static_cast<std::size_t>(std::count(seen.begin(), seen.end(), true));
  return best;
}

}  // namespace incprof::cluster
