// Selecting k for k-means. The paper runs k = 1..8 and picks k with the
// Elbow method; it also evaluated the silhouette method (Section V-A).
// Both are implemented here over a single shared k-sweep so the ablation
// bench can compare them on identical fits.
#pragma once

#include "cluster/kmeans.hpp"

#include <vector>

namespace incprof::cluster {

/// Which quantitative k-selection rule to apply to the sweep.
enum class KSelection { kElbow, kSilhouette };

/// One fitted k from the sweep.
struct KSweepEntry {
  std::size_t k = 0;
  KMeansResult result;
  /// Mean silhouette of this fit (0 for k == 1 by convention).
  double silhouette = 0.0;
};

/// Results of fitting k = 1..k_max.
struct KSweep {
  std::vector<KSweepEntry> entries;

  /// WCSS (inertia) curve indexed by position in `entries`.
  std::vector<double> inertia_curve() const;
};

/// Fits k-means for every k in [1, k_max] (k_max clamped to the number of
/// rows). `base` supplies everything but k.
KSweep sweep_k(const Matrix& points, std::size_t k_max,
               const KMeansConfig& base);

/// Elbow selection: the k whose point on the (k, WCSS) curve is farthest
/// from the chord joining the curve's endpoints (the standard geometric
/// "maximum curvature" formulation of the elbow heuristic). Returns the
/// index into sweep.entries. A flat curve (no structure) returns 0 (k=1).
std::size_t select_elbow(const KSweep& sweep);

/// Silhouette selection: the k (>= 2) with maximal mean silhouette;
/// returns index 0 (k=1) when the best silhouette is <= 0, meaning no k
/// produced better-than-random structure.
std::size_t select_silhouette(const KSweep& sweep);

/// Convenience: runs the sweep and applies the chosen rule, returning the
/// winning entry.
const KSweepEntry& select_k(const KSweep& sweep, KSelection rule);

}  // namespace incprof::cluster
