// Selecting k for k-means. The paper runs k = 1..8 and picks k with the
// Elbow method; it also evaluated the silhouette method (Section V-A).
// Both are implemented here over a single shared k-sweep so the ablation
// bench can compare them on identical fits.
#pragma once

#include "cluster/kmeans.hpp"

#include <vector>

namespace incprof::cluster {

class DistanceCache;

/// Which quantitative k-selection rule to apply to the sweep.
enum class KSelection { kElbow, kSilhouette };

/// One fitted k from the sweep.
struct KSweepEntry {
  std::size_t k = 0;
  KMeansResult result;
  /// Mean silhouette of this fit (0 for k == 1 by convention).
  double silhouette = 0.0;
};

/// Results of fitting k = 1..k_max.
struct KSweep {
  std::vector<KSweepEntry> entries;

  /// WCSS (inertia) curve indexed by position in `entries`.
  std::vector<double> inertia_curve() const;
};

/// Fits k-means for every k in [1, k_max] (k_max clamped to the number of
/// rows). `base` supplies everything but k.
KSweep sweep_k(const Matrix& points, std::size_t k_max,
               const KMeansConfig& base);

/// Parallel sweep: fans the full (k, restart) grid out over `pool` and
/// scores silhouettes through `cache`. Per-restart RNG streams are
/// derived serially in the same order the serial path uses and the best
/// restart per k is selected by strict `<` in restart order, so the
/// result is bit-identical to the serial sweep for the same seed. When
/// `cache` is null one is built automatically for inputs small enough
/// that its n^2/2 buffer is cheap (see DistanceCache::bytes_required);
/// pass an explicit cache to share it with DBSCAN or other consumers.
KSweep sweep_k(const Matrix& points, std::size_t k_max,
               const KMeansConfig& base, util::ThreadPool* pool,
               const DistanceCache* cache = nullptr);

/// Elbow selection: the k whose point on the (k, WCSS) curve is farthest
/// from the chord joining the curve's endpoints (the standard geometric
/// "maximum curvature" formulation of the elbow heuristic). Returns the
/// index into sweep.entries. A flat curve (no structure) returns 0 (k=1),
/// whatever the sweep length — two-entry sweeps included.
std::size_t select_elbow(const KSweep& sweep);

/// Silhouette selection: the k (>= 2) with maximal mean silhouette;
/// returns index 0 (k=1) when the best silhouette is <= 0, meaning no k
/// produced better-than-random structure.
std::size_t select_silhouette(const KSweep& sweep);

/// Convenience: runs the sweep and applies the chosen rule, returning the
/// winning entry.
const KSweepEntry& select_k(const KSweep& sweep, KSelection rule);

}  // namespace incprof::cluster
