#include "cluster/matrix.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace incprof::cluster {

std::size_t Matrix::padded_stride(std::size_t cols) {
  if (cols == 0) return 0;
  const auto rounded = checked_add(cols, kRowAlignDoubles - 1);
  if (!rounded) {
    throw ShapeError("Matrix: column count " + std::to_string(cols) +
                     " cannot be stride-padded without overflow");
  }
  return *rounded / kRowAlignDoubles * kRowAlignDoubles;
}

std::size_t Matrix::checked_extent(std::size_t rows, std::size_t stride) {
  const auto extent = checked_mul(rows, stride);
  if (!extent || !checked_mul(*extent, sizeof(double))) {
    throw ShapeError("Matrix: shape " + std::to_string(rows) + " x " +
                     std::to_string(stride) +
                     " (padded) overflows addressable size");
  }
  return *extent;
}

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), stride_(padded_stride(cols)) {
  data_.resize(checked_extent(rows_, stride_), 0.0);
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), stride_(padded_stride(cols)) {
  const auto flat = checked_mul(rows_, cols_);
  if (!flat || data.size() != *flat) {
    throw std::invalid_argument("Matrix: data size does not match shape");
  }
  data_.resize(checked_extent(rows_, stride_), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::copy_n(data.data() + r * cols_, cols_, data_.data() + r * stride_);
  }
}

std::vector<double> Matrix::column(std::size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = at(r, c);
  return out;
}

void Matrix::append_row(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
    stride_ = padded_stride(cols_);
  } else if (row.size() != cols_) {
    throw std::invalid_argument("Matrix::append_row: width mismatch");
  }
  data_.resize(checked_extent(rows_ + 1, stride_), 0.0);
  if (!row.empty()) {
    std::copy_n(row.data(), row.size(), data_.data() + rows_ * stride_);
  }
  ++rows_;
}

}  // namespace incprof::cluster
