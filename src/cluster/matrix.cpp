#include "cluster/matrix.hpp"

#include <stdexcept>

namespace incprof::cluster {

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: data size does not match shape");
  }
}

std::vector<double> Matrix::column(std::size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = at(r, c);
  return out;
}

void Matrix::append_row(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  } else if (row.size() != cols_) {
    throw std::invalid_argument("Matrix::append_row: width mismatch");
  }
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

}  // namespace incprof::cluster
