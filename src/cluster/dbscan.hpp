// DBSCAN density clustering. The paper's authors evaluated DBSCAN as an
// alternative to k-means and found no improvement (Section V-A); we keep
// it so bench_ablation_dbscan can reproduce that comparison.
#pragma once

#include "cluster/matrix.hpp"

#include <cstddef>
#include <vector>

namespace incprof::cluster {

class DistanceCache;

/// DBSCAN parameters.
struct DbscanConfig {
  /// Neighborhood radius (Euclidean).
  double eps = 0.5;
  /// Minimum neighborhood size (including the point itself) to be core.
  std::size_t min_pts = 4;
};

/// DBSCAN output. Noise points get label kNoise.
struct DbscanResult {
  static constexpr std::size_t kNoise = static_cast<std::size_t>(-1);

  /// labels[r] = cluster index or kNoise.
  std::vector<std::size_t> labels;
  /// Number of clusters found (labels run 0..num_clusters-1).
  std::size_t num_clusters = 0;
  /// Number of points labelled noise.
  std::size_t num_noise = 0;
  /// Largest BFS frontier observed during any cluster expansion. The
  /// admission filter bounds this by n (each point queues at most once
  /// per expansion); tests assert the bound on dense data.
  std::size_t peak_frontier = 0;

  /// Labels with noise points reassigned to their nearest cluster (by
  /// nearest labelled neighbor); lets ARI-style comparisons against
  /// k-means run on a full partition. Identity when there is no cluster.
  std::vector<std::size_t> labels_noise_absorbed(const Matrix& points) const;
};

/// Runs DBSCAN over the rows of `points` with Euclidean distance.
/// O(n^2) neighborhood search — fine for hundreds of intervals. When a
/// DistanceCache built over the same rows is supplied, neighborhood
/// scans read it instead of recomputing distances (bit-identical
/// results either way).
DbscanResult dbscan(const Matrix& points, const DbscanConfig& config,
                    const DistanceCache* cache = nullptr);

/// Heuristic eps: the `quantile` (e.g. 0.9) of each point's distance to
/// its min_pts-th nearest neighbor — the standard k-distance heuristic.
/// Shares the optional DistanceCache with dbscan().
double suggest_eps(const Matrix& points, std::size_t min_pts,
                   double quantile = 0.9,
                   const DistanceCache* cache = nullptr);

}  // namespace incprof::cluster
