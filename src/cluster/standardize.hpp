// Per-column feature standardization. Interval feature vectors mix
// functions whose self time spans orders of magnitude; z-scoring keeps a
// single dominant function from swamping the k-means distance. The
// transform is invertible so centroids can be reported in original units.
#pragma once

#include "cluster/matrix.hpp"

#include <vector>

namespace incprof::cluster {

/// Per-column affine transform x -> (x - mean) / std, with std clamped to
/// 1 for constant columns (so they map to exactly 0 instead of NaN).
class Standardizer {
 public:
  /// Learns per-column mean and standard deviation from `m`.
  static Standardizer fit(const Matrix& m);

  /// Applies the transform; `m` must have the fitted column count.
  Matrix transform(const Matrix& m) const;

  /// Inverse transform (used to report centroids in seconds).
  Matrix inverse(const Matrix& m) const;

  /// Fitted per-column means.
  const std::vector<double>& means() const noexcept { return means_; }

  /// Fitted per-column standard deviations (clamped, never zero).
  const std::vector<double>& stds() const noexcept { return stds_; }

 private:
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace incprof::cluster
