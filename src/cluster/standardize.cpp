#include "cluster/standardize.hpp"

#include <cmath>
#include <stdexcept>

namespace incprof::cluster {

Standardizer Standardizer::fit(const Matrix& m) {
  Standardizer s;
  const std::size_t cols = m.cols();
  const std::size_t rows = m.rows();
  s.means_.assign(cols, 0.0);
  s.stds_.assign(cols, 1.0);
  if (rows == 0) return s;
  for (std::size_t c = 0; c < cols; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < rows; ++r) sum += m.at(r, c);
    const double mu = sum / static_cast<double>(rows);
    double sq = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      const double d = m.at(r, c) - mu;
      sq += d * d;
    }
    const double sd = std::sqrt(sq / static_cast<double>(rows));
    s.means_[c] = mu;
    s.stds_[c] = sd > 1e-12 ? sd : 1.0;
  }
  return s;
}

Matrix Standardizer::transform(const Matrix& m) const {
  if (m.cols() != means_.size()) {
    throw std::invalid_argument("Standardizer::transform: column mismatch");
  }
  Matrix out(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out.at(r, c) = (m.at(r, c) - means_[c]) / stds_[c];
    }
  }
  return out;
}

Matrix Standardizer::inverse(const Matrix& m) const {
  if (m.cols() != means_.size()) {
    throw std::invalid_argument("Standardizer::inverse: column mismatch");
  }
  Matrix out(m.rows(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out.at(r, c) = m.at(r, c) * stds_[c] + means_[c];
    }
  }
  return out;
}

}  // namespace incprof::cluster
