// SIMD dispatch layer for the distance kernels. The analysis pipeline
// spends its time in pairwise distance evaluations (Lloyd assignment,
// the DistanceCache fill, DBSCAN neighborhoods, silhouettes); this
// layer vectorizes them without touching the §6 determinism contract.
//
// The design constraint is bitwise equality with the scalar reference
// at every tier. FP addition is not associative, so a conventional
// within-vector reduction (4 accumulator lanes over one pair) would
// change the answer. Instead every batched kernel assigns one *pair*
// per vector lane: lane t walks dimensions 0..d-1 accumulating
// out[t] in exactly the scalar order (kernels_ref.hpp), and d-1
// vector adds later each lane holds the bit-exact scalar result. The
// speedup comes from evaluating 4 (AVX2) or 2 (NEON) pairs per
// instruction and from interleaving two accumulator chains to hide
// the FP add latency — not from reordering any reduction.
//
// Tiers are detected at runtime (cpuid on x86-64, baseline NEON on
// aarch64) and can be forced down with --simd scalar|avx2|neon|auto;
// forcing a tier the host cannot execute is rejected, never trapped.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

namespace incprof::cluster::simd {

/// Kernel tiers, ordered by capability. kScalar always works; the
/// vector tiers are selected only when the CPU reports support.
enum class Tier { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Batched distance kernels: out[t] = scalar_reference(a, rows[t]) for
/// t in [0, count). Preconditions: every rows[t] (and a) holds at
/// least d readable doubles. All tiers are bitwise-identical to
/// kernels_ref.hpp by construction (lane-per-pair, see file comment).
struct BatchKernels {
  void (*squared_euclidean)(const double* a, const double* const* rows,
                            std::size_t count, std::size_t d, double* out);
  void (*manhattan)(const double* a, const double* const* rows,
                    std::size_t count, std::size_t d, double* out);
  void (*cosine)(const double* a, const double* const* rows,
                 std::size_t count, std::size_t d, double* out);
  /// fp32 twin for the opt-in --fp32 path (explicitly outside the
  /// bitwise-vs-fp64 contract, but still bitwise across tiers).
  void (*squared_euclidean_f32)(const float* a, const float* const* rows,
                                std::size_t count, std::size_t d,
                                float* out);
};

/// Best tier this host can execute (probed once, cached).
Tier detected_tier() noexcept;

/// Tier the process is currently dispatching to (defaults to
/// detected_tier(); --simd overrides it at tool startup).
Tier active_tier() noexcept;

/// Forces the dispatch tier. Returns false (and leaves the tier
/// unchanged) when the host cannot execute `tier`.
bool set_active_tier(Tier tier) noexcept;

/// Kernel table of the active tier.
const BatchKernels& kernels() noexcept;

/// Kernel table of a specific tier (falls back to scalar when the
/// tier is not compiled in or not executable on this host).
const BatchKernels& kernels(Tier tier) noexcept;

/// "scalar", "avx2", "neon".
const char* tier_name(Tier tier) noexcept;

/// Parses a --simd argument: "auto" (detected tier), "scalar",
/// "avx2", "neon". Returns false on anything else.
bool parse_tier(std::string_view text, Tier& out) noexcept;

}  // namespace incprof::cluster::simd
