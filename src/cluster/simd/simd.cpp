#include "cluster/simd/simd.hpp"

#include <atomic>
#include <cstddef>

#include "cluster/simd/kernels_internal.hpp"
#include "cluster/simd/kernels_ref.hpp"

namespace incprof::cluster::simd {
namespace {

// Scalar batch tier: the reference loops applied lane-by-lane. Every
// vector tier must match these outputs bitwise.
void scalar_squared_euclidean(const double* a, const double* const* rows,
                              std::size_t count, std::size_t d,
                              double* out) {
  for (std::size_t t = 0; t < count; ++t) {
    out[t] = ref::squared_euclidean(a, rows[t], d);
  }
}

void scalar_manhattan(const double* a, const double* const* rows,
                      std::size_t count, std::size_t d, double* out) {
  for (std::size_t t = 0; t < count; ++t) {
    out[t] = ref::manhattan(a, rows[t], d);
  }
}

void scalar_cosine(const double* a, const double* const* rows,
                   std::size_t count, std::size_t d, double* out) {
  for (std::size_t t = 0; t < count; ++t) {
    out[t] = ref::cosine(a, rows[t], d);
  }
}

void scalar_squared_euclidean_f32(const float* a, const float* const* rows,
                                  std::size_t count, std::size_t d,
                                  float* out) {
  for (std::size_t t = 0; t < count; ++t) {
    out[t] = ref::squared_euclidean_f32(a, rows[t], d);
  }
}

constexpr BatchKernels kScalarKernels{
    scalar_squared_euclidean,
    scalar_manhattan,
    scalar_cosine,
    scalar_squared_euclidean_f32,
};

Tier probe_tier() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2") && avx2_kernels() != nullptr) {
    return Tier::kAvx2;
  }
#elif defined(__aarch64__)
  // NEON is baseline on aarch64; availability hinges only on whether
  // the NEON TU compiled in.
  if (neon_kernels() != nullptr) return Tier::kNeon;
#endif
  return Tier::kScalar;
}

std::atomic<Tier>& active_tier_slot() noexcept {
  static std::atomic<Tier> tier{detected_tier()};
  return tier;
}

}  // namespace

Tier detected_tier() noexcept {
  static const Tier tier = probe_tier();
  return tier;
}

Tier active_tier() noexcept {
  return active_tier_slot().load(std::memory_order_relaxed);
}

bool set_active_tier(Tier tier) noexcept {
  if (tier != Tier::kScalar && tier != detected_tier()) return false;
  active_tier_slot().store(tier, std::memory_order_relaxed);
  return true;
}

const BatchKernels& kernels(Tier tier) noexcept {
  switch (tier) {
    case Tier::kAvx2:
      if (const BatchKernels* k = avx2_kernels()) return *k;
      break;
    case Tier::kNeon:
      if (const BatchKernels* k = neon_kernels()) return *k;
      break;
    case Tier::kScalar:
      break;
  }
  return kScalarKernels;
}

const BatchKernels& kernels() noexcept { return kernels(active_tier()); }

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kAvx2:
      return "avx2";
    case Tier::kNeon:
      return "neon";
    case Tier::kScalar:
      break;
  }
  return "scalar";
}

bool parse_tier(std::string_view text, Tier& out) noexcept {
  if (text == "auto") {
    out = detected_tier();
    return true;
  }
  if (text == "scalar") {
    out = Tier::kScalar;
    return true;
  }
  if (text == "avx2") {
    out = Tier::kAvx2;
    return true;
  }
  if (text == "neon") {
    out = Tier::kNeon;
    return true;
  }
  return false;
}

}  // namespace incprof::cluster::simd
