// NEON tier (aarch64). Same lane-per-pair contract as the AVX2 tier,
// with 2 double lanes (4 float lanes) per vector. Separate vmul/vadd —
// never vfma — plus -ffp-contract=off on this TU keep every lane's
// reduction bitwise-identical to kernels_ref.hpp.
#include "cluster/simd/kernels_internal.hpp"
#include "cluster/simd/simd.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>

#include "cluster/simd/kernels_ref.hpp"

namespace incprof::cluster::simd {
namespace {

// Column vector {r0[j], r1[j]} — lane t = pair t.
inline float64x2_t load_col(const double* r0, const double* r1,
                            std::size_t j) {
  return vcombine_f64(vld1_f64(r0 + j), vld1_f64(r1 + j));
}

inline float64x2_t sq2(const double* a, const double* r0, const double* r1,
                       std::size_t d) {
  float64x2_t acc = vdupq_n_f64(0.0);
  for (std::size_t j = 0; j < d; ++j) {
    const float64x2_t diff = vsubq_f64(vdupq_n_f64(a[j]), load_col(r0, r1, j));
    acc = vaddq_f64(acc, vmulq_f64(diff, diff));
  }
  return acc;
}

void neon_squared_euclidean(const double* a, const double* const* rows,
                            std::size_t count, std::size_t d, double* out) {
  std::size_t t = 0;
  // Two independent chains per step to hide the fadd latency.
  for (; t + 4 <= count; t += 4) {
    vst1q_f64(out + t, sq2(a, rows[t], rows[t + 1], d));
    vst1q_f64(out + t + 2, sq2(a, rows[t + 2], rows[t + 3], d));
  }
  for (; t + 2 <= count; t += 2) {
    vst1q_f64(out + t, sq2(a, rows[t], rows[t + 1], d));
  }
  for (; t < count; ++t) out[t] = ref::squared_euclidean(a, rows[t], d);
}

inline float64x2_t man2(const double* a, const double* r0, const double* r1,
                        std::size_t d) {
  float64x2_t acc = vdupq_n_f64(0.0);
  for (std::size_t j = 0; j < d; ++j) {
    // vabsq clears the sign bit — identical to std::fabs, NaNs included.
    acc = vaddq_f64(
        acc, vabsq_f64(vsubq_f64(vdupq_n_f64(a[j]), load_col(r0, r1, j))));
  }
  return acc;
}

void neon_manhattan(const double* a, const double* const* rows,
                    std::size_t count, std::size_t d, double* out) {
  std::size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    vst1q_f64(out + t, man2(a, rows[t], rows[t + 1], d));
    vst1q_f64(out + t + 2, man2(a, rows[t + 2], rows[t + 3], d));
  }
  for (; t + 2 <= count; t += 2) {
    vst1q_f64(out + t, man2(a, rows[t], rows[t + 1], d));
  }
  for (; t < count; ++t) out[t] = ref::manhattan(a, rows[t], d);
}

void neon_cosine(const double* a, const double* const* rows,
                 std::size_t count, std::size_t d, double* out) {
  std::size_t t = 0;
  for (; t + 2 <= count; t += 2) {
    const double* r0 = rows[t];
    const double* r1 = rows[t + 1];
    float64x2_t dot = vdupq_n_f64(0.0);
    float64x2_t na = vdupq_n_f64(0.0);
    float64x2_t nb = vdupq_n_f64(0.0);
    for (std::size_t j = 0; j < d; ++j) {
      const float64x2_t av = vdupq_n_f64(a[j]);
      const float64x2_t col = load_col(r0, r1, j);
      dot = vaddq_f64(dot, vmulq_f64(av, col));
      na = vaddq_f64(na, vmulq_f64(av, av));
      nb = vaddq_f64(nb, vmulq_f64(col, col));
    }
    for (int lane = 0; lane < 2; ++lane) {
      out[t + lane] = ref::cosine_finish({lane == 0 ? vgetq_lane_f64(dot, 0)
                                                    : vgetq_lane_f64(dot, 1),
                                          lane == 0 ? vgetq_lane_f64(na, 0)
                                                    : vgetq_lane_f64(na, 1),
                                          lane == 0 ? vgetq_lane_f64(nb, 0)
                                                    : vgetq_lane_f64(nb, 1)});
    }
  }
  for (; t < count; ++t) out[t] = ref::cosine(a, rows[t], d);
}

void neon_squared_euclidean_f32(const float* a, const float* const* rows,
                                std::size_t count, std::size_t d, float* out) {
  std::size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    const float* r0 = rows[t];
    const float* r1 = rows[t + 1];
    const float* r2 = rows[t + 2];
    const float* r3 = rows[t + 3];
    float32x4_t acc = vdupq_n_f32(0.0f);
    for (std::size_t j = 0; j < d; ++j) {
      float32x4_t col = vdupq_n_f32(r0[j]);
      col = vsetq_lane_f32(r1[j], col, 1);
      col = vsetq_lane_f32(r2[j], col, 2);
      col = vsetq_lane_f32(r3[j], col, 3);
      const float32x4_t diff = vsubq_f32(vdupq_n_f32(a[j]), col);
      acc = vaddq_f32(acc, vmulq_f32(diff, diff));
    }
    vst1q_f32(out + t, acc);
  }
  for (; t < count; ++t) out[t] = ref::squared_euclidean_f32(a, rows[t], d);
}

constexpr BatchKernels kNeonKernels{
    neon_squared_euclidean,
    neon_manhattan,
    neon_cosine,
    neon_squared_euclidean_f32,
};

}  // namespace

const BatchKernels* neon_kernels() noexcept { return &kNeonKernels; }

}  // namespace incprof::cluster::simd

#else  // non-aarch64: tier never available

namespace incprof::cluster::simd {
const BatchKernels* neon_kernels() noexcept { return nullptr; }
}  // namespace incprof::cluster::simd

#endif
