// Per-tier kernel table providers. The arch-specific TUs are always
// compiled; on the wrong architecture their internal #if guards leave
// only a stub returning nullptr, which the dispatcher treats as "tier
// not available" and falls back to scalar.
#pragma once

namespace incprof::cluster::simd {

struct BatchKernels;

const BatchKernels* avx2_kernels() noexcept;
const BatchKernels* neon_kernels() noexcept;

}  // namespace incprof::cluster::simd
