// AVX2 tier. Lane-per-pair: each of the 4 double lanes (8 float lanes)
// owns a distinct pair and replays the kernels_ref.hpp op sequence for
// it, so every lane's result is bitwise-identical to the scalar
// reference. Dimension j of 4 row operands is gathered into one ymm
// column either via a 4x4 in-register transpose (main loop, 4 dims per
// step) or _mm256_set_pd (dimension tail). Two independent 4-pair
// accumulator chains are interleaved to hide vaddpd latency.
//
// This TU is compiled with -mavx2 -ffp-contract=off (see
// src/cluster/CMakeLists.txt): no FMA contraction is allowed anywhere
// in it, because fl(a*b+c) != fl(fl(a*b)+c) would break parity.
#include "cluster/simd/kernels_internal.hpp"
#include "cluster/simd/simd.hpp"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstddef>

#include "cluster/simd/kernels_ref.hpp"

namespace incprof::cluster::simd {
namespace {

// Gathers dims j..j+3 of rows r0..r3 into four column vectors:
// ck = {r0[j+k], r1[j+k], r2[j+k], r3[j+k]} (lane t = row t).
inline void load_cols4(const double* r0, const double* r1, const double* r2,
                       const double* r3, std::size_t j, __m256d& c0,
                       __m256d& c1, __m256d& c2, __m256d& c3) {
  const __m256d v0 = _mm256_loadu_pd(r0 + j);
  const __m256d v1 = _mm256_loadu_pd(r1 + j);
  const __m256d v2 = _mm256_loadu_pd(r2 + j);
  const __m256d v3 = _mm256_loadu_pd(r3 + j);
  const __m256d t0 = _mm256_unpacklo_pd(v0, v1);
  const __m256d t1 = _mm256_unpackhi_pd(v0, v1);
  const __m256d t2 = _mm256_unpacklo_pd(v2, v3);
  const __m256d t3 = _mm256_unpackhi_pd(v2, v3);
  c0 = _mm256_permute2f128_pd(t0, t2, 0x20);
  c1 = _mm256_permute2f128_pd(t1, t3, 0x20);
  c2 = _mm256_permute2f128_pd(t0, t2, 0x31);
  c3 = _mm256_permute2f128_pd(t1, t3, 0x31);
}

inline __m256d load_col1(const double* r0, const double* r1, const double* r2,
                         const double* r3, std::size_t j) {
  return _mm256_set_pd(r3[j], r2[j], r1[j], r0[j]);
}

// out[t] = sum_j fl((a[j]-rows[t][j])^2) accumulated in j order, for
// four pairs at once. One accumulator chain; callers interleave two.
inline __m256d sq4(const double* a, const double* r0, const double* r1,
                   const double* r2, const double* r3, std::size_t d) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    __m256d c0, c1, c2, c3;
    load_cols4(r0, r1, r2, r3, j, c0, c1, c2, c3);
    const __m256d d0 = _mm256_sub_pd(_mm256_broadcast_sd(a + j), c0);
    const __m256d d1 = _mm256_sub_pd(_mm256_broadcast_sd(a + j + 1), c1);
    const __m256d d2 = _mm256_sub_pd(_mm256_broadcast_sd(a + j + 2), c2);
    const __m256d d3 = _mm256_sub_pd(_mm256_broadcast_sd(a + j + 3), c3);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d0, d0));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d1, d1));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d2, d2));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d3, d3));
  }
  for (; j < d; ++j) {
    const __m256d diff = _mm256_sub_pd(_mm256_broadcast_sd(a + j),
                                       load_col1(r0, r1, r2, r3, j));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  }
  return acc;
}

void avx2_squared_euclidean(const double* a, const double* const* rows,
                            std::size_t count, std::size_t d, double* out) {
  std::size_t t = 0;
  // Two independent 4-pair chains per step hide the vaddpd latency.
  for (; t + 8 <= count; t += 8) {
    _mm256_storeu_pd(out + t,
                     sq4(a, rows[t], rows[t + 1], rows[t + 2], rows[t + 3], d));
    _mm256_storeu_pd(out + t + 4, sq4(a, rows[t + 4], rows[t + 5],
                                      rows[t + 6], rows[t + 7], d));
  }
  for (; t + 4 <= count; t += 4) {
    _mm256_storeu_pd(out + t,
                     sq4(a, rows[t], rows[t + 1], rows[t + 2], rows[t + 3], d));
  }
  for (; t < count; ++t) out[t] = ref::squared_euclidean(a, rows[t], d);
}

// |x| = clear the sign bit — identical to std::fabs, NaN payloads
// included, so the manhattan lanes stay bitwise-faithful.
inline __m256d abs_pd(__m256d x) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), x);
}

inline __m256d man4(const double* a, const double* r0, const double* r1,
                    const double* r2, const double* r3, std::size_t d) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j + 4 <= d; j += 4) {
    __m256d c0, c1, c2, c3;
    load_cols4(r0, r1, r2, r3, j, c0, c1, c2, c3);
    acc = _mm256_add_pd(
        acc, abs_pd(_mm256_sub_pd(_mm256_broadcast_sd(a + j), c0)));
    acc = _mm256_add_pd(
        acc, abs_pd(_mm256_sub_pd(_mm256_broadcast_sd(a + j + 1), c1)));
    acc = _mm256_add_pd(
        acc, abs_pd(_mm256_sub_pd(_mm256_broadcast_sd(a + j + 2), c2)));
    acc = _mm256_add_pd(
        acc, abs_pd(_mm256_sub_pd(_mm256_broadcast_sd(a + j + 3), c3)));
  }
  for (; j < d; ++j) {
    acc = _mm256_add_pd(acc, abs_pd(_mm256_sub_pd(_mm256_broadcast_sd(a + j),
                                                  load_col1(r0, r1, r2, r3, j))));
  }
  return acc;
}

void avx2_manhattan(const double* a, const double* const* rows,
                    std::size_t count, std::size_t d, double* out) {
  std::size_t t = 0;
  for (; t + 8 <= count; t += 8) {
    _mm256_storeu_pd(out + t,
                     man4(a, rows[t], rows[t + 1], rows[t + 2], rows[t + 3], d));
    _mm256_storeu_pd(out + t + 4, man4(a, rows[t + 4], rows[t + 5],
                                       rows[t + 6], rows[t + 7], d));
  }
  for (; t + 4 <= count; t += 4) {
    _mm256_storeu_pd(out + t,
                     man4(a, rows[t], rows[t + 1], rows[t + 2], rows[t + 3], d));
  }
  for (; t < count; ++t) out[t] = ref::manhattan(a, rows[t], d);
}

// Four pairs' CosineParts accumulated in j order; the shared scalar
// finish (zero-vector convention, clamps) then runs per lane.
void avx2_cosine(const double* a, const double* const* rows,
                 std::size_t count, std::size_t d, double* out) {
  std::size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    const double* r0 = rows[t];
    const double* r1 = rows[t + 1];
    const double* r2 = rows[t + 2];
    const double* r3 = rows[t + 3];
    __m256d dot = _mm256_setzero_pd();
    __m256d na = _mm256_setzero_pd();
    __m256d nb = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 4 <= d; j += 4) {
      __m256d c0, c1, c2, c3;
      load_cols4(r0, r1, r2, r3, j, c0, c1, c2, c3);
      const __m256d a0 = _mm256_broadcast_sd(a + j);
      const __m256d a1 = _mm256_broadcast_sd(a + j + 1);
      const __m256d a2 = _mm256_broadcast_sd(a + j + 2);
      const __m256d a3 = _mm256_broadcast_sd(a + j + 3);
      dot = _mm256_add_pd(dot, _mm256_mul_pd(a0, c0));
      na = _mm256_add_pd(na, _mm256_mul_pd(a0, a0));
      nb = _mm256_add_pd(nb, _mm256_mul_pd(c0, c0));
      dot = _mm256_add_pd(dot, _mm256_mul_pd(a1, c1));
      na = _mm256_add_pd(na, _mm256_mul_pd(a1, a1));
      nb = _mm256_add_pd(nb, _mm256_mul_pd(c1, c1));
      dot = _mm256_add_pd(dot, _mm256_mul_pd(a2, c2));
      na = _mm256_add_pd(na, _mm256_mul_pd(a2, a2));
      nb = _mm256_add_pd(nb, _mm256_mul_pd(c2, c2));
      dot = _mm256_add_pd(dot, _mm256_mul_pd(a3, c3));
      na = _mm256_add_pd(na, _mm256_mul_pd(a3, a3));
      nb = _mm256_add_pd(nb, _mm256_mul_pd(c3, c3));
    }
    for (; j < d; ++j) {
      const __m256d av = _mm256_broadcast_sd(a + j);
      const __m256d col = load_col1(r0, r1, r2, r3, j);
      dot = _mm256_add_pd(dot, _mm256_mul_pd(av, col));
      na = _mm256_add_pd(na, _mm256_mul_pd(av, av));
      nb = _mm256_add_pd(nb, _mm256_mul_pd(col, col));
    }
    alignas(32) double dot_l[4], na_l[4], nb_l[4];
    _mm256_store_pd(dot_l, dot);
    _mm256_store_pd(na_l, na);
    _mm256_store_pd(nb_l, nb);
    for (int lane = 0; lane < 4; ++lane) {
      out[t + lane] =
          ref::cosine_finish({dot_l[lane], na_l[lane], nb_l[lane]});
    }
  }
  for (; t < count; ++t) out[t] = ref::cosine(a, rows[t], d);
}

// fp32 path: 8 float lanes per ymm. Column loads stay per-dimension
// (_mm256_set_ps) — the add chain, not the shuffles, bounds this loop.
void avx2_squared_euclidean_f32(const float* a, const float* const* rows,
                                std::size_t count, std::size_t d, float* out) {
  std::size_t t = 0;
  for (; t + 8 <= count; t += 8) {
    const float* r0 = rows[t];
    const float* r1 = rows[t + 1];
    const float* r2 = rows[t + 2];
    const float* r3 = rows[t + 3];
    const float* r4 = rows[t + 4];
    const float* r5 = rows[t + 5];
    const float* r6 = rows[t + 6];
    const float* r7 = rows[t + 7];
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t j = 0; j < d; ++j) {
      const __m256 col = _mm256_set_ps(r7[j], r6[j], r5[j], r4[j], r3[j],
                                       r2[j], r1[j], r0[j]);
      const __m256 diff = _mm256_sub_ps(_mm256_broadcast_ss(a + j), col);
      acc = _mm256_add_ps(acc, _mm256_mul_ps(diff, diff));
    }
    _mm256_storeu_ps(out + t, acc);
  }
  for (; t < count; ++t) out[t] = ref::squared_euclidean_f32(a, rows[t], d);
}

constexpr BatchKernels kAvx2Kernels{
    avx2_squared_euclidean,
    avx2_manhattan,
    avx2_cosine,
    avx2_squared_euclidean_f32,
};

}  // namespace

const BatchKernels* avx2_kernels() noexcept { return &kAvx2Kernels; }

}  // namespace incprof::cluster::simd

#else  // non-x86: tier never available

namespace incprof::cluster::simd {
const BatchKernels* avx2_kernels() noexcept { return nullptr; }
}  // namespace incprof::cluster::simd

#endif
