// THE scalar reference loops for the distance kernels. Every SIMD tier
// must reproduce these bitwise: a vector lane never accelerates *one*
// pair's reduction (that would reorder the FP sum); instead each lane
// owns a *different* pair and replays exactly this op sequence for it.
// The public kernels in distance.cpp and the scalar batch tier both
// inline these, so "scalar reference" is one piece of code, not two
// copies that could drift.
//
// Do not "optimize" these loops: their op-for-op shape (separate
// subtract, multiply, add — no FMA contraction, see the cluster
// library's -ffp-contract=off) is the §6 determinism contract's
// canonical reduction order.
#pragma once

#include <cmath>
#include <cstddef>

namespace incprof::cluster::simd::ref {

inline double squared_euclidean(const double* a, const double* b,
                                std::size_t n) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

inline double manhattan(const double* a, const double* b,
                        std::size_t n) noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

/// One-pass cosine accumulators. Split from the finish so vector tiers
/// can produce the three sums per lane and then run the *same* scalar
/// finish — the zero-vector convention and clamps stay in one place.
struct CosineParts {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
};

inline CosineParts cosine_parts(const double* a, const double* b,
                                std::size_t n) noexcept {
  CosineParts p;
  for (std::size_t i = 0; i < n; ++i) {
    p.dot += a[i] * b[i];
    p.na += a[i] * a[i];
    p.nb += b[i] * b[i];
  }
  return p;
}

inline double cosine_finish(const CosineParts& p) noexcept {
  // A zero vector has no direction: against another zero vector it is
  // identical (distance 0), but against any busy interval it must be
  // maximally distant — returning 0 here made every idle interval look
  // identical to every busy one.
  if (p.na == 0.0 && p.nb == 0.0) return 0.0;
  if (p.na == 0.0 || p.nb == 0.0) return 1.0;
  double sim = p.dot / (std::sqrt(p.na) * std::sqrt(p.nb));
  if (sim > 1.0) sim = 1.0;
  if (sim < -1.0) sim = -1.0;
  return 1.0 - sim;
}

inline double cosine(const double* a, const double* b,
                     std::size_t n) noexcept {
  return cosine_finish(cosine_parts(a, b, n));
}

/// fp32 twin of squared_euclidean for the opt-in --fp32 distance path.
/// Same canonical order, float precision; the fp64 kernels remain the
/// determinism contract — fp32 divergence is explicitly gated (§6).
inline float squared_euclidean_f32(const float* a, const float* b,
                                   std::size_t n) noexcept {
  float s = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace incprof::cluster::simd::ref
