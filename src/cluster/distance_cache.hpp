// Shared pairwise-distance cache for the analysis engine. The k-sweep
// scores every k >= 2 with the silhouette, DBSCAN scans neighborhoods,
// and suggest_eps ranks k-th neighbor distances — all over the same
// O(n^2 * d) pairwise-distance set, which the serial pipeline used to
// recompute from scratch at every consumer. DistanceCache computes it
// once per feature space (optionally fanned out over a ThreadPool) and
// serves every consumer from the same condensed upper-triangular
// buffer.
//
// Exactness: entries are squared_euclidean(row(i), row(j)) values, the
// very expression the uncached code paths evaluate ((a-b)^2 is
// symmetric in IEEE arithmetic), so cached and uncached analyses are
// bit-identical. The fill runs through the SIMD batch kernels, which
// are lane-per-pair bitwise-identical to the scalar reference, so this
// holds at every dispatch tier.
//
// Memory bound: n*(n-1)/2 doubles — ~4 MB for the paper's 1000-interval
// scale, ~400 MB at n = 10^4.5; bytes_required(n) lets callers gate the
// trade (sweep_k skips the cache above kAutoCacheMaxRows). All size
// arithmetic is overflow-checked: adversarial n makes build() return an
// empty cache (and log) instead of wrapping into UB, and
// bytes_required saturates to SIZE_MAX so budget gates fail closed.
#pragma once

#include "cluster/checked.hpp"
#include "cluster/matrix.hpp"

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace incprof::util {
class ThreadPool;
}  // namespace incprof::util

namespace incprof::cluster {

/// Immutable condensed matrix of pairwise squared Euclidean distances
/// between the rows of one feature matrix. Thread-safe for concurrent
/// reads after build() returns.
class DistanceCache {
 public:
  /// Empty cache over zero points.
  DistanceCache() = default;

  /// Computes all n*(n-1)/2 pairwise squared distances, fanning the row
  /// blocks out over `pool` when one is given (build is deterministic
  /// either way: every entry is an independent slot). Returns an empty
  /// cache (size() == 0) and logs when the condensed size overflows or
  /// cannot be allocated.
  static DistanceCache build(const Matrix& points,
                             util::ThreadPool* pool = nullptr);

  /// fp32 twin for the opt-in --fp32 path: distances are computed in
  /// float (from a float copy of the rows) and widened into the same
  /// condensed layout. NOT covered by the bitwise fp64 contract —
  /// callers gate it explicitly and may verify with
  /// max_relative_divergence().
  static DistanceCache build_fp32(const Matrix& points,
                                  util::ThreadPool* pool = nullptr);

  /// Largest |a - b| / max(|b|, 1e-12) over all condensed entries of
  /// two same-size caches (fp32 vs fp64 verify). Returns 0 for empty
  /// or mismatched caches.
  static double max_relative_divergence(const DistanceCache& a,
                                        const DistanceCache& b) noexcept;

  /// Heap bytes a cache over n rows requires; saturates to SIZE_MAX
  /// when the count overflows, so "fits under budget" gates fail
  /// closed for adversarial n.
  static std::size_t bytes_required(std::size_t n) noexcept {
    const auto pairs = checked_pair_count(n);
    if (!pairs) return std::numeric_limits<std::size_t>::max();
    const auto bytes = checked_mul(*pairs, sizeof(double));
    return bytes ? *bytes : std::numeric_limits<std::size_t>::max();
  }

  /// Number of rows the cache was built over.
  std::size_t size() const noexcept { return n_; }

  /// Squared Euclidean distance between rows i and j. Preconditions:
  /// i, j < size().
  double dist2(std::size_t i, std::size_t j) const noexcept {
    if (i == j) return 0.0;
    if (i > j) std::swap(i, j);
    return d2_[i * (2 * n_ - i - 1) / 2 + (j - i - 1)];
  }

  /// Euclidean distance (sqrt of dist2 — exactly what euclidean()
  /// computes, so cached consumers match uncached ones bitwise).
  double dist(std::size_t i, std::size_t j) const noexcept {
    return std::sqrt(dist2(i, j));
  }

 private:
  std::size_t n_ = 0;
  /// Condensed upper triangle, row-major: entry (i, j) for i < j lives
  /// at i*(2n-i-1)/2 + (j-i-1).
  std::vector<double> d2_;
};

}  // namespace incprof::cluster
