// Distance metrics over feature vectors. k-means uses squared Euclidean
// internally; Algorithm 1 sorts intervals by Euclidean distance to the
// cluster centroid (paper, Section V-B, line 3).
//
// These single-pair entry points are the scalar reference tier (they
// inline src/cluster/simd/kernels_ref.hpp); the vectorized variants
// live behind src/cluster/simd/simd.hpp as batch kernels and are
// bitwise-identical by construction. A width mismatch between the two
// spans aborts with a diagnostic in every build mode — the old
// debug-only assert silently read out of bounds in release builds.
#pragma once

#include <span>

namespace incprof::cluster {

/// Squared Euclidean distance. Aborts if a.size() != b.size().
double squared_euclidean(std::span<const double> a,
                         std::span<const double> b) noexcept;

/// Euclidean (L2) distance.
double euclidean(std::span<const double> a,
                 std::span<const double> b) noexcept;

/// Manhattan (L1) distance. Available for the feature-ablation bench.
double manhattan(std::span<const double> a,
                 std::span<const double> b) noexcept;

/// Cosine distance (1 - cosine similarity). Zero-vector convention: two
/// all-zero vectors are identical (0.0); a zero vector against a
/// non-zero one is maximally distant (1.0) — an idle interval must not
/// compare equal to a busy one.
double cosine(std::span<const double> a, std::span<const double> b) noexcept;

}  // namespace incprof::cluster
