// Cluster-quality measures: mean silhouette (the paper's alternative k
// selector) and adjusted Rand index (used by tests and ablation benches to
// compare clusterings against known workload phase structure).
#pragma once

#include "cluster/matrix.hpp"

#include <cstddef>
#include <vector>

namespace incprof::util {
class ThreadPool;
}  // namespace incprof::util

namespace incprof::cluster {

class DistanceCache;

/// Mean silhouette coefficient over all points, in [-1, 1]. Returns 0 for
/// k <= 1 or n <= k (silhouette is undefined there; 0 is the conventional
/// "no structure" score, which makes the k-sweep comparable).
double mean_silhouette(const Matrix& points,
                       const std::vector<std::size_t>& assignments);

/// Same measure served from a DistanceCache built over the same rows
/// and/or fanned out over a ThreadPool. Each point's silhouette is an
/// independent slot and the mean is reduced serially in row order, so
/// every combination of {cache, pool} returns the bit-identical value.
double mean_silhouette(const Matrix& points,
                       const std::vector<std::size_t>& assignments,
                       const DistanceCache* cache,
                       util::ThreadPool* pool = nullptr);

/// Adjusted Rand index between two labelings of the same points; 1 for
/// identical partitions, ~0 for independent ones. Label values need not
/// match, only the induced partitions are compared.
double adjusted_rand_index(const std::vector<std::size_t>& a,
                           const std::vector<std::size_t>& b);

/// Purity of `predicted` against `truth`: the fraction of points whose
/// predicted cluster's majority-truth label matches their own.
double purity(const std::vector<std::size_t>& predicted,
              const std::vector<std::size_t>& truth);

}  // namespace incprof::cluster
