#include "core/aggregate.hpp"

#include "cluster/quality.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <algorithm>
#include <map>

namespace incprof::core {

std::vector<std::size_t> RankAggregate::outlier_ranks(double z) const {
  std::vector<std::size_t> out;
  const double mean = util::mean(rank_totals_sec);
  const double sd = util::stddev(rank_totals_sec);
  if (sd <= 0.0) return out;
  for (std::size_t r = 0; r < rank_totals_sec.size(); ++r) {
    if (std::abs(rank_totals_sec[r] - mean) > z * sd) out.push_back(r);
  }
  return out;
}

std::string RankAggregate::render(std::size_t max_rows) const {
  // Order functions by mean time, descending.
  std::vector<std::size_t> order(spreads.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return spreads[a].mean_sec > spreads[b].mean_sec;
  });

  util::TextTable t;
  t.set_title("cross-rank function spread (" +
              std::to_string(num_ranks) + " ranks)");
  t.set_header({"Function", "mean s", "sd s", "min s", "max s",
                "imbalance"});
  for (std::size_t c = 1; c < 6; ++c) t.set_align(c, util::Align::kRight);
  for (std::size_t i = 0; i < order.size() && i < max_rows; ++i) {
    const auto& s = spreads[order[i]];
    t.add_row({s.function, util::format_fixed(s.mean_sec, 2),
               util::format_fixed(s.stddev_sec, 3),
               util::format_fixed(s.min_sec, 2),
               util::format_fixed(s.max_sec, 2),
               util::format_fixed(s.imbalance, 3)});
  }
  return t.render();
}

RankAggregate aggregate_ranks(const std::vector<IntervalData>& ranks) {
  RankAggregate agg;
  agg.num_ranks = ranks.size();
  if (ranks.empty()) return agg;

  // Union of function universes.
  std::map<std::string, std::size_t> index;
  for (const auto& rank : ranks) {
    for (const auto& name : rank.function_names()) index.emplace(name, 0);
  }
  agg.functions.reserve(index.size());
  for (auto& [name, idx] : index) {
    idx = agg.functions.size();
    agg.functions.push_back(name);
  }

  // Per-rank totals per function.
  std::vector<std::vector<double>> totals(
      agg.functions.size(), std::vector<double>(ranks.size(), 0.0));
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const auto& data = ranks[r];
    agg.rank_intervals.push_back(data.num_intervals());
    double rank_total = 0.0;
    for (std::size_t f = 0; f < data.num_functions(); ++f) {
      double sum = 0.0;
      for (std::size_t i = 0; i < data.num_intervals(); ++i) {
        sum += data.self_seconds().at(i, f);
      }
      totals[index.at(data.function_names()[f])][r] = sum;
      rank_total += sum;
    }
    agg.rank_totals_sec.push_back(rank_total);
  }

  // Spread statistics.
  agg.spreads.reserve(agg.functions.size());
  for (std::size_t f = 0; f < agg.functions.size(); ++f) {
    FunctionSpread s;
    s.function = agg.functions[f];
    s.mean_sec = util::mean(totals[f]);
    s.stddev_sec = util::stddev(totals[f]);
    s.min_sec = util::min_of(totals[f]);
    s.max_sec = util::max_of(totals[f]);
    s.imbalance = s.min_sec > 0.0 ? s.max_sec / s.min_sec : 0.0;
    agg.spreads.push_back(std::move(s));
  }
  return agg;
}

double cross_rank_agreement(
    const std::vector<std::vector<std::size_t>>& per_rank_assignments) {
  const std::size_t n = per_rank_assignments.size();
  if (n < 2) return 1.0;
  std::size_t shortest = per_rank_assignments[0].size();
  for (const auto& a : per_rank_assignments) {
    shortest = std::min(shortest, a.size());
  }
  if (shortest == 0) return 1.0;

  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      std::vector<std::size_t> a(per_rank_assignments[i].begin(),
                                 per_rank_assignments[i].begin() +
                                     static_cast<std::ptrdiff_t>(shortest));
      std::vector<std::size_t> b(per_rank_assignments[j].begin(),
                                 per_rank_assignments[j].begin() +
                                     static_cast<std::ptrdiff_t>(shortest));
      total += cluster::adjusted_rand_index(a, b);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace incprof::core
