// Phase-transition structure: the first-order Markov view of a phase
// assignment sequence. This is the quantitative form of "understanding
// the varying behavior of long running applications" (paper,
// Introduction): which phases follow which, how long the application
// dwells in each, and what fraction of the run each phase occupies —
// the numbers behind plots like Figures 2-6.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace incprof::core {

/// First-order transition statistics over a phase sequence.
class PhaseTransitionModel {
 public:
  /// Builds the model from per-interval assignments. `num_phases` may
  /// exceed the largest label (empty phases get zero rows).
  static PhaseTransitionModel from_assignments(
      const std::vector<std::size_t>& assignments, std::size_t num_phases);

  /// Number of phases modelled.
  std::size_t num_phases() const noexcept { return k_; }

  /// Transitions observed from `from` to `to` (consecutive intervals).
  std::size_t count(std::size_t from, std::size_t to) const noexcept {
    return counts_[from * k_ + to];
  }

  /// P(next = to | current = from); 0 when `from` was never left nor
  /// re-entered (no outgoing observations).
  double probability(std::size_t from, std::size_t to) const noexcept;

  /// Fraction of intervals spent in `phase`.
  double occupancy(std::size_t phase) const noexcept;

  /// Mean dwell: average length of a maximal consecutive run of `phase`.
  double mean_dwell(std::size_t phase) const noexcept;

  /// Number of phase changes in the sequence.
  std::size_t num_transitions() const noexcept { return transitions_; }

  /// Most likely successor of `from` (excluding self-loops); returns
  /// num_phases() when the phase never hands off to another.
  std::size_t likely_successor(std::size_t from) const;

  /// Renders the transition-probability matrix plus occupancy/dwell
  /// columns as a text table.
  std::string render() const;

 private:
  std::size_t k_ = 0;
  std::vector<std::size_t> counts_;     // k x k, row-major
  std::vector<std::size_t> occupancy_;  // intervals per phase
  std::vector<std::size_t> runs_;       // maximal runs per phase
  std::size_t total_intervals_ = 0;
  std::size_t transitions_ = 0;
};

}  // namespace incprof::core
