// Per-function, per-phase rank (paper, Section V-B): "the fraction of
// intervals in the phase that the function is active in (i.e., has a
// non-zero execution time)". Algorithm 1 uses rank (descending) as the
// tie-breaker after call count (ascending) when choosing the function to
// instrument for an interval.
#pragma once

#include "core/detect.hpp"
#include "core/intervals.hpp"

#include <vector>

namespace incprof::core {

/// rank[phase][function] in [0, 1].
class RankTable {
 public:
  /// Computes ranks from interval activity and phase assignments.
  static RankTable compute(const IntervalData& data,
                           const PhaseDetection& detection);

  /// Rank of function column `f` within phase `p`.
  double rank(std::size_t p, std::size_t f) const noexcept {
    return ranks_[p][f];
  }

  /// Number of phases covered.
  std::size_t num_phases() const noexcept { return ranks_.size(); }

 private:
  std::vector<std::vector<double>> ranks_;
};

}  // namespace incprof::core
