// Cross-rank aggregation. The paper collects profiles from *all* MPI
// ranks but analyzes one representative rank, using the rest "for
// aggregate descriptive statistics" (Section VI) under the
// symmetric-parallelism assumption. This module makes that aggregate
// view explicit: per-function time statistics across ranks, cross-rank
// phase agreement, and detection of outlier ranks — the check that the
// representative-rank assumption actually holds before trusting a
// single rank's phase analysis.
#pragma once

#include "core/intervals.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace incprof::core {

/// Per-function cross-rank statistics (total self seconds per rank).
struct FunctionSpread {
  std::string function;
  double mean_sec = 0.0;
  double stddev_sec = 0.0;
  double min_sec = 0.0;
  double max_sec = 0.0;
  /// max/min ratio (1.0 = perfectly balanced); 0 when any rank is 0.
  double imbalance = 0.0;
};

/// Aggregate over the per-rank interval data sets.
struct RankAggregate {
  std::size_t num_ranks = 0;
  /// Function universe (union across ranks), sorted.
  std::vector<std::string> functions;
  /// Cross-rank spread per function, same order as `functions`.
  std::vector<FunctionSpread> spreads;
  /// Per-rank total self seconds.
  std::vector<double> rank_totals_sec;
  /// Per-rank interval counts.
  std::vector<std::size_t> rank_intervals;

  /// Ranks whose total self time deviates from the cross-rank mean by
  /// more than `z` standard deviations (load-imbalance suspects).
  std::vector<std::size_t> outlier_ranks(double z = 3.0) const;

  /// Renders the per-function spread table (top `max_rows` functions by
  /// mean time).
  std::string render(std::size_t max_rows = 20) const;
};

/// Builds the aggregate from per-rank interval data. Ranks may have
/// slightly different universes and interval counts (stragglers).
RankAggregate aggregate_ranks(const std::vector<IntervalData>& ranks);

/// Mean pairwise adjusted Rand index between per-rank phase assignments
/// (truncated to the shortest rank). 1.0 = all ranks agree exactly —
/// the quantitative form of "all of the applications being used are
/// symmetrically parallel and thus all processes behave similarly".
double cross_rank_agreement(
    const std::vector<std::vector<std::size_t>>& per_rank_assignments);

}  // namespace incprof::core
