// Online (streaming) phase tracking. The paper's motivation is
// *deployment-time* visibility: "efficiently tracking deployed
// application performance in the future by providing information to
// identify good instrumentation points" (Abstract), and its related-work
// section singles out Nickolayev et al.'s real-time statistical
// clustering. OnlinePhaseTracker is that deployment-side counterpart to
// the offline k-means pipeline: it consumes cumulative profile dumps one
// at a time as the collector produces them, differences them
// incrementally, and assigns each completed interval to a phase. It
// never revisits old intervals.
//
// Two modes, selected by OnlineConfig::streaming:
//
//  - **Exact mode** (default, the offline-comparable reference): one
//    feature column per distinct function name, leader clustering
//    against ragged growing centroids, full per-interval assignment
//    history retained. Per-dump work and memory grow with the function
//    universe and the session length — columns_, every centroid, and
//    assignments() all scale with how long the client has been
//    connected. Fine for offline replay and tests; NOT bounded.
//
//  - **Streaming mode** (`streaming = true`, the deployment path):
//    function names are hash-bucketed into a fixed `sketch_width`
//    vector (FNV-1a + splitmix64, the fleet HashRing construction;
//    colliding functions accumulate into the same bucket), centroids
//    are fixed-width with EWMA decay (sequential k-means), phases can
//    be *merged* online when an incrementally-maintained simplified
//    Davies-Bouldin pair term says two of them overlap, and the
//    assignment history is a fixed ring plus exact incremental
//    counters. observe() does O(|dump| + max_phases * sketch_width)
//    work and allocates nothing on the steady path, so per-interval
//    cost and memory stay bounded no matter how many intervals or
//    distinct functions a session produces.
#pragma once

#include "gmon/snapshot.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace incprof::core {

/// Streaming-tracker parameters.
struct OnlineConfig {
  /// A new interval joins its nearest phase when the Euclidean distance
  /// (raw self-seconds space) is at most this; otherwise a new phase
  /// opens. With 1-second intervals, 0.5 means "more than half the
  /// interval's time moved to different functions".
  double new_phase_distance = 0.5;
  /// Hard cap on phases (the paper's k_max); once reached, intervals
  /// always join the nearest phase.
  std::size_t max_phases = 8;
  /// Centroid update weight for the newest member: centroids are
  /// running means when 0 (default), or exponentially-weighted with
  /// this alpha in (0, 1].
  double ewma_alpha = 0.0;

  // --- streaming mode (bounded-memory deployment path) ------------------

  /// Master switch: hash-sketched fixed-width features, bounded
  /// assignment ring, and online phase merging. Off by default — the
  /// exact growing-column mode above stays the reference the offline
  /// pipeline is compared against.
  bool streaming = false;
  /// Feature-vector width in streaming mode. Function names are bucketed
  /// by hash; collisions add their self-time into the same bucket (an
  /// unbiased sketch of the exact vector's distances for the bucket
  /// counts used here). Typical: 256 or 1024.
  std::size_t sketch_width = 256;
  /// Per-interval assignments retained in streaming mode (a ring; exact
  /// counters continue past it). Exact mode keeps the full history.
  std::size_t assignment_window = 1024;
  /// Online k selection: in streaming mode, two phases are merged when
  /// their simplified Davies-Bouldin pair term
  /// (dispersion_i + dispersion_j) / centroid_distance(i, j) exceeds
  /// this ratio (both phases need kMergeMinCount members first).
  /// A pair of well-separated clusters scores < 1; overlapping ones
  /// score > 1. 0 disables merging.
  double merge_ratio = 1.0;

  /// Members each phase needs before it may take part in a merge —
  /// dispersion EWMAs are meaningless on a handful of samples.
  static constexpr std::size_t kMergeMinCount = 8;
};

/// One observation result.
struct OnlineObservation {
  /// Interval index (0-based) the dump completed.
  std::size_t interval = 0;
  /// Phase assigned to the interval.
  std::size_t phase = 0;
  /// True when this dump opened a brand-new phase.
  bool new_phase = false;
  /// True when the phase differs from the previous interval's (a phase
  /// transition — the event a deployment monitor would log).
  bool transition = false;
  /// Distance to the chosen centroid before the update.
  double distance = 0.0;
};

/// Streaming phase tracker over cumulative dumps (see the mode
/// discussion at the top of this header).
class OnlinePhaseTracker {
 public:
  static constexpr std::size_t kNoPhase = static_cast<std::size_t>(-1);

  explicit OnlinePhaseTracker(OnlineConfig config = {});

  /// Feeds the next cumulative snapshot (in seq order); returns the
  /// assignment of the interval it completes.
  OnlineObservation observe(const gmon::ProfileSnapshot& snap);
  /// Same, but takes ownership: the snapshot is moved into the
  /// tracker's previous-dump slot instead of deep-copied — the
  /// allocation-free path for call sites that are done with the dump
  /// (the daemon decodes a fresh snapshot per frame anyway).
  OnlineObservation observe(gmon::ProfileSnapshot&& snap);

  /// Full per-interval phase history. Exact mode only — in streaming
  /// mode history is bounded and this is empty; use
  /// recent_assignments() and the counters instead.
  const std::vector<std::size_t>& assignments() const noexcept {
    return history_;
  }

  /// The last min(num_intervals, assignment_window) assignments, oldest
  /// first. Works in both modes (exact mode: tail of the full history).
  std::vector<std::size_t> recent_assignments() const;

  /// Number of live phases (streaming merges can lower this).
  std::size_t num_phases() const noexcept { return live_phases_; }

  /// Phase slots ever opened — the exclusive upper bound of phase ids
  /// appearing in assignments (merged slots keep their id in history).
  std::size_t num_phase_slots() const noexcept { return phases_.size(); }

  /// Number of intervals observed (exact counter, not a history size).
  std::size_t num_intervals() const noexcept { return num_intervals_; }

  /// Phase transitions observed so far (exact counter).
  std::size_t transitions() const noexcept { return transitions_; }

  /// Members per phase slot, from the exact incremental counters — O(k),
  /// never a rescan of the history. A slot merged away reports 0 (its
  /// members were transferred to the survivor); the sum over slots is
  /// always num_intervals().
  std::vector<std::size_t> phase_sizes() const;

  /// Where a phase slot's members live now: the slot itself while live,
  /// or the final survivor after following any chain of online merges.
  std::size_t resolve_phase(std::size_t phase) const;

  /// Copy of a phase slot's centroid (exact mode: ragged, trailing
  /// columns implicitly zero; streaming mode: sketch_width wide).
  std::vector<double> centroid(std::size_t phase) const;

  /// Incrementally-maintained simplified Davies-Bouldin score over live
  /// phases: mean over i of max_{j != i} (S_i + S_j) / d(c_i, c_j),
  /// with S the EWMA dispersion. Lower is better-separated; 0 when
  /// fewer than two live phases. O(k^2) with k <= max_phases.
  double davies_bouldin() const;

  /// Approximate resident bytes of all tracker state (buffers counted
  /// at capacity). Bounded in streaming mode; grows with the function
  /// universe and session length in exact mode.
  std::size_t state_bytes() const;

  /// The function universe seen so far (column order of centroids).
  /// Exact mode only; empty in streaming mode (the sketch is one-way).
  std::vector<std::string> function_names() const;

  const OnlineConfig& config() const noexcept { return config_; }

 private:
  struct PhaseState {
    std::size_t count = 0;       // exact membership, incl. merged-in
    double dispersion = 0.0;     // EWMA distance-to-centroid
    std::size_t merged_into = kNoPhase;  // redirect when merged away
  };

  OnlineObservation observe_impl(const gmon::ProfileSnapshot& snap,
                                 gmon::ProfileSnapshot* movable);
  std::size_t column_for(const std::string& name);
  void vectorize(const gmon::ProfileSnapshot& delta);
  void merge_overlapping_phases();
  void merge_phases(std::size_t survivor, std::size_t victim);
  double centroid_distance(std::size_t a, std::size_t b) const;

  OnlineConfig config_;
  gmon::ProfileSnapshot previous_;
  gmon::ProfileSnapshot delta_;  // reused difference buffer
  std::map<std::string, std::size_t> columns_;  // exact mode only
  std::vector<double> v_;  // reused interval vector (sketch or columns)
  // Exact mode: ragged centroids, resized to the column count on use.
  // Streaming mode: every centroid is sketch_width wide.
  std::vector<std::vector<double>> centroids_;
  std::vector<PhaseState> phases_;
  std::size_t live_phases_ = 0;

  // Reused assignment scratch (capacity-stable after warmup, honoring
  // the zero-steady-path-allocation contract): live centroid pointers,
  // their phase slots, and the batched squared distances.
  std::vector<const double*> assign_ptrs_;
  std::vector<std::size_t> assign_slots_;
  std::vector<double> assign_d2_;

  // Assignment state: full history (exact mode), bounded ring
  // (streaming mode), and exact counters (both modes).
  std::vector<std::size_t> history_;
  std::vector<std::size_t> ring_;
  std::size_t num_intervals_ = 0;
  std::size_t transitions_ = 0;
  std::size_t last_phase_ = kNoPhase;
};

}  // namespace incprof::core
