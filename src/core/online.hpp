// Online (streaming) phase tracking. The paper's motivation is
// *deployment-time* visibility: "efficiently tracking deployed
// application performance in the future by providing information to
// identify good instrumentation points" (Abstract), and its related-work
// section singles out Nickolayev et al.'s real-time statistical
// clustering. OnlinePhaseTracker is that deployment-side counterpart to
// the offline k-means pipeline: it consumes cumulative profile dumps one
// at a time as the collector produces them, differences them
// incrementally, and assigns each completed interval to the nearest
// known phase centroid — or opens a new phase when nothing is close
// (leader clustering). It never revisits old intervals, so memory and
// per-dump work stay bounded.
#pragma once

#include "gmon/snapshot.hpp"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace incprof::core {

/// Streaming-tracker parameters.
struct OnlineConfig {
  /// A new interval joins its nearest phase when the Euclidean distance
  /// (raw self-seconds space) is at most this; otherwise a new phase
  /// opens. With 1-second intervals, 0.5 means "more than half the
  /// interval's time moved to different functions".
  double new_phase_distance = 0.5;
  /// Hard cap on phases (the paper's k_max); once reached, intervals
  /// always join the nearest phase.
  std::size_t max_phases = 8;
  /// Centroid update weight for the newest member: centroids are
  /// running means when 0 (default), or exponentially-weighted with
  /// this alpha in (0, 1].
  double ewma_alpha = 0.0;
};

/// One observation result.
struct OnlineObservation {
  /// Interval index (0-based) the dump completed.
  std::size_t interval = 0;
  /// Phase assigned to the interval.
  std::size_t phase = 0;
  /// True when this dump opened a brand-new phase.
  bool new_phase = false;
  /// True when the phase differs from the previous interval's (a phase
  /// transition — the event a deployment monitor would log).
  bool transition = false;
  /// Distance to the chosen centroid before the update.
  double distance = 0.0;
};

/// Streaming leader-clustering phase tracker over cumulative dumps.
class OnlinePhaseTracker {
 public:
  explicit OnlinePhaseTracker(OnlineConfig config = {});

  /// Feeds the next cumulative snapshot (in seq order); returns the
  /// assignment of the interval it completes.
  OnlineObservation observe(const gmon::ProfileSnapshot& snap);

  /// Per-interval phase assignments so far.
  const std::vector<std::size_t>& assignments() const noexcept {
    return assignments_;
  }

  /// Number of phases opened so far.
  std::size_t num_phases() const noexcept { return centroids_.size(); }

  /// Number of intervals observed.
  std::size_t num_intervals() const noexcept {
    return assignments_.size();
  }

  /// Members per phase.
  std::vector<std::size_t> phase_sizes() const;

  /// The function universe seen so far (column order of centroids).
  std::vector<std::string> function_names() const;

 private:
  std::size_t column_for(const std::string& name);

  OnlineConfig config_;
  gmon::ProfileSnapshot previous_;
  bool has_previous_ = false;
  std::map<std::string, std::size_t> columns_;
  // Ragged-safe centroid storage: every vector is resized to the current
  // column count on use.
  std::vector<std::vector<double>> centroids_;
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> assignments_;
};

}  // namespace incprof::core
