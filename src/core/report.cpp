#include "core/report.hpp"

#include <algorithm>
#include <cstdio>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace incprof::core {

std::map<std::pair<std::string, InstType>, unsigned> assign_heartbeat_ids(
    const SiteSelectionResult& result) {
  std::map<std::pair<std::string, InstType>, unsigned> ids;
  unsigned next = 1;
  for (const auto& phase : result.phases) {
    for (const auto& site : phase.sites) {
      const auto key = std::make_pair(site.function_name, site.type);
      if (ids.emplace(key, next).second) ++next;
    }
  }
  return ids;
}

std::string render_site_table(const std::string& app_name,
                              const SiteSelectionResult& result,
                              const std::vector<ManualSite>& manual_sites) {
  const auto hb_ids = assign_heartbeat_ids(result);

  util::TextTable t;
  t.set_title(app_name + " instrumented functions");
  t.set_header({"Phase ID", "HB ID", "Discovered Site Function", "Phase %",
                "App %", "Inst. Type"});
  t.set_align(0, util::Align::kRight);
  t.set_align(1, util::Align::kRight);
  t.set_align(3, util::Align::kRight);
  t.set_align(4, util::Align::kRight);

  for (const auto& phase : result.phases) {
    for (const auto& site : phase.sites) {
      const unsigned hb =
          hb_ids.at(std::make_pair(site.function_name, site.type));
      t.add_row({std::to_string(phase.phase), std::to_string(hb),
                 site.function_name,
                 util::format_pct(site.phase_fraction),
                 util::format_pct(site.app_fraction),
                 to_string(site.type)});
    }
  }
  if (!manual_sites.empty()) {
    t.add_section("Manual Instrumentation Sites");
    for (const auto& m : manual_sites) {
      t.add_row({"", "", m.function, "", "", to_string(m.type)});
    }
  }
  return t.render();
}

std::string render_phase_summary(const SiteSelectionResult& result) {
  util::TextTable t;
  t.set_header({"Phase", "Intervals", "Coverage %", "Sites"});
  t.set_align(0, util::Align::kRight);
  t.set_align(1, util::Align::kRight);
  t.set_align(2, util::Align::kRight);
  for (const auto& phase : result.phases) {
    std::vector<std::string> names;
    for (const auto& s : phase.sites) {
      names.push_back(s.function_name + "/" + to_string(s.type));
    }
    t.add_row({std::to_string(phase.phase),
               std::to_string(phase.intervals.size()),
               util::format_pct(phase.coverage), util::join(names, ", ")});
  }
  return t.render();
}

std::string render_phase_timeline(
    const std::vector<std::size_t>& assignments, std::size_t width) {
  if (assignments.empty() || width == 0) return "";
  const std::size_t n = assignments.size();
  const std::size_t cols = std::min(width, n);

  std::string strip;
  strip.reserve(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t lo = c * n / cols;
    std::size_t hi = (c + 1) * n / cols;
    if (hi <= lo) hi = lo + 1;
    // Majority phase within the bucket; '.' when no majority.
    std::size_t best_phase = assignments[lo];
    std::size_t best_count = 0;
    for (std::size_t i = lo; i < hi && i < n; ++i) {
      std::size_t count = 0;
      for (std::size_t j = lo; j < hi && j < n; ++j) {
        if (assignments[j] == assignments[i]) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best_phase = assignments[i];
      }
    }
    const std::size_t span = std::min(hi, n) - lo;
    if (best_count * 2 <= span) {
      strip += '.';
    } else if (best_phase < 10) {
      strip += static_cast<char>('0' + best_phase);
    } else {
      strip += static_cast<char>('a' + (best_phase - 10) % 26);
    }
  }
  return "phase/interval |" + strip + "| 0.." + std::to_string(n) + "\n";
}

std::string render_k_sweep(const cluster::KSweep& sweep,
                           std::size_t chosen_index) {
  util::TextTable t;
  t.set_header({"k", "WCSS", "silhouette", "chosen"});
  t.set_align(0, util::Align::kRight);
  t.set_align(1, util::Align::kRight);
  t.set_align(2, util::Align::kRight);
  for (std::size_t i = 0; i < sweep.entries.size(); ++i) {
    const auto& e = sweep.entries[i];
    t.add_row({std::to_string(e.k),
               util::format_fixed(e.result.inertia, 3),
               util::format_fixed(e.silhouette, 3),
               i == chosen_index ? "*" : ""});
  }
  return t.render();
}

}  // namespace incprof::core
