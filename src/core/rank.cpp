#include "core/rank.hpp"

namespace incprof::core {

RankTable RankTable::compute(const IntervalData& data,
                             const PhaseDetection& detection) {
  RankTable table;
  const std::size_t m = data.num_functions();
  table.ranks_.assign(detection.num_phases, std::vector<double>(m, 0.0));

  for (std::size_t p = 0; p < detection.num_phases; ++p) {
    const auto& intervals = detection.phase_intervals[p];
    if (intervals.empty()) continue;
    auto& row = table.ranks_[p];
    for (const std::size_t i : intervals) {
      for (std::size_t f = 0; f < m; ++f) {
        if (data.active(i, f)) row[f] += 1.0;
      }
    }
    const double inv = 1.0 / static_cast<double>(intervals.size());
    for (std::size_t f = 0; f < m; ++f) row[f] *= inv;
  }
  return table;
}

}  // namespace incprof::core
