#include "core/merge.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace incprof::core {

SiteSelectionResult merge_phases_by_sites(const SiteSelectionResult& in,
                                          const IntervalData& data) {
  SiteSelectionResult out;
  out.threshold = in.threshold;

  // Group phases by their site-function set.
  std::map<std::set<std::size_t>, std::vector<std::size_t>> groups;
  std::vector<std::set<std::size_t>> keys;  // in first-appearance order
  for (std::size_t p = 0; p < in.phases.size(); ++p) {
    std::set<std::size_t> key;
    for (const auto& s : in.phases[p].sites) key.insert(s.function);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) keys.push_back(key);
    it->second.push_back(p);
  }

  const std::size_t total_intervals = data.num_intervals();
  for (const auto& key : keys) {
    const auto& members = groups[key];
    PhaseSites merged;
    merged.phase = out.phases.size();

    for (const std::size_t p : members) {
      const auto& src = in.phases[p];
      merged.intervals.insert(merged.intervals.end(),
                              src.intervals.begin(), src.intervals.end());
      for (const auto& s : src.sites) {
        const bool present = std::any_of(
            merged.sites.begin(), merged.sites.end(),
            [&](const SiteSelection& t) {
              return t.function == s.function && t.type == s.type;
            });
        if (!present) merged.sites.push_back(s);
      }
    }
    std::sort(merged.intervals.begin(), merged.intervals.end());

    // Recompute fractions and coverage over the merged interval set.
    const std::size_t n_phase = merged.intervals.size();
    std::size_t covered = 0;
    for (const std::size_t i : merged.intervals) {
      bool any_active = false;
      bool hit = false;
      for (const auto& s : merged.sites) {
        if (data.active(i, s.function)) {
          hit = true;
          break;
        }
      }
      if (!hit) {
        // Idle intervals count as covered, matching select_sites.
        any_active = false;
        for (std::size_t f = 0; f < data.num_functions(); ++f) {
          if (data.active(i, f)) {
            any_active = true;
            break;
          }
        }
      }
      if (hit || !any_active) ++covered;
    }
    merged.coverage =
        n_phase ? static_cast<double>(covered) / static_cast<double>(n_phase)
                : 0.0;

    for (auto& s : merged.sites) {
      std::size_t active = 0;
      for (const std::size_t i : merged.intervals) {
        if (data.active(i, s.function)) ++active;
      }
      s.phase_fraction = n_phase ? static_cast<double>(active) /
                                       static_cast<double>(n_phase)
                                 : 0.0;
      s.app_fraction = total_intervals
                           ? static_cast<double>(active) /
                                 static_cast<double>(total_intervals)
                           : 0.0;
    }
    out.phases.push_back(std::move(merged));
  }
  return out;
}

}  // namespace incprof::core
