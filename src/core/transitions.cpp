#include "core/transitions.hpp"

#include "util/strings.hpp"
#include "util/table.hpp"

#include <stdexcept>

namespace incprof::core {

PhaseTransitionModel PhaseTransitionModel::from_assignments(
    const std::vector<std::size_t>& assignments, std::size_t num_phases) {
  PhaseTransitionModel m;
  for (const auto a : assignments) {
    if (a >= num_phases) {
      throw std::invalid_argument(
          "PhaseTransitionModel: assignment exceeds num_phases");
    }
  }
  m.k_ = num_phases;
  m.counts_.assign(num_phases * num_phases, 0);
  m.occupancy_.assign(num_phases, 0);
  m.runs_.assign(num_phases, 0);
  m.total_intervals_ = assignments.size();

  for (std::size_t i = 0; i < assignments.size(); ++i) {
    ++m.occupancy_[assignments[i]];
    if (i == 0 || assignments[i] != assignments[i - 1]) {
      ++m.runs_[assignments[i]];
    }
    if (i > 0) {
      ++m.counts_[assignments[i - 1] * num_phases + assignments[i]];
      if (assignments[i] != assignments[i - 1]) ++m.transitions_;
    }
  }
  return m;
}

double PhaseTransitionModel::probability(std::size_t from,
                                         std::size_t to) const noexcept {
  std::size_t row = 0;
  for (std::size_t j = 0; j < k_; ++j) row += counts_[from * k_ + j];
  if (row == 0) return 0.0;
  return static_cast<double>(counts_[from * k_ + to]) /
         static_cast<double>(row);
}

double PhaseTransitionModel::occupancy(std::size_t phase) const noexcept {
  if (total_intervals_ == 0) return 0.0;
  return static_cast<double>(occupancy_[phase]) /
         static_cast<double>(total_intervals_);
}

double PhaseTransitionModel::mean_dwell(std::size_t phase) const noexcept {
  if (runs_[phase] == 0) return 0.0;
  return static_cast<double>(occupancy_[phase]) /
         static_cast<double>(runs_[phase]);
}

std::size_t PhaseTransitionModel::likely_successor(std::size_t from) const {
  std::size_t best = k_;
  std::size_t best_count = 0;
  for (std::size_t to = 0; to < k_; ++to) {
    if (to == from) continue;
    if (counts_[from * k_ + to] > best_count) {
      best_count = counts_[from * k_ + to];
      best = to;
    }
  }
  return best;
}

std::string PhaseTransitionModel::render() const {
  util::TextTable t;
  std::vector<std::string> header{"from\\to"};
  for (std::size_t j = 0; j < k_; ++j) header.push_back(std::to_string(j));
  header.push_back("occupancy %");
  header.push_back("mean dwell");
  t.set_header(header);
  for (std::size_t c = 1; c < header.size(); ++c) {
    t.set_align(c, util::Align::kRight);
  }
  for (std::size_t i = 0; i < k_; ++i) {
    std::vector<std::string> row{std::to_string(i)};
    for (std::size_t j = 0; j < k_; ++j) {
      row.push_back(util::format_fixed(probability(i, j), 2));
    }
    row.push_back(util::format_pct(occupancy(i)));
    row.push_back(util::format_fixed(mean_dwell(i), 1));
    t.add_row(row);
  }
  return t.render();
}

}  // namespace incprof::core
