// Feature-matrix construction for clustering. The paper clusters on
// per-function self time only; it reports experimenting with call counts
// and children time "but have not found these to improve the results, and
// sometimes to worsen them" (Section V-A). All three feature families are
// available here so bench_ablation_features can reproduce that finding.
#pragma once

#include "cluster/matrix.hpp"
#include "cluster/standardize.hpp"
#include "core/intervals.hpp"

namespace incprof::core {

/// Which per-function columns to include in each interval's vector.
struct FeatureOptions {
  /// gprof 'self' seconds — the paper's feature set.
  bool use_self_time = true;
  /// Per-interval call counts (log1p-compressed: counts span orders of
  /// magnitude and would otherwise dominate after standardization).
  bool use_calls = false;
  /// Children time (inclusive - self), seconds.
  bool use_children = false;
  /// Z-score each column before clustering. Off by default: the paper
  /// clusters raw per-function self seconds, and z-scoring inflates
  /// rarely-active functions into their own phases (see
  /// bench_ablation_features).
  bool standardize = false;
};

/// The assembled clustering input: the matrix rows are intervals and the
/// standardizer maps between feature space and raw units.
struct FeatureSpace {
  cluster::Matrix features;
  /// Fitted only when options.standardize; identity otherwise.
  cluster::Standardizer standardizer;
  FeatureOptions options;
  /// Columns per included family (for ablation reporting).
  std::size_t columns_per_family = 0;
};

/// Builds the feature space from interval data. Throws
/// std::invalid_argument if no feature family is enabled or the interval
/// data is empty.
FeatureSpace build_features(const IntervalData& data,
                            const FeatureOptions& options = {});

}  // namespace incprof::core
