#include "core/intervals.hpp"

#include <algorithm>
#include <map>

namespace incprof::core {

IntervalData IntervalData::from_cumulative(
    const std::vector<gmon::ProfileSnapshot>& snapshots) {
  IntervalData data;
  if (snapshots.empty()) return data;

  // Function universe: every name appearing in any snapshot (the final
  // cumulative snapshot contains them all, but be robust to pruned dumps).
  std::map<std::string, std::size_t> index;
  for (const auto& snap : snapshots) {
    for (const auto& fp : snap.functions()) index.emplace(fp.name, 0);
  }
  data.function_names_.reserve(index.size());
  for (auto& [name, idx] : index) {
    idx = data.function_names_.size();
    data.function_names_.push_back(name);
  }

  const std::size_t n = snapshots.size();
  const std::size_t m = data.function_names_.size();
  data.self_seconds_ = cluster::Matrix(n, m);
  data.calls_ = cluster::Matrix(n, m);
  data.children_seconds_ = cluster::Matrix(n, m);
  data.timestamps_sec_.reserve(n);

  const gmon::ProfileSnapshot empty;
  for (std::size_t i = 0; i < n; ++i) {
    const gmon::ProfileSnapshot& prev = i == 0 ? empty : snapshots[i - 1];
    const gmon::ProfileSnapshot delta =
        gmon::difference(snapshots[i], prev);
    for (const auto& fp : delta.functions()) {
      const auto it = index.find(fp.name);
      const std::size_t j = it->second;
      data.self_seconds_.at(i, j) =
          static_cast<double>(fp.self_ns) / 1e9;
      data.calls_.at(i, j) = static_cast<double>(fp.calls);
      const auto children = fp.inclusive_ns - fp.self_ns;
      data.children_seconds_.at(i, j) =
          children > 0 ? static_cast<double>(children) / 1e9 : 0.0;
    }
    data.timestamps_sec_.push_back(
        static_cast<double>(snapshots[i].timestamp_ns()) / 1e9);
  }
  return data;
}

int IntervalData::function_index(std::string_view name) const noexcept {
  const auto it = std::lower_bound(function_names_.begin(),
                                   function_names_.end(), name);
  if (it != function_names_.end() && *it == name) {
    return static_cast<int>(it - function_names_.begin());
  }
  return -1;
}

double IntervalData::total_self_seconds() const noexcept {
  double total = 0.0;
  // Row by row: Matrix storage is stride-padded, so the raw span holds
  // pad lanes that must not enter the sum.
  for (std::size_t r = 0; r < self_seconds_.rows(); ++r) {
    for (double v : self_seconds_.row(r)) total += v;
  }
  return total;
}

}  // namespace incprof::core
