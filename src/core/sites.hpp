// Algorithm 1 (paper, Section V-B): greedy instrumentation-site
// identification per phase.
//
// For each cluster (phase), intervals are visited in order of distance to
// the cluster centroid (most representative first). An interval already
// covered — some previously selected site function is active in it — is
// skipped. Otherwise the interval's active functions are sorted by call
// count ascending (prefer long-running functions over chatty utility
// functions) then rank descending (prefer functions active across the
// phase), and the top function becomes a site: "body" if it was called
// within the interval, "loop" if it had zero calls (it continued running
// from an earlier invocation, so a loop inside it must be instrumented).
// Selection stops once the configured fraction of the phase's intervals
// is covered (the paper uses a 95 % threshold to skip outliers).
#pragma once

#include "core/detect.hpp"
#include "core/intervals.hpp"
#include "core/rank.hpp"

#include <string>
#include <vector>

namespace incprof::core {

/// Site designation (paper, Section V-B).
enum class InstType {
  /// Instrument the function body (entry and exit).
  kBody,
  /// Instrument a loop within the function body.
  kLoop,
};

/// Human-readable name ("body" / "loop").
const char* to_string(InstType t) noexcept;

/// One selected instrumentation site within a phase.
struct SiteSelection {
  /// Function column index in the IntervalData universe.
  std::size_t function = 0;
  /// Function name (copied for convenience).
  std::string function_name;
  InstType type = InstType::kBody;
  /// Fraction of this phase's intervals in which the function is active
  /// (the "Phase %" column of Tables II-VI).
  double phase_fraction = 0.0;
  /// Fraction of *all* intervals that are in this phase and have the
  /// function active (the "App %" column).
  double app_fraction = 0.0;
};

/// One phase with its selected sites.
struct PhaseSites {
  std::size_t phase = 0;
  /// Intervals belonging to the phase.
  std::vector<std::size_t> intervals;
  /// Selected sites, in selection order.
  std::vector<SiteSelection> sites;
  /// Fraction of the phase's intervals covered by the selected sites.
  double coverage = 0.0;
};

/// Full Algorithm 1 output.
struct SiteSelectionResult {
  std::vector<PhaseSites> phases;
  /// The coverage threshold used.
  double threshold = 0.0;

  /// Total number of distinct (function, type) sites across phases.
  std::size_t num_unique_sites() const;
};

/// Algorithm 1 parameters.
struct SiteSelectorConfig {
  /// Stop selecting once this fraction of a phase's intervals is covered.
  double coverage_threshold = 0.95;
};

/// Runs Algorithm 1. `space` must be the feature space the detection was
/// computed in (distances to centroids are taken there); `ranks` from
/// RankTable::compute on the same detection.
SiteSelectionResult select_sites(const IntervalData& data,
                                 const FeatureSpace& space,
                                 const PhaseDetection& detection,
                                 const RankTable& ranks,
                                 const SiteSelectorConfig& config = {});

}  // namespace incprof::core
