#include "core/features.hpp"

#include <cmath>
#include <stdexcept>

namespace incprof::core {

FeatureSpace build_features(const IntervalData& data,
                            const FeatureOptions& options) {
  if (!options.use_self_time && !options.use_calls &&
      !options.use_children) {
    throw std::invalid_argument(
        "build_features: at least one feature family required");
  }
  if (data.num_intervals() == 0 || data.num_functions() == 0) {
    throw std::invalid_argument("build_features: empty interval data");
  }

  const std::size_t n = data.num_intervals();
  const std::size_t m = data.num_functions();
  std::size_t families = 0;
  families += options.use_self_time ? 1 : 0;
  families += options.use_calls ? 1 : 0;
  families += options.use_children ? 1 : 0;

  cluster::Matrix feats(n, m * families);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t base = 0;
    if (options.use_self_time) {
      for (std::size_t j = 0; j < m; ++j) {
        feats.at(i, base + j) = data.self_seconds().at(i, j);
      }
      base += m;
    }
    if (options.use_calls) {
      for (std::size_t j = 0; j < m; ++j) {
        feats.at(i, base + j) = std::log1p(data.calls().at(i, j));
      }
      base += m;
    }
    if (options.use_children) {
      for (std::size_t j = 0; j < m; ++j) {
        feats.at(i, base + j) = data.children_seconds().at(i, j);
      }
      base += m;
    }
  }

  FeatureSpace space;
  space.options = options;
  space.columns_per_family = m;
  if (options.standardize) {
    space.standardizer = cluster::Standardizer::fit(feats);
    space.features = space.standardizer.transform(feats);
  } else {
    space.features = std::move(feats);
  }
  return space;
}

}  // namespace incprof::core
