// Interval data: the first analysis step (paper, Section V-A).
//
// "The incremental profile data is written out by gprof as totals since
// the beginning of the program, so the first step is to subtract the
// previous interval from each interval to create interval profile data.
// Each interval is then represented as a tuple of function execution
// times (the gprof 'self' time), where each unique function is an
// attribute dimension of the data."
//
// IntervalData is that tuple set in matrix form: one row per interval,
// one column per function observed anywhere in the run, with parallel
// matrices for self seconds, call counts and children (inclusive-self)
// seconds.
#pragma once

#include "cluster/matrix.hpp"
#include "gmon/snapshot.hpp"

#include <string>
#include <vector>

namespace incprof::core {

/// Differenced per-interval profile data over a common function universe.
class IntervalData {
 public:
  /// Builds interval data from cumulative snapshots, differencing
  /// consecutive dumps. The first snapshot differences against zero.
  /// Snapshots must be ordered by seq (the scanner guarantees this).
  /// Intervals with identical consecutive timestamps are kept (they are
  /// all-zero rows) so the interval axis matches the dump sequence.
  static IntervalData from_cumulative(
      const std::vector<gmon::ProfileSnapshot>& snapshots);

  /// Number of intervals (rows).
  std::size_t num_intervals() const noexcept {
    return self_seconds_.rows();
  }

  /// Number of functions (columns).
  std::size_t num_functions() const noexcept {
    return function_names_.size();
  }

  /// Sorted function names; column j of every matrix is function j.
  const std::vector<std::string>& function_names() const noexcept {
    return function_names_;
  }

  /// Column index of `name`, or -1 if the function never appeared.
  int function_index(std::string_view name) const noexcept;

  /// Per-interval self time, seconds.
  const cluster::Matrix& self_seconds() const noexcept {
    return self_seconds_;
  }

  /// Per-interval call counts.
  const cluster::Matrix& calls() const noexcept { return calls_; }

  /// Per-interval children time (inclusive - self), seconds.
  const cluster::Matrix& children_seconds() const noexcept {
    return children_seconds_;
  }

  /// True if function j was active (nonzero self time) in interval i.
  bool active(std::size_t i, std::size_t j) const noexcept {
    return self_seconds_.at(i, j) > 0.0;
  }

  /// Interval end timestamps, seconds from run start.
  const std::vector<double>& timestamps_sec() const noexcept {
    return timestamps_sec_;
  }

  /// Total self time over the entire run, seconds.
  double total_self_seconds() const noexcept;

 private:
  std::vector<std::string> function_names_;
  cluster::Matrix self_seconds_;
  cluster::Matrix calls_;
  cluster::Matrix children_seconds_;
  std::vector<double> timestamps_sec_;
};

}  // namespace incprof::core
