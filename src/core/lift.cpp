#include "core/lift.hpp"

#include <set>

namespace incprof::core {

namespace {

/// Finds the dominant caller of `callee`, or empty when none qualifies.
std::string dominant_caller(const gmon::CallGraphSnapshot& graph,
                            const std::string& callee,
                            const LiftConfig& cfg) {
  const auto inbound = graph.callers_of(callee);
  std::int64_t total = 0;
  for (const auto* e : inbound) total += e->count;
  if (total <= 0) return {};

  for (const auto* e : inbound) {
    if (e->caller == gmon::kSpontaneous) continue;
    if (static_cast<double>(e->count) >=
        cfg.dominance * static_cast<double>(total)) {
      if (cfg.max_caller_fanin > 0 &&
          graph.total_calls_into(e->caller) > cfg.max_caller_fanin) {
        return {};
      }
      return e->caller;
    }
  }
  return {};
}

}  // namespace

LiftResult lift_sites(const SiteSelectionResult& selection,
                      const gmon::CallGraphSnapshot& graph,
                      const LiftConfig& config) {
  LiftResult result;
  result.sites = selection;

  // Functions already chosen anywhere in the selection: lifting into one
  // of them would collapse two phases' sites into one function and lose
  // the distinction Algorithm 1 established.
  std::set<std::string> chosen;
  for (const auto& phase : selection.phases) {
    for (const auto& site : phase.sites) chosen.insert(site.function_name);
  }

  for (auto& phase : result.sites.phases) {
    for (auto& site : phase.sites) {
      if (site.type != InstType::kBody) continue;

      std::vector<std::string> chain{site.function_name};
      std::string current = site.function_name;
      for (std::size_t depth = 0; depth < config.max_depth; ++depth) {
        const std::string up = dominant_caller(graph, current, config);
        if (up.empty()) break;
        if (chosen.count(up)) break;  // already someone else's site
        chain.push_back(up);
        current = up;
      }
      if (chain.size() <= 1) continue;

      LiftDecision decision;
      decision.phase = phase.phase;
      decision.original = site.function_name;
      decision.lifted_to = current;
      decision.chain = chain;
      result.decisions.push_back(std::move(decision));

      site.function_name = current;
      // Phase%/App% still describe the original function's activity;
      // the lifted site fires once per caller invocation, which is the
      // same burst pattern by the dominance argument above.
    }
  }
  return result;
}

}  // namespace incprof::core
