// Fast-phase diagnosis. The paper's Gadget2 result (Section VI-E) is a
// negative one: the application "clearly has four main computation
// steps, each of which should be tracked with a heartbeat ... yet none
// are long-running phases that can be detected with our phase analysis.
// This points to a need for an alternative analysis scheme for
// applications with fast phases."
//
// This module supplies the *detector* for that situation: before
// trusting an interval-level phase analysis, measure how mixed the
// intervals are. When most profiled functions are co-active in most
// intervals (every interval contains a full cycle of the application's
// inner loop), interval clustering can only separate slow modulations —
// the per-step structure is invisible. The diagnosis quantifies that and
// estimates the interval a finer collection would need (from per-
// function call rates: an interval short enough that a single iteration
// no longer fits).
#pragma once

#include "core/intervals.hpp"

#include <string>
#include <vector>

namespace incprof::core {

/// Result of the fast-phase diagnosis.
struct FastPhaseDiagnosis {
  /// Mean pairwise co-activity (Jaccard over active-interval sets) of
  /// the top time-consuming functions. Near 1 = all hot code co-active
  /// in every interval; near 0 = sequenced phases (reported for
  /// context; the gate is fast_time_fraction).
  double coactivity = 0.0;

  /// Fraction of total self time spent in *pervasive cycling*
  /// functions — hot functions that complete whole iterations inside
  /// single intervals (median calls per active interval >= threshold)
  /// AND are active across essentially the entire run. Gadget2-like
  /// runs put most of their time here; sequenced runs (even ones whose
  /// inner kernels cycle, like MiniFE's CG) do not, because their hot
  /// functions are confined to segments.
  double fast_time_fraction = 0.0;

  /// Time-weighted mean iteration rate (calls per interval) over the
  /// cycling functions; 0 when there are none.
  double calls_per_interval = 0.0;

  /// True when the majority of execution time cycles sub-interval:
  /// interval-level clustering can only see slow modulation of it.
  bool fast_phased = false;

  /// Suggested collection interval (seconds) at which roughly one inner
  /// iteration would fit per interval — the granularity an alternative
  /// scheme would need. 0 when not fast-phased.
  double suggested_interval_sec = 0.0;

  /// The hot functions the diagnosis was computed over.
  std::vector<std::string> hot_functions;

  /// One-line human summary.
  std::string summary() const;
};

/// Diagnosis thresholds.
struct FastPhaseConfig {
  /// Functions jointly covering this fraction of total self time count
  /// as "hot" (utility functions below the cut are ignored).
  double hot_time_fraction = 0.9;
  /// Median calls per active interval at or above this marks a function
  /// as cycling sub-interval.
  double calls_threshold = 2.0;
  /// A cycling function only defeats interval analysis when it runs
  /// through (essentially) the whole execution: active in at least this
  /// fraction of all intervals. Cycling functions confined to a segment
  /// (MiniFE's CG internals) still yield detectable interval-scale
  /// phases.
  double activity_threshold = 0.8;
  /// fast_time_fraction at or above this flags the run as fast-phased.
  double fast_fraction_threshold = 0.5;
};

/// Runs the diagnosis over differenced interval data.
FastPhaseDiagnosis diagnose_fast_phases(const IntervalData& data,
                                        const FastPhaseConfig& config = {});

}  // namespace incprof::core
