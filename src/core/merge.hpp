// Phase-merge postprocessing. The paper identifies this as a needed
// improvement in two evaluations: Graph500 ("our phase discovery might
// need some postprocessing to combine phases which have the same
// instrumentation sites") and LAMMPS (phases 0 and 2, both represented by
// PairLJCut::compute, "should really be identified as a single phase").
// merge_phases_by_sites implements that: phases whose selected site
// *functions* are identical are combined, with coverage statistics
// recomputed over the union.
#pragma once

#include "core/sites.hpp"

namespace incprof::core {

/// Merges phases with identical site-function sets. Site types are
/// unioned (a function may carry both body and loop designations after a
/// merge, as in Graph500's run_bfs). Phase ids are renumbered densely in
/// order of each merged group's first appearance.
SiteSelectionResult merge_phases_by_sites(const SiteSelectionResult& in,
                                          const IntervalData& data);

}  // namespace incprof::core
