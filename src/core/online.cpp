#include "core/online.hpp"

#include "obs/span.hpp"

#include <cmath>
#include <limits>

namespace incprof::core {

OnlinePhaseTracker::OnlinePhaseTracker(OnlineConfig config)
    : config_(config) {}

std::size_t OnlinePhaseTracker::column_for(const std::string& name) {
  const auto [it, inserted] = columns_.try_emplace(name, columns_.size());
  return it->second;
}

OnlineObservation OnlinePhaseTracker::observe(
    const gmon::ProfileSnapshot& snap) {
  // The five stage spans mirror the offline pipeline.* set; under the
  // daemon they run on a worker thread that carries the interval's
  // trace context, so each stage lands in the client's end-to-end
  // trace as a child of frame.process.
  // Difference against the previous cumulative dump.
  gmon::ProfileSnapshot delta;
  {
    obs::ScopedSpan span("online.differencing", "analysis");
    delta = has_previous_ ? gmon::difference(snap, previous_)
                          : gmon::difference(snap, gmon::ProfileSnapshot{});
    previous_ = snap;
    has_previous_ = true;
  }

  // Build the interval vector in the (growing) column space.
  std::vector<double> v(columns_.size(), 0.0);
  {
    obs::ScopedSpan span("online.vectorize", "analysis");
    for (const auto& fp : delta.functions()) {
      const std::size_t col = column_for(fp.name);
      if (col >= v.size()) v.resize(columns_.size(), 0.0);
      v[col] = static_cast<double>(fp.self_ns) / 1e9;
    }
  }

  // Nearest centroid (missing trailing columns read as zero).
  double best = std::numeric_limits<double>::max();
  std::size_t best_phase = 0;
  {
    obs::ScopedSpan span("online.assign", "analysis");
    for (std::size_t p = 0; p < centroids_.size(); ++p) {
      const auto& c = centroids_[p];
      double d2 = 0.0;
      const std::size_t n = v.size();
      for (std::size_t j = 0; j < n; ++j) {
        const double cj = j < c.size() ? c[j] : 0.0;
        const double diff = v[j] - cj;
        d2 += diff * diff;
      }
      const double d = std::sqrt(d2);
      if (d < best) {
        best = d;
        best_phase = p;
      }
    }
  }

  OnlineObservation obs;
  obs.interval = assignments_.size();
  {
    obs::ScopedSpan span("online.update", "analysis");
    const bool open_new =
        centroids_.empty() || (best > config_.new_phase_distance &&
                               centroids_.size() < config_.max_phases);
    if (open_new) {
      obs.phase = centroids_.size();
      obs.new_phase = true;
      obs.distance = centroids_.empty() ? 0.0 : best;
      centroids_.push_back(v);
      counts_.push_back(1);
    } else {
      obs.phase = best_phase;
      obs.distance = best;
      auto& c = centroids_[best_phase];
      if (c.size() < v.size()) c.resize(v.size(), 0.0);
      ++counts_[best_phase];
      const double alpha =
          config_.ewma_alpha > 0.0
              ? config_.ewma_alpha
              : 1.0 / static_cast<double>(counts_[best_phase]);
      for (std::size_t j = 0; j < c.size(); ++j) {
        const double vj = j < v.size() ? v[j] : 0.0;
        c[j] += alpha * (vj - c[j]);
      }
    }
  }

  {
    obs::ScopedSpan span("online.classify", "analysis");
    obs.transition =
        !assignments_.empty() && assignments_.back() != obs.phase;
    assignments_.push_back(obs.phase);
  }
  return obs;
}

std::vector<std::size_t> OnlinePhaseTracker::phase_sizes() const {
  std::vector<std::size_t> sizes(centroids_.size(), 0);
  for (const auto a : assignments_) ++sizes[a];
  return sizes;
}

std::vector<std::string> OnlinePhaseTracker::function_names() const {
  std::vector<std::string> names(columns_.size());
  for (const auto& [name, col] : columns_) names[col] = name;
  return names;
}

}  // namespace incprof::core
