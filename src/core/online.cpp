#include "core/online.hpp"

#include "cluster/simd/simd.hpp"
#include "obs/span.hpp"
#include "util/hash.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace incprof::core {

OnlinePhaseTracker::OnlinePhaseTracker(OnlineConfig config)
    : config_(config) {
  if (config_.sketch_width == 0) config_.sketch_width = 1;
  if (config_.assignment_window == 0) config_.assignment_window = 1;
  if (config_.streaming) {
    // Pre-size the bounded state once: the ring never grows, the
    // interval vector is always sketch_width wide, and at most
    // max_phases centroids of that width ever exist.
    ring_.assign(config_.assignment_window, 0);
    v_.reserve(config_.sketch_width);
    centroids_.reserve(config_.max_phases);
    phases_.reserve(config_.max_phases);
    assign_ptrs_.reserve(config_.max_phases);
    assign_slots_.reserve(config_.max_phases);
    assign_d2_.reserve(config_.max_phases);
  }
}

std::size_t OnlinePhaseTracker::column_for(const std::string& name) {
  const auto [it, inserted] = columns_.try_emplace(name, columns_.size());
  return it->second;
}

void OnlinePhaseTracker::vectorize(const gmon::ProfileSnapshot& delta) {
  if (config_.streaming) {
    // Fixed-width sketch: bucket by the fleet-convention string hash
    // (FNV-1a + splitmix64); colliding functions accumulate. A session
    // discovering 100k distinct functions still does fixed work here.
    v_.assign(config_.sketch_width, 0.0);
    for (const auto& fp : delta.functions()) {
      const std::size_t bucket = static_cast<std::size_t>(
          util::hash_string(fp.name) % config_.sketch_width);
      v_[bucket] += static_cast<double>(fp.self_ns) / 1e9;
    }
    return;
  }
  // Exact reference mode: one column per distinct name, growing forever.
  v_.assign(columns_.size(), 0.0);
  for (const auto& fp : delta.functions()) {
    const std::size_t col = column_for(fp.name);
    if (col >= v_.size()) v_.resize(columns_.size(), 0.0);
    v_[col] = static_cast<double>(fp.self_ns) / 1e9;
  }
}

OnlineObservation OnlinePhaseTracker::observe(
    const gmon::ProfileSnapshot& snap) {
  return observe_impl(snap, nullptr);
}

OnlineObservation OnlinePhaseTracker::observe(gmon::ProfileSnapshot&& snap) {
  return observe_impl(snap, &snap);
}

OnlineObservation OnlinePhaseTracker::observe_impl(
    const gmon::ProfileSnapshot& snap, gmon::ProfileSnapshot* movable) {
  // The five stage spans mirror the offline pipeline.* set; under the
  // daemon they run on a worker thread that carries the interval's
  // trace context, so each stage lands in the client's end-to-end
  // trace as a child of frame.process.
  {
    obs::ScopedSpan span("online.differencing", "analysis");
    // Difference against the previous cumulative dump into the reused
    // delta buffer (first dump differences against the empty snapshot,
    // yielding the dump itself), then retire `snap` into previous_ —
    // moved when the caller ceded ownership, copy-assigned (reusing
    // previous_'s storage) otherwise. The old code deep-copied the full
    // cumulative snapshot every interval.
    gmon::difference_into(snap, previous_, delta_);
    if (movable != nullptr) {
      previous_ = std::move(*movable);
    } else {
      previous_ = snap;
    }
  }

  {
    obs::ScopedSpan span("online.vectorize", "analysis");
    vectorize(delta_);
  }

  // Nearest live centroid (missing trailing columns read as zero).
  double best = std::numeric_limits<double>::max();
  std::size_t best_phase = kNoPhase;
  {
    obs::ScopedSpan span("online.assign", "analysis");
    // Fast path: when every live centroid is exactly v_.size() wide
    // (always true in streaming mode; true in exact mode until a new
    // function appears), one batched SIMD call computes all squared
    // distances. The sqrt still runs per-candidate *before* the
    // strict-< compare: two distinct d2 can round to the same d, and
    // comparing d2 directly would then pick a different first winner.
    assign_ptrs_.clear();
    assign_slots_.clear();
    bool uniform = true;
    for (std::size_t p = 0; p < centroids_.size() && uniform; ++p) {
      if (phases_[p].merged_into != kNoPhase) continue;
      if (centroids_[p].size() != v_.size()) {
        uniform = false;
        break;
      }
      assign_ptrs_.push_back(centroids_[p].data());
      assign_slots_.push_back(p);
    }
    if (uniform && !assign_ptrs_.empty()) {
      assign_d2_.resize(assign_ptrs_.size());
      cluster::simd::kernels().squared_euclidean(
          v_.data(), assign_ptrs_.data(), assign_ptrs_.size(), v_.size(),
          assign_d2_.data());
      for (std::size_t t = 0; t < assign_slots_.size(); ++t) {
        const double d = std::sqrt(assign_d2_[t]);
        if (d < best) {
          best = d;
          best_phase = assign_slots_[t];
        }
      }
    } else if (!uniform) {
      for (std::size_t p = 0; p < centroids_.size(); ++p) {
        if (phases_[p].merged_into != kNoPhase) continue;
        const auto& c = centroids_[p];
        double d2 = 0.0;
        const std::size_t n = v_.size();
        for (std::size_t j = 0; j < n; ++j) {
          const double cj = j < c.size() ? c[j] : 0.0;
          const double diff = v_[j] - cj;
          d2 += diff * diff;
        }
        const double d = std::sqrt(d2);
        if (d < best) {
          best = d;
          best_phase = p;
        }
      }
    }
  }

  OnlineObservation obs;
  obs.interval = num_intervals_;
  std::size_t slot = 0;
  {
    obs::ScopedSpan span("online.update", "analysis");
    const bool open_new =
        live_phases_ == 0 || (best > config_.new_phase_distance &&
                              live_phases_ < config_.max_phases);
    if (open_new) {
      slot = phases_.size();
      obs.new_phase = true;
      obs.distance = live_phases_ == 0 ? 0.0 : best;
      centroids_.push_back(v_);
      phases_.push_back(PhaseState{1, 0.0, kNoPhase});
      ++live_phases_;
    } else {
      slot = best_phase;
      obs.distance = best;
      auto& c = centroids_[slot];
      PhaseState& ph = phases_[slot];
      if (c.size() < v_.size()) c.resize(v_.size(), 0.0);
      ++ph.count;
      const double alpha =
          config_.ewma_alpha > 0.0
              ? config_.ewma_alpha
              : 1.0 / static_cast<double>(ph.count);
      for (std::size_t j = 0; j < c.size(); ++j) {
        const double vj = j < v_.size() ? v_[j] : 0.0;
        c[j] += alpha * (vj - c[j]);
      }
      ph.dispersion += alpha * (best - ph.dispersion);
      if (config_.streaming && config_.merge_ratio > 0.0) {
        merge_overlapping_phases();
        slot = resolve_phase(slot);
      }
    }
    obs.phase = slot;
  }

  {
    obs::ScopedSpan span("online.classify", "analysis");
    obs.transition =
        num_intervals_ > 0 && resolve_phase(last_phase_) != slot;
    if (obs.transition) ++transitions_;
    last_phase_ = slot;
    if (config_.streaming) {
      ring_[num_intervals_ % ring_.size()] = slot;
    } else {
      history_.push_back(slot);
    }
    ++num_intervals_;
  }
  return obs;
}

double OnlinePhaseTracker::centroid_distance(std::size_t a,
                                             std::size_t b) const {
  const auto& ca = centroids_[a];
  const auto& cb = centroids_[b];
  const std::size_t n = std::max(ca.size(), cb.size());
  double d2 = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double x = j < ca.size() ? ca[j] : 0.0;
    const double y = j < cb.size() ? cb[j] : 0.0;
    d2 += (x - y) * (x - y);
  }
  return std::sqrt(d2);
}

void OnlinePhaseTracker::merge_overlapping_phases() {
  if (live_phases_ < 2) return;
  // Worst simplified-Davies-Bouldin pair among mature live phases; one
  // merge per interval keeps the cost bounded and the sequence
  // deterministic. O(k^2) with k <= max_phases — constant work.
  double worst = 0.0;
  std::size_t wi = kNoPhase;
  std::size_t wj = kNoPhase;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].merged_into != kNoPhase ||
        phases_[i].count < OnlineConfig::kMergeMinCount) {
      continue;
    }
    for (std::size_t j = i + 1; j < phases_.size(); ++j) {
      if (phases_[j].merged_into != kNoPhase ||
          phases_[j].count < OnlineConfig::kMergeMinCount) {
        continue;
      }
      const double d = std::max(centroid_distance(i, j), 1e-12);
      const double ratio =
          (phases_[i].dispersion + phases_[j].dispersion) / d;
      if (ratio > worst) {
        worst = ratio;
        wi = i;
        wj = j;
      }
    }
  }
  if (wi != kNoPhase && worst > config_.merge_ratio) {
    merge_phases(wi, wj);
  }
}

void OnlinePhaseTracker::merge_phases(std::size_t survivor,
                                      std::size_t victim) {
  PhaseState& s = phases_[survivor];
  PhaseState& t = phases_[victim];
  const double ws = static_cast<double>(s.count);
  const double wt = static_cast<double>(t.count);
  const double w = ws + wt;
  const double d = centroid_distance(survivor, victim);
  auto& cs = centroids_[survivor];
  auto& ct = centroids_[victim];
  if (cs.size() < ct.size()) cs.resize(ct.size(), 0.0);
  for (std::size_t j = 0; j < cs.size(); ++j) {
    const double y = j < ct.size() ? ct[j] : 0.0;
    cs[j] = (ws * cs[j] + wt * y) / w;
  }
  // Combined dispersion: count-weighted member dispersions plus each
  // side's centroid shift toward the merged mean.
  s.dispersion = (ws * s.dispersion + wt * t.dispersion) / w +
                 2.0 * ws * wt * d / (w * w);
  s.count += t.count;
  t.count = 0;
  t.dispersion = 0.0;
  t.merged_into = survivor;
  std::vector<double>().swap(centroids_[victim]);  // release the slot
  --live_phases_;
}

std::size_t OnlinePhaseTracker::resolve_phase(std::size_t phase) const {
  while (phase < phases_.size() &&
         phases_[phase].merged_into != kNoPhase) {
    phase = phases_[phase].merged_into;
  }
  return phase;
}

std::vector<std::size_t> OnlinePhaseTracker::phase_sizes() const {
  std::vector<std::size_t> sizes(phases_.size(), 0);
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    sizes[p] = phases_[p].count;
  }
  return sizes;
}

std::vector<std::size_t> OnlinePhaseTracker::recent_assignments() const {
  if (!config_.streaming) {
    const std::size_t n =
        std::min(history_.size(), config_.assignment_window);
    return {history_.end() - static_cast<std::ptrdiff_t>(n),
            history_.end()};
  }
  const std::size_t n = std::min(num_intervals_, ring_.size());
  std::vector<std::size_t> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = ring_[(num_intervals_ - n + k) % ring_.size()];
  }
  return out;
}

std::vector<double> OnlinePhaseTracker::centroid(std::size_t phase) const {
  return centroids_.at(phase);
}

double OnlinePhaseTracker::davies_bouldin() const {
  if (live_phases_ < 2) return 0.0;
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].merged_into != kNoPhase || phases_[i].count == 0) {
      continue;
    }
    double r = 0.0;
    for (std::size_t j = 0; j < phases_.size(); ++j) {
      if (j == i || phases_[j].merged_into != kNoPhase ||
          phases_[j].count == 0) {
        continue;
      }
      const double d = std::max(centroid_distance(i, j), 1e-12);
      r = std::max(r, (phases_[i].dispersion + phases_[j].dispersion) / d);
    }
    sum += r;
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

std::size_t OnlinePhaseTracker::state_bytes() const {
  const auto snap_bytes = [](const gmon::ProfileSnapshot& s) {
    std::size_t b = s.functions().size() * sizeof(gmon::FunctionProfile);
    for (const auto& fp : s.functions()) b += fp.name.capacity();
    return b;
  };
  std::size_t b = sizeof(*this);
  b += snap_bytes(previous_) + snap_bytes(delta_);
  for (const auto& [name, col] : columns_) {
    // Rough per-node cost of a std::map<string, size_t> entry.
    b += name.capacity() + sizeof(std::size_t) + 48;
  }
  b += v_.capacity() * sizeof(double);
  for (const auto& c : centroids_) b += c.capacity() * sizeof(double);
  b += phases_.capacity() * sizeof(PhaseState);
  b += history_.capacity() * sizeof(std::size_t);
  b += ring_.capacity() * sizeof(std::size_t);
  return b;
}

std::vector<std::string> OnlinePhaseTracker::function_names() const {
  std::vector<std::string> names(columns_.size());
  for (const auto& [name, col] : columns_) names[col] = name;
  return names;
}

}  // namespace incprof::core
