#include "core/detect.hpp"

namespace incprof::core {

PhaseDetection detect_phases(const FeatureSpace& space,
                             const DetectorConfig& config,
                             util::ThreadPool* pool,
                             const cluster::DistanceCache* cache) {
  cluster::KMeansConfig base;
  base.n_init = config.kmeans_restarts;
  base.max_iters = config.kmeans_max_iters;
  base.seed = config.seed;

  PhaseDetection det;
  det.sweep = cluster::sweep_k(space.features, config.k_max, base, pool, cache);
  const cluster::KSweepEntry& chosen =
      cluster::select_k(det.sweep, config.selection);

  det.num_phases = chosen.k;
  det.assignments = chosen.result.assignments;
  det.centroids = chosen.result.centroids;
  det.silhouette = chosen.silhouette;

  det.phase_intervals.assign(det.num_phases, {});
  for (std::size_t i = 0; i < det.assignments.size(); ++i) {
    det.phase_intervals[det.assignments[i]].push_back(i);
  }
  return det;
}

}  // namespace incprof::core
