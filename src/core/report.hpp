// Paper-style reporting of site-selection results. render_site_table
// produces the layout of Tables II-VI: one row per (phase, site) with
// heartbeat id, discovered function, Phase %, App % and instrumentation
// type, plus an optional trailing "Manual Instrumentation Sites" section
// for the hand-picked comparison sites.
#pragma once

#include "core/sites.hpp"

#include <map>
#include <string>
#include <vector>

namespace incprof::core {

/// A manually chosen comparison site (the paper's human baseline).
struct ManualSite {
  std::string function;
  InstType type = InstType::kBody;
};

/// Stable heartbeat-id assignment across a result: each distinct
/// (function, type) pair gets the next id (1-based) in order of first
/// appearance, so a site shared by two phases shares its HB id, as in
/// Table III's cg_solve.
std::map<std::pair<std::string, InstType>, unsigned> assign_heartbeat_ids(
    const SiteSelectionResult& result);

/// Renders the Tables II-VI layout.
std::string render_site_table(const std::string& app_name,
                              const SiteSelectionResult& result,
                              const std::vector<ManualSite>& manual_sites);

/// One-line-per-phase summary (phase id, #intervals, coverage, sites).
std::string render_phase_summary(const SiteSelectionResult& result);

/// Renders the k-selection diagnostics: the WCSS (elbow) curve and
/// silhouette per k from a sweep.
std::string render_k_sweep(const cluster::KSweep& sweep,
                           std::size_t chosen_index);

/// Renders the phase assignment over time as a one-line strip (one
/// digit per interval bucket, '.' for mixed buckets) — the time-varying
/// behaviour view that motivates the whole method. `width` caps the
/// strip length; wider runs are bucketed by majority phase.
std::string render_phase_timeline(
    const std::vector<std::size_t>& assignments, std::size_t width = 96);

}  // namespace incprof::core
