// Call-graph site lifting — the improvement the paper sketches for
// MiniFE (Section VI-B): "the sum_in_symm_elem_matrix heartbeat is
// invoked from and is essentially equivalent in behavior to our manual
// perform_element_loop heartbeat; extending the discovery analysis to
// use the call-graph structure might be a way to improve it and select
// our site, which is higher up in the call graph."
//
// The rule: a selected body-type site whose calls come (almost)
// exclusively from a single caller is equivalent, heartbeat-wise, to
// instrumenting that caller's body — each caller invocation produces the
// same burst of activity. Lifting walks up while the dominance holds,
// stopping at <spontaneous> callers, functions already selected for some
// phase, or the configured depth.
#pragma once

#include "core/sites.hpp"
#include "gmon/callgraph.hpp"

#include <string>
#include <vector>

namespace incprof::core {

/// Lifting parameters.
struct LiftConfig {
  /// Minimum fraction of the callee's total inbound calls that must come
  /// from one caller for the site to move up to it.
  double dominance = 0.95;
  /// Maximum lifting steps per site.
  std::size_t max_depth = 3;
  /// Only lift callers that are called at most this many times in total;
  /// prevents lifting into utility functions invoked from everywhere.
  std::int64_t max_caller_fanin = 0;  // 0 = no limit
};

/// One applied lift, for reporting.
struct LiftDecision {
  std::size_t phase = 0;
  std::string original;
  std::string lifted_to;
  /// Chain of hops, original first.
  std::vector<std::string> chain;
};

/// Result of the lifting pass.
struct LiftResult {
  /// The site selection with lifted function names substituted in
  /// (loop-type sites are never lifted — a loop site instruments code
  /// *inside* the long-running function and has no call-burst
  /// equivalence with its caller).
  SiteSelectionResult sites;
  /// The lifts that were applied.
  std::vector<LiftDecision> decisions;
};

/// Applies call-graph lifting to a selection result using the final
/// cumulative call graph of the run.
LiftResult lift_sites(const SiteSelectionResult& selection,
                      const gmon::CallGraphSnapshot& graph,
                      const LiftConfig& config = {});

}  // namespace incprof::core
