#include "core/sites.hpp"

#include "cluster/distance.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace incprof::core {

const char* to_string(InstType t) noexcept {
  return t == InstType::kBody ? "body" : "loop";
}

std::size_t SiteSelectionResult::num_unique_sites() const {
  std::set<std::pair<std::string, InstType>> uniq;
  for (const auto& p : phases) {
    for (const auto& s : p.sites) uniq.insert({s.function_name, s.type});
  }
  return uniq.size();
}

namespace {

/// Intervals sorted by distance to the phase centroid, ascending —
/// Algorithm 1 line 3.
std::vector<std::size_t> sort_by_centroid_distance(
    const FeatureSpace& space, const PhaseDetection& detection,
    std::size_t phase) {
  std::vector<std::size_t> order = detection.phase_intervals[phase];
  std::vector<double> dist(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    dist[k] = cluster::euclidean(space.features.row(order[k]),
                                 detection.centroids.row(phase));
  }
  std::vector<std::size_t> perm(order.size());
  for (std::size_t k = 0; k < perm.size(); ++k) perm[k] = k;
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     return dist[a] < dist[b];
                   });
  std::vector<std::size_t> sorted(order.size());
  for (std::size_t k = 0; k < perm.size(); ++k) sorted[k] = order[perm[k]];
  return sorted;
}

}  // namespace

SiteSelectionResult select_sites(const IntervalData& data,
                                 const FeatureSpace& space,
                                 const PhaseDetection& detection,
                                 const RankTable& ranks,
                                 const SiteSelectorConfig& config) {
  SiteSelectionResult result;
  result.threshold = config.coverage_threshold;

  const std::size_t m = data.num_functions();

  for (std::size_t p = 0; p < detection.num_phases; ++p) {
    PhaseSites phase;
    phase.phase = p;
    phase.intervals = detection.phase_intervals[p];
    const std::size_t n_phase = phase.intervals.size();
    if (n_phase == 0) {
      result.phases.push_back(std::move(phase));
      continue;
    }

    const std::vector<std::size_t> order =
        sort_by_centroid_distance(space, detection, p);

    // covered[k] tracks phase.intervals[k]; idle (all-zero) intervals are
    // trivially covered — there is nothing to instrument in them.
    std::vector<bool> covered(n_phase, false);
    std::size_t covered_count = 0;
    std::vector<std::size_t> pos_of_interval(data.num_intervals(), 0);
    for (std::size_t k = 0; k < n_phase; ++k) {
      pos_of_interval[phase.intervals[k]] = k;
      bool any_active = false;
      for (std::size_t f = 0; f < m; ++f) {
        if (data.active(phase.intervals[k], f)) {
          any_active = true;
          break;
        }
      }
      if (!any_active) {
        covered[k] = true;
        ++covered_count;
      }
    }

    std::set<std::size_t> selected_functions;
    const double needed =
        config.coverage_threshold * static_cast<double>(n_phase);

    for (const std::size_t interval : order) {
      if (static_cast<double>(covered_count) >= needed) break;
      if (covered[pos_of_interval[interval]]) continue;

      // Line 10: sort this interval's active functions by calls
      // ascending, then rank descending; name breaks remaining ties
      // deterministically.
      std::size_t best = m;  // sentinel: none
      for (std::size_t f = 0; f < m; ++f) {
        if (!data.active(interval, f)) continue;
        if (best == m) {
          best = f;
          continue;
        }
        const double cf = data.calls().at(interval, f);
        const double cb = data.calls().at(interval, best);
        if (cf != cb) {
          if (cf < cb) best = f;
          continue;
        }
        const double rf = ranks.rank(p, f);
        const double rb = ranks.rank(p, best);
        if (rf != rb) {
          if (rf > rb) best = f;
          continue;
        }
        // function_names is sorted, so smaller index = smaller name.
      }
      if (best == m) continue;  // unreachable: uncovered implies active

      const bool called = data.calls().at(interval, best) > 0.0;
      const InstType type = called ? InstType::kBody : InstType::kLoop;

      const bool is_new_function =
          selected_functions.insert(best).second;
      if (is_new_function) {
        SiteSelection site;
        site.function = best;
        site.function_name = data.function_names()[best];
        site.type = type;
        phase.sites.push_back(std::move(site));
      } else {
        // Same function reachable with a different designation within a
        // phase: record the additional <id, type> tuple (Algorithm 1
        // lines 17-19 key the output set on the pair).
        bool present = false;
        for (const auto& s : phase.sites) {
          if (s.function == best && s.type == type) {
            present = true;
            break;
          }
        }
        if (!present) {
          SiteSelection site;
          site.function = best;
          site.function_name = data.function_names()[best];
          site.type = type;
          phase.sites.push_back(std::move(site));
        }
      }

      // Mark everything this function is active in as covered.
      if (is_new_function) {
        for (std::size_t k = 0; k < n_phase; ++k) {
          if (covered[k]) continue;
          if (data.active(phase.intervals[k], best)) {
            covered[k] = true;
            ++covered_count;
          }
        }
      }
    }

    // Phase % / App % columns.
    const std::size_t total_intervals = data.num_intervals();
    for (auto& site : phase.sites) {
      std::size_t active_in_phase = 0;
      for (const std::size_t i : phase.intervals) {
        if (data.active(i, site.function)) ++active_in_phase;
      }
      site.phase_fraction = static_cast<double>(active_in_phase) /
                            static_cast<double>(n_phase);
      site.app_fraction = static_cast<double>(active_in_phase) /
                          static_cast<double>(total_intervals);
    }
    phase.coverage = static_cast<double>(covered_count) /
                     static_cast<double>(n_phase);
    result.phases.push_back(std::move(phase));
  }
  return result;
}

}  // namespace incprof::core
