// End-to-end IncProf analysis facade: cumulative snapshots in, phases +
// instrumentation sites out. This strings together the steps of Figure 1
// and Section V: (optional gprof-text round trip) -> interval
// differencing -> feature vectors -> k-means sweep + elbow -> rank
// computation -> Algorithm 1 -> optional phase merge.
#pragma once

#include "core/detect.hpp"
#include "core/features.hpp"
#include "core/intervals.hpp"
#include "core/merge.hpp"
#include "core/rank.hpp"
#include "core/sites.hpp"

#include <filesystem>
#include <vector>

namespace incprof::core {

/// Pipeline configuration: one knob set for the whole analysis.
struct PipelineConfig {
  FeatureOptions features;
  DetectorConfig detector;
  SiteSelectorConfig selector;
  /// Round-trip every snapshot through the gprof flat-profile *text*
  /// form before analysis — the paper's actual data path ("invoke the
  /// gprof command line tool ... then process those"). Costs a little
  /// precision in self time (it survives at microsecond resolution) and
  /// drops children time; disable to analyze binary-exact data.
  bool text_round_trip = false;
  /// Sample period recorded in generated text reports, ns.
  std::int64_t sample_period_ns = 10'000'000;
  /// Apply merge_phases_by_sites postprocessing (off by default: the
  /// paper reports results without it and lists it as future work).
  bool merge_phases = false;
  /// Analysis threads: 0 = hardware concurrency, 1 = the serial engine
  /// (the historical code path). Results are bit-identical at any value
  /// for the same seed; threads only change wall time.
  std::size_t threads = 0;
  /// Opt-in fp32 distance cache (--fp32): pairwise distances are
  /// computed in float and widened. Faster and half the cache memory,
  /// but explicitly OUTSIDE the bitwise determinism contract — results
  /// may differ from the fp64 engine.
  bool fp32_distance = false;
  /// With fp32_distance, also build the fp64 cache and report the max
  /// relative divergence between the two (PhaseAnalysis.fp32_divergence).
  bool fp32_verify = false;
};

/// Everything the analysis produced, kept together for reporting.
struct PhaseAnalysis {
  IntervalData intervals;
  FeatureSpace features;
  PhaseDetection detection;
  RankTable ranks;
  SiteSelectionResult sites;
  /// Index into detection.sweep.entries that was chosen (for reports).
  std::size_t chosen_sweep_index = 0;
  /// Max relative divergence between the fp32 and fp64 distance caches
  /// when fp32_verify ran; -1.0 when no verify was performed.
  double fp32_divergence = -1.0;
};

/// Runs the full analysis over cumulative snapshots (ordered by seq).
/// Throws std::invalid_argument when fewer than 2 snapshots are given
/// (no interval can be formed from fewer).
PhaseAnalysis analyze_snapshots(
    const std::vector<gmon::ProfileSnapshot>& snapshots,
    const PipelineConfig& config = {});

/// Convenience: loads binary dumps from a collector directory, converts
/// them through the text form when configured, and analyzes.
PhaseAnalysis analyze_dump_dir(const std::filesystem::path& dir,
                               const PipelineConfig& config = {});

}  // namespace incprof::core
