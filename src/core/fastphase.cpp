#include "core/fastphase.hpp"

#include "util/strings.hpp"

#include <algorithm>
#include <numeric>

namespace incprof::core {

std::string FastPhaseDiagnosis::summary() const {
  if (!fast_phased) {
    return "phases are interval-scale or slower (" +
           util::format_pct(fast_time_fraction) +
           "% of time in sub-interval cycles); interval-level analysis "
           "is applicable";
  }
  return "FAST PHASES: " + util::format_pct(fast_time_fraction) +
         "% of execution time cycles ~" +
         util::format_fixed(calls_per_interval, 1) +
         "x per interval; interval-level clustering sees only slow "
         "modulation — a ~" +
         util::format_fixed(suggested_interval_sec, 3) +
         " s interval (or event-level tracking) would be needed";
}

FastPhaseDiagnosis diagnose_fast_phases(const IntervalData& data,
                                        const FastPhaseConfig& config) {
  FastPhaseDiagnosis d;
  const std::size_t n = data.num_intervals();
  const std::size_t m = data.num_functions();
  if (n == 0 || m == 0) return d;

  // Hot set: smallest set of functions covering hot_time_fraction of
  // total self time.
  std::vector<double> totals(m, 0.0);
  double grand = 0.0;
  for (std::size_t f = 0; f < m; ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      totals[f] += data.self_seconds().at(i, f);
    }
    grand += totals[f];
  }
  if (grand <= 0.0) return d;

  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return totals[a] > totals[b];
  });
  std::vector<std::size_t> hot;
  double covered = 0.0;
  for (const std::size_t f : order) {
    if (covered >= config.hot_time_fraction * grand && !hot.empty()) break;
    hot.push_back(f);
    covered += totals[f];
    d.hot_functions.push_back(data.function_names()[f]);
  }

  // Pairwise co-activity of the hot set (Jaccard over active intervals).
  if (hot.size() >= 2) {
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < hot.size(); ++a) {
      for (std::size_t b = a + 1; b < hot.size(); ++b) {
        std::size_t both = 0, either = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const bool fa = data.active(i, hot[a]);
          const bool fb = data.active(i, hot[b]);
          if (fa && fb) ++both;
          if (fa || fb) ++either;
        }
        sum += either
                   ? static_cast<double>(both) / static_cast<double>(either)
                   : 0.0;
        ++pairs;
      }
    }
    d.coactivity = sum / static_cast<double>(pairs);
  } else {
    // A single dominant function: trivially "co-active" with itself
    // only; interval analysis applies.
    d.coactivity = 0.0;
  }

  // Pervasive cycling functions: hot functions active through the whole
  // run whose *median* call count over their active intervals reaches
  // the threshold — whole iterations complete within single intervals,
  // everywhere, so intervals are homogeneous mixtures of them.
  double fast_time = 0.0;
  double weighted_rate = 0.0;
  for (const std::size_t f : hot) {
    std::vector<double> per_interval;
    for (std::size_t i = 0; i < n; ++i) {
      if (data.active(i, f)) {
        per_interval.push_back(data.calls().at(i, f));
      }
    }
    if (per_interval.empty()) continue;
    const double activity = static_cast<double>(per_interval.size()) /
                            static_cast<double>(n);
    if (activity < config.activity_threshold) continue;
    std::sort(per_interval.begin(), per_interval.end());
    const double median = per_interval[per_interval.size() / 2];
    if (median >= config.calls_threshold) {
      fast_time += totals[f];
      weighted_rate += totals[f] * median;
    }
  }
  d.fast_time_fraction = fast_time / grand;
  d.calls_per_interval = fast_time > 0.0 ? weighted_rate / fast_time : 0.0;

  d.fast_phased = d.fast_time_fraction >= config.fast_fraction_threshold;
  if (d.fast_phased && d.calls_per_interval > 0.0 && n >= 2) {
    const double interval_sec =
        (data.timestamps_sec().back() - data.timestamps_sec().front()) /
        static_cast<double>(n - 1);
    d.suggested_interval_sec = interval_sec / d.calls_per_interval;
  }
  return d;
}

}  // namespace incprof::core
