#include "core/pipeline.hpp"

#include "cluster/distance_cache.hpp"
#include "cluster/kselect.hpp"
#include "gmon/flat_text.hpp"
#include "gmon/scanner.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

#include <memory>
#include <stdexcept>

namespace incprof::core {

namespace {

/// Most heap the pipeline silently spends on the pairwise-distance
/// cache (~1 GB, reached around 16k intervals). Larger inputs fall back
/// to recomputing distances on the fly.
constexpr std::size_t kCacheBudget = std::size_t{1} << 30;

/// Stage-latency histogram in the global registry, shared by every
/// analysis run in the process so benches and the daemon can report
/// per-stage percentiles (references are stable; resolving per call is
/// fine, the stages themselves are milliseconds).
obs::Histogram& stage_hist(const char* stage) {
  return obs::default_registry().histogram("pipeline_stage_ns",
                                           {{"stage", stage}});
}

std::vector<gmon::ProfileSnapshot> round_trip_text(
    const std::vector<gmon::ProfileSnapshot>& snapshots,
    std::int64_t sample_period_ns) {
  gmon::FlatTextOptions opts;
  opts.sample_period_ns = sample_period_ns;
  std::vector<gmon::ProfileSnapshot> out;
  out.reserve(snapshots.size());
  for (const auto& snap : snapshots) {
    const std::string text = gmon::format_flat_profile(snap, opts);
    gmon::ProfileSnapshot parsed = gmon::parse_flat_profile(text);
    parsed.set_seq(snap.seq());
    parsed.set_timestamp_ns(snap.timestamp_ns());
    out.push_back(std::move(parsed));
  }
  return out;
}

}  // namespace

PhaseAnalysis analyze_snapshots(
    const std::vector<gmon::ProfileSnapshot>& snapshots,
    const PipelineConfig& config) {
  if (snapshots.size() < 2) {
    throw std::invalid_argument(
        "analyze_snapshots: need at least 2 cumulative snapshots");
  }

  PhaseAnalysis a;
  {
    obs::ScopedSpan span("pipeline.differencing", "analysis",
                         &stage_hist("differencing"));
    if (config.text_round_trip) {
      a.intervals = IntervalData::from_cumulative(
          round_trip_text(snapshots, config.sample_period_ns));
    } else {
      a.intervals = IntervalData::from_cumulative(snapshots);
    }
  }
  {
    obs::ScopedSpan span("pipeline.features", "analysis",
                         &stage_hist("features"));
    a.features = build_features(a.intervals, config.features);
  }
  // Pool for the clustering stages (nullptr = serial engine); the
  // distance cache is built once here and shared by every consumer of
  // this feature space.
  std::unique_ptr<util::ThreadPool> pool =
      util::ThreadPool::create(config.threads);
  cluster::DistanceCache cache;
  {
    obs::ScopedSpan span("pipeline.distance_cache", "analysis",
                         &stage_hist("distance_cache"));
    const std::size_t n = a.features.features.rows();
    // bytes_required saturates on overflow, so adversarial interval
    // counts fail this gate instead of wrapping into a tiny allocation.
    if (n >= 2 && cluster::DistanceCache::bytes_required(n) <= kCacheBudget) {
      if (config.fp32_distance) {
        cache =
            cluster::DistanceCache::build_fp32(a.features.features, pool.get());
        if (config.fp32_verify) {
          const cluster::DistanceCache exact =
              cluster::DistanceCache::build(a.features.features, pool.get());
          a.fp32_divergence =
              cluster::DistanceCache::max_relative_divergence(cache, exact);
          util::log_info(
              "fp32 distance verify: max relative divergence " +
              std::to_string(a.fp32_divergence));
        }
      } else {
        cache = cluster::DistanceCache::build(a.features.features, pool.get());
      }
    }
  }
  {
    obs::ScopedSpan span("pipeline.kmeans_sweep", "analysis",
                         &stage_hist("kmeans_sweep"));
    a.detection =
        detect_phases(a.features, config.detector, pool.get(),
                      cache.size() > 0 ? &cache : nullptr);
  }
  {
    obs::ScopedSpan span("pipeline.k_select", "analysis",
                         &stage_hist("k_select"));
    a.chosen_sweep_index =
        config.detector.selection == cluster::KSelection::kElbow
            ? cluster::select_elbow(a.detection.sweep)
            : cluster::select_silhouette(a.detection.sweep);
    a.ranks = RankTable::compute(a.intervals, a.detection);
  }
  {
    obs::ScopedSpan span("pipeline.site_selection", "analysis",
                         &stage_hist("site_selection"));
    a.sites = select_sites(a.intervals, a.features, a.detection, a.ranks,
                           config.selector);
    if (config.merge_phases) {
      a.sites = merge_phases_by_sites(a.sites, a.intervals);
    }
  }
  return a;
}

PhaseAnalysis analyze_dump_dir(const std::filesystem::path& dir,
                               const PipelineConfig& config) {
  if (config.text_round_trip) {
    // The on-disk variant of the paper's flow: convert each binary dump
    // to a gprof text report, then parse those.
    gmon::convert_dumps_to_text(dir, config.sample_period_ns);
    PipelineConfig inner = config;
    inner.text_round_trip = false;  // already through text on disk
    return analyze_snapshots(gmon::load_text_dumps(dir), inner);
  }
  return analyze_snapshots(gmon::load_binary_dumps(dir), config);
}

}  // namespace incprof::core
