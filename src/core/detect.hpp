// Phase detection: k-means over interval feature vectors with automatic
// k selection (paper, Section V-A). "Interval data is then clustered
// using the k-means clustering algorithm, and each cluster is interpreted
// as a phase of execution. ... we run k-means for k = 1..8, and then use
// the Elbow method to select the best number of clusters."
#pragma once

#include "cluster/kselect.hpp"
#include "core/features.hpp"

#include <cstdint>
#include <vector>

namespace incprof::util {
class ThreadPool;
}  // namespace incprof::util

namespace incprof::core {

/// Detector configuration.
struct DetectorConfig {
  /// Upper bound of the k sweep. Eight "has worked well" (paper): no
  /// studied application exceeded five phases.
  std::size_t k_max = 8;
  /// k-selection rule; the paper uses the elbow, and also validated
  /// silhouette.
  cluster::KSelection selection = cluster::KSelection::kElbow;
  /// k-means internals.
  std::size_t kmeans_restarts = 8;
  std::size_t kmeans_max_iters = 100;
  std::uint64_t seed = 42;
};

/// Result: the chosen clustering plus the full sweep for diagnostics.
struct PhaseDetection {
  /// Chosen number of phases.
  std::size_t num_phases = 0;
  /// assignments[i] = phase of interval i.
  std::vector<std::size_t> assignments;
  /// Phase centroids in feature space (row c = phase c).
  cluster::Matrix centroids;
  /// Interval indices per phase.
  std::vector<std::vector<std::size_t>> phase_intervals;
  /// The full k sweep (for elbow-curve reporting and ablations).
  cluster::KSweep sweep;
  /// Mean silhouette of the chosen clustering.
  double silhouette = 0.0;
};

/// Runs the sweep and k selection over a prepared feature space. A
/// ThreadPool fans the sweep's (k, restart) grid out; a DistanceCache
/// built over space.features serves silhouette scoring. Both are
/// optional and neither changes any result bit (see cluster::sweep_k).
PhaseDetection detect_phases(const FeatureSpace& space,
                             const DetectorConfig& config = {},
                             util::ThreadPool* pool = nullptr,
                             const cluster::DistanceCache* cache = nullptr);

}  // namespace incprof::core
