// The phase-detection daemon core: accepts many concurrent client
// sessions from a transport Listener, runs one OnlinePhaseTracker per
// session on a shared worker pool (bounded per-session queues,
// drop-and-count on overflow), answers status queries in stream order,
// pushes phase events to subscribed clients, and folds everything into
// a FleetAggregator + MetricsRegistry. This is the reproduction's
// monitoring-side endpoint for the paper's LDMS deployment story.
#pragma once

#include "obs/span.hpp"
#include "service/fleet.hpp"
#include "service/metrics.hpp"
#include "service/session.hpp"
#include "service/transport.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace incprof::service {

/// Daemon configuration.
struct ServerConfig {
  /// Tracker workers shared across all sessions.
  std::size_t worker_threads = 4;
  /// Per-session queue + tracker parameters.
  SessionConfig session;
  /// Master switch for pushing kPhaseEvent frames to subscribed
  /// clients (a subscribed client must keep draining its connection).
  bool send_phase_events = true;
  /// Retained fleet transition-log tail.
  std::size_t transition_log_capacity = 1024;
};

/// Multi-session phase-detection server. Lifecycle: construct over a
/// Listener (not owned, must outlive the server), start(), serve, stop()
/// — stop drains every queued frame before returning, so post-stop
/// inspection (fleet, metrics, assignments) sees the complete streams.
class Server {
 public:
  explicit Server(Listener& listener, ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept loop and the worker pool.
  void start();

  /// Graceful shutdown: stops accepting, closes every connection,
  /// processes everything already queued, joins all threads. Idempotent.
  void stop();

  /// Cross-session aggregate view (thread-safe).
  const FleetAggregator& fleet() const noexcept { return fleet_; }

  /// Operational counters/gauges (thread-safe).
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Phase assignments a session's tracker has produced so far; empty
  /// when the id is unknown. Deterministic once the session closed.
  std::vector<std::size_t> session_assignments(std::uint32_t id) const;

  /// Sessions ever opened (fleet rows include closed ones).
  std::size_t session_count() const;

  /// Largest per-session queue depth observed since start.
  std::size_t max_observed_queue_depth() const;

 private:
  struct Handler {
    std::shared_ptr<Connection> conn;
    std::shared_ptr<Session> session;  // set at hello
    std::thread reader;
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Handler>& handler);
  void worker_loop();
  void schedule(const std::shared_ptr<Handler>& handler);
  void process_round(const std::shared_ptr<Handler>& handler);
  void process_frame(const std::shared_ptr<Handler>& handler,
                     const Frame& frame);
  void handle_query(const std::shared_ptr<Handler>& handler,
                    const Frame& frame);

  Listener& listener_;
  const ServerConfig cfg_;
  FleetAggregator fleet_;
  MetricsRegistry metrics_;

  // Frame-path latency histograms, resolved once (registry references
  // are stable) so the hot path never takes the registry lock.
  obs::Histogram& decode_hist_;
  obs::Histogram& enqueue_hist_;
  obs::Histogram& process_hist_;

  std::atomic<std::uint32_t> next_session_id_{1};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  mutable std::mutex handlers_mu_;
  std::vector<std::shared_ptr<Handler>> handlers_;

  std::mutex ready_mu_;
  std::condition_variable ready_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::shared_ptr<Handler>> ready_;
  std::size_t busy_workers_ = 0;
  bool stopping_workers_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace incprof::service
