// The phase-detection daemon core: accepts many concurrent client
// sessions from a transport Listener, runs one OnlinePhaseTracker per
// session on a shared worker pool (bounded per-session queues,
// drop-and-count on overflow), answers status queries in stream order,
// pushes phase events to subscribed clients, and folds everything into
// a FleetAggregator + MetricsRegistry. This is the reproduction's
// monitoring-side endpoint for the paper's LDMS deployment story.
#pragma once

#include "obs/span.hpp"
#include "service/fleet.hpp"
#include "service/fleet_state.hpp"
#include "service/metrics.hpp"
#include "service/session.hpp"
#include "service/transport.hpp"
#include "util/thread_annotations.hpp"

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace incprof::service {

/// Daemon configuration.
struct ServerConfig {
  /// Tracker workers shared across all sessions. 0 = hardware
  /// concurrency (resolved at start()); 1 = a single worker.
  std::size_t worker_threads = 0;
  /// Per-session queue + tracker parameters.
  SessionConfig session;
  /// Master switch for pushing kPhaseEvent frames to subscribed
  /// clients (a subscribed client must keep draining its connection).
  bool send_phase_events = true;
  /// Retained fleet transition-log tail.
  std::size_t transition_log_capacity = 1024;
  /// This daemon's shard id in a gateway fleet (0 = standalone). Session
  /// ids are allocated from the shard's disjoint range
  /// (first_session_id_for_shard), so a gateway can derive a session's
  /// owner from the id alone. Must be ≤ kMaxShardId.
  std::uint32_t shard_id = 0;

  // --- fault tolerance --------------------------------------------------

  /// Malformed/unexpected frames tolerated per session; one more and
  /// the session is quarantined (typed kProtocolError, then
  /// disconnect). Frames before the hello get no budget — an
  /// unauthenticated peer is disconnected on the first bad frame.
  std::uint32_t protocol_error_budget = 4;
  /// After an abrupt disconnect, how long the session stays resumable
  /// (a reconnecting client reattaches via hello.resume_session_id).
  /// Zero disables resume: an abrupt disconnect closes the session
  /// immediately, as before.
  std::chrono::milliseconds resume_grace{0};
  /// Attached sessions with no traffic for this long are reaped
  /// (connection closed, session ended). Zero disables reaping.
  std::chrono::milliseconds idle_timeout{0};
  /// Receive deadline armed on every accepted connection when the
  /// transport supports one (TCP does; the loopback relies on the
  /// reaper). Zero leaves reads unbounded.
  std::chrono::milliseconds read_timeout{0};

  // --- observability ----------------------------------------------------

  /// Directory for flight-recorder postmortems: when non-empty, a
  /// session that is quarantined (error budget exhausted) dumps its
  /// last-N event ring to `<dir>/postmortem-session-<id>.json` before
  /// the disconnect. Empty disables the dump (the live
  /// /sessions/<id>.json view still works).
  std::string postmortem_dir;
};

/// Multi-session phase-detection server. Lifecycle: construct over a
/// Listener (not owned, must outlive the server), start(), serve, stop()
/// — stop drains every queued frame before returning, so post-stop
/// inspection (fleet, metrics, assignments) sees the complete streams.
class Server {
 public:
  explicit Server(Listener& listener, ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept loop and the worker pool.
  void start();

  /// Graceful shutdown: stops accepting, closes every connection,
  /// processes everything already queued, joins all threads. Idempotent.
  void stop();

  /// Begins draining: no new sessions are accepted (fresh hellos get a
  /// kRedirect error, resumes get kUnknownSession) and every attached
  /// or detached session is force-closed so its client reconnects
  /// elsewhere. Returns the number of sessions closed. Idempotent; also
  /// reachable over the wire via the kDrain control frame.
  std::uint32_t begin_drain();

  /// True once begin_drain() has run.
  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  /// This shard's mergeable state snapshot (what a kFleetState control
  /// query returns, pre-encoding).
  ShardState shard_state() const {
    return capture_shard_state(cfg_.shard_id, draining(), fleet_, metrics_);
  }

  /// Cross-session aggregate view (thread-safe).
  const FleetAggregator& fleet() const noexcept { return fleet_; }

  /// Operational counters/gauges (thread-safe).
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Phase assignments a session's tracker has produced so far; empty
  /// when the id is unknown. Deterministic once the session closed.
  std::vector<std::size_t> session_assignments(std::uint32_t id) const;

  /// Live flight-recorder dump for one session as JSON (the
  /// /sessions/<id>.json body); empty when the id is unknown.
  std::string session_flight_json(std::uint32_t id) const;

  /// Sessions ever opened (fleet rows include closed ones).
  std::size_t session_count() const;

  /// Largest per-session queue depth observed since start.
  std::size_t max_observed_queue_depth() const;

  /// Tracker workers actually running (resolves worker_threads == 0);
  /// meaningful after start().
  std::size_t worker_count() const noexcept { return workers_.size(); }

 private:
  struct Handler {
    std::thread reader;
    /// Timestamp of the last frame read off this connection (steady
    /// ns), maintained for the idle reaper.
    std::atomic<std::uint64_t> last_activity_ns{0};
    /// Set when the reaper or a quarantine force-closed the
    /// connection: the reader must end the session rather than leave
    /// it resumable.
    std::atomic<bool> expired{false};
    /// Set when the reader thread has exited; the reaper skips retired
    /// handlers (their last_activity_ns stops advancing but their
    /// connection may have been rebound to a live successor).
    std::atomic<bool> retired{false};
    /// Rejected frames before any hello (no session to budget them).
    /// Touched by the handler's own reader thread only.
    std::uint32_t pre_hello_errors = 0;

    /// The live connection. Swapped on resume (the worker keeps
    /// pushing events through whatever connection is current), hence
    /// the lock.
    std::shared_ptr<Connection> connection() const {
      util::MutexLock lock(mu_);
      return conn_;
    }
    void rebind(std::shared_ptr<Connection> conn) {
      util::MutexLock lock(mu_);
      conn_ = std::move(conn);
    }

    /// The session bound at hello (or resume); null before. Written by
    /// the handler's own reader thread, read by workers and the reaper.
    std::shared_ptr<Session> session() const {
      util::MutexLock lock(mu_);
      return session_;
    }
    void bind_session(std::shared_ptr<Session> session) {
      util::MutexLock lock(mu_);
      session_ = std::move(session);
    }

   private:
    /// Leaf lock (acquired after Server::handlers_mu_ on scan paths,
    /// never the other way; nothing is acquired while it is held).
    mutable util::Mutex mu_;
    std::shared_ptr<Connection> conn_ INCPROF_GUARDED_BY(mu_);
    std::shared_ptr<Session> session_ INCPROF_GUARDED_BY(mu_);
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Handler>& handler);
  void worker_loop();
  void reaper_loop();
  void schedule(const std::shared_ptr<Handler>& handler);
  void process_round(const std::shared_ptr<Handler>& handler);
  void process_frame(const std::shared_ptr<Handler>& handler,
                     const Frame& frame);
  void handle_query(const std::shared_ptr<Handler>& handler,
                    const Frame& frame);

  /// Counts one rejected frame against the handler's budget, answers
  /// with a typed kProtocolError, and quarantines (disconnect) once
  /// the budget is spent. `frame_bytes` (when available) is the
  /// offending wire frame; a hex prefix of it lands in the session's
  /// flight recorder so a postmortem shows the evidence. Returns true
  /// when the connection was closed.
  bool reject_frame(const std::shared_ptr<Handler>& handler,
                    ProtocolErrorCode code, const std::string& reason,
                    std::string_view frame_bytes = {});
  /// Dumps `session`'s flight recorder to cfg_.postmortem_dir (no-op
  /// when the directory is unset).
  void write_postmortem(const Session& session, std::string_view reason);
  /// Handles a hello carrying resume_session_id. Returns false when
  /// the resume was rejected (connection closed).
  bool resume_session(const std::shared_ptr<Handler>& handler,
                      const HelloPayload& hello);
  /// Ends an abruptly-disconnected session: detaches it when resume is
  /// enabled and allowed, else synthesizes its bye.
  void end_abandoned_session(const std::shared_ptr<Handler>& handler);
  void log_disconnect(const std::shared_ptr<Handler>& handler,
                      std::string_view cause, std::string_view detail);

  Listener& listener_;
  const ServerConfig cfg_;
  FleetAggregator fleet_;
  MetricsRegistry metrics_;

  // Frame-path latency histograms, resolved once (registry references
  // are stable) so the hot path never takes the registry lock.
  obs::Histogram& decode_hist_;
  obs::Histogram& enqueue_hist_;
  obs::Histogram& process_hist_;

  std::atomic<std::uint32_t> next_session_id_{1};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> draining_{false};

  // Lock hierarchy (outer → inner): handlers_mu_ → Handler::mu_ /
  // Session::status_mu_ → Session::queue_mu_. ready_mu_ and reaper_mu_
  // are leaves — no other lock is ever acquired while one is held.
  // Handler detach-claims (Session::reattach after detached()) happen
  // only under handlers_mu_, so the reaper, a racing resume, and stop()
  // cannot all claim the same session.
  mutable util::Mutex handlers_mu_;
  std::vector<std::shared_ptr<Handler>> handlers_
      INCPROF_GUARDED_BY(handlers_mu_);

  util::Mutex ready_mu_;
  util::CondVar ready_cv_;
  util::CondVar idle_cv_;
  std::deque<std::shared_ptr<Handler>> ready_
      INCPROF_GUARDED_BY(ready_mu_);
  std::size_t busy_workers_ INCPROF_GUARDED_BY(ready_mu_) = 0;
  bool stopping_workers_ INCPROF_GUARDED_BY(ready_mu_) = false;

  util::Mutex reaper_mu_;
  util::CondVar reaper_cv_;
  bool reaper_stop_ INCPROF_GUARDED_BY(reaper_mu_) = false;

  std::thread accept_thread_;
  std::thread reaper_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace incprof::service
