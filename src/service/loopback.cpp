#include "service/loopback.hpp"

#include "util/thread_annotations.hpp"

#include <deque>
#include <string>

namespace incprof::service {

namespace {

/// Bounded MPSC frame queue with close semantics: push blocks while
/// full, pop drains remaining frames after close before reporting EOF.
class FrameQueue {
 public:
  explicit FrameQueue(std::size_t capacity) : capacity_(capacity) {}

  bool push(std::string frame) {
    util::MutexLock lock(mu_);
    while (!closed_ && frames_.size() >= capacity_) not_full_.wait(mu_);
    if (closed_) return false;
    frames_.push_back(std::move(frame));
    not_empty_.notify_one();
    return true;
  }

  std::optional<std::string> pop() {
    util::MutexLock lock(mu_);
    while (!closed_ && frames_.empty()) not_empty_.wait(mu_);
    if (frames_.empty()) return std::nullopt;
    std::string frame = std::move(frames_.front());
    frames_.pop_front();
    not_full_.notify_one();
    return frame;
  }

  void close() {
    util::MutexLock lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  const std::size_t capacity_;
  util::Mutex mu_;
  util::CondVar not_empty_;
  util::CondVar not_full_;
  std::deque<std::string> frames_ INCPROF_GUARDED_BY(mu_);
  bool closed_ INCPROF_GUARDED_BY(mu_) = false;
};

class LoopbackConnection : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<FrameQueue> out,
                     std::shared_ptr<FrameQueue> in, std::string label)
      : out_(std::move(out)), in_(std::move(in)), label_(std::move(label)) {}

  ~LoopbackConnection() override { close(); }

  bool send(std::string_view frame_bytes) override {
    return out_->push(std::string(frame_bytes));
  }

  std::optional<std::string> receive() override { return in_->pop(); }

  void close() override {
    // Closing either end closes both directions, like shutdown(RDWR).
    out_->close();
    in_->close();
  }

  std::string description() const override { return label_; }

 private:
  std::shared_ptr<FrameQueue> out_;
  std::shared_ptr<FrameQueue> in_;
  std::string label_;
};

}  // namespace

namespace detail {

struct HubState {
  explicit HubState(std::size_t capacity) : queue_capacity(capacity) {}

  const std::size_t queue_capacity;
  util::Mutex mu;
  util::CondVar pending_cv;
  std::deque<std::unique_ptr<Connection>> pending
      INCPROF_GUARDED_BY(mu);
  std::size_t next_id INCPROF_GUARDED_BY(mu) = 0;
  bool closed INCPROF_GUARDED_BY(mu) = false;

  std::unique_ptr<Connection> connect() {
    util::MutexLock lock(mu);
    if (closed) return nullptr;
    const std::size_t id = next_id++;
    auto client_to_server = std::make_shared<FrameQueue>(queue_capacity);
    auto server_to_client = std::make_shared<FrameQueue>(queue_capacity);
    const std::string label = "loopback#" + std::to_string(id);
    auto client = std::make_unique<LoopbackConnection>(
        client_to_server, server_to_client, label + "/client");
    pending.push_back(std::make_unique<LoopbackConnection>(
        server_to_client, client_to_server, label + "/server"));
    pending_cv.notify_one();
    return client;
  }

  std::unique_ptr<Connection> accept() {
    util::MutexLock lock(mu);
    while (!closed && pending.empty()) pending_cv.wait(mu);
    if (pending.empty()) return nullptr;
    auto conn = std::move(pending.front());
    pending.pop_front();
    return conn;
  }

  void shutdown() {
    util::MutexLock lock(mu);
    closed = true;
    // Unaccepted peers: closing them makes the matching client ends
    // see EOF instead of hanging forever.
    for (auto& conn : pending) conn->close();
    pending.clear();
    pending_cv.notify_all();
  }
};

}  // namespace detail

namespace {

class LoopbackListener : public Listener {
 public:
  explicit LoopbackListener(std::shared_ptr<detail::HubState> state)
      : state_(std::move(state)) {}

  std::unique_ptr<Connection> accept() override { return state_->accept(); }

  void shutdown() override { state_->shutdown(); }

 private:
  std::shared_ptr<detail::HubState> state_;
};

}  // namespace

LoopbackHub::LoopbackHub(std::size_t queue_capacity)
    : state_(std::make_shared<detail::HubState>(queue_capacity)) {}

LoopbackHub::~LoopbackHub() { shutdown(); }

std::unique_ptr<Connection> LoopbackHub::connect() {
  return state_->connect();
}

std::unique_ptr<Listener> LoopbackHub::make_listener() {
  return std::make_unique<LoopbackListener>(state_);
}

void LoopbackHub::shutdown() { state_->shutdown(); }

}  // namespace incprof::service
