#include "service/metrics.hpp"

#include "util/csv.hpp"

namespace incprof::service {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return *it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

std::vector<MetricSample> MetricsRegistry::samples() const {
  std::lock_guard lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, "counter",
                   static_cast<std::int64_t>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, "gauge", g->value()});
  }
  return out;
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  util::CsvWriter w(os);
  w.row({"metric", "kind", "value"});
  for (const auto& s : samples()) {
    w.row_of(s.name, s.kind, static_cast<long long>(s.value));
  }
}

}  // namespace incprof::service
