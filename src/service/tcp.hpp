// POSIX TCP transport — the deployment carrier for incprofd, standing in
// for the paper's LDMS socket transport. Frames are written verbatim
// (the protocol header is the record delimiter); reads go through
// FrameBuffer so short reads and coalesced segments are handled the
// same way regardless of kernel buffering.
#pragma once

#include "service/transport.hpp"

#include <atomic>
#include <cstdint>
#include <string>

namespace incprof::service {

/// Listens on a TCP port (IPv4, all interfaces).
class TcpListener : public Listener {
 public:
  /// Binds and listens; `port == 0` picks an ephemeral port (read it
  /// back with port()). Throws std::runtime_error on failure.
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener() override;

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The bound port (useful after an ephemeral bind).
  std::uint16_t port() const noexcept { return port_; }

  std::unique_ptr<Connection> accept() override;
  void shutdown() override;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

/// Connects to a listening incprofd. Throws std::runtime_error when the
/// host cannot be resolved or the connection is refused.
std::unique_ptr<Connection> tcp_connect(const std::string& host,
                                        std::uint16_t port);

}  // namespace incprof::service
