#include "service/trace_wire.hpp"

#include "util/strings.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace incprof::service {

namespace {

constexpr std::string_view kHeader = "incprof-trace v1";

[[noreturn]] void bad(const std::string& why) {
  throw std::runtime_error("trace-dump: " + why);
}

std::uint64_t field_u64(std::string_view tok, const char* what) {
  std::uint64_t v = 0;
  if (!util::parse_u64(tok, v)) {
    bad(std::string("bad ") + what + " '" + std::string(tok) + "'");
  }
  return v;
}

/// The category sits mid-row, so unlike the name it must stay a single
/// token: any whitespace would shift the name offset and corrupt the
/// row. Span categories are string literals today, but the codec does
/// not get to assume that forever.
std::string sanitize_category(std::string_view category) {
  std::string out(category);
  std::replace_if(
      out.begin(), out.end(),
      [](char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; },
      '_');
  if (out.empty()) return "?";
  return out;
}

/// Same contract as the fleet_state client-name sanitizer: the span
/// name is the final field and may contain spaces, but a newline would
/// split the row and an all-whitespace name would vanish under the
/// tokenizer.
std::string sanitize_span_name(std::string_view name) {
  std::string out(name);
  std::replace_if(
      out.begin(), out.end(),
      [](char c) { return c == '\n' || c == '\r'; }, ' ');
  if (util::trim(out).empty()) return "?";
  return out;
}

/// Offset of the n-th whitespace-separated token in `line` (for the
/// span row, whose final field — the name — may itself contain spaces).
std::size_t token_offset(std::string_view line, std::size_t n) {
  std::size_t pos = 0;
  for (std::size_t tok = 0; tok < n; ++tok) {
    while (pos < line.size() && line[pos] != ' ') ++pos;
    while (pos < line.size() && line[pos] == ' ') ++pos;
  }
  return pos;
}

}  // namespace

TraceDump capture_trace_dump(std::uint32_t shard_id,
                             const obs::TraceBuffer& buffer) {
  TraceDump d;
  d.shard_id = shard_id;
  // Read the drop counter before the snapshot so a concurrent recorder
  // can only make the reported count conservative, never overstated
  // relative to the spans shipped.
  d.dropped = buffer.dropped();
  for (const obs::SpanEvent& ev : buffer.events()) {
    TraceSpanRow row;
    row.trace_id = ev.trace_id;
    row.span_id = ev.span_id;
    row.parent_span = ev.parent_span;
    row.tid = ev.tid;
    row.start_ns = ev.start_ns;
    row.duration_ns = ev.duration_ns;
    row.category = ev.category;
    row.name = ev.name;
    d.spans.push_back(std::move(row));
  }
  return d;
}

std::string encode_trace_dump(const TraceDump& dump) {
  std::string out(kHeader);
  out += '\n';
  out += "shard " + std::to_string(dump.shard_id) + " dropped " +
         std::to_string(dump.dropped) + '\n';
  for (const TraceSpanRow& row : dump.spans) {
    out += "span " + std::to_string(row.trace_id) + ' ' +
           std::to_string(row.span_id) + ' ' +
           std::to_string(row.parent_span) + ' ' + std::to_string(row.tid) +
           ' ' + std::to_string(row.start_ns) + ' ' +
           std::to_string(row.duration_ns) + ' ' +
           sanitize_category(row.category) + ' ' +
           sanitize_span_name(row.name) + '\n';
  }
  return out;
}

TraceDump decode_trace_dump(std::string_view text) {
  const auto lines = util::split_lines(text);
  if (lines.empty() || util::trim(lines[0]) != kHeader) {
    bad("missing header");
  }
  TraceDump d;
  for (std::size_t li = 1; li < lines.size(); ++li) {
    const std::string_view line = lines[li];
    const auto tok = util::split_ws(line);
    if (tok.empty()) continue;
    const std::string_view kw = tok[0];
    if (kw == "shard") {
      if (tok.size() != 4 || tok[2] != "dropped") bad("short shard row");
      d.shard_id = static_cast<std::uint32_t>(field_u64(tok[1], "shard id"));
      d.dropped = field_u64(tok[3], "dropped");
    } else if (kw == "span") {
      if (tok.size() < 9) bad("short span row");
      TraceSpanRow row;
      row.trace_id = field_u64(tok[1], "trace id");
      row.span_id = static_cast<std::uint32_t>(field_u64(tok[2], "span id"));
      row.parent_span =
          static_cast<std::uint32_t>(field_u64(tok[3], "parent span"));
      row.tid = static_cast<std::uint32_t>(field_u64(tok[4], "tid"));
      row.start_ns = field_u64(tok[5], "start_ns");
      row.duration_ns = field_u64(tok[6], "duration_ns");
      row.category = std::string(tok[7]);
      // The name is everything from the 9th token on — it may contain
      // spaces (the encoder guarantees it carries no newline).
      row.name = std::string(line.substr(token_offset(line, 8)));
      d.spans.push_back(std::move(row));
    } else {
      // Unknown keyword: skip, for forward compatibility with v1.x
      // emitters that add rows.
    }
  }
  return d;
}

}  // namespace incprof::service
