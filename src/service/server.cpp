#include "service/server.hpp"

#include "obs/clock.hpp"
#include "obs/trace_context.hpp"
#include "service/trace_wire.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <fstream>
#include <string>

namespace incprof::service {

namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  int at = 18;
  buf[at] = '\0';
  do {
    buf[--at] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  } while (v != 0);
  return std::string("0x") + &buf[at];
}

/// Hex prefix of an offending wire frame for the flight recorder:
/// enough to see the header and the first payload bytes, bounded so a
/// hostile frame cannot bloat the postmortem.
std::string hex_prefix(std::string_view bytes, std::size_t max_bytes = 32) {
  std::string out;
  const std::size_t n = std::min(bytes.size(), max_bytes);
  out.reserve(n * 2 + 8);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<unsigned char>(bytes[i]);
    out.push_back("0123456789abcdef"[b >> 4]);
    out.push_back("0123456789abcdef"[b & 0xf]);
  }
  if (bytes.size() > max_bytes) out += "..";
  return out;
}

/// "trace=0x... " when the session carries a trace id, else "". The
/// correlation handle between a log line and the fleet-merged
/// /trace.json view.
std::string trace_tag(const Session& session) {
  const std::uint64_t id = session.trace_id();
  if (id == 0) return {};
  return " trace=" + hex_u64(id);
}

}  // namespace

Server::Server(Listener& listener, ServerConfig cfg)
    : listener_(listener),
      cfg_(cfg),
      fleet_(cfg.transition_log_capacity),
      decode_hist_(metrics_.histogram("frame_stage_ns",
                                      {{"stage", "decode"}})),
      enqueue_hist_(metrics_.histogram("frame_stage_ns",
                                       {{"stage", "enqueue"}})),
      process_hist_(metrics_.histogram("frame_stage_ns",
                                       {{"stage", "process"}})) {
  next_session_id_.store(first_session_id_for_shard(cfg_.shard_id),
                         std::memory_order_relaxed);
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) return;
  const std::size_t n = util::ThreadPool::resolve(cfg_.worker_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (cfg_.resume_grace.count() > 0 || cfg_.idle_timeout.count() > 0) {
    reaper_thread_ = std::thread([this] { reaper_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    util::MutexLock lock(reaper_mu_);
    reaper_stop_ = true;
    reaper_cv_.notify_all();
  }
  if (reaper_thread_.joinable()) reaper_thread_.join();

  // No new handlers can appear now; close every connection so readers
  // unblock, synthesize their byes, and exit. Shutdown overrides any
  // resume grace: readers see expired and end their sessions outright.
  std::vector<std::shared_ptr<Handler>> handlers;
  {
    util::MutexLock lock(handlers_mu_);
    handlers = handlers_;
  }
  for (const auto& h : handlers) {
    h->expired.store(true, std::memory_order_relaxed);
    h->connection()->close();
  }
  for (const auto& h : handlers) {
    if (h->reader.joinable()) h->reader.join();
  }

  // A session detached before shutdown has no reader left to end it;
  // synthesize its bye here so the drain below closes it too. The
  // claim (reattach after seeing detached) stays under handlers_mu_ so
  // it cannot race the reaper's own claim.
  for (const auto& h : handlers) {
    bool claim = false;
    {
      util::MutexLock lock(handlers_mu_);
      const auto session = h->session();
      if (session && session->detached()) {
        session->reattach();
        claim = true;
      }
    }
    if (claim) end_abandoned_session(h);
  }

  // Everything enqueued is final; drain it before releasing the pool so
  // post-stop inspection sees complete per-session streams.
  {
    util::MutexLock lock(ready_mu_);
    while (!(ready_.empty() && busy_workers_ == 0)) {
      idle_cv_.wait(ready_mu_);
    }
    stopping_workers_ = true;
    ready_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void Server::accept_loop() {
  while (auto conn = listener_.accept()) {
    metrics_.counter("connections_accepted").add();
    if (cfg_.read_timeout.count() > 0) {
      conn->set_receive_timeout(cfg_.read_timeout);
    }
    auto handler = std::make_shared<Handler>();
    handler->rebind(std::shared_ptr<Connection>(std::move(conn)));
    handler->last_activity_ns.store(obs::now_ns(),
                                    std::memory_order_relaxed);
    // Register and spawn under the same lock so stop() never sees a
    // handler whose reader thread is still being constructed.
    util::MutexLock lock(handlers_mu_);
    handlers_.push_back(handler);
    handler->reader =
        std::thread([this, handler] { reader_loop(handler); });
  }
}

void Server::reader_loop(const std::shared_ptr<Handler>& handler) {
  // This handler's connection is fixed for the reader's lifetime: a
  // resume rebinds *other* handlers (whose readers already exited) to
  // the resuming connection, never a live reader's own.
  const std::shared_ptr<Connection> conn = handler->connection();
  // The reader is the only thread that binds this handler's session;
  // the local copy avoids re-taking the handler lock per frame.
  std::shared_ptr<Session> session;
  bool saw_bye = false;
  for (;;) {
    std::optional<std::string> bytes;
    try {
      bytes = conn->receive();
    } catch (const std::exception& e) {
      // Peer vanished mid-frame: the byte stream is desynchronized and
      // cannot be resynchronized, so the connection is done — but the
      // session may still be resumable.
      metrics_.counter("protocol_errors").add();
      log_disconnect(handler, "mid_frame", e.what());
      break;
    }
    if (!bytes) break;  // EOF, reset, deadline, or forced close
    handler->last_activity_ns.store(obs::now_ns(),
                                    std::memory_order_relaxed);

    // Adopt the frame's wire trace context for the rest of this
    // iteration: the decode and enqueue spans become children of the
    // sender's span, joining the client's end-to-end trace (zeros for
    // v1 peers — the spans still record, just untraced).
    const WireTraceContext wire = peek_trace_context(*bytes);
    obs::ScopedTraceContext trace_scope({wire.trace_id, wire.parent_span});

    Frame frame;
    try {
      obs::ScopedSpan span("frame.decode", "service", &decode_hist_);
      frame = decode_frame(*bytes);
    } catch (const std::exception& e) {
      // The transport delivered a delimited frame whose content is
      // garbage; framing survives, so this is recoverable — budget it.
      if (reject_frame(handler, ProtocolErrorCode::kMalformedFrame,
                       e.what(), *bytes)) {
        break;
      }
      continue;
    }

    if (!session) {
      // Control-plane frames (a gateway's aggregator pull or drain
      // order) are valid before any hello: they concern the shard, not
      // a session, and are answered sessionless so they never pollute
      // the fleet aggregate they report on.
      if (frame.type == FrameType::kQuery) {
        QueryPayload query;
        try {
          query = decode_query(frame.payload);
        } catch (const std::exception& e) {
          reject_frame(handler, ProtocolErrorCode::kMalformedFrame,
                       e.what(), *bytes);
          break;
        }
        if (query.kind == QueryKind::kSessionStatus) {
          reject_frame(handler, ProtocolErrorCode::kUnexpectedFrame,
                       "session-status query before hello");
          break;
        }
        QueryReplyPayload reply;
        reply.kind = query.kind;
        if (query.kind == QueryKind::kFleetState) {
          reply.text = encode_shard_state(shard_state());
        } else if (query.kind == QueryKind::kTraceDump) {
          reply.text =
              encode_trace_dump(capture_trace_dump(cfg_.shard_id,
                                                   obs::trace()));
        } else {
          reply.text = fleet_.render();
        }
        if (conn->send(make_query_reply_frame(0, reply))) {
          metrics_.counter("control_queries").add();
        }
        continue;
      }
      if (frame.type == FrameType::kDrain) {
        DrainAckPayload ack;
        ack.sessions_closed = begin_drain();
        conn->send(make_drain_ack_frame(ack));
        continue;
      }
      if (frame.type != FrameType::kHello) {
        // Unauthenticated peers get no budget: typed error, then out.
        reject_frame(handler, ProtocolErrorCode::kUnexpectedFrame,
                     "expected hello");
        break;
      }
      HelloPayload hello;
      try {
        hello = decode_hello(frame.payload);
      } catch (const std::exception& e) {
        reject_frame(handler, ProtocolErrorCode::kMalformedFrame,
                     e.what(), *bytes);
        break;
      }
      if (hello.resume_session_id == 0 &&
          draining_.load(std::memory_order_relaxed)) {
        // A draining shard takes no fresh sessions; the typed redirect
        // tells the client (or gateway) to reconnect, where routing
        // will land it on a serving shard.
        metrics_.counter("redirects_sent").add();
        ProtocolErrorPayload err;
        err.code = ProtocolErrorCode::kRedirect;
        err.message = "shard draining; reconnect";
        conn->send(make_protocol_error_frame(0, err));
        conn->close();
        break;
      }
      if (hello.resume_session_id != 0) {
        if (!resume_session(handler, hello)) break;
        session = handler->session();
        continue;
      }
      const std::uint32_t id = next_session_id_.fetch_add(1);
      session = std::make_shared<Session>(id, cfg_.session);
      session->open(hello.client_name,
                    hello.subscribe_events && cfg_.send_phase_events,
                    hello.interval_ns);
      session->note_trace_id(frame.trace_id);
      handler->bind_session(session);
      fleet_.session_opened(id, hello.client_name);
      metrics_.counter("sessions_opened").add();
      metrics_.gauge("active_sessions").add(1);
      HelloAckPayload ack;
      ack.session_id = id;
      conn->send(make_hello_ack_frame(id, ack));
      continue;
    }

    if (frame.type == FrameType::kHello) {
      if (reject_frame(handler, ProtocolErrorCode::kUnexpectedFrame,
                       "duplicate hello", *bytes)) {
        break;
      }
      continue;
    }

    const bool is_bye = frame.type == FrameType::kBye;
    metrics_.counter("frames_received").add();
    session->note_trace_id(frame.trace_id);
    Session::EnqueueResult result;
    {
      obs::ScopedSpan span("frame.enqueue", "service", &enqueue_hist_);
      result = session->enqueue(std::move(frame), /*force=*/is_bye);
    }
    if (result == Session::EnqueueResult::kDropped) {
      metrics_.counter("frames_dropped").add();
      fleet_.record_drops(session->id(), session->dropped_frames());
    } else if (result == Session::EnqueueResult::kScheduled) {
      schedule(handler);
    }
    if (is_bye) {
      saw_bye = true;
      break;
    }
  }

  if (session && !saw_bye) end_abandoned_session(handler);
  // Without a bye there is nothing left to deliver, so close this
  // reader's own connection: after an EOF or error that is a no-op, but
  // after a read-deadline lapse (or a bye the network swallowed) the
  // peer is still live and must learn the server is done, or it would
  // block in its drain forever. After a real bye the worker still owes
  // the client its queued events and query reply, and closes once the
  // session drains. A resumed session has already rebound its handlers
  // to the new connection, so this never touches a live successor.
  if (!saw_bye) conn->close();
  handler->retired.store(true, std::memory_order_release);
}

void Server::end_abandoned_session(
    const std::shared_ptr<Handler>& handler) {
  const auto session = handler->session();
  if (session->closed()) return;
  if (cfg_.resume_grace.count() > 0 &&
      !handler->expired.load(std::memory_order_relaxed)) {
    // Leave the session waiting for its client to reconnect; the
    // reaper ends it if the grace window lapses first.
    session->detach(obs::now_ns());
    metrics_.counter("sessions_detached").add();
    log_disconnect(handler, "detached", "awaiting resume");
    return;
  }
  // Close the session as if a bye had arrived.
  Frame bye;
  bye.type = FrameType::kBye;
  bye.session = session->id();
  if (session->enqueue(std::move(bye), /*force=*/true) ==
      Session::EnqueueResult::kScheduled) {
    schedule(handler);
  }
}

bool Server::reject_frame(const std::shared_ptr<Handler>& handler,
                          ProtocolErrorCode code,
                          const std::string& reason,
                          std::string_view frame_bytes) {
  metrics_.counter("frames_rejected").add();
  metrics_.counter("protocol_errors").add();
  const auto conn = handler->connection();
  const auto session = handler->session();
  std::uint32_t errors = 0;
  std::uint32_t budget = cfg_.protocol_error_budget;
  std::uint32_t session_id = 0;
  if (session) {
    errors = session->note_protocol_error();
    session_id = session->id();
    // The offending bytes go into the flight recorder, not the log: a
    // postmortem must show the evidence, a log line must stay short.
    std::string detail = reason;
    if (!frame_bytes.empty()) {
      detail += " frame=";
      detail += hex_prefix(frame_bytes);
    }
    session->flight_recorder().record(
        FlightEventKind::kProtocolError, obs::now_ns(), errors,
        static_cast<std::uint64_t>(code), std::move(detail));
  } else {
    errors = ++handler->pre_hello_errors;
    budget = 0;  // no hello, no credit
  }
  const bool quarantine = errors > budget;

  ProtocolErrorPayload err;
  err.code = (quarantine && session) ? ProtocolErrorCode::kQuarantined
                                     : code;
  err.errors = errors;
  err.budget = budget;
  err.message = reason;
  conn->send(make_protocol_error_frame(session_id, err));
  if (!quarantine) return false;

  obs::ScopedSpan span("session.quarantine", "service");
  handler->expired.store(true, std::memory_order_relaxed);
  if (session) {
    session->flight_recorder().record(FlightEventKind::kQuarantine,
                                      obs::now_ns(), errors, budget,
                                      reason);
    metrics_.counter("sessions_quarantined").add();
    util::log_warn("incprofd: session " + std::to_string(session_id) +
                   " (" + conn->description() + ") quarantined after " +
                   std::to_string(errors) + " protocol errors" +
                   trace_tag(*session) + ": " + reason);
    write_postmortem(*session, "quarantine");
  } else {
    util::log_warn("incprofd: connection " + conn->description() +
                   " rejected before hello: " + reason);
  }
  metrics_.counter("disconnects", {{"cause", "quarantine"}}).add();
  conn->close();
  return true;
}

void Server::write_postmortem(const Session& session,
                              std::string_view reason) {
  if (cfg_.postmortem_dir.empty()) return;
  const std::string path = cfg_.postmortem_dir + "/postmortem-session-" +
                           std::to_string(session.id()) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    util::log_warn("incprofd: cannot write postmortem " + path);
    return;
  }
  out << flight_recorder_json(session.flight_recorder(), session.id(),
                              session.client_name(), reason,
                              session.trace_id());
  metrics_.counter("postmortems_written").add();
  util::log_info("incprofd: session " + std::to_string(session.id()) +
                 " postmortem written to " + path);
}

bool Server::resume_session(const std::shared_ptr<Handler>& handler,
                            const HelloPayload& hello) {
  const auto conn = handler->connection();
  std::shared_ptr<Session> session;
  std::vector<std::shared_ptr<Handler>> stale;
  // A draining shard refuses resumes too (the scan below is skipped, so
  // the reply is kUnknownSession): the client's resilient replay then
  // restarts the stream as a fresh session, which routing places on a
  // serving shard — the migration path, losing no intervals.
  if (!draining_.load(std::memory_order_relaxed)) {
    util::MutexLock lock(handlers_mu_);
    for (const auto& h : handlers_) {
      if (h.get() == handler.get()) continue;
      const auto candidate = h->session();
      if (!candidate || candidate->id() != hello.resume_session_id) {
        continue;
      }
      session = candidate;
      stale.push_back(h);
    }
    // The detached flag is only flipped under handlers_mu_, so the
    // reaper and a racing resume cannot both claim the session.
    if (session && session->detached() && !session->closed()) {
      session->reattach();
    } else {
      session = nullptr;
    }
  }
  if (!session) {
    metrics_.counter("frames_rejected").add();
    metrics_.counter("protocol_errors").add();
    ProtocolErrorPayload err;
    err.code = ProtocolErrorCode::kUnknownSession;
    err.errors = 1;
    err.budget = 0;
    err.message = "no resumable session " +
                  std::to_string(hello.resume_session_id);
    conn->send(make_protocol_error_frame(hello.resume_session_id, err));
    conn->close();
    return false;
  }

  obs::ScopedSpan span("session.resume", "service");
  // Point every stale handler for this session at the live connection:
  // a queued worker round pushing phase events through an old handler
  // must not write into the dead socket.
  for (const auto& h : stale) h->rebind(conn);
  handler->bind_session(session);
  session->open(hello.client_name,
                hello.subscribe_events && cfg_.send_phase_events,
                hello.interval_ns);
  session->flight_recorder().record(FlightEventKind::kResume,
                                    obs::now_ns(),
                                    session->snapshots_accepted(), 0,
                                    conn->description());
  metrics_.counter("reconnects").add();
  util::log_info("incprofd: session " + std::to_string(session->id()) +
                 " resumed by " + conn->description() + " at interval " +
                 std::to_string(session->snapshots_accepted()) +
                 trace_tag(*session));
  HelloAckPayload ack;
  ack.session_id = session->id();
  ack.resume_next_interval = session->snapshots_accepted();
  conn->send(make_hello_ack_frame(session->id(), ack));
  return true;
}

std::uint32_t Server::begin_drain() {
  // First the flag, then the closes: any hello that races the drain
  // either lands before the flag (session accepted, then force-closed
  // below or by a later scan — its client resumes elsewhere) or after
  // (redirected immediately).
  const bool already = draining_.exchange(true);
  if (!already) {
    metrics_.counter("drains_started").add();
    util::log_info("incprofd: shard " + std::to_string(cfg_.shard_id) +
                   " draining");
  }

  std::vector<std::shared_ptr<Handler>> attached;
  std::vector<std::shared_ptr<Handler>> orphaned;  // detached sessions
  {
    util::MutexLock lock(handlers_mu_);
    for (const auto& h : handlers_) {
      const auto session = h->session();
      if (!session || session->closed()) continue;
      if (session->detached()) {
        // Claim under handlers_mu_, like stop(): no racing resume or
        // reaper pass can end the same session twice.
        session->reattach();
        orphaned.push_back(h);
      } else if (!h->expired.load(std::memory_order_relaxed)) {
        attached.push_back(h);
      }
    }
  }
  // expired makes the reader end the session outright instead of
  // detaching it into resume limbo nobody will ever claim.
  for (const auto& h : attached) {
    h->expired.store(true, std::memory_order_relaxed);
    h->connection()->close();
  }
  for (const auto& h : orphaned) {
    h->expired.store(true, std::memory_order_relaxed);
    end_abandoned_session(h);
  }
  const auto closed =
      static_cast<std::uint32_t>(attached.size() + orphaned.size());
  if (closed > 0) {
    metrics_.counter("sessions_drained").add(closed);
  }
  return closed;
}

void Server::reaper_loop() {
  const auto grace_ns =
      static_cast<std::uint64_t>(cfg_.resume_grace.count()) * 1000000ull;
  const auto idle_ns =
      static_cast<std::uint64_t>(cfg_.idle_timeout.count()) * 1000000ull;
  util::MutexLock lock(reaper_mu_);
  while (!reaper_stop_) {
    // Plain timed wait (no predicate): a spurious wakeup only makes the
    // cheap scan below run early, and stop() is re-checked every pass.
    reaper_cv_.wait_for(reaper_mu_, std::chrono::milliseconds(50));
    if (reaper_stop_) break;
    lock.unlock();

    const std::uint64_t now = obs::now_ns();
    std::vector<std::shared_ptr<Handler>> lapsed;  // grace expired
    std::vector<std::shared_ptr<Handler>> idle;    // attached but silent
    {
      util::MutexLock handlers_lock(handlers_mu_);
      for (const auto& h : handlers_) {
        const auto session = h->session();
        if (session && session->detached()) {
          if (grace_ns > 0 &&
              now - session->detached_since_ns() > grace_ns) {
            session->reattach();  // claimed; no resume can win now
            lapsed.push_back(h);
          }
          continue;
        }
        if (idle_ns == 0 || h->retired.load(std::memory_order_acquire)) {
          continue;
        }
        if (session && session->closed()) continue;
        if (now - h->last_activity_ns.load(std::memory_order_relaxed) >
            idle_ns) {
          idle.push_back(h);
        }
      }
    }

    for (const auto& h : lapsed) {
      obs::ScopedSpan span("session.reap", "service");
      metrics_.counter("sessions_reaped", {{"cause", "grace_expired"}})
          .add();
      log_disconnect(h, "grace_expired", "client never resumed");
      // Mark the handler expired so end_abandoned_session ends the
      // session outright instead of detaching it again with a fresh
      // timestamp (which would re-lapse forever).
      h->expired.store(true, std::memory_order_relaxed);
      end_abandoned_session(h);
    }
    for (const auto& h : idle) {
      obs::ScopedSpan span("session.reap", "service");
      h->expired.store(true, std::memory_order_relaxed);
      if (h->session()) {
        metrics_.counter("sessions_reaped", {{"cause", "idle"}}).add();
      }
      log_disconnect(h, "idle", "no traffic within idle timeout");
      // The reader unblocks, sees expired, and ends the session.
      h->connection()->close();
    }

    lock.lock();
  }
}

void Server::log_disconnect(const std::shared_ptr<Handler>& handler,
                            std::string_view cause,
                            std::string_view detail) {
  metrics_.counter("disconnects", {{"cause", cause}}).add();
  std::string msg = "incprofd: connection ";
  msg += handler->connection()->description();
  if (const auto session = handler->session()) {
    msg += " (session " + std::to_string(session->id()) +
           trace_tag(*session) + ")";
  }
  msg += " disconnected, cause=";
  msg += cause;
  msg += ": ";
  msg += detail;
  util::log_warn(msg);
}

void Server::schedule(const std::shared_ptr<Handler>& handler) {
  util::MutexLock lock(ready_mu_);
  ready_.push_back(handler);
  ready_cv_.notify_one();
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Handler> handler;
    {
      util::MutexLock lock(ready_mu_);
      while (!stopping_workers_ && ready_.empty()) {
        ready_cv_.wait(ready_mu_);
      }
      if (ready_.empty()) return;  // stopping and fully drained
      handler = std::move(ready_.front());
      ready_.pop_front();
      ++busy_workers_;
    }

    process_round(handler);
    const bool again = handler->session()->finish_round();

    util::MutexLock lock(ready_mu_);
    --busy_workers_;
    if (again) {
      ready_.push_back(handler);
      ready_cv_.notify_one();
    } else if (ready_.empty() && busy_workers_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

void Server::process_round(const std::shared_ptr<Handler>& handler) {
  const auto session = handler->session();
  const auto frames = session->take_pending();
  for (const auto& frame : frames) {
    {
      // Re-adopt the frame's wire context on this worker thread: the
      // process span (and the analysis-pipeline spans under it) join
      // the same trace the reader's decode/enqueue spans recorded.
      obs::ScopedTraceContext trace_scope(
          {frame.trace_id, frame.parent_span});
      obs::ScopedSpan span("frame.process", "service", &process_hist_);
      process_frame(handler, frame);
    }
    if (frame.type == FrameType::kBye) break;
  }
  metrics_.gauge("max_queue_depth")
      .record_max(
          static_cast<std::int64_t>(session->max_queue_depth()));
}

void Server::process_frame(const std::shared_ptr<Handler>& handler,
                           const Frame& frame) {
  const auto session_ptr = handler->session();
  Session& session = *session_ptr;
  switch (frame.type) {
    case FrameType::kSnapshot: {
      gmon::ProfileSnapshot snap;
      try {
        snap = decode_snapshot(frame.payload);
      } catch (const std::exception& e) {
        reject_frame(handler, ProtocolErrorCode::kMalformedFrame,
                     e.what());
        return;
      }
      // now_ns is read before `obs` shadows the namespace below.
      const std::uint64_t now = obs::now_ns();
      // The decoded snapshot is dead after this frame: hand it to the
      // tracker, which keeps it as its previous-dump state instead of
      // deep-copying the whole cumulative profile every interval.
      const core::OnlineObservation obs =
          session.tracker().observe(std::move(snap));
      session.note_observation(obs);
      session.flight_recorder().record(FlightEventKind::kIntervalReceived,
                                       now, obs.interval, obs.phase);
      if (obs.transition) {
        session.flight_recorder().record(FlightEventKind::kPhaseTransition,
                                         now, obs.interval, obs.phase);
      }
      fleet_.record_observation(session.id(), obs,
                                session.tracker().num_phases());
      metrics_.counter("snapshots_observed").add();
      if (session.subscribed()) {
        PhaseEventPayload event;
        event.interval = static_cast<std::uint32_t>(obs.interval);
        event.phase = static_cast<std::uint32_t>(obs.phase);
        event.new_phase = obs.new_phase;
        event.transition = obs.transition;
        event.distance = obs.distance;
        if (handler->connection()->send(
                make_phase_event_frame(session.id(), event))) {
          metrics_.counter("phase_events_sent").add();
        }
      }
      return;
    }
    case FrameType::kHeartbeatBatch: {
      HeartbeatBatchPayload batch;
      try {
        batch = decode_heartbeat_batch(frame.payload);
      } catch (const std::exception& e) {
        reject_frame(handler, ProtocolErrorCode::kMalformedFrame,
                     e.what());
        return;
      }
      session.note_heartbeats(batch.records.size());
      fleet_.record_heartbeats(session.id(), batch.records.size());
      metrics_.counter("heartbeat_records").add(batch.records.size());
      return;
    }
    case FrameType::kQuery:
      handle_query(handler, frame);
      return;
    case FrameType::kBye:
      // A real bye and a synthesized one can both be queued (quarantine
      // or reap racing the client's own farewell); close only once.
      if (session.closed()) return;
      session.mark_closed();
      fleet_.session_closed(session.id());
      fleet_.record_drops(session.id(), session.dropped_frames());
      metrics_.counter("sessions_closed").add();
      metrics_.gauge("active_sessions").add(-1);
      handler->connection()->close();
      return;
    default:
      // Server-to-client frame types arriving here are client bugs.
      reject_frame(handler, ProtocolErrorCode::kUnexpectedFrame,
                   "frame type " +
                       std::to_string(static_cast<unsigned>(frame.type)) +
                       " is server-to-client");
      return;
  }
}

void Server::handle_query(const std::shared_ptr<Handler>& handler,
                          const Frame& frame) {
  QueryPayload query;
  try {
    query = decode_query(frame.payload);
  } catch (const std::exception& e) {
    reject_frame(handler, ProtocolErrorCode::kMalformedFrame, e.what());
    return;
  }
  const auto session = handler->session();
  QueryReplyPayload reply;
  reply.kind = query.kind;
  switch (query.kind) {
    case QueryKind::kFleetSummary:
      reply.text = fleet_.render();
      break;
    case QueryKind::kFleetState:
      reply.text = encode_shard_state(shard_state());
      break;
    case QueryKind::kSessionStatus:
      reply.text = session->status_line();
      break;
    case QueryKind::kTraceDump:
      reply.text = encode_trace_dump(
          capture_trace_dump(cfg_.shard_id, obs::trace()));
      break;
  }
  if (handler->connection()->send(
          make_query_reply_frame(session->id(), reply))) {
    metrics_.counter("query_replies").add();
  }
}

std::vector<std::size_t> Server::session_assignments(
    std::uint32_t id) const {
  util::MutexLock lock(handlers_mu_);
  for (const auto& h : handlers_) {
    const auto session = h->session();
    if (session && session->id() == id) {
      return session->assignments();
    }
  }
  return {};
}

std::string Server::session_flight_json(std::uint32_t id) const {
  std::shared_ptr<Session> found;
  {
    util::MutexLock lock(handlers_mu_);
    for (const auto& h : handlers_) {
      const auto session = h->session();
      if (session && session->id() == id) {
        found = session;
        break;
      }
    }
  }
  if (!found) return {};
  // Render outside handlers_mu_: the recorder has its own leaf lock and
  // JSON assembly has no business extending the scan's critical section.
  return flight_recorder_json(found->flight_recorder(), found->id(),
                              found->client_name(), "live",
                              found->trace_id());
}

std::size_t Server::session_count() const {
  return fleet_.sessions().size();
}

std::size_t Server::max_observed_queue_depth() const {
  util::MutexLock lock(handlers_mu_);
  std::size_t depth = 0;
  for (const auto& h : handlers_) {
    if (const auto session = h->session()) {
      depth = std::max(depth, session->max_queue_depth());
    }
  }
  return depth;
}

}  // namespace incprof::service
