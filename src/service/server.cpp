#include "service/server.hpp"

#include <algorithm>

namespace incprof::service {

Server::Server(Listener& listener, ServerConfig cfg)
    : listener_(listener),
      cfg_(cfg),
      fleet_(cfg.transition_log_capacity),
      decode_hist_(metrics_.histogram("frame_stage_ns",
                                      {{"stage", "decode"}})),
      enqueue_hist_(metrics_.histogram("frame_stage_ns",
                                       {{"stage", "enqueue"}})),
      process_hist_(metrics_.histogram("frame_stage_ns",
                                       {{"stage", "process"}})) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) return;
  const std::size_t n = std::max<std::size_t>(1, cfg_.worker_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();

  // No new handlers can appear now; close every connection so readers
  // unblock, synthesize their byes, and exit.
  std::vector<std::shared_ptr<Handler>> handlers;
  {
    std::lock_guard lock(handlers_mu_);
    handlers = handlers_;
  }
  for (const auto& h : handlers) h->conn->close();
  for (const auto& h : handlers) {
    if (h->reader.joinable()) h->reader.join();
  }

  // Everything enqueued is final; drain it before releasing the pool so
  // post-stop inspection sees complete per-session streams.
  {
    std::unique_lock lock(ready_mu_);
    idle_cv_.wait(lock,
                  [&] { return ready_.empty() && busy_workers_ == 0; });
    stopping_workers_ = true;
    ready_cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void Server::accept_loop() {
  while (auto conn = listener_.accept()) {
    metrics_.counter("connections_accepted").add();
    auto handler = std::make_shared<Handler>();
    handler->conn = std::move(conn);
    // Register and spawn under the same lock so stop() never sees a
    // handler whose reader thread is still being constructed.
    std::lock_guard lock(handlers_mu_);
    handlers_.push_back(handler);
    handler->reader =
        std::thread([this, handler] { reader_loop(handler); });
  }
}

void Server::reader_loop(const std::shared_ptr<Handler>& handler) {
  bool saw_bye = false;
  try {
    while (auto bytes = handler->conn->receive()) {
      Frame frame;
      try {
        obs::ScopedSpan span("frame.decode", "service", &decode_hist_);
        frame = decode_frame(*bytes);
      } catch (const std::exception&) {
        metrics_.counter("protocol_errors").add();
        break;  // a desynchronized stream cannot be resynchronized
      }

      if (!handler->session) {
        if (frame.type != FrameType::kHello) {
          metrics_.counter("protocol_errors").add();
          break;
        }
        HelloPayload hello;
        try {
          hello = decode_hello(frame.payload);
        } catch (const std::exception&) {
          metrics_.counter("protocol_errors").add();
          break;
        }
        const std::uint32_t id = next_session_id_.fetch_add(1);
        auto session = std::make_shared<Session>(id, cfg_.session);
        session->open(hello.client_name,
                      hello.subscribe_events && cfg_.send_phase_events,
                      hello.interval_ns);
        {
          std::lock_guard lock(handlers_mu_);
          handler->session = session;
        }
        fleet_.session_opened(id, hello.client_name);
        metrics_.counter("sessions_opened").add();
        metrics_.gauge("active_sessions").add(1);
        HelloAckPayload ack;
        ack.session_id = id;
        handler->conn->send(make_hello_ack_frame(id, ack));
        continue;
      }

      if (frame.type == FrameType::kHello) {
        metrics_.counter("protocol_errors").add();  // duplicate hello
        continue;
      }

      const bool is_bye = frame.type == FrameType::kBye;
      metrics_.counter("frames_received").add();
      Session::EnqueueResult result;
      {
        obs::ScopedSpan span("frame.enqueue", "service", &enqueue_hist_);
        result =
            handler->session->enqueue(std::move(frame), /*force=*/is_bye);
      }
      if (result == Session::EnqueueResult::kDropped) {
        metrics_.counter("frames_dropped").add();
        fleet_.record_drops(handler->session->id(),
                            handler->session->dropped_frames());
      } else if (result == Session::EnqueueResult::kScheduled) {
        schedule(handler);
      }
      if (is_bye) {
        saw_bye = true;
        break;
      }
    }
  } catch (const std::exception&) {
    metrics_.counter("protocol_errors").add();  // e.g. EOF mid-frame
  }

  if (handler->session && !saw_bye) {
    // Abrupt disconnect: close the session as if a bye had arrived.
    Frame bye;
    bye.type = FrameType::kBye;
    bye.session = handler->session->id();
    if (handler->session->enqueue(std::move(bye), /*force=*/true) ==
        Session::EnqueueResult::kScheduled) {
      schedule(handler);
    }
  }
  if (!handler->session) handler->conn->close();
}

void Server::schedule(const std::shared_ptr<Handler>& handler) {
  std::lock_guard lock(ready_mu_);
  ready_.push_back(handler);
  ready_cv_.notify_one();
}

void Server::worker_loop() {
  for (;;) {
    std::shared_ptr<Handler> handler;
    {
      std::unique_lock lock(ready_mu_);
      ready_cv_.wait(
          lock, [&] { return stopping_workers_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stopping and fully drained
      handler = std::move(ready_.front());
      ready_.pop_front();
      ++busy_workers_;
    }

    process_round(handler);
    const bool again = handler->session->finish_round();

    std::lock_guard lock(ready_mu_);
    --busy_workers_;
    if (again) {
      ready_.push_back(handler);
      ready_cv_.notify_one();
    } else if (ready_.empty() && busy_workers_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

void Server::process_round(const std::shared_ptr<Handler>& handler) {
  const auto frames = handler->session->take_pending();
  for (const auto& frame : frames) {
    {
      obs::ScopedSpan span("frame.process", "service", &process_hist_);
      process_frame(handler, frame);
    }
    if (frame.type == FrameType::kBye) break;
  }
  metrics_.gauge("max_queue_depth")
      .record_max(
          static_cast<std::int64_t>(handler->session->max_queue_depth()));
}

void Server::process_frame(const std::shared_ptr<Handler>& handler,
                           const Frame& frame) {
  Session& session = *handler->session;
  switch (frame.type) {
    case FrameType::kSnapshot: {
      gmon::ProfileSnapshot snap;
      try {
        snap = decode_snapshot(frame.payload);
      } catch (const std::exception&) {
        metrics_.counter("protocol_errors").add();
        return;
      }
      const core::OnlineObservation obs = session.tracker().observe(snap);
      session.note_observation(obs);
      fleet_.record_observation(session.id(), obs,
                                session.tracker().num_phases());
      metrics_.counter("snapshots_observed").add();
      if (session.subscribed()) {
        PhaseEventPayload event;
        event.interval = static_cast<std::uint32_t>(obs.interval);
        event.phase = static_cast<std::uint32_t>(obs.phase);
        event.new_phase = obs.new_phase;
        event.transition = obs.transition;
        event.distance = obs.distance;
        if (handler->conn->send(
                make_phase_event_frame(session.id(), event))) {
          metrics_.counter("phase_events_sent").add();
        }
      }
      return;
    }
    case FrameType::kHeartbeatBatch: {
      HeartbeatBatchPayload batch;
      try {
        batch = decode_heartbeat_batch(frame.payload);
      } catch (const std::exception&) {
        metrics_.counter("protocol_errors").add();
        return;
      }
      session.note_heartbeats(batch.records.size());
      fleet_.record_heartbeats(session.id(), batch.records.size());
      metrics_.counter("heartbeat_records").add(batch.records.size());
      return;
    }
    case FrameType::kQuery:
      handle_query(handler, frame);
      return;
    case FrameType::kBye:
      session.mark_closed();
      fleet_.session_closed(session.id());
      fleet_.record_drops(session.id(), session.dropped_frames());
      metrics_.counter("sessions_closed").add();
      metrics_.gauge("active_sessions").add(-1);
      handler->conn->close();
      return;
    default:
      // Server-to-client frame types arriving here are client bugs.
      metrics_.counter("protocol_errors").add();
      return;
  }
}

void Server::handle_query(const std::shared_ptr<Handler>& handler,
                          const Frame& frame) {
  QueryPayload query;
  try {
    query = decode_query(frame.payload);
  } catch (const std::exception&) {
    metrics_.counter("protocol_errors").add();
    return;
  }
  QueryReplyPayload reply;
  reply.kind = query.kind;
  reply.text = query.kind == QueryKind::kFleetSummary
                   ? fleet_.render()
                   : handler->session->status_line();
  if (handler->conn->send(make_query_reply_frame(handler->session->id(),
                                                 reply))) {
    metrics_.counter("query_replies").add();
  }
}

std::vector<std::size_t> Server::session_assignments(
    std::uint32_t id) const {
  std::lock_guard lock(handlers_mu_);
  for (const auto& h : handlers_) {
    if (h->session && h->session->id() == id) {
      return h->session->assignments();
    }
  }
  return {};
}

std::size_t Server::session_count() const {
  return fleet_.sessions().size();
}

std::size_t Server::max_observed_queue_depth() const {
  std::lock_guard lock(handlers_mu_);
  std::size_t depth = 0;
  for (const auto& h : handlers_) {
    if (h->session) {
      depth = std::max(depth, h->session->max_queue_depth());
    }
  }
  return depth;
}

}  // namespace incprof::service
