// Per-session flight recorder: a small bounded ring of structured
// events (interval received, phase transition, protocol error, resume,
// quarantine) that is cheap enough to run always-on and is dumped as
// JSON the moment a session is quarantined or its error budget runs
// out — the "what were the last N things this session did" record that
// aggregate metrics cannot answer.
//
// Unlike the lock-free obs::TraceBuffer (process-global, written from
// hot span paths), a flight recorder is per-session and written only
// from that session's frame path, so a plain leaf mutex is the simpler
// and equally cheap construction. The lock is a leaf in the server's
// documented hierarchy: nothing else is ever acquired while holding it.
#pragma once

#include "util/thread_annotations.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace incprof::service {

enum class FlightEventKind : std::uint8_t {
  kIntervalReceived = 0,
  kPhaseTransition = 1,
  kProtocolError = 2,
  kResume = 3,
  kQuarantine = 4,
};

/// Human-readable tag for JSON output ("interval", "phase", ...).
std::string_view flight_event_kind_name(FlightEventKind kind) noexcept;

/// One recorded event. `a`/`b` are kind-specific small integers
/// (interval index, phase ids, error counts); `detail` carries the
/// free-form part (error text, offending frame bytes as hex).
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kIntervalReceived;
  std::uint64_t t_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string detail;

  bool operator==(const FlightEvent&) const = default;
};

/// Bounded ring of the last `capacity` events. Thread-safe; all methods
/// take a leaf mutex.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 64);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(FlightEventKind kind, std::uint64_t t_ns, std::uint64_t a = 0,
              std::uint64_t b = 0, std::string detail = {})
      INCPROF_EXCLUDES(mu_);

  /// Retained events, oldest first.
  std::vector<FlightEvent> events() const INCPROF_EXCLUDES(mu_);

  /// Total events ever recorded (retained + evicted).
  std::uint64_t recorded() const INCPROF_EXCLUDES(mu_);

  /// Events evicted by the ring bound.
  std::uint64_t dropped() const INCPROF_EXCLUDES(mu_);

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable util::Mutex mu_;
  /// Ring storage; `next_ % capacity_` is the next write slot once the
  /// ring is full.
  std::vector<FlightEvent> ring_ INCPROF_GUARDED_BY(mu_);
  std::uint64_t next_ INCPROF_GUARDED_BY(mu_) = 0;
};

/// Renders a recorder dump as a JSON object:
///   {"session": 7, "client": "...", "reason": "quarantine",
///    "recorded": 12, "dropped": 0, "events": [
///      {"kind": "interval", "t_ns": ..., "a": ..., "b": ...,
///       "detail": "..."}, ...]}
/// This is both the /sessions/<id>.json body and the postmortem file
/// format.
std::string flight_recorder_json(const FlightRecorder& recorder,
                                 std::uint32_t session_id,
                                 std::string_view client_name,
                                 std::string_view reason,
                                 std::uint64_t trace_id);

}  // namespace incprof::service
