#include "service/fleet_state.hpp"

#include "util/strings.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace incprof::service {

namespace {

constexpr std::string_view kHeader = "incprof-shard-state v1";

[[noreturn]] void bad(const std::string& why) {
  throw std::runtime_error("shard-state: " + why);
}

std::uint64_t field_u64(std::string_view tok, const char* what) {
  std::uint64_t v = 0;
  if (!util::parse_u64(tok, v)) {
    bad(std::string("bad ") + what + " '" + std::string(tok) + "'");
  }
  return v;
}

std::int64_t field_i64(std::string_view tok, const char* what) {
  std::int64_t v = 0;
  if (!util::parse_int(tok, INT64_MIN, INT64_MAX, v)) {
    bad(std::string("bad ") + what + " '" + std::string(tok) + "'");
  }
  return v;
}

bool key_is_token(std::string_view key) {
  return key.find_first_of(" \t\r\n") == std::string_view::npos &&
         !key.empty();
}

/// The client name is the one client-controlled string in the codec and
/// rides as the final field of a line-oriented row. A raw newline would
/// split the row — letting a client inject or corrupt other rows — and
/// an empty (or all-whitespace) name would drop the token entirely,
/// making the row too short to decode. Neither may reach the wire.
std::string sanitize_name(std::string_view name) {
  std::string out(name);
  std::replace_if(
      out.begin(), out.end(),
      [](char c) { return c == '\n' || c == '\r'; }, ' ');
  if (util::trim(out).empty()) return "?";
  return out;
}

/// Offset of the n-th whitespace-separated token in `line` (for rows
/// whose final field — the client name — may itself contain spaces).
std::size_t token_offset(std::string_view line, std::size_t n) {
  std::size_t pos = 0;
  for (std::size_t tok = 0; tok < n; ++tok) {
    while (pos < line.size() && line[pos] != ' ') ++pos;
    while (pos < line.size() && line[pos] == ' ') ++pos;
  }
  return pos;
}

}  // namespace

ShardState capture_shard_state(std::uint32_t shard_id, bool draining,
                               const FleetAggregator& fleet,
                               const obs::MetricsRegistry& metrics) {
  ShardState s;
  s.shard_id = shard_id;
  s.draining = draining;
  s.open_sessions = fleet.open_sessions();
  s.total_intervals = fleet.total_intervals();
  s.total_transitions = fleet.total_transitions();
  s.sessions = fleet.sessions();
  for (std::size_t n : fleet.phase_count_histogram()) {
    s.phase_count_histogram.push_back(n);
  }
  for (const auto& sample : metrics.samples()) {
    if (!key_is_token(sample.name)) continue;
    if (sample.kind == "counter") {
      s.counters.emplace_back(sample.name,
                              static_cast<std::uint64_t>(sample.value));
    } else {
      s.gauges.emplace_back(sample.name, sample.value);
    }
  }
  for (auto& [name, snap] : metrics.histogram_snapshots()) {
    if (!key_is_token(name)) continue;
    s.histograms.emplace_back(name, std::move(snap));
  }
  return s;
}

std::string encode_shard_state(const ShardState& s) {
  std::string out(kHeader);
  out += '\n';
  out += "shard " + std::to_string(s.shard_id) + ' ' +
         (s.draining ? "draining" : "serving") + '\n';
  out += "totals " + std::to_string(s.open_sessions) + ' ' +
         std::to_string(s.total_intervals) + ' ' +
         std::to_string(s.total_transitions) + '\n';
  out += "phasehist";
  for (std::uint64_t n : s.phase_count_histogram) {
    out += ' ';
    out += std::to_string(n);
  }
  out += '\n';
  for (const auto& row : s.sessions) {
    out += "session " + std::to_string(row.id) + ' ' +
           std::to_string(row.intervals) + ' ' + std::to_string(row.phases) +
           ' ' + std::to_string(row.current_phase) + ' ' +
           std::to_string(row.transitions) + ' ' +
           std::to_string(row.heartbeat_records) + ' ' +
           std::to_string(row.dropped_frames) + ' ' +
           (row.closed ? "1" : "0") + ' ' + sanitize_name(row.client_name) +
           '\n';
  }
  for (const auto& [name, value] : s.counters) {
    out += "counter " + name + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, value] : s.gauges) {
    out += "gauge " + name + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, snap] : s.histograms) {
    out += "hist " + name + ' ' + std::to_string(snap.count) + ' ' +
           std::to_string(snap.sum) + ' ' + std::to_string(snap.max);
    // Sparse bucket list: almost all of the ~1000 buckets are zero.
    for (std::size_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] == 0) continue;
      out += ' ' + std::to_string(i) + ':' + std::to_string(snap.counts[i]);
    }
    out += '\n';
  }
  return out;
}

ShardState decode_shard_state(std::string_view text) {
  const auto lines = util::split_lines(text);
  if (lines.empty() || util::trim(lines[0]) != kHeader) {
    bad("missing header");
  }
  ShardState s;
  for (std::size_t li = 1; li < lines.size(); ++li) {
    const std::string_view line = lines[li];
    const auto tok = util::split_ws(line);
    if (tok.empty()) continue;
    const std::string_view kw = tok[0];
    if (kw == "shard") {
      if (tok.size() != 3) bad("short shard row");
      s.shard_id = static_cast<std::uint32_t>(field_u64(tok[1], "shard id"));
      s.draining = tok[2] == "draining";
    } else if (kw == "totals") {
      if (tok.size() != 4) bad("short totals row");
      s.open_sessions = field_u64(tok[1], "open_sessions");
      s.total_intervals = field_u64(tok[2], "total_intervals");
      s.total_transitions = field_u64(tok[3], "total_transitions");
    } else if (kw == "phasehist") {
      for (std::size_t i = 1; i < tok.size(); ++i) {
        s.phase_count_histogram.push_back(field_u64(tok[i], "phasehist"));
      }
    } else if (kw == "session") {
      if (tok.size() < 9) bad("short session row");
      FleetSessionInfo row;
      row.id = static_cast<std::uint32_t>(field_u64(tok[1], "session id"));
      row.intervals = static_cast<std::size_t>(field_u64(tok[2], "intervals"));
      row.phases = static_cast<std::size_t>(field_u64(tok[3], "phases"));
      row.current_phase =
          static_cast<std::size_t>(field_u64(tok[4], "current_phase"));
      row.transitions =
          static_cast<std::size_t>(field_u64(tok[5], "transitions"));
      row.heartbeat_records = field_u64(tok[6], "heartbeats");
      row.dropped_frames = field_u64(tok[7], "dropped");
      row.closed = field_u64(tok[8], "closed") != 0;
      // The client name is everything after the 9th token — it may
      // contain spaces. Tolerate a missing name (pre-sanitizer
      // emitters could drop it) rather than rejecting the whole state.
      row.client_name = tok.size() >= 10
                            ? std::string(line.substr(token_offset(line, 9)))
                            : "?";
      s.sessions.push_back(std::move(row));
    } else if (kw == "counter") {
      if (tok.size() != 3) bad("short counter row");
      s.counters.emplace_back(std::string(tok[1]),
                              field_u64(tok[2], "counter value"));
    } else if (kw == "gauge") {
      if (tok.size() != 3) bad("short gauge row");
      s.gauges.emplace_back(std::string(tok[1]),
                            field_i64(tok[2], "gauge value"));
    } else if (kw == "hist") {
      if (tok.size() < 5) bad("short hist row");
      obs::HistogramSnapshot snap;
      snap.count = field_u64(tok[2], "hist count");
      snap.sum = field_u64(tok[3], "hist sum");
      snap.max = field_u64(tok[4], "hist max");
      for (std::size_t i = 5; i < tok.size(); ++i) {
        const auto sep = tok[i].find(':');
        if (sep == std::string_view::npos) bad("bad hist bucket");
        const auto idx = static_cast<std::size_t>(
            field_u64(tok[i].substr(0, sep), "hist bucket index"));
        if (idx >= obs::Histogram::kBuckets) bad("hist bucket out of range");
        if (idx >= snap.counts.size()) snap.counts.resize(idx + 1, 0);
        snap.counts[idx] =
            field_u64(tok[i].substr(sep + 1), "hist bucket count");
      }
      s.histograms.emplace_back(std::string(tok[1]), std::move(snap));
    } else {
      // Unknown keyword: skip, for forward compatibility with v1.x
      // emitters that add rows.
    }
  }
  return s;
}

void merge_shard_state(ShardState& dst, const ShardState& src) {
  dst.open_sessions += src.open_sessions;
  dst.total_intervals += src.total_intervals;
  dst.total_transitions += src.total_transitions;
  if (src.phase_count_histogram.size() > dst.phase_count_histogram.size()) {
    dst.phase_count_histogram.resize(src.phase_count_histogram.size(), 0);
  }
  for (std::size_t i = 0; i < src.phase_count_histogram.size(); ++i) {
    dst.phase_count_histogram[i] += src.phase_count_histogram[i];
  }
  dst.sessions.insert(dst.sessions.end(), src.sessions.begin(),
                      src.sessions.end());
  const auto merge_rows = [](auto& dst_rows, const auto& src_rows) {
    for (const auto& [name, value] : src_rows) {
      auto it = std::find_if(dst_rows.begin(), dst_rows.end(),
                             [&](const auto& r) { return r.first == name; });
      if (it == dst_rows.end()) {
        dst_rows.emplace_back(name, value);
      } else {
        it->second += value;
      }
    }
  };
  merge_rows(dst.counters, src.counters);
  merge_rows(dst.gauges, src.gauges);
  for (const auto& [name, snap] : src.histograms) {
    auto it = std::find_if(dst.histograms.begin(), dst.histograms.end(),
                           [&](const auto& r) { return r.first == name; });
    if (it == dst.histograms.end()) {
      dst.histograms.emplace_back(name, snap);
    } else {
      it->second.merge(snap);
    }
  }
}

}  // namespace incprof::service
