// Deterministic fault injection for the service transport layer. A
// FaultInjectingConnection decorates any Connection and perturbs its
// send path according to a FaultPlan — drop, truncate, corrupt, delay
// or disconnect on the Nth outgoing frame. Plans are either written
// explicitly (the chaos acceptance test pins exact fault positions so
// quarantine counters are predictable) or derived from a seed
// (`FaultPlan::from_seed`, used by `incprofd --selftest-chaos` and the
// randomized soak). The same seed always produces the same fault
// schedule, so every chaos failure is replayable.
#pragma once

#include "service/transport.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace incprof::service {

/// What to do to one outgoing frame.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  /// Swallow the frame; report send success to the caller.
  kDrop,
  /// Send only a prefix of the frame's bytes. On a byte-stream
  /// transport this desynchronizes the stream (the peer sees a corrupt
  /// header next); on a message transport the peer sees one truncated
  /// frame.
  kTruncate,
  /// Overwrite the frame-type field with 0xFFFF before sending: the
  /// frame still parses as a unit (magic and length intact) but is
  /// rejected by decode_frame — the recoverable kind of corruption.
  kCorrupt,
  /// Sleep before sending (a stalled/slow client).
  kDelay,
  /// Close the connection instead of sending; all later sends fail.
  kDisconnect,
};

const char* fault_kind_name(FaultKind kind) noexcept;

/// One scheduled fault: apply `kind` to the `frame_index`-th send
/// (0-based, counted per connection).
struct FaultEvent {
  std::size_t frame_index = 0;
  FaultKind kind = FaultKind::kNone;
};

/// A deterministic schedule of send-side faults.
struct FaultPlan {
  std::vector<FaultEvent> events;

  /// The fault scheduled for `frame_index` (kNone when clean).
  FaultKind action_for(std::size_t frame_index) const noexcept;

  /// Derives a reproducible plan from `seed`: each of the first
  /// `horizon` frames is faulted with probability `rate`, the kind
  /// drawn uniformly from {drop, truncate, corrupt, delay,
  /// disconnect}. At most one disconnect is scheduled (it ends the
  /// connection). Frame 0 (the hello) is never faulted so the session
  /// always forms.
  static FaultPlan from_seed(std::uint64_t seed, double rate,
                             std::size_t horizon);

  /// Faults of `kind` the plan schedules.
  std::size_t count(FaultKind kind) const noexcept;
};

/// Injected-fault tallies, one counter per kind (thread-safe reads).
struct FaultCounters {
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> truncated{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> delayed{0};
  std::atomic<std::uint64_t> disconnects{0};

  std::uint64_t total() const noexcept {
    return dropped.load() + truncated.load() + corrupted.load() +
           delayed.load() + disconnects.load();
  }
};

/// Connection decorator that applies a FaultPlan to outgoing frames.
/// Receives pass through untouched — fault effects surface at the peer
/// (rejected frames, desynchronized streams, half-open sessions).
class FaultInjectingConnection : public Connection {
 public:
  FaultInjectingConnection(
      std::unique_ptr<Connection> inner, FaultPlan plan,
      std::chrono::milliseconds delay = std::chrono::milliseconds(5));

  bool send(std::string_view frame_bytes) override;
  std::optional<std::string> receive() override;
  bool set_receive_timeout(std::chrono::milliseconds timeout) override;
  void close() override;
  std::string description() const override;

  const FaultCounters& counters() const noexcept { return counters_; }

  /// Frames offered to send() so far (faulted or not).
  std::size_t frames_sent() const noexcept {
    return send_index_.load(std::memory_order_relaxed);
  }

 private:
  // Concurrency: no mutex on purpose. All mutable state is atomic
  // (send_index_, disconnected_, the counters), and the inner
  // connection is only handed send()/close() calls its own class
  // already allows concurrently — so the decorator adds no locking of
  // its own and cannot introduce an ordering that the undecorated
  // connection would not have had.
  std::unique_ptr<Connection> inner_;
  const FaultPlan plan_;
  const std::chrono::milliseconds delay_;
  std::atomic<std::size_t> send_index_{0};
  std::atomic<bool> disconnected_{false};
  FaultCounters counters_;
};

}  // namespace incprof::service
