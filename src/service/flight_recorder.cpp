#include "service/flight_recorder.hpp"

#include <algorithm>

namespace incprof::service {

namespace {

/// JSON string escaping for fields that may carry client bytes (the
/// detail field holds hex dumps and error text, the client name comes
/// off the wire). Control characters are emitted as \u00XX rather than
/// dropped so a postmortem never silently loses evidence.
void append_escaped(std::string& out, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u00";
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
    } else {
      out.push_back(c);
    }
  }
}

void append_hex_u64(std::string& out, std::uint64_t v) {
  char buf[19];
  int at = 18;
  buf[at] = '\0';
  do {
    buf[--at] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  } while (v != 0);
  out += "0x";
  out += &buf[at];
}

}  // namespace

std::string_view flight_event_kind_name(FlightEventKind kind) noexcept {
  switch (kind) {
    case FlightEventKind::kIntervalReceived:
      return "interval";
    case FlightEventKind::kPhaseTransition:
      return "phase";
    case FlightEventKind::kProtocolError:
      return "protocol_error";
    case FlightEventKind::kResume:
      return "resume";
    case FlightEventKind::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void FlightRecorder::record(FlightEventKind kind, std::uint64_t t_ns,
                            std::uint64_t a, std::uint64_t b,
                            std::string detail) {
  FlightEvent ev;
  ev.kind = kind;
  ev.t_ns = t_ns;
  ev.a = a;
  ev.b = b;
  ev.detail = std::move(detail);
  util::MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[static_cast<std::size_t>(next_ % capacity_)] = std::move(ev);
  }
  ++next_;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  util::MutexLock lock(mu_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: slot next_ % capacity_ holds the oldest event.
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(
          ring_[static_cast<std::size_t>((next_ + i) % capacity_)]);
    }
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  util::MutexLock lock(mu_);
  return next_;
}

std::uint64_t FlightRecorder::dropped() const {
  util::MutexLock lock(mu_);
  return next_ > ring_.size() ? next_ - ring_.size() : 0;
}

std::string flight_recorder_json(const FlightRecorder& recorder,
                                 std::uint32_t session_id,
                                 std::string_view client_name,
                                 std::string_view reason,
                                 std::uint64_t trace_id) {
  // Snapshot counters after the events so a racing writer can only make
  // `recorded`/`dropped` conservative, never smaller than the list.
  const auto events = recorder.events();
  const std::uint64_t recorded = recorder.recorded();
  const std::uint64_t dropped = recorder.dropped();
  std::string out;
  out.reserve(128 + events.size() * 96);
  out += "{\"session\":" + std::to_string(session_id) + ",\"client\":\"";
  append_escaped(out, client_name);
  out += "\",\"reason\":\"";
  append_escaped(out, reason);
  out += "\",\"trace_id\":\"";
  append_hex_u64(out, trace_id);
  out += "\",\"recorded\":" + std::to_string(recorded) +
         ",\"dropped\":" + std::to_string(dropped) + ",\"events\":[";
  bool first = true;
  for (const FlightEvent& ev : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"kind\":\"";
    out += flight_event_kind_name(ev.kind);
    out += "\",\"t_ns\":" + std::to_string(ev.t_ns) +
           ",\"a\":" + std::to_string(ev.a) +
           ",\"b\":" + std::to_string(ev.b) + ",\"detail\":\"";
    append_escaped(out, ev.detail);
    out += "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace incprof::service
