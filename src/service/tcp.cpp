#include "service/tcp.hpp"

#include "util/thread_annotations.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace incprof::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("tcp: " + what + ": " +
                           std::string(std::strerror(errno)));
}

/// Every service socket is close-on-exec: a daemon that forks a child
/// (collector launch, CI harness) must not leak its listening or
/// session descriptors into it — a child holding the listener would
/// keep the port bound after the daemon exits.
void set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

std::string peer_label(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "tcp:?";
  }
  char buf[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd), label_(peer_label(fd)) {
    set_cloexec(fd_);
    const int one = 1;
    // Frames are small and latency matters for phase events; disable
    // Nagle coalescing.
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpConnection() override {
    close();
    ::close(fd_);
  }

  bool send(std::string_view frame_bytes) override {
    util::MutexLock lock(send_mu_);
    std::size_t sent = 0;
    while (sent < frame_bytes.size()) {
      // Holding send_mu_ across ::send is the point of this mutex: it
      // serializes whole frames onto the socket so concurrent writers
      // cannot interleave partial frames. send_mu_ is a leaf, so the
      // blocked writer can never hold up another lock.
      const ssize_t n = ::send(  // incprof-lint: allow(lock-across-io)
          fd_, frame_bytes.data() + sent, frame_bytes.size() - sent,
          MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::optional<std::string> receive() override {
    for (;;) {
      if (auto frame = buffer_.next_frame()) return frame;
      const int timeout_ms =
          receive_timeout_ms_.load(std::memory_order_relaxed);
      if (timeout_ms > 0) {
        // Poll-based deadline: a peer that goes silent mid-stream
        // surfaces as EOF after `timeout` instead of holding the
        // reader thread hostage forever.
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0) {
          if (errno == EINTR) continue;
          return std::nullopt;
        }
        if (rc == 0) return std::nullopt;  // deadline expired
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;  // reset by peer or local shutdown
      }
      if (n == 0) {
        if (buffer_.buffered() != 0) {
          throw std::runtime_error(
              "tcp: peer " + label_ + " closed mid-frame (" +
              std::to_string(buffer_.buffered()) + " bytes buffered)");
        }
        return std::nullopt;
      }
      buffer_.append(std::string_view(chunk, static_cast<std::size_t>(n)));
    }
  }

  bool set_receive_timeout(std::chrono::milliseconds timeout) override {
    receive_timeout_ms_.store(static_cast<int>(timeout.count()),
                              std::memory_order_relaxed);
    return true;
  }

  void close() override {
    // Shut down both directions but keep the fd until destruction so a
    // concurrent receive() never races a reused descriptor.
    if (!closed_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
  }

  std::string description() const override { return label_; }

 private:
  const int fd_;
  const std::string label_;
  /// Serializes ::send syscalls so interleaved frames from the reader
  /// (query replies) and a worker (phase events) never tear on the
  /// wire. Guards no fields — the capability is the socket write side.
  util::Mutex send_mu_;
  std::atomic<bool> closed_{false};
  std::atomic<int> receive_timeout_ms_{0};
  FrameBuffer buffer_;
};

}  // namespace

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  set_cloexec(fd_);
  // SO_REUSEADDR so a rapid restart (tests, CI, supervised respawn)
  // rebinding the port never hits EADDRINUSE on lingering TIME_WAIT.
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throw_errno("bind");
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    ::close(fd_);
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  shutdown();
  ::close(fd_);
}

std::unique_ptr<Connection> TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<TcpConnection>(fd);
    if (errno == EINTR) continue;
    // shutdown() makes the blocked accept fail (EINVAL on Linux).
    return nullptr;
  }
}

void TcpListener::shutdown() {
  if (!closed_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
}

std::unique_ptr<Connection> tcp_connect(const std::string& host,
                                        std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("tcp: resolve " + host + ": " +
                             gai_strerror(rc));
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw std::runtime_error("tcp: cannot connect to " + host + ":" +
                             std::to_string(port));
  }
  return std::make_unique<TcpConnection>(fd);
}

}  // namespace incprof::service
