#include "service/transport.hpp"

#include "service/protocol.hpp"

namespace incprof::service {

void FrameBuffer::append(std::string_view bytes) {
  buffer_.append(bytes);
}

std::optional<std::string> FrameBuffer::next_frame() {
  if (buffered() < kFrameHeaderPrefixSize) return std::nullopt;
  const std::string_view view =
      std::string_view(buffer_).substr(pos_);
  // Throws on bad magic / oversize — a byte-stream that desynchronizes
  // is unrecoverable, so fail loudly at the first corrupt header. The
  // header size is version-dependent (16 bytes for legacy v1 frames, 28
  // for v2+), but both facts live in the shared 16-byte prefix.
  const std::uint32_t payload_len = frame_payload_length(view);
  const std::size_t total = frame_header_size(view) + payload_len;
  if (view.size() < total) return std::nullopt;
  std::string frame(view.substr(0, total));
  pos_ += total;
  compact();
  return frame;
}

void FrameBuffer::compact() {
  // Reclaim consumed prefix once it dominates the buffer, keeping
  // amortized append/pop linear without shifting on every frame.
  if (pos_ > 4096 && pos_ * 2 >= buffer_.size()) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
}

}  // namespace incprof::service
