// Frame transport abstraction for the service layer. The daemon's
// session logic is written against these two interfaces only; the POSIX
// TCP implementation (service/tcp) carries real deployments and the
// in-process loopback (service/loopback) makes multi-session tests and
// benches deterministic — the same split LDMS makes between its RDMA /
// socket transports and its in-memory test harness.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace incprof::service {

/// One bidirectional, ordered, reliable frame channel. Implementations
/// must make `send` safe to call from several threads at once (the
/// server's reader answers queries while a worker pushes phase events);
/// `receive` is single-consumer.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Sends one complete wire frame (header + payload bytes). Returns
  /// false when the peer is gone; never throws for peer loss.
  virtual bool send(std::string_view frame_bytes) = 0;

  /// Blocks for the next complete frame; nullopt once the channel is
  /// closed and drained. Throws std::runtime_error on malformed bytes.
  virtual std::optional<std::string> receive() = 0;

  /// Arms a receive deadline: receive() returns nullopt (indistinct
  /// from EOF — in both cases the caller abandons the channel) when no
  /// bytes arrive for `timeout`. Zero disarms. Returns false when the
  /// transport cannot enforce deadlines (the loopback relies on the
  /// server's idle reaper instead).
  virtual bool set_receive_timeout(std::chrono::milliseconds timeout) {
    (void)timeout;
    return false;
  }

  /// Initiates shutdown of both directions; wakes blocked peers. Safe to
  /// call more than once and concurrently with send/receive.
  virtual void close() = 0;

  /// Human-readable endpoint label for logs ("loopback#3", "1.2.3.4:56").
  virtual std::string description() const = 0;
};

/// Accepts inbound connections for a server.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks for the next connection; nullptr once shut down.
  virtual std::unique_ptr<Connection> accept() = 0;

  /// Unblocks any pending accept and refuses further connections.
  virtual void shutdown() = 0;
};

/// Incremental frame extractor for byte-stream transports (TCP or any
/// future pipe/serial carrier): feed arbitrary chunks in, pull complete
/// frames out. Validates the header eagerly so a corrupt stream fails at
/// the first bad byte rather than after a giant allocation.
class FrameBuffer {
 public:
  /// Appends raw bytes read off the stream.
  void append(std::string_view bytes);

  /// Pops the next complete frame (header + payload) if one is fully
  /// buffered. Throws std::runtime_error on bad magic or an oversized
  /// declared length.
  std::optional<std::string> next_frame();

  /// Bytes currently buffered but not yet returned.
  std::size_t buffered() const noexcept { return buffer_.size() - pos_; }

 private:
  void compact();

  std::string buffer_;
  std::size_t pos_ = 0;
};

}  // namespace incprof::service
