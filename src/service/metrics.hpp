// Operational metrics for the service layer: named monotonic counters
// and set/max gauges with stable addresses, cheap enough to bump on the
// frame hot path (one relaxed atomic op) and dumpable as CSV through
// util::csv for the daemon's periodic report — the reproduction-scale
// stand-in for LDMS's own collector telemetry.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace incprof::service {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, live sessions). `record_max`
/// retains the high-water mark semantics some gauges want.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }

  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raises the gauge to `v` if it is below (monotone high-water mark).
  void record_max(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// One metric's exported row.
struct MetricSample {
  std::string name;
  std::string kind;  // "counter" | "gauge"
  std::int64_t value = 0;
};

/// Create-on-first-use registry. Returned references stay valid for the
/// registry's lifetime, so hot paths resolve a metric once and keep the
/// pointer. All operations are thread-safe.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Current value of a named counter/gauge (0 when absent) — for tests
  /// and reports that do not hold the reference.
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;

  /// All metrics, sorted by name, counters first per name clash.
  std::vector<MetricSample> samples() const;

  /// Writes `metric,kind,value` rows (with header) via util::csv.
  void write_csv(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

}  // namespace incprof::service
