// Compatibility re-export: the metrics registry grew labels, histograms
// and a Prometheus exposition and moved to src/obs (obs/metrics.hpp) so
// the analysis pipeline and the benches can share it without pulling in
// the service layer. Existing service-layer code and tests keep using
// incprof::service::MetricsRegistry & friends through these aliases.
#pragma once

#include "obs/metrics.hpp"

namespace incprof::service {

using obs::Counter;
using obs::Gauge;
using obs::Labels;
using obs::MetricSample;
using obs::MetricsRegistry;

}  // namespace incprof::service
