#include "service/fleet.hpp"

#include "util/csv.hpp"

#include <algorithm>
#include <sstream>

namespace incprof::service {

FleetAggregator::FleetAggregator(std::size_t transition_log_capacity)
    : log_capacity_(transition_log_capacity) {}

FleetSessionInfo& FleetAggregator::row(std::uint32_t id) {
  const auto it = std::lower_bound(
      sessions_.begin(), sessions_.end(), id,
      [](const FleetSessionInfo& s, std::uint32_t v) { return s.id < v; });
  if (it != sessions_.end() && it->id == id) return *it;
  FleetSessionInfo info;
  info.id = id;
  return *sessions_.insert(it, std::move(info));
}

void FleetAggregator::session_opened(std::uint32_t id,
                                     std::string client_name) {
  util::MutexLock lock(mu_);
  auto& s = row(id);
  s.client_name = std::move(client_name);
  s.closed = false;
}

void FleetAggregator::session_closed(std::uint32_t id) {
  util::MutexLock lock(mu_);
  row(id).closed = true;
}

void FleetAggregator::record_observation(std::uint32_t id,
                                         const core::OnlineObservation& obs,
                                         std::size_t total_phases) {
  util::MutexLock lock(mu_);
  auto& s = row(id);
  ++s.intervals;
  s.phases = total_phases;
  s.current_phase = obs.phase;
  if (obs.transition) ++s.transitions;
  if (obs.transition || obs.new_phase) {
    ++total_transitions_;
    log_.push_back({id, static_cast<std::uint32_t>(obs.interval),
                    obs.phase, obs.new_phase});
    if (log_.size() > log_capacity_) log_.pop_front();
  }
}

void FleetAggregator::record_heartbeats(std::uint32_t id, std::uint64_t n) {
  util::MutexLock lock(mu_);
  row(id).heartbeat_records += n;
}

void FleetAggregator::record_drops(std::uint32_t id,
                                   std::uint64_t dropped_total) {
  util::MutexLock lock(mu_);
  row(id).dropped_frames = dropped_total;
}

std::vector<FleetSessionInfo> FleetAggregator::sessions() const {
  util::MutexLock lock(mu_);
  return sessions_;
}

std::vector<FleetTransition> FleetAggregator::transition_log() const {
  util::MutexLock lock(mu_);
  return {log_.begin(), log_.end()};
}

std::vector<std::size_t> FleetAggregator::phase_count_histogram() const {
  util::MutexLock lock(mu_);
  std::vector<std::size_t> hist;
  for (const auto& s : sessions_) {
    if (s.phases >= hist.size()) hist.resize(s.phases + 1, 0);
    ++hist[s.phases];
  }
  return hist;
}

std::size_t FleetAggregator::open_sessions() const {
  util::MutexLock lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(sessions_.begin(), sessions_.end(),
                    [](const FleetSessionInfo& s) { return !s.closed; }));
}

std::size_t FleetAggregator::total_intervals() const {
  util::MutexLock lock(mu_);
  std::size_t total = 0;
  for (const auto& s : sessions_) total += s.intervals;
  return total;
}

std::uint64_t FleetAggregator::total_transitions() const {
  util::MutexLock lock(mu_);
  return total_transitions_;
}

std::string FleetAggregator::render() const {
  util::MutexLock lock(mu_);
  std::ostringstream os;
  os << "fleet: " << sessions_.size() << " sessions ("
     << std::count_if(sessions_.begin(), sessions_.end(),
                      [](const FleetSessionInfo& s) { return !s.closed; })
     << " open), " << total_transitions_ << " phase events\n";
  for (const auto& s : sessions_) {
    os << "  #" << s.id << " " << (s.client_name.empty() ? "?" : s.client_name)
       << (s.closed ? " [closed]" : "") << ": " << s.intervals
       << " intervals, " << s.phases << " phases, in phase "
       << s.current_phase << ", " << s.transitions << " transitions";
    if (s.heartbeat_records > 0) {
      os << ", " << s.heartbeat_records << " hb records";
    }
    if (s.dropped_frames > 0) os << ", " << s.dropped_frames << " dropped";
    os << "\n";
  }
  std::vector<std::size_t> hist;
  for (const auto& s : sessions_) {
    if (s.phases >= hist.size()) hist.resize(s.phases + 1, 0);
    ++hist[s.phases];
  }
  os << "  phase-count histogram:";
  for (std::size_t k = 0; k < hist.size(); ++k) {
    if (hist[k] > 0) {
      os << " " << k << "p x" << hist[k];
    }
  }
  os << "\n";
  return os.str();
}

void FleetAggregator::write_csv(std::ostream& os) const {
  util::CsvWriter w(os);
  w.row({"session", "client", "intervals", "phases", "current_phase",
         "transitions", "heartbeat_records", "dropped_frames", "closed"});
  for (const auto& s : sessions()) {
    w.row_of(s.id, s.client_name, s.intervals, s.phases, s.current_phase,
             s.transitions, s.heartbeat_records, s.dropped_frames,
             s.closed ? 1 : 0);
  }
}

}  // namespace incprof::service
