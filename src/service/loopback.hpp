// In-process loopback transport: a pair of bounded frame queues per
// connection, with socket-buffer semantics (send blocks while the peer's
// queue is full, close wakes both sides). Deterministic and
// dependency-free, it is what the service tests and the throughput bench
// run the real Server against.
#pragma once

#include "service/transport.hpp"

#include <cstddef>
#include <memory>

namespace incprof::service {

namespace detail {
struct HubState;
}

/// Connects in-process clients to one in-process listener.
class LoopbackHub {
 public:
  /// `queue_capacity` bounds each direction's in-flight frame queue —
  /// the loopback analogue of the kernel socket buffer.
  explicit LoopbackHub(std::size_t queue_capacity = 1024);
  ~LoopbackHub();

  LoopbackHub(const LoopbackHub&) = delete;
  LoopbackHub& operator=(const LoopbackHub&) = delete;

  /// Client side: opens a connection whose peer end becomes available to
  /// the listener's accept(). Returns nullptr after shutdown.
  std::unique_ptr<Connection> connect();

  /// Server side: the hub's single accept endpoint. The listener remains
  /// valid after the hub is destroyed (it shares the hub's state).
  std::unique_ptr<Listener> make_listener();

  /// Stops accepting; pending and future accepts return nullptr.
  /// Existing connections keep working until closed individually.
  void shutdown();

 private:
  std::shared_ptr<detail::HubState> state_;
};

}  // namespace incprof::service
