// One client session inside incprofd: the connection's decoded frames
// flow through a bounded queue (drop-and-count on overflow — the same
// back-pressure policy as ekg::StreamSink, because a monitor must never
// stall its producers) into a per-session OnlinePhaseTracker that only
// ever runs on one worker thread at a time.
#pragma once

#include "core/online.hpp"
#include "service/flight_recorder.hpp"
#include "service/protocol.hpp"
#include "util/thread_annotations.hpp"

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace incprof::service {

/// Per-session knobs (shared by every session of one server).
struct SessionConfig {
  /// Frames buffered between the connection reader and the worker pool;
  /// beyond this, data frames are dropped and counted. Control frames
  /// (bye) bypass the bound so sessions always close cleanly.
  std::size_t queue_capacity = 256;
  /// Last-N structured events retained per session for postmortems and
  /// the /sessions/<id>.json live view.
  std::size_t flight_recorder_capacity = 64;
  /// Streaming-tracker parameters for this session's tracker.
  core::OnlineConfig tracker;
};

/// Tracker + queue + counters for one client. Thread roles: the
/// connection reader calls enqueue(); exactly one pool worker at a time
/// calls take_pending()/finish_round() and touches the tracker; any
/// thread may read the counters and status.
class Session {
 public:
  enum class EnqueueResult {
    /// Queued, and the session was idle — the caller must schedule it.
    kScheduled,
    /// Queued behind frames an already-scheduled round will consume.
    kQueued,
    /// Queue full; the frame was dropped and counted.
    kDropped,
  };

  Session(std::uint32_t id, const SessionConfig& cfg);

  std::uint32_t id() const noexcept { return id_; }

  /// Records the hello handshake.
  void open(std::string client_name, bool subscribe_events,
            std::uint64_t interval_ns);

  bool subscribed() const noexcept {
    return subscribed_.load(std::memory_order_relaxed);
  }

  /// Reader side. `force` exempts control frames from the bound.
  EnqueueResult enqueue(Frame frame, bool force = false);

  /// Worker side: moves out every pending frame, in arrival order. The
  /// session stays marked scheduled until finish_round().
  std::vector<Frame> take_pending();

  /// Worker side: ends the round; true when frames arrived meanwhile
  /// and the caller must re-schedule the session.
  bool finish_round();

  /// Worker side: the session's tracker (unsynchronized by design —
  /// the scheduler guarantees one worker per session).
  core::OnlinePhaseTracker& tracker() noexcept { return tracker_; }

  /// Worker side: publishes one observation to the cross-thread status.
  void note_observation(const core::OnlineObservation& obs);
  void note_heartbeats(std::uint64_t n);
  void mark_closed();

  // --- fault handling (reader/worker/reaper threads) --------------------

  /// Counts one rejected frame against the session's error budget;
  /// returns the new total.
  std::uint32_t note_protocol_error();
  std::uint32_t protocol_errors() const;

  /// Snapshot frames accepted into the queue so far — the resume
  /// cursor handed back in a hello-ack, so a reconnecting client
  /// re-sends exactly the frames the server never took.
  std::uint32_t snapshots_accepted() const;

  /// Marks the session as waiting for its client to reconnect (abrupt
  /// disconnect inside the resume grace window).
  void detach(std::uint64_t now_ns);
  /// Reattaches after a successful resume hello.
  void reattach();
  bool detached() const;
  /// When detach() was last called (steady ns); 0 if never.
  std::uint64_t detached_since_ns() const;

  // --- any thread -------------------------------------------------------
  std::string client_name() const;
  std::uint64_t dropped_frames() const;
  std::size_t max_queue_depth() const;
  std::size_t queue_depth() const;
  bool closed() const;
  std::uint64_t heartbeat_records() const;
  std::size_t intervals_observed() const;
  std::size_t transitions() const;

  /// Copy of the per-interval phase assignments published so far. With
  /// a streaming tracker this is bounded: only the last
  /// assignment_window entries are retained (intervals_observed() keeps
  /// the exact total).
  std::vector<std::size_t> assignments() const;

  /// The session's flight recorder (internally synchronized).
  FlightRecorder& flight_recorder() noexcept { return flight_; }
  const FlightRecorder& flight_recorder() const noexcept { return flight_; }

  /// Distributed-trace id of the session's client, captured from the
  /// first traced frame (0 until one arrives). Correlates postmortems
  /// and log lines with the fleet-merged trace view.
  void note_trace_id(std::uint64_t trace_id) noexcept {
    if (trace_id != 0) {
      trace_id_.store(trace_id, std::memory_order_relaxed);
    }
  }
  std::uint64_t trace_id() const noexcept {
    return trace_id_.load(std::memory_order_relaxed);
  }

  /// One-line status ("session 3 (minife): 45 intervals, 3 phases, ...").
  std::string status_line() const;

 private:
  const std::uint32_t id_;
  const std::size_t queue_capacity_;
  const std::size_t history_cap_;  // 0 = unbounded (exact tracker mode)

  // Queue state (reader + scheduler + worker). Lock order: queue_mu_
  // is a leaf, but status_mu_ may be held while acquiring it
  // (status_line) — never the other way around.
  mutable util::Mutex queue_mu_;
  std::deque<Frame> frames_ INCPROF_GUARDED_BY(queue_mu_);
  bool scheduled_ INCPROF_GUARDED_BY(queue_mu_) = false;
  std::uint64_t dropped_ INCPROF_GUARDED_BY(queue_mu_) = 0;
  std::size_t max_depth_ INCPROF_GUARDED_BY(queue_mu_) = 0;
  std::uint32_t snapshots_accepted_ INCPROF_GUARDED_BY(queue_mu_) = 0;

  // Flight recorder (internally synchronized leaf; written from the
  // reader and worker, drained by postmortem dumps and HTTP queries).
  FlightRecorder flight_;

  // Fault-handling state (reader / reaper / resume path).
  std::atomic<std::uint64_t> trace_id_{0};
  std::atomic<std::uint32_t> protocol_errors_{0};
  std::atomic<bool> detached_{false};
  std::atomic<std::uint64_t> detached_since_ns_{0};

  // Tracker: worker-only.
  core::OnlinePhaseTracker tracker_;

  // Published status (worker writes, anyone reads).
  mutable util::Mutex status_mu_;
  std::string client_name_ INCPROF_GUARDED_BY(status_mu_);
  std::uint64_t interval_ns_ INCPROF_GUARDED_BY(status_mu_) = 0;
  std::vector<std::size_t> assignments_ INCPROF_GUARDED_BY(status_mu_);
  std::size_t intervals_observed_ INCPROF_GUARDED_BY(status_mu_) = 0;
  std::size_t phases_ INCPROF_GUARDED_BY(status_mu_) = 0;
  std::size_t current_phase_ INCPROF_GUARDED_BY(status_mu_) = 0;
  std::size_t transitions_ INCPROF_GUARDED_BY(status_mu_) = 0;
  std::uint64_t heartbeat_records_ INCPROF_GUARDED_BY(status_mu_) = 0;
  bool closed_ INCPROF_GUARDED_BY(status_mu_) = false;

  std::atomic<bool> subscribed_{false};
};

}  // namespace incprof::service
