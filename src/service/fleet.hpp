// Fleet view — the cross-session aggregate a deployment monitor reads.
// Each session runs its own OnlinePhaseTracker; the aggregator folds
// their observations into per-session status rows, a bounded transition
// log (the events Nickolayev-style real-time monitors alarm on), and a
// histogram of discovered-phase counts across the fleet — "is every
// replica of this app seeing the same number of behaviours?".
#pragma once

#include "core/online.hpp"
#include "util/thread_annotations.hpp"

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

namespace incprof::service {

/// One session's row in the fleet report.
struct FleetSessionInfo {
  std::uint32_t id = 0;
  std::string client_name;
  std::size_t intervals = 0;
  std::size_t phases = 0;
  std::size_t current_phase = 0;
  std::size_t transitions = 0;
  std::uint64_t heartbeat_records = 0;
  std::uint64_t dropped_frames = 0;
  bool closed = false;
};

/// One logged phase-change event.
struct FleetTransition {
  std::uint32_t session = 0;
  std::uint32_t interval = 0;
  std::size_t phase = 0;
  bool new_phase = false;
};

/// Thread-safe cross-session aggregate. Sessions report through the
/// record_* methods; readers take consistent snapshots.
class FleetAggregator {
 public:
  /// `transition_log_capacity` bounds the retained event tail; older
  /// events are discarded (their count survives in total_transitions).
  explicit FleetAggregator(std::size_t transition_log_capacity = 1024);

  void session_opened(std::uint32_t id, std::string client_name);
  void session_closed(std::uint32_t id);

  /// Folds one tracker observation in. `total_phases` is the session
  /// tracker's phase count after the observation.
  void record_observation(std::uint32_t id,
                          const core::OnlineObservation& obs,
                          std::size_t total_phases);

  /// Adds `n` heartbeat records to the session's tally.
  void record_heartbeats(std::uint32_t id, std::uint64_t n);

  /// Overwrites the session's dropped-frame total (monotone, reported
  /// by the session queue).
  void record_drops(std::uint32_t id, std::uint64_t dropped_total);

  /// Per-session rows, ordered by session id.
  std::vector<FleetSessionInfo> sessions() const;

  /// The retained tail of phase-change events, oldest first.
  std::vector<FleetTransition> transition_log() const;

  /// histogram[k] = number of sessions whose tracker holds k phases.
  std::vector<std::size_t> phase_count_histogram() const;

  std::size_t open_sessions() const;
  std::size_t total_intervals() const;
  std::uint64_t total_transitions() const;

  /// Human-readable fleet report (the daemon's periodic printout).
  std::string render() const;

  /// One CSV row per session: id,client,intervals,phases,current_phase,
  /// transitions,heartbeats,dropped,closed.
  void write_csv(std::ostream& os) const;

 private:
  FleetSessionInfo& row(std::uint32_t id) INCPROF_REQUIRES(mu_);

  const std::size_t log_capacity_;
  // mu_ is a leaf lock: nothing else is acquired while it is held.
  mutable util::Mutex mu_;
  std::vector<FleetSessionInfo> sessions_
      INCPROF_GUARDED_BY(mu_);  // ordered by id
  std::deque<FleetTransition> log_ INCPROF_GUARDED_BY(mu_);
  std::uint64_t total_transitions_ INCPROF_GUARDED_BY(mu_) = 0;
};

}  // namespace incprof::service
