#include "service/replay.hpp"

#include "gmon/scanner.hpp"

#include <algorithm>

namespace incprof::service {

ReplayResult replay_session(
    Connection& conn, const std::vector<gmon::ProfileSnapshot>& snapshots,
    const ReplayOptions& options) {
  ReplayResult result;

  HelloPayload hello;
  hello.client_name = options.client_name;
  hello.interval_ns = options.interval_ns;
  hello.subscribe_events = options.subscribe_events;
  if (!conn.send(make_hello_frame(hello))) {
    result.error = "send hello failed";
    return result;
  }

  const auto ack_bytes = conn.receive();
  if (!ack_bytes) {
    result.error = "connection closed before hello-ack";
    return result;
  }
  try {
    const Frame ack_frame = decode_frame(*ack_bytes);
    if (ack_frame.type != FrameType::kHelloAck) {
      result.error = "expected hello-ack, got frame type " +
                     std::to_string(static_cast<int>(ack_frame.type));
      return result;
    }
    result.session_id = decode_hello_ack(ack_frame.payload).session_id;
  } catch (const std::exception& e) {
    result.error = e.what();
    return result;
  }

  for (const auto& snap : snapshots) {
    if (!conn.send(make_snapshot_frame(result.session_id, snap))) {
      result.error = "connection lost mid-replay";
      return result;
    }
    ++result.snapshots_sent;
  }

  for (std::size_t at = 0; at < options.heartbeats.size();
       at += options.heartbeat_batch_size) {
    HeartbeatBatchPayload batch;
    const std::size_t end = std::min(
        at + options.heartbeat_batch_size, options.heartbeats.size());
    batch.records.assign(options.heartbeats.begin() + at,
                         options.heartbeats.begin() + end);
    if (!conn.send(
            make_heartbeat_batch_frame(result.session_id, batch))) {
      result.error = "connection lost mid-replay";
      return result;
    }
    result.heartbeat_records_sent += batch.records.size();
  }

  if (options.query_status) {
    QueryPayload query;
    query.kind = QueryKind::kSessionStatus;
    if (!conn.send(make_query_frame(result.session_id, query))) {
      result.error = "connection lost before query";
      return result;
    }
  }

  if (!conn.send(make_bye_frame(result.session_id))) {
    result.error = "connection lost before bye";
    return result;
  }

  // Drain until the server closes: phase events (if subscribed) and the
  // query reply arrive in stream order, so everything is here by EOF.
  try {
    while (auto bytes = conn.receive()) {
      const Frame frame = decode_frame(*bytes);
      if (frame.type == FrameType::kPhaseEvent) {
        result.events.push_back(decode_phase_event(frame.payload));
      } else if (frame.type == FrameType::kQueryReply) {
        result.status_text = decode_query_reply(frame.payload).text;
      }
    }
  } catch (const std::exception& e) {
    result.error = e.what();
    return result;
  }

  result.ok = true;
  return result;
}

std::vector<gmon::ProfileSnapshot> load_replay_dumps(
    const std::filesystem::path& dump_dir) {
  return gmon::load_binary_dumps(dump_dir);
}

}  // namespace incprof::service
