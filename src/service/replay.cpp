#include "service/replay.hpp"

#include "gmon/scanner.hpp"
#include "obs/trace_context.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

namespace incprof::service {

namespace {

/// Derives a nonzero per-session trace id: a hash of the client name
/// mixed (splitmix64 finalizer) with a process-wide counter, so
/// concurrent sessions of one client get distinct ids and the same
/// client is still recognizable across runs by its high bits' flavor.
std::uint64_t derive_trace_id(const std::string& client_name) {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : client_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  std::uint64_t z =
      h + 0x9e3779b97f4a7c15ull *
              (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

std::uint64_t resolve_trace_id(const ReplayOptions& options) {
  return options.trace_id != 0 ? options.trace_id
                               : derive_trace_id(options.client_name);
}

}  // namespace

ReplayResult replay_session(
    Connection& conn, const std::vector<gmon::ProfileSnapshot>& snapshots,
    const ReplayOptions& options) {
  ReplayResult result;
  // Originate the trace: with the context installed, every frame built
  // below (frame_of) carries the id on the wire, and the daemon's spans
  // for this session's frames join one end-to-end trace.
  result.trace_id = resolve_trace_id(options);
  obs::ScopedTraceContext trace_scope({result.trace_id, 0});

  HelloPayload hello;
  hello.client_name = options.client_name;
  hello.interval_ns = options.interval_ns;
  hello.subscribe_events = options.subscribe_events;
  if (!conn.send(make_hello_frame(hello))) {
    result.error = "send hello failed";
    return result;
  }

  const auto ack_bytes = conn.receive();
  if (!ack_bytes) {
    result.error = "connection closed before hello-ack";
    return result;
  }
  try {
    const Frame ack_frame = decode_frame(*ack_bytes);
    if (ack_frame.type != FrameType::kHelloAck) {
      result.error = "expected hello-ack, got frame type " +
                     std::to_string(static_cast<int>(ack_frame.type));
      return result;
    }
    result.session_id = decode_hello_ack(ack_frame.payload).session_id;
  } catch (const std::exception& e) {
    result.error = e.what();
    return result;
  }

  for (const auto& snap : snapshots) {
    if (!conn.send(make_snapshot_frame(result.session_id, snap))) {
      result.error = "connection lost mid-replay";
      return result;
    }
    ++result.snapshots_sent;
  }

  for (std::size_t at = 0; at < options.heartbeats.size();
       at += options.heartbeat_batch_size) {
    HeartbeatBatchPayload batch;
    const std::size_t end = std::min(
        at + options.heartbeat_batch_size, options.heartbeats.size());
    batch.records.assign(options.heartbeats.begin() + at,
                         options.heartbeats.begin() + end);
    if (!conn.send(
            make_heartbeat_batch_frame(result.session_id, batch))) {
      result.error = "connection lost mid-replay";
      return result;
    }
    result.heartbeat_records_sent += batch.records.size();
  }

  if (options.query_status) {
    QueryPayload query;
    query.kind = QueryKind::kSessionStatus;
    if (!conn.send(make_query_frame(result.session_id, query))) {
      result.error = "connection lost before query";
      return result;
    }
  }

  if (!conn.send(make_bye_frame(result.session_id))) {
    result.error = "connection lost before bye";
    return result;
  }

  // Drain until the server closes: phase events (if subscribed) and the
  // query reply arrive in stream order, so everything is here by EOF.
  try {
    while (auto bytes = conn.receive()) {
      const Frame frame = decode_frame(*bytes);
      if (frame.type == FrameType::kPhaseEvent) {
        result.events.push_back(decode_phase_event(frame.payload));
      } else if (frame.type == FrameType::kQueryReply) {
        result.status_text = decode_query_reply(frame.payload).text;
      }
    }
  } catch (const std::exception& e) {
    result.error = e.what();
    return result;
  }

  result.ok = true;
  return result;
}

namespace {

/// Backoff before retry number `retry` (0-based): exponential growth
/// capped at max_backoff, scaled by seeded jitter.
std::chrono::milliseconds backoff_delay(const RetryPolicy& policy,
                                        std::size_t retry,
                                        util::Rng& rng) {
  double ms = static_cast<double>(policy.initial_backoff.count()) *
              std::pow(policy.multiplier, static_cast<double>(retry));
  ms = std::min(ms, static_cast<double>(policy.max_backoff.count()));
  const double factor =
      1.0 + policy.jitter * (2.0 * rng.next_double() - 1.0);
  ms = std::max(0.0, ms * factor);
  return std::chrono::milliseconds(static_cast<std::int64_t>(ms));
}

}  // namespace

ReplayResult replay_session_resilient(
    const ConnectFn& connect,
    const std::vector<gmon::ProfileSnapshot>& snapshots,
    const ReplayOptions& options, const RetryPolicy& policy) {
  ReplayResult result;
  result.trace_id = resolve_trace_id(options);
  obs::ScopedTraceContext trace_scope({result.trace_id, 0});
  util::Rng rng(policy.seed);
  std::unique_ptr<Connection> conn;
  std::size_t snap_cursor = 0;  // next snapshot index to send
  std::size_t hb_cursor = 0;    // next heartbeat record index
  bool query_sent = false;
  bool bye_sent = false;
  std::uint32_t session_id = 0;  // known id, 0 until the first ack
  std::string last_error = "no connection attempt made";

  for (;;) {
    if (!conn) {
      if (result.connect_attempts >= policy.max_attempts) {
        result.error = "gave up after " +
                       std::to_string(result.connect_attempts) +
                       " attempts: " + last_error;
        return result;
      }
      if (result.connect_attempts > 0) {
        std::this_thread::sleep_for(
            backoff_delay(policy, result.connect_attempts - 1, rng));
      }
      ++result.connect_attempts;
      try {
        conn = connect();
      } catch (const std::exception& e) {
        last_error = std::string("connect: ") + e.what();
        continue;
      }
      if (!conn) {
        last_error = "connect failed";
        continue;
      }

      HelloPayload hello;
      hello.client_name = options.client_name;
      hello.interval_ns = options.interval_ns;
      hello.subscribe_events = options.subscribe_events;
      hello.resume_session_id = session_id;
      if (!conn->send(make_hello_frame(hello))) {
        conn.reset();
        last_error = "send hello failed";
        continue;
      }
      const auto ack_bytes = conn->receive();
      if (!ack_bytes) {
        conn.reset();
        last_error = "connection closed before hello-ack";
        continue;
      }
      try {
        const Frame ack_frame = decode_frame(*ack_bytes);
        if (ack_frame.type == FrameType::kProtocolError) {
          const auto err = decode_protocol_error(ack_frame.payload);
          conn.reset();
          last_error = "server rejected hello: " + err.message;
          if (err.code == ProtocolErrorCode::kUnknownSession &&
              session_id != 0) {
            // The session is gone server-side (quarantined, reaped, or
            // already closed); start over as a fresh one.
            session_id = 0;
            snap_cursor = 0;
            hb_cursor = 0;
            query_sent = false;
            bye_sent = false;
            result.snapshots_sent = 0;
            result.heartbeat_records_sent = 0;
            result.events.clear();
          }
          continue;
        }
        if (ack_frame.type != FrameType::kHelloAck) {
          result.error = "expected hello-ack, got frame type " +
                         std::to_string(static_cast<int>(ack_frame.type));
          return result;
        }
        const HelloAckPayload ack = decode_hello_ack(ack_frame.payload);
        if (session_id != 0) {
          // Resumed: rewind to the server's cursor so every interval it
          // never accepted is sent again, and none twice.
          snap_cursor = std::min(
              static_cast<std::size_t>(ack.resume_next_interval),
              snapshots.size());
          result.snapshots_sent = snap_cursor;
          ++result.reconnects;
        }
        session_id = ack.session_id;
        result.session_id = session_id;
      } catch (const std::exception& e) {
        conn.reset();
        last_error = e.what();
        continue;
      }
    }

    bool lost = false;
    while (snap_cursor < snapshots.size()) {
      if (!conn->send(
              make_snapshot_frame(session_id, snapshots[snap_cursor]))) {
        lost = true;
        break;
      }
      ++snap_cursor;
      result.snapshots_sent = snap_cursor;
    }
    while (!lost && hb_cursor < options.heartbeats.size()) {
      HeartbeatBatchPayload batch;
      const std::size_t end =
          std::min(hb_cursor + options.heartbeat_batch_size,
                   options.heartbeats.size());
      batch.records.assign(options.heartbeats.begin() +
                               static_cast<std::ptrdiff_t>(hb_cursor),
                           options.heartbeats.begin() +
                               static_cast<std::ptrdiff_t>(end));
      if (!conn->send(make_heartbeat_batch_frame(session_id, batch))) {
        lost = true;
        break;
      }
      result.heartbeat_records_sent += batch.records.size();
      hb_cursor = end;
    }
    if (!lost && options.query_status && !query_sent) {
      QueryPayload query;
      query.kind = QueryKind::kSessionStatus;
      if (conn->send(make_query_frame(session_id, query))) {
        query_sent = true;
      } else {
        lost = true;
      }
    }
    if (!lost && !bye_sent) {
      if (conn->send(make_bye_frame(session_id))) {
        bye_sent = true;
      } else {
        lost = true;
      }
    }
    if (lost) {
      conn->close();
      conn.reset();
      last_error = "connection lost mid-replay";
      continue;
    }

    // Drain until the server closes; after a clean bye the session is
    // over, so a drain failure is terminal (there is nothing to resume).
    try {
      while (auto bytes = conn->receive()) {
        const Frame frame = decode_frame(*bytes);
        if (frame.type == FrameType::kPhaseEvent) {
          result.events.push_back(decode_phase_event(frame.payload));
        } else if (frame.type == FrameType::kQueryReply) {
          result.status_text = decode_query_reply(frame.payload).text;
        }
      }
    } catch (const std::exception& e) {
      result.error = e.what();
      return result;
    }
    result.ok = true;
    return result;
  }
}

std::vector<gmon::ProfileSnapshot> load_replay_dumps(
    const std::filesystem::path& dump_dir) {
  return gmon::load_binary_dumps(dump_dir);
}

}  // namespace incprof::service
