#include "service/protocol.hpp"

#include "gmon/binary_io.hpp"
#include "obs/trace_context.hpp"

#include <bit>
#include <stdexcept>

namespace incprof::service {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(
                  static_cast<unsigned char>(bytes_[pos_ + i]))
                  << (8 * i));
    }
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  std::string str(std::size_t len) {
    need(len);
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  void expect_end(const char* what) const {
    if (pos_ != bytes_.size()) {
      throw std::runtime_error(std::string("service protocol: trailing "
                                           "bytes in ") +
                               what);
    }
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::runtime_error("service protocol: truncated payload");
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

std::string frame_of(FrameType type, std::uint32_t session,
                     std::string payload) {
  Frame f;
  f.type = type;
  f.session = session;
  // Every frame built through the conveniences carries the sender
  // thread's trace context: a client replaying under a ScopedTraceContext
  // stamps its frames, and a server worker answering under the frame's
  // own context propagates it back — no per-call-site plumbing.
  const obs::TraceContext ctx = obs::current_trace_context();
  f.trace_id = ctx.trace_id;
  f.parent_span = ctx.span_id;
  f.payload = std::move(payload);
  return encode_frame(f);
}

}  // namespace

bool is_known_frame_type(std::uint16_t t) noexcept {
  return t >= static_cast<std::uint16_t>(FrameType::kHello) &&
         t <= static_cast<std::uint16_t>(FrameType::kDrainAck);
}

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxPayloadBytes) {
    throw std::runtime_error("service protocol: payload too large");
  }
  std::string out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  put_u32(out, kProtocolMagic);
  put_u16(out, kProtocolVersion);
  put_u16(out, static_cast<std::uint16_t>(frame.type));
  put_u32(out, frame.session);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  put_u64(out, frame.trace_id);
  put_u32(out, frame.parent_span);
  out.append(frame.payload);
  return out;
}

std::string encode_frame_v1(const Frame& frame) {
  if (frame.payload.size() > kMaxPayloadBytes) {
    throw std::runtime_error("service protocol: payload too large");
  }
  std::string out;
  out.reserve(kFrameHeaderSizeV1 + frame.payload.size());
  put_u32(out, kProtocolMagic);
  put_u16(out, kLegacyProtocolVersion);
  put_u16(out, static_cast<std::uint16_t>(frame.type));
  put_u32(out, frame.session);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  return out;
}

Frame decode_frame(std::string_view bytes) {
  Reader r(bytes);
  if (r.u32() != kProtocolMagic) {
    throw std::runtime_error("service protocol: bad magic");
  }
  const std::uint16_t version = r.u16();
  if (version != kProtocolVersion && version != kLegacyProtocolVersion) {
    throw std::runtime_error("service protocol: unsupported version " +
                             std::to_string(version));
  }
  const std::uint16_t type = r.u16();
  if (!is_known_frame_type(type)) {
    throw std::runtime_error("service protocol: unknown frame type " +
                             std::to_string(type));
  }
  Frame f;
  f.type = static_cast<FrameType>(type);
  f.session = r.u32();
  const std::uint32_t len = r.u32();
  if (len > kMaxPayloadBytes) {
    throw std::runtime_error("service protocol: payload length " +
                             std::to_string(len) + " exceeds bound");
  }
  if (version >= 2) {
    f.trace_id = r.u64();
    f.parent_span = r.u32();
  }
  f.payload = r.str(len);
  r.expect_end("frame");
  return f;
}

std::uint32_t frame_payload_length(std::string_view header) {
  if (header.size() < kFrameHeaderPrefixSize) {
    throw std::runtime_error("service protocol: short frame header");
  }
  Reader r(header.substr(0, kFrameHeaderPrefixSize));
  if (r.u32() != kProtocolMagic) {
    throw std::runtime_error("service protocol: bad magic");
  }
  r.u16();  // version; checked by decode_frame once complete
  r.u16();  // type
  r.u32();  // session
  const std::uint32_t len = r.u32();
  if (len > kMaxPayloadBytes) {
    throw std::runtime_error("service protocol: payload length " +
                             std::to_string(len) + " exceeds bound");
  }
  return len;
}

std::size_t frame_header_size(std::string_view prefix) {
  if (prefix.size() < kFrameHeaderPrefixSize) {
    throw std::runtime_error("service protocol: short frame header");
  }
  Reader r(prefix.substr(0, kFrameHeaderPrefixSize));
  if (r.u32() != kProtocolMagic) {
    throw std::runtime_error("service protocol: bad magic");
  }
  const std::uint16_t version = r.u16();
  // Version 1 is the only 16-byte header; anything newer (including
  // versions this build does not speak) frames with the current size so
  // a corrupted version byte stays a decode_frame error — recoverable,
  // budgeted — rather than a stream desynchronization.
  return version == kLegacyProtocolVersion ? kFrameHeaderSizeV1
                                           : kFrameHeaderSize;
}

WireTraceContext peek_trace_context(std::string_view bytes) noexcept {
  WireTraceContext ctx;
  if (bytes.size() < kFrameHeaderSize) return ctx;
  Reader r(bytes.substr(0, kFrameHeaderSize));
  try {
    if (r.u32() != kProtocolMagic) return ctx;
    if (r.u16() < 2) return ctx;  // version 1: no trace fields
    r.u16();                      // type
    r.u32();                      // session
    r.u32();                      // payload_len
    ctx.trace_id = r.u64();
    ctx.parent_span = r.u32();
  } catch (...) {
    return WireTraceContext{};
  }
  return ctx;
}

std::string encode_hello(const HelloPayload& p) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(p.client_name.size()));
  out.append(p.client_name);
  put_u64(out, p.interval_ns);
  out.push_back(p.subscribe_events ? 1 : 0);
  put_u32(out, p.resume_session_id);
  return out;
}

HelloPayload decode_hello(std::string_view bytes) {
  Reader r(bytes);
  HelloPayload p;
  const std::uint32_t name_len = r.u32();
  p.client_name = r.str(name_len);
  p.interval_ns = r.u64();
  p.subscribe_events = r.u8() != 0;
  p.resume_session_id = r.u32();
  r.expect_end("hello");
  return p;
}

std::string encode_hello_ack(const HelloAckPayload& p) {
  std::string out;
  put_u32(out, p.session_id);
  put_u16(out, p.server_version);
  put_u32(out, p.resume_next_interval);
  return out;
}

HelloAckPayload decode_hello_ack(std::string_view bytes) {
  Reader r(bytes);
  HelloAckPayload p;
  p.session_id = r.u32();
  p.server_version = r.u16();
  p.resume_next_interval = r.u32();
  r.expect_end("hello-ack");
  return p;
}

std::string encode_snapshot(const gmon::ProfileSnapshot& snap) {
  return gmon::encode_binary(snap);
}

gmon::ProfileSnapshot decode_snapshot(std::string_view bytes) {
  return gmon::decode_binary(bytes);
}

std::string encode_heartbeat_batch(const HeartbeatBatchPayload& p) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(p.records.size()));
  for (const auto& rec : p.records) {
    put_u32(out, rec.interval);
    put_u32(out, rec.id);
    put_u64(out, rec.count);
    put_f64(out, rec.mean_duration_ns);
    put_f64(out, rec.max_duration_ns);
  }
  return out;
}

HeartbeatBatchPayload decode_heartbeat_batch(std::string_view bytes) {
  Reader r(bytes);
  HeartbeatBatchPayload p;
  const std::uint32_t count = r.u32();
  p.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ekg::HeartbeatRecord rec;
    rec.interval = r.u32();
    rec.id = r.u32();
    rec.count = r.u64();
    rec.mean_duration_ns = r.f64();
    rec.max_duration_ns = r.f64();
    p.records.push_back(rec);
  }
  r.expect_end("heartbeat-batch");
  return p;
}

std::string encode_query(const QueryPayload& p) {
  std::string out;
  put_u16(out, static_cast<std::uint16_t>(p.kind));
  return out;
}

QueryPayload decode_query(std::string_view bytes) {
  Reader r(bytes);
  QueryPayload p;
  const std::uint16_t kind = r.u16();
  if (kind < static_cast<std::uint16_t>(QueryKind::kSessionStatus) ||
      kind > static_cast<std::uint16_t>(QueryKind::kTraceDump)) {
    throw std::runtime_error("service protocol: unknown query kind " +
                             std::to_string(kind));
  }
  p.kind = static_cast<QueryKind>(kind);
  r.expect_end("query");
  return p;
}

std::string encode_query_reply(const QueryReplyPayload& p) {
  std::string out;
  put_u16(out, static_cast<std::uint16_t>(p.kind));
  put_u32(out, static_cast<std::uint32_t>(p.text.size()));
  out.append(p.text);
  return out;
}

QueryReplyPayload decode_query_reply(std::string_view bytes) {
  Reader r(bytes);
  QueryReplyPayload p;
  p.kind = static_cast<QueryKind>(r.u16());
  const std::uint32_t len = r.u32();
  p.text = r.str(len);
  r.expect_end("query-reply");
  return p;
}

std::string encode_phase_event(const PhaseEventPayload& p) {
  std::string out;
  put_u32(out, p.interval);
  put_u32(out, p.phase);
  out.push_back(p.new_phase ? 1 : 0);
  out.push_back(p.transition ? 1 : 0);
  put_f64(out, p.distance);
  return out;
}

PhaseEventPayload decode_phase_event(std::string_view bytes) {
  Reader r(bytes);
  PhaseEventPayload p;
  p.interval = r.u32();
  p.phase = r.u32();
  p.new_phase = r.u8() != 0;
  p.transition = r.u8() != 0;
  p.distance = r.f64();
  r.expect_end("phase-event");
  return p;
}

std::string encode_protocol_error(const ProtocolErrorPayload& p) {
  std::string out;
  put_u16(out, static_cast<std::uint16_t>(p.code));
  put_u32(out, p.errors);
  put_u32(out, p.budget);
  put_u32(out, static_cast<std::uint32_t>(p.message.size()));
  out.append(p.message);
  return out;
}

ProtocolErrorPayload decode_protocol_error(std::string_view bytes) {
  Reader r(bytes);
  ProtocolErrorPayload p;
  const std::uint16_t code = r.u16();
  if (code < static_cast<std::uint16_t>(ProtocolErrorCode::kMalformedFrame) ||
      code > static_cast<std::uint16_t>(ProtocolErrorCode::kRedirect)) {
    throw std::runtime_error("service protocol: unknown error code " +
                             std::to_string(code));
  }
  p.code = static_cast<ProtocolErrorCode>(code);
  p.errors = r.u32();
  p.budget = r.u32();
  const std::uint32_t len = r.u32();
  p.message = r.str(len);
  r.expect_end("protocol-error");
  return p;
}

std::string make_hello_frame(const HelloPayload& p) {
  return frame_of(FrameType::kHello, 0, encode_hello(p));
}

std::string make_hello_ack_frame(std::uint32_t session,
                                 const HelloAckPayload& p) {
  return frame_of(FrameType::kHelloAck, session, encode_hello_ack(p));
}

std::string make_snapshot_frame(std::uint32_t session,
                                const gmon::ProfileSnapshot& snap) {
  return frame_of(FrameType::kSnapshot, session, encode_snapshot(snap));
}

std::string make_heartbeat_batch_frame(std::uint32_t session,
                                       const HeartbeatBatchPayload& p) {
  return frame_of(FrameType::kHeartbeatBatch, session,
                  encode_heartbeat_batch(p));
}

std::string make_query_frame(std::uint32_t session, const QueryPayload& p) {
  return frame_of(FrameType::kQuery, session, encode_query(p));
}

std::string make_query_reply_frame(std::uint32_t session,
                                   const QueryReplyPayload& p) {
  return frame_of(FrameType::kQueryReply, session, encode_query_reply(p));
}

std::string make_phase_event_frame(std::uint32_t session,
                                   const PhaseEventPayload& p) {
  return frame_of(FrameType::kPhaseEvent, session, encode_phase_event(p));
}

std::string make_bye_frame(std::uint32_t session) {
  return frame_of(FrameType::kBye, session, std::string());
}

std::string make_protocol_error_frame(std::uint32_t session,
                                      const ProtocolErrorPayload& p) {
  return frame_of(FrameType::kProtocolError, session,
                  encode_protocol_error(p));
}

std::string encode_drain_ack(const DrainAckPayload& p) {
  std::string out;
  put_u32(out, p.sessions_closed);
  return out;
}

DrainAckPayload decode_drain_ack(std::string_view bytes) {
  Reader r(bytes);
  DrainAckPayload p;
  p.sessions_closed = r.u32();
  r.expect_end("drain-ack");
  return p;
}

std::string make_drain_frame() {
  return frame_of(FrameType::kDrain, 0, std::string());
}

std::string make_drain_ack_frame(const DrainAckPayload& p) {
  return frame_of(FrameType::kDrainAck, 0, encode_drain_ack(p));
}

}  // namespace incprof::service
