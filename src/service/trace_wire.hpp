// Line-oriented text codec for shipping one shard's trace-ring spans to
// the gateway over a kTraceDump control query — the trace-side sibling
// of the fleet_state shard-state codec, and deliberately the same
// shape: a header line, keyword rows, client-influenced strings
// sanitized at encode time and placed last on their row, unknown
// keywords skipped for forward compatibility.
//
//   incprof-trace v1
//   shard <id> dropped <n>
//   span <trace_id> <span_id> <parent> <tid> <start_ns> <dur_ns> <cat> <name>
#pragma once

#include "obs/trace.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace incprof::service {

/// One span row with owned strings (the obs::SpanEvent it came from
/// only borrows its name/category pointers).
struct TraceSpanRow {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_span = 0;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::string category;
  std::string name;

  bool operator==(const TraceSpanRow&) const = default;
};

/// Everything one kTraceDump reply carries.
struct TraceDump {
  std::uint32_t shard_id = 0;
  /// Spans the ring overwrote before this dump (TraceBuffer::dropped).
  std::uint64_t dropped = 0;
  /// Oldest first, as the ring returned them.
  std::vector<TraceSpanRow> spans;
};

/// Snapshot of `buffer` (events + drop count) as a shippable dump.
TraceDump capture_trace_dump(std::uint32_t shard_id,
                             const obs::TraceBuffer& buffer);

std::string encode_trace_dump(const TraceDump& dump);

/// Throws std::runtime_error on malformed input.
TraceDump decode_trace_dump(std::string_view text);

}  // namespace incprof::service
