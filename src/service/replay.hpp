// Client-side session replay: drive one connection through the full
// protocol conversation (hello / snapshots / heartbeat batches / query /
// bye) from a dump directory or an in-memory snapshot stream. Shared by
// incprof_client, incprofd --selftest, the loopback tests and the
// throughput bench, so every consumer speaks the protocol identically.
#pragma once

#include "ekg/heartbeat.hpp"
#include "gmon/snapshot.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"

#include <filesystem>
#include <string>
#include <vector>

namespace incprof::service {

/// How to replay a stream as one session.
struct ReplayOptions {
  /// Client identity reported in the hello.
  std::string client_name = "replay";
  /// Nominal collection interval reported in the hello, ns.
  std::uint64_t interval_ns = 1'000'000'000;
  /// Subscribe to kPhaseEvent pushes (the replayer drains them after
  /// the bye; leave off for pure ingest benchmarking).
  bool subscribe_events = false;
  /// Also request a kSessionStatus query reply before the bye.
  bool query_status = false;
  /// Heartbeat records to ship alongside the snapshots (optional).
  std::vector<ekg::HeartbeatRecord> heartbeats;
  /// Records per kHeartbeatBatch frame.
  std::size_t heartbeat_batch_size = 64;
};

/// What came back.
struct ReplayResult {
  /// False when the handshake failed or the connection died early.
  bool ok = false;
  std::string error;
  /// Server-assigned session id from the hello-ack.
  std::uint32_t session_id = 0;
  std::size_t snapshots_sent = 0;
  std::size_t heartbeat_records_sent = 0;
  /// Every phase event pushed back (subscribe_events only), in order.
  std::vector<PhaseEventPayload> events;
  /// The kSessionStatus reply text (query_status only).
  std::string status_text;
};

/// Replays `snapshots` (cumulative, in seq order) over `conn` as one
/// complete session, then reads the connection to EOF collecting pushed
/// events and query replies. Blocking; run one per thread for parallel
/// sessions. Never throws for peer loss — inspect `ok`/`error`.
ReplayResult replay_session(Connection& conn,
                            const std::vector<gmon::ProfileSnapshot>& snapshots,
                            const ReplayOptions& options = {});

/// Loads a collector dump directory (gmon-NNNNNN.out files, seq order)
/// for replay. Throws std::runtime_error on unreadable input.
std::vector<gmon::ProfileSnapshot> load_replay_dumps(
    const std::filesystem::path& dump_dir);

}  // namespace incprof::service
