// Client-side session replay: drive one connection through the full
// protocol conversation (hello / snapshots / heartbeat batches / query /
// bye) from a dump directory or an in-memory snapshot stream. Shared by
// incprof_client, incprofd --selftest, the loopback tests and the
// throughput bench, so every consumer speaks the protocol identically.
#pragma once

#include "ekg/heartbeat.hpp"
#include "gmon/snapshot.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace incprof::service {

/// How to replay a stream as one session.
struct ReplayOptions {
  /// Client identity reported in the hello.
  std::string client_name = "replay";
  /// Nominal collection interval reported in the hello, ns.
  std::uint64_t interval_ns = 1'000'000'000;
  /// Subscribe to kPhaseEvent pushes (the replayer drains them after
  /// the bye; leave off for pure ingest benchmarking).
  bool subscribe_events = false;
  /// Also request a kSessionStatus query reply before the bye.
  bool query_status = false;
  /// Heartbeat records to ship alongside the snapshots (optional).
  std::vector<ekg::HeartbeatRecord> heartbeats;
  /// Records per kHeartbeatBatch frame.
  std::size_t heartbeat_batch_size = 64;
  /// Distributed-trace id stamped into every frame this replay sends
  /// (v2 header). 0 = derive a fresh nonzero id from the client name
  /// and a process-wide counter; the id actually used is reported in
  /// ReplayResult::trace_id.
  std::uint64_t trace_id = 0;
};

/// What came back.
struct ReplayResult {
  /// False when the handshake failed or the connection died early.
  bool ok = false;
  std::string error;
  /// Server-assigned session id from the hello-ack.
  std::uint32_t session_id = 0;
  std::size_t snapshots_sent = 0;
  std::size_t heartbeat_records_sent = 0;
  /// Every phase event pushed back (subscribe_events only), in order.
  std::vector<PhaseEventPayload> events;
  /// The kSessionStatus reply text (query_status only).
  std::string status_text;
  /// Successful resumes after a lost connection (resilient replay only).
  std::size_t reconnects = 0;
  /// Connection attempts consumed, including the first (resilient only).
  std::size_t connect_attempts = 0;
  /// The trace id this session's frames carried (options.trace_id, or
  /// the derived one when that was 0). Grep for it in daemon logs or
  /// the merged /trace.json.
  std::uint64_t trace_id = 0;
};

/// Replays `snapshots` (cumulative, in seq order) over `conn` as one
/// complete session, then reads the connection to EOF collecting pushed
/// events and query replies. Blocking; run one per thread for parallel
/// sessions. Never throws for peer loss — inspect `ok`/`error`.
ReplayResult replay_session(Connection& conn,
                            const std::vector<gmon::ProfileSnapshot>& snapshots,
                            const ReplayOptions& options = {});

/// Reconnect policy for replay_session_resilient: exponential backoff
/// with deterministic (seeded) jitter so retry schedules are replayable
/// yet de-synchronized across clients.
struct RetryPolicy {
  /// Connection attempts in total, including the first. 1 = no retry.
  std::size_t max_attempts = 5;
  std::chrono::milliseconds initial_backoff{20};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{2000};
  /// Each delay is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter = 0.2;
  /// Seed for the jitter stream (vary per client).
  std::uint64_t seed = 0x5eed5eedULL;
};

/// Produces a fresh connection per attempt; return nullptr or throw to
/// signal a failed attempt (it is retried with backoff).
using ConnectFn = std::function<std::unique_ptr<Connection>()>;

/// Like replay_session, but survives connection loss: on a failed send
/// the client reconnects with exponential backoff + jitter and resumes
/// the same session (hello.resume_session_id), rewinding to the
/// server's snapshot cursor from the hello-ack so no interval is sent
/// twice or skipped. A resume rejected with kUnknownSession (session
/// quarantined, reaped, or never detached) falls back to a fresh
/// session and replays from the start. Gives up — `ok == false` — when
/// `policy.max_attempts` connection attempts are exhausted.
ReplayResult replay_session_resilient(
    const ConnectFn& connect,
    const std::vector<gmon::ProfileSnapshot>& snapshots,
    const ReplayOptions& options = {}, const RetryPolicy& policy = {});

/// Loads a collector dump directory (gmon-NNNNNN.out files, seq order)
/// for replay. Throws std::runtime_error on unreadable input.
std::vector<gmon::ProfileSnapshot> load_replay_dumps(
    const std::filesystem::path& dump_dir);

}  // namespace incprof::service
