#include "service/session.hpp"

#include <algorithm>
#include <sstream>

namespace incprof::service {

Session::Session(std::uint32_t id, const SessionConfig& cfg)
    : id_(id),
      queue_capacity_(cfg.queue_capacity),
      // Published history cap mirrors the tracker contract: unbounded in
      // exact mode, assignment_window in streaming mode — otherwise the
      // status copy would undo the tracker's bounded-memory guarantee.
      history_cap_(cfg.tracker.streaming
                       ? std::max<std::size_t>(cfg.tracker.assignment_window,
                                               1)
                       : 0),
      flight_(cfg.flight_recorder_capacity),
      tracker_(cfg.tracker) {}

void Session::open(std::string client_name, bool subscribe_events,
                   std::uint64_t interval_ns) {
  {
    util::MutexLock lock(status_mu_);
    client_name_ = std::move(client_name);
    interval_ns_ = interval_ns;
  }
  subscribed_.store(subscribe_events, std::memory_order_relaxed);
}

Session::EnqueueResult Session::enqueue(Frame frame, bool force) {
  util::MutexLock lock(queue_mu_);
  if (!force && frames_.size() >= queue_capacity_) {
    ++dropped_;
    return EnqueueResult::kDropped;
  }
  if (frame.type == FrameType::kSnapshot) ++snapshots_accepted_;
  frames_.push_back(std::move(frame));
  if (frames_.size() > max_depth_) max_depth_ = frames_.size();
  if (scheduled_) return EnqueueResult::kQueued;
  scheduled_ = true;
  return EnqueueResult::kScheduled;
}

std::vector<Frame> Session::take_pending() {
  util::MutexLock lock(queue_mu_);
  std::vector<Frame> out(std::make_move_iterator(frames_.begin()),
                         std::make_move_iterator(frames_.end()));
  frames_.clear();
  return out;
}

bool Session::finish_round() {
  util::MutexLock lock(queue_mu_);
  if (frames_.empty()) {
    scheduled_ = false;
    return false;
  }
  return true;  // stays scheduled; caller re-queues the session
}

void Session::note_observation(const core::OnlineObservation& obs) {
  util::MutexLock lock(status_mu_);
  assignments_.push_back(obs.phase);
  if (history_cap_ != 0 && assignments_.size() >= history_cap_ * 2) {
    // Amortized trim: drop the stale front half in one move instead of
    // shifting the vector every interval.
    assignments_.erase(assignments_.begin(),
                       assignments_.end() -
                           static_cast<std::ptrdiff_t>(history_cap_));
  }
  ++intervals_observed_;
  phases_ = tracker_.num_phases();
  current_phase_ = obs.phase;
  if (obs.transition) ++transitions_;
}

void Session::note_heartbeats(std::uint64_t n) {
  util::MutexLock lock(status_mu_);
  heartbeat_records_ += n;
}

void Session::mark_closed() {
  util::MutexLock lock(status_mu_);
  closed_ = true;
}

std::uint32_t Session::note_protocol_error() {
  return protocol_errors_.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint32_t Session::protocol_errors() const {
  return protocol_errors_.load(std::memory_order_relaxed);
}

std::uint32_t Session::snapshots_accepted() const {
  util::MutexLock lock(queue_mu_);
  return snapshots_accepted_;
}

void Session::detach(std::uint64_t now_ns) {
  detached_since_ns_.store(now_ns, std::memory_order_relaxed);
  detached_.store(true, std::memory_order_release);
}

void Session::reattach() {
  detached_.store(false, std::memory_order_release);
}

bool Session::detached() const {
  return detached_.load(std::memory_order_acquire);
}

std::uint64_t Session::detached_since_ns() const {
  return detached_since_ns_.load(std::memory_order_relaxed);
}

std::string Session::client_name() const {
  util::MutexLock lock(status_mu_);
  return client_name_;
}

std::uint64_t Session::dropped_frames() const {
  util::MutexLock lock(queue_mu_);
  return dropped_;
}

std::size_t Session::max_queue_depth() const {
  util::MutexLock lock(queue_mu_);
  return max_depth_;
}

std::size_t Session::queue_depth() const {
  util::MutexLock lock(queue_mu_);
  return frames_.size();
}

bool Session::closed() const {
  util::MutexLock lock(status_mu_);
  return closed_;
}

std::uint64_t Session::heartbeat_records() const {
  util::MutexLock lock(status_mu_);
  return heartbeat_records_;
}

std::size_t Session::intervals_observed() const {
  util::MutexLock lock(status_mu_);
  return intervals_observed_;
}

std::size_t Session::transitions() const {
  util::MutexLock lock(status_mu_);
  return transitions_;
}

std::vector<std::size_t> Session::assignments() const {
  util::MutexLock lock(status_mu_);
  if (history_cap_ != 0 && assignments_.size() > history_cap_) {
    return {assignments_.end() -
                static_cast<std::ptrdiff_t>(history_cap_),
            assignments_.end()};
  }
  return assignments_;
}

std::string Session::status_line() const {
  std::ostringstream os;
  util::MutexLock status(status_mu_);
  os << "session " << id_ << " ("
     << (client_name_.empty() ? "?" : client_name_)
     << "): " << intervals_observed_ << " intervals, " << phases_
     << " phases, current phase " << current_phase_ << ", " << transitions_
     << " transitions, " << heartbeat_records_ << " hb records";
  {
    util::MutexLock queue(queue_mu_);
    os << ", " << dropped_ << " dropped";
  }
  if (closed_) os << " [closed]";
  return os.str();
}

}  // namespace incprof::service
