#include "service/faults.hpp"

#include "service/protocol.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <thread>

namespace incprof::service {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDisconnect: return "disconnect";
  }
  return "?";
}

FaultKind FaultPlan::action_for(std::size_t frame_index) const noexcept {
  for (const auto& ev : events) {
    if (ev.frame_index == frame_index) return ev.kind;
  }
  return FaultKind::kNone;
}

FaultPlan FaultPlan::from_seed(std::uint64_t seed, double rate,
                               std::size_t horizon) {
  FaultPlan plan;
  util::Rng rng(seed);
  bool disconnected = false;
  for (std::size_t i = 1; i < horizon; ++i) {  // frame 0: hello, kept clean
    if (rng.next_double() >= rate) continue;
    auto kind = static_cast<FaultKind>(
        1 + rng.next_below(5));  // kDrop .. kDisconnect
    if (kind == FaultKind::kDisconnect) {
      if (disconnected) kind = FaultKind::kDrop;
      disconnected = true;
    }
    plan.events.push_back({i, kind});
  }
  return plan;
}

std::size_t FaultPlan::count(FaultKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [&](const FaultEvent& ev) { return ev.kind == kind; }));
}

FaultInjectingConnection::FaultInjectingConnection(
    std::unique_ptr<Connection> inner, FaultPlan plan,
    std::chrono::milliseconds delay)
    : inner_(std::move(inner)), plan_(std::move(plan)), delay_(delay) {}

bool FaultInjectingConnection::send(std::string_view frame_bytes) {
  const std::size_t index =
      send_index_.fetch_add(1, std::memory_order_relaxed);
  if (disconnected_.load(std::memory_order_relaxed)) return false;
  switch (plan_.action_for(index)) {
    case FaultKind::kNone:
      return inner_->send(frame_bytes);
    case FaultKind::kDrop:
      counters_.dropped.fetch_add(1, std::memory_order_relaxed);
      return true;  // the caller believes the frame left
    case FaultKind::kTruncate: {
      counters_.truncated.fetch_add(1, std::memory_order_relaxed);
      const std::size_t keep = std::max<std::size_t>(
          1, std::min(frame_bytes.size() - 1, kFrameHeaderSize + 3));
      return inner_->send(frame_bytes.substr(0, keep));
    }
    case FaultKind::kCorrupt: {
      counters_.corrupted.fetch_add(1, std::memory_order_relaxed);
      std::string bad(frame_bytes);
      if (bad.size() >= kFrameHeaderSize) {
        // Clobber the type field: still one well-delimited frame, but
        // decode_frame rejects it — exercises the error-budget path
        // rather than stream desynchronization.
        bad[6] = static_cast<char>(0xff);
        bad[7] = static_cast<char>(0xff);
      }
      return inner_->send(bad);
    }
    case FaultKind::kDelay:
      counters_.delayed.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(delay_);
      return inner_->send(frame_bytes);
    case FaultKind::kDisconnect:
      counters_.disconnects.fetch_add(1, std::memory_order_relaxed);
      disconnected_.store(true, std::memory_order_relaxed);
      inner_->close();
      return false;
  }
  return inner_->send(frame_bytes);
}

std::optional<std::string> FaultInjectingConnection::receive() {
  return inner_->receive();
}

bool FaultInjectingConnection::set_receive_timeout(
    std::chrono::milliseconds timeout) {
  return inner_->set_receive_timeout(timeout);
}

void FaultInjectingConnection::close() { inner_->close(); }

std::string FaultInjectingConnection::description() const {
  return inner_->description() + "+faults";
}

}  // namespace incprof::service
