// incprofd wire protocol. The paper ships AppEKG's per-interval records
// through LDMS, "a proven efficient and scalable data collector"
// (Section III-A); incprofd is the reproduction's stand-in for that
// monitoring-side endpoint, and this header defines the byte format the
// endpoint speaks. Every message is one self-delimiting frame: a fixed
// little-endian header followed by `payload_len` payload bytes.
//
//   magic       u32  'IPSV' (0x56535049)
//   version     u16  (currently 2; 1 still decoded)
//   type        u16  FrameType
//   session     u32  server-assigned session id (0 before hello-ack)
//   payload_len u32
//   -- version >= 2 only ------------------------------------------------
//   trace_id    u64  distributed-trace id (0 = untraced)
//   parent_span u32  sender's innermost span when the frame was built
//   ---------------------------------------------------------------------
//   payload     ...  type-specific, see the structs below
//
// The first 16 bytes are layout-identical across versions, so a stream
// framer can always learn the version and payload length from that
// prefix alone; version 2 extends the header to 28 bytes with the trace
// context, and a version-1 frame decodes as trace_id = parent_span = 0.
//
// Snapshot payloads reuse the gmon binary codec verbatim, so a dump file
// written by the collector is shippable without re-encoding.
#pragma once

#include "ekg/heartbeat.hpp"
#include "gmon/snapshot.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace incprof::service {

inline constexpr std::uint32_t kProtocolMagic = 0x56535049;  // "IPSV"
/// The version encode_frame emits. decode_frame also accepts version 1
/// (the pre-tracing header) so old clients keep working unchanged.
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::uint16_t kLegacyProtocolVersion = 1;
/// Bytes shared by every header version (magic..payload_len): the
/// prefix a stream framer needs to delimit any frame.
inline constexpr std::size_t kFrameHeaderPrefixSize = 16;
inline constexpr std::size_t kFrameHeaderSizeV1 = 16;
/// Current (version 2) header size — what encode_frame emits.
inline constexpr std::size_t kFrameHeaderSize = 28;
/// Upper bound on a single frame's payload; a decoder refuses anything
/// larger before allocating (a corrupt length must not OOM the daemon).
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

/// Every message kind the service speaks.
enum class FrameType : std::uint16_t {
  /// client -> server: open a session (HelloPayload).
  kHello = 1,
  /// server -> client: session accepted (HelloAckPayload).
  kHelloAck = 2,
  /// client -> server: one cumulative profile dump (gmon binary bytes).
  kSnapshot = 3,
  /// client -> server: a batch of AppEKG records (HeartbeatBatchPayload).
  kHeartbeatBatch = 4,
  /// client -> server: status request (QueryPayload).
  kQuery = 5,
  /// server -> client: answer to a query (QueryReplyPayload).
  kQueryReply = 6,
  /// server -> client: a tracker observation worth logging
  /// (PhaseEventPayload); sent only to subscribed sessions.
  kPhaseEvent = 7,
  /// client -> server: orderly end of session (empty payload).
  kBye = 8,
  /// server -> client: a frame was rejected (ProtocolErrorPayload).
  /// Sent once per rejected frame; when the session's error budget is
  /// exhausted the final one carries kQuarantined and the server
  /// disconnects.
  kProtocolError = 9,
  /// gateway -> shard: begin draining (empty payload, valid before any
  /// hello — a control-plane frame). The shard stops accepting fresh
  /// sessions (they are answered kRedirect) and force-closes every
  /// attached client connection so those clients reconnect through the
  /// gateway and land on surviving shards.
  kDrain = 10,
  /// shard -> gateway: drain acknowledged (DrainAckPayload).
  kDrainAck = 11,
};

/// True when `t` is a value this protocol version defines.
bool is_known_frame_type(std::uint16_t t) noexcept;

/// One decoded frame. `payload` is still type-opaque; decode it with the
/// matching payload decoder below. `trace_id`/`parent_span` are the
/// sender's distributed-trace context (zero on version-1 frames and
/// untraced senders); they ride the frame through the daemon's session
/// queue so workers process it under the originating trace.
struct Frame {
  FrameType type = FrameType::kBye;
  std::uint32_t session = 0;
  std::uint64_t trace_id = 0;
  std::uint32_t parent_span = 0;
  std::string payload;

  bool operator==(const Frame&) const = default;
};

/// Serializes header + payload into wire bytes (current version).
std::string encode_frame(const Frame& frame);

/// Serializes with the legacy version-1 header (no trace context) —
/// what a pre-tracing client puts on the wire. Kept so mixed-version
/// deployments stay testable.
std::string encode_frame_v1(const Frame& frame);

/// Parses one complete frame (version 1 or 2). Throws
/// std::runtime_error on bad magic, unsupported version, unknown type,
/// oversized or mismatched length, or trailing bytes.
Frame decode_frame(std::string_view bytes);

/// Reads the payload length out of a header prefix (≥ 16 bytes; for
/// stream transports that must know how many bytes to wait for).
/// Validates magic and the payload bound; throws std::runtime_error.
std::uint32_t frame_payload_length(std::string_view header);

/// Header size of the frame starting at `prefix` (≥ 16 bytes):
/// 16 for version 1, 28 otherwise. Unknown future versions are framed
/// with the current header so decode_frame — not the framer — rejects
/// them with a budgetable typed error instead of desynchronizing the
/// stream. Validates magic; throws std::runtime_error.
std::size_t frame_header_size(std::string_view prefix);

/// Trace context read straight off wire bytes, without decoding the
/// frame. Never throws: short, malformed, or version-1 bytes yield
/// zeros — exactly the "untraced" context.
struct WireTraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t parent_span = 0;
};
WireTraceContext peek_trace_context(std::string_view bytes) noexcept;

// --- typed payloads ----------------------------------------------------

/// kHello: who is connecting and what it will send.
struct HelloPayload {
  /// Free-form client identity (host:pid, app name, ...).
  std::string client_name;
  /// The client's nominal collection interval, ns (0 = unknown).
  std::uint64_t interval_ns = 0;
  /// When true the server pushes kPhaseEvent frames back on every new
  /// phase / transition; pure ingest clients leave it off.
  bool subscribe_events = false;
  /// Non-zero: reattach to this previously-assigned session after a
  /// connection loss instead of opening a new one. The server accepts
  /// the resume only while the session is within its resume grace
  /// window; otherwise it answers with a kProtocolError
  /// (kUnknownSession) and the client must start fresh.
  std::uint32_t resume_session_id = 0;

  bool operator==(const HelloPayload&) const = default;
};

/// kHelloAck: the server's answer to a hello.
struct HelloAckPayload {
  std::uint32_t session_id = 0;
  std::uint16_t server_version = kProtocolVersion;
  /// Snapshot index the server expects next (count of snapshot frames
  /// it has accepted for this session). 0 for a fresh session; after a
  /// resume the client restarts its snapshot stream here, so frames
  /// lost in flight are re-sent exactly once.
  std::uint32_t resume_next_interval = 0;

  bool operator==(const HelloAckPayload&) const = default;
};

/// Why a frame was rejected.
enum class ProtocolErrorCode : std::uint16_t {
  /// The frame (or its payload) failed to decode.
  kMalformedFrame = 1,
  /// A well-formed frame arrived out of protocol order (e.g. a second
  /// hello, or data before any hello).
  kUnexpectedFrame = 2,
  /// A resume named a session the server no longer holds.
  kUnknownSession = 3,
  /// The session's error budget is exhausted; the server disconnects
  /// after sending this.
  kQuarantined = 4,
  /// The endpoint is draining and takes no new sessions; reconnect (a
  /// gateway will route the retry to another shard). `message` carries
  /// a human-readable hint.
  kRedirect = 5,
};

/// kProtocolError: the server's typed rejection notice.
struct ProtocolErrorPayload {
  ProtocolErrorCode code = ProtocolErrorCode::kMalformedFrame;
  /// Rejected frames this session so far (including this one).
  std::uint32_t errors = 0;
  /// The session's error budget (rejections tolerated before
  /// quarantine).
  std::uint32_t budget = 0;
  /// Human-readable reason.
  std::string message;

  bool operator==(const ProtocolErrorPayload&) const = default;
};

/// kHeartbeatBatch: AppEKG records of one or more intervals, in order.
struct HeartbeatBatchPayload {
  std::vector<ekg::HeartbeatRecord> records;

  bool operator==(const HeartbeatBatchPayload&) const = default;
};

/// kQuery: what the client wants to know.
enum class QueryKind : std::uint16_t {
  /// This session's tracker status, as one text line.
  kSessionStatus = 1,
  /// The whole-fleet report the daemon would print.
  kFleetSummary = 2,
  /// Machine-readable shard state (the fleet_state text codec): the
  /// FleetAggregator's rows plus the metrics registry's counters,
  /// gauges, and histogram buckets — everything a gateway needs to
  /// merge shards. Valid before any hello (control plane).
  kFleetState = 3,
  /// The shard's retained trace-ring spans (the trace_wire text codec):
  /// what a gateway pulls to build the fleet-merged /trace.json. Valid
  /// before any hello (control plane).
  kTraceDump = 4,
};

struct QueryPayload {
  QueryKind kind = QueryKind::kSessionStatus;

  bool operator==(const QueryPayload&) const = default;
};

/// kQueryReply: human-readable answer body.
struct QueryReplyPayload {
  QueryKind kind = QueryKind::kSessionStatus;
  std::string text;

  bool operator==(const QueryReplyPayload&) const = default;
};

/// kDrainAck: the shard's answer to a kDrain control frame.
struct DrainAckPayload {
  /// Sessions that were attached when the drain began and have been
  /// force-closed (their clients will reconnect elsewhere).
  std::uint32_t sessions_closed = 0;

  bool operator==(const DrainAckPayload&) const = default;
};

/// kPhaseEvent: one OnlinePhaseTracker observation.
struct PhaseEventPayload {
  /// Interval index within the session's stream.
  std::uint32_t interval = 0;
  /// Phase the interval was assigned to.
  std::uint32_t phase = 0;
  bool new_phase = false;
  bool transition = false;
  /// Distance to the chosen centroid before the update.
  double distance = 0.0;

  bool operator==(const PhaseEventPayload&) const = default;
};

std::string encode_hello(const HelloPayload& p);
HelloPayload decode_hello(std::string_view bytes);

std::string encode_hello_ack(const HelloAckPayload& p);
HelloAckPayload decode_hello_ack(std::string_view bytes);

/// Snapshot payloads are the gmon binary format; these are thin wrappers
/// kept for symmetry (and so callers need not include gmon/binary_io).
std::string encode_snapshot(const gmon::ProfileSnapshot& snap);
gmon::ProfileSnapshot decode_snapshot(std::string_view bytes);

std::string encode_heartbeat_batch(const HeartbeatBatchPayload& p);
HeartbeatBatchPayload decode_heartbeat_batch(std::string_view bytes);

std::string encode_query(const QueryPayload& p);
QueryPayload decode_query(std::string_view bytes);

std::string encode_query_reply(const QueryReplyPayload& p);
QueryReplyPayload decode_query_reply(std::string_view bytes);

std::string encode_phase_event(const PhaseEventPayload& p);
PhaseEventPayload decode_phase_event(std::string_view bytes);

std::string encode_protocol_error(const ProtocolErrorPayload& p);
ProtocolErrorPayload decode_protocol_error(std::string_view bytes);

std::string encode_drain_ack(const DrainAckPayload& p);
DrainAckPayload decode_drain_ack(std::string_view bytes);

// --- whole-frame conveniences used throughout the service --------------

std::string make_hello_frame(const HelloPayload& p);
std::string make_hello_ack_frame(std::uint32_t session,
                                 const HelloAckPayload& p);
std::string make_snapshot_frame(std::uint32_t session,
                                const gmon::ProfileSnapshot& snap);
std::string make_heartbeat_batch_frame(std::uint32_t session,
                                       const HeartbeatBatchPayload& p);
std::string make_query_frame(std::uint32_t session, const QueryPayload& p);
std::string make_query_reply_frame(std::uint32_t session,
                                   const QueryReplyPayload& p);
std::string make_phase_event_frame(std::uint32_t session,
                                   const PhaseEventPayload& p);
std::string make_bye_frame(std::uint32_t session);
std::string make_protocol_error_frame(std::uint32_t session,
                                      const ProtocolErrorPayload& p);
std::string make_drain_frame();
std::string make_drain_ack_frame(const DrainAckPayload& p);

// --- session-id shard partitioning -------------------------------------
//
// In fleet mode every shard allocates session ids from a disjoint range
// so a gateway can recover a session's owner from the id alone: shard k
// hands out ids (k << kSessionShardShift) + 1, +2, ... . Shard 0 (the
// standalone daemon) therefore keeps the historical 1, 2, 3, ...
// numbering, and the id space gives each shard 2^20 sessions before the
// ranges could collide — far beyond a daemon lifetime.

inline constexpr std::uint32_t kSessionShardShift = 20;
/// Highest usable shard id: 12 bits remain above the shift, minus the
/// all-ones value so first_session_id_for_shard cannot overflow u32.
inline constexpr std::uint32_t kMaxShardId =
    (1u << (32 - kSessionShardShift)) - 2;

/// First session id shard `shard_id` hands out.
constexpr std::uint32_t first_session_id_for_shard(
    std::uint32_t shard_id) noexcept {
  return (shard_id << kSessionShardShift) + 1;
}

/// The shard that assigned `session_id` (inverse of the above).
constexpr std::uint32_t session_id_shard(std::uint32_t session_id) noexcept {
  return session_id >> kSessionShardShift;
}

}  // namespace incprof::service
