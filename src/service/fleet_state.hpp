// Shard-state snapshot: the machine-readable answer to a kFleetState
// control query. A shard serializes its FleetAggregator rows plus its
// metrics registry (counters, gauges, histogram buckets); the gateway
// decodes one ShardState per shard and merges them into the fleet view.
// Everything in here is mergeable by construction — counts add, gauges
// add (they are all extensive quantities: live sessions, queue depths),
// histogram buckets add — so the merged view of a clean run equals the
// sum of the per-shard views.
//
// The codec is a line-oriented text format ("incprof-shard-state v1")
// rather than a packed binary one: it rides inside a kQueryReply whose
// body is text by convention, it is trivially diffable in test failures,
// and none of its fields are hot-path sized. Metric keys are emitted as
// single tokens, so keys containing whitespace are skipped at capture
// time (the repo lint already enforces whitespace-free metric names).
#pragma once

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "service/fleet.hpp"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace incprof::service {

/// One shard's full observable state at a point in time.
struct ShardState {
  std::uint32_t shard_id = 0;
  /// True once the shard has begun draining (no new sessions).
  bool draining = false;
  std::uint64_t open_sessions = 0;
  std::uint64_t total_intervals = 0;
  std::uint64_t total_transitions = 0;
  std::vector<FleetSessionInfo> sessions;
  /// histogram[k] = sessions whose tracker holds k phases.
  std::vector<std::uint64_t> phase_count_histogram;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, obs::HistogramSnapshot>> histograms;
};

/// Builds a ShardState from a shard's live aggregator and registry.
ShardState capture_shard_state(std::uint32_t shard_id, bool draining,
                               const FleetAggregator& fleet,
                               const obs::MetricsRegistry& metrics);

/// Serializes to the v1 text format.
std::string encode_shard_state(const ShardState& s);

/// Parses the v1 text format; throws std::runtime_error on malformed
/// input (bad header, short row, non-numeric field).
ShardState decode_shard_state(std::string_view text);

/// Folds `src` into `dst`: totals and phase histograms add, metric rows
/// merge by key (counters/gauges add, histogram buckets add), session
/// rows concatenate. `dst.shard_id`/`draining` are left untouched — a
/// merged view has no single owner.
void merge_shard_state(ShardState& dst, const ShardState& src);

}  // namespace incprof::service
