// Shared building blocks for the mini-app workloads: a checksum
// accumulator that defeats dead-code elimination, and helpers to convert
// real loop extents into virtual cost consistently.
#pragma once

#include "sim/clock.hpp"

#include <cstdint>

namespace incprof::apps {

/// Accumulates doubles in a way the optimizer cannot elide, without the
/// overflow/NaN risks of naive summation of large products.
class Blackhole {
 public:
  /// Folds a value in.
  void consume(double v) noexcept;

  /// Folds an integer in.
  void consume_u64(std::uint64_t v) noexcept;

  /// Current digest value.
  double value() const noexcept { return acc_; }

 private:
  double acc_ = 0.0;
  std::uint64_t bits_ = 0x243f6a8885a308d3ULL;
};

/// Scales a nominal virtual duration by the app's time scale, clamped to
/// at least one nanosecond so work() always advances time.
sim::vtime_t scaled(double nominal_sec, double time_scale) noexcept;

}  // namespace incprof::apps
