// Run harness: the glue that executes a mini-app under the IncProf
// collector (Figure 1's data-collection side) or under AppEKG heartbeat
// instrumentation (the validation side), and converts Algorithm 1 output
// into adapter site lists. Examples, tests and every bench build on
// these entry points.
#pragma once

#include "apps/miniapp.hpp"
#include "core/pipeline.hpp"
#include "ekg/adapter.hpp"
#include "ekg/series.hpp"
#include "gmon/callgraph.hpp"
#include "gmon/snapshot.hpp"

#include <cstdint>
#include <optional>
#include <vector>

namespace incprof::apps {

/// Knobs for one instrumented run.
struct RunConfig {
  /// Engine seed (drives work jitter).
  std::uint64_t seed = 7;
  /// Relative work jitter (0 = deterministic; ~0.02 models rank noise).
  double jitter = 0.02;
  /// Profile dump / heartbeat collection interval, virtual ns.
  sim::vtime_t interval_ns = sim::kNsPerSec;
  /// Engine sampling period, virtual ns (gprof's 100 Hz default).
  sim::vtime_t sample_period_ns = 10 * sim::kNsPerMs;
};

/// Output of a collection run.
struct ProfiledRun {
  std::vector<gmon::ProfileSnapshot> snapshots;
  /// Final cumulative call graph (for core::lift_sites).
  gmon::CallGraphSnapshot callgraph;
  sim::vtime_t runtime_ns = 0;
  double checksum = 0.0;
};

/// Runs `app` with the sampling profiler + IncProf collector attached.
ProfiledRun run_profiled(MiniApp& app, const RunConfig& cfg = {});

/// Runs `app` bare (no listeners) — the uninstrumented baseline.
sim::vtime_t run_baseline(MiniApp& app, const RunConfig& cfg = {});

/// Output of a heartbeat-instrumented run.
struct HeartbeatRun {
  std::vector<ekg::HeartbeatRecord> records;
  sim::vtime_t runtime_ns = 0;
  /// Series over the full run axis, with site labels attached.
  ekg::HeartbeatSeries series;
};

/// Runs `app` with AppEKG instrumentation on the given sites.
HeartbeatRun run_with_heartbeats(MiniApp& app,
                                 const std::vector<ekg::InstrumentedSite>& sites,
                                 const RunConfig& cfg = {});

/// Converts Algorithm 1 output into adapter sites, assigning heartbeat
/// ids exactly as the report tables do (assign_heartbeat_ids).
std::vector<ekg::InstrumentedSite> to_ekg_sites(
    const core::SiteSelectionResult& result);

/// Converts a manual site list into adapter sites with ids 1..n.
std::vector<ekg::InstrumentedSite> to_ekg_sites(
    const std::vector<core::ManualSite>& manual);

/// Convenience: profile `app` and run the full analysis pipeline.
core::PhaseAnalysis profile_and_analyze(
    MiniApp& app, const RunConfig& run_cfg = {},
    const core::PipelineConfig& pipe_cfg = {});

}  // namespace incprof::apps
