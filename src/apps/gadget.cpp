#include "apps/gadget.hpp"

#include "apps/workload_common.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace incprof::apps {

namespace {

// Virtual-time budget (time_scale = 1), shaped to the paper's 421-second
// run. Each timestep is ~0.3 s — much shorter than the 1-second analysis
// interval, the property that makes Gadget2 the paper's hard case. The
// PM kernel runs every kPmEvery steps and takes several intervals, which
// is what gives the clustering its second distinguishable regime.
// The four main timestep functions are thin dispatchers in the real code:
// nearly all self time lands in the tree walk and the PM kernel (Table VI
// sums to ~100 % over just three functions). Their few milliseconds per
// step sit below the 10 ms profiling clock most of the time, which is
// exactly why the paper's discovered sites are the callees.
constexpr std::size_t kTimesteps = 1150;
constexpr double kDriftSec = 0.0024;
constexpr double kDomainSec = 0.0032;
constexpr double kTreeForceSec = 0.262;
constexpr double kNodeUpdateSec = 0.0045;
constexpr double kAdvanceSec = 0.0021;
constexpr std::size_t kPmEvery = 26;
constexpr double kPmKernelSec = 2.45;

class Gadget final : public MiniApp {
 public:
  explicit Gadget(const AppParams& params) : params_(params) {
    const double cs = std::max(0.05, params_.compute_scale);
    npart_ = std::max<std::size_t>(128,
                                   static_cast<std::size_t>(1024.0 * cs));
    util::Rng rng(0x67616467u);
    pos_.resize(npart_ * 3);
    vel_.assign(npart_ * 3, 0.0);
    acc_.assign(npart_ * 3, 0.0);
    for (auto& p : pos_) p = rng.next_double();
  }

  std::string name() const override { return "gadget"; }
  double nominal_runtime_sec() const override { return 421.0; }
  std::size_t paper_ranks() const override { return 16; }
  std::size_t paper_phases() const override { return 3; }

  std::vector<core::ManualSite> manual_sites() const override {
    // Table VI's manual selection: the four main timestep functions.
    return {{"find_next_sync_point_and_drift", core::InstType::kBody},
            {"domain_decomposition", core::InstType::kBody},
            {"compute_accelerations", core::InstType::kBody},
            {"advance_and_find_timesteps", core::InstType::kBody}};
  }

  double checksum() const override { return sink_.value(); }

  void run(sim::ExecutionEngine& eng) override {
    for (std::size_t step = 0; step < kTimesteps; ++step) {
      find_next_sync_point_and_drift(eng);
      domain_decomposition(eng);
      compute_accelerations(eng, step);
      advance_and_find_timesteps(eng);
    }
  }

 private:
  void find_next_sync_point_and_drift(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "find_next_sync_point_and_drift");
    constexpr double dt = 1e-3;
    for (std::size_t i = 0; i < npart_ * 3; ++i) {
      pos_[i] += dt * vel_[i];
      if (pos_[i] < 0.0) pos_[i] += 1.0;
      if (pos_[i] >= 1.0) pos_[i] -= 1.0;
    }
    eng.work(scaled(kDriftSec, params_.time_scale));
  }

  void domain_decomposition(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "domain_decomposition");
    // Peano-Hilbert-ish ordering proxy: bucket particles on a coarse
    // grid; count occupancy (what the real code balances on).
    constexpr std::size_t kGrid = 8;
    counts_.assign(kGrid * kGrid * kGrid, 0);
    for (std::size_t i = 0; i < npart_; ++i) {
      const auto gx = static_cast<std::size_t>(pos_[3 * i] * kGrid);
      const auto gy = static_cast<std::size_t>(pos_[3 * i + 1] * kGrid);
      const auto gz = static_cast<std::size_t>(pos_[3 * i + 2] * kGrid);
      ++counts_[std::min(gx, kGrid - 1) * kGrid * kGrid +
                std::min(gy, kGrid - 1) * kGrid + std::min(gz, kGrid - 1)];
    }
    eng.work(scaled(kDomainSec, params_.time_scale));
  }

  void compute_accelerations(sim::ExecutionEngine& eng, std::size_t step) {
    sim::ScopedFunction f(eng, "compute_accelerations");
    if (step % kPmEvery == 0) {
      pm_setup_nonperiodic_kernel(eng);
      force_update_node_recursive(eng);
    }
    force_treeevaluate_shortrange(eng);
  }

  void pm_setup_nonperiodic_kernel(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "pm_setup_nonperiodic_kernel");
    // Mesh assignment + a toy long-range convolution over a small grid
    // (the real code FFTs; the data movement pattern is what matters).
    constexpr std::size_t kMesh = 16;
    mesh_.assign(kMesh * kMesh * kMesh, 0.0);
    for (std::size_t i = 0; i < npart_; ++i) {
      const auto gx = std::min<std::size_t>(
          static_cast<std::size_t>(pos_[3 * i] * kMesh), kMesh - 1);
      const auto gy = std::min<std::size_t>(
          static_cast<std::size_t>(pos_[3 * i + 1] * kMesh), kMesh - 1);
      const auto gz = std::min<std::size_t>(
          static_cast<std::size_t>(pos_[3 * i + 2] * kMesh), kMesh - 1);
      mesh_[(gx * kMesh + gy) * kMesh + gz] += 1.0;
    }
    double smoothed = 0.0;
    constexpr std::size_t kSweeps = 10;
    const sim::vtime_t per_sweep =
        scaled(kPmKernelSec / kSweeps, params_.time_scale);
    for (std::size_t s = 0; s < kSweeps; ++s) {
      for (std::size_t i = 1; i + 1 < mesh_.size(); ++i) {
        mesh_[i] = 0.25 * mesh_[i - 1] + 0.5 * mesh_[i] + 0.25 * mesh_[i + 1];
        smoothed += mesh_[i];
      }
      eng.loop_tick();
      eng.work(per_sweep);
    }
    sink_.consume(smoothed);
  }

  void force_update_node_recursive(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "force_update_node_recursive");
    // Refresh tree-node multipoles bottom-up (proxy: per-cell centers of
    // mass from the domain grid counts).
    double moment = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      moment += static_cast<double>(counts_[i]) * static_cast<double>(i);
    }
    sink_.consume(moment);
    eng.work(scaled(kNodeUpdateSec * 12, params_.time_scale));
  }

  void force_treeevaluate_shortrange(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "force_treeevaluate_shortrange");
    // Short-range gravity against the coarse-grid cells (a stand-in for
    // the Barnes-Hut opening-criterion walk): every particle interacts
    // with nearby cell centers of mass.
    constexpr std::size_t kGrid = 8;
    const std::size_t stride = std::max<std::size_t>(1, npart_ / 256);
    for (std::size_t i = 0; i < npart_; i += stride) {
      double ax = 0.0, ay = 0.0, az = 0.0;
      for (std::size_t c = 0; c < counts_.size(); c += 7) {
        const double m = static_cast<double>(counts_[c]);
        if (m == 0.0) continue;
        const double cx =
            (static_cast<double>(c / (kGrid * kGrid)) + 0.5) / kGrid;
        const double cy =
            (static_cast<double>((c / kGrid) % kGrid) + 0.5) / kGrid;
        const double cz = (static_cast<double>(c % kGrid) + 0.5) / kGrid;
        const double dx = cx - pos_[3 * i];
        const double dy = cy - pos_[3 * i + 1];
        const double dz = cz - pos_[3 * i + 2];
        const double r2 = dx * dx + dy * dy + dz * dz + 1e-3;
        const double inv = m / (r2 * std::sqrt(r2));
        ax += dx * inv;
        ay += dy * inv;
        az += dz * inv;
      }
      acc_[3 * i] = ax;
      acc_[3 * i + 1] = ay;
      acc_[3 * i + 2] = az;
    }
    eng.loop_tick();
    eng.work(scaled(kTreeForceSec, params_.time_scale));
    sink_.consume(acc_[0]);
  }

  void advance_and_find_timesteps(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "advance_and_find_timesteps");
    constexpr double dt = 1e-3;
    for (std::size_t i = 0; i < npart_ * 3; ++i) {
      vel_[i] += dt * acc_[i];
    }
    eng.work(scaled(kAdvanceSec, params_.time_scale));
  }

  AppParams params_;
  std::size_t npart_ = 0;
  std::vector<double> pos_;
  std::vector<double> vel_;
  std::vector<double> acc_;
  std::vector<std::size_t> counts_;
  std::vector<double> mesh_;
  Blackhole sink_;
};

}  // namespace

std::unique_ptr<MiniApp> make_gadget(const AppParams& params) {
  return std::make_unique<Gadget>(params);
}

}  // namespace incprof::apps
