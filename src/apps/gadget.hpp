// Gadget2-style cosmological N-body/SPH simulation (paper, Section
// VI-E): a timestep-driven loop with four main calls per step
// (find_next_sync_point_and_drift, domain_decomposition,
// compute_accelerations, advance_and_find_timesteps), where the tree
// force evaluation dominates and a particle-mesh kernel recurs every N
// steps. The paper's point about this app — steps complete in well under
// the one-second profiling interval, so interval-level phase detection
// struggles — is preserved by the timing constants. Function names match
// Table VI.
#pragma once

#include "apps/miniapp.hpp"

namespace incprof::apps {

/// Creates the Gadget2-style workload.
std::unique_ptr<MiniApp> make_gadget(const AppParams& params);

}  // namespace incprof::apps
