#include "apps/workload_common.hpp"

#include <cmath>

namespace incprof::apps {

void Blackhole::consume(double v) noexcept {
  // Keep the accumulator bounded: fold the value through fmod so long
  // runs cannot overflow to inf (which would make checksums useless).
  if (std::isfinite(v)) {
    acc_ = std::fmod(acc_ * 1.000000119 + v, 1e12);
  }
  bits_ ^= bits_ << 13;
  bits_ ^= bits_ >> 7;
  bits_ ^= bits_ << 17;
}

void Blackhole::consume_u64(std::uint64_t v) noexcept {
  consume(static_cast<double>(v & 0xffffffu));
}

sim::vtime_t scaled(double nominal_sec, double time_scale) noexcept {
  const double ns = nominal_sec * time_scale * 1e9;
  return ns < 1.0 ? 1 : static_cast<sim::vtime_t>(ns);
}

}  // namespace incprof::apps
