#include "apps/mdlj.hpp"

#include "apps/workload_common.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace incprof::apps {

namespace {

// Virtual-time budget (time_scale = 1), shaped to the paper's 307-second
// LAMMPS metal/LJ run and Table V: PairLJCut::compute dominates (~90 % of
// execution split by the clustering into two phases), NPairHalf::build
// runs periodically, and Velocity::create appears only at startup. The
// per-step pair cost drifts upward after equilibration, which is what
// separates the early and late compute-dominated clusters.
constexpr double kVelocityCreateSec = 2.6;
constexpr std::size_t kTimesteps = 290;
constexpr double kPairSecEarly = 0.80;
constexpr double kPairSecLate = 0.98;
constexpr std::size_t kEquilibrationStep = 150;
constexpr std::size_t kRebuildEvery = 10;
constexpr double kRebuildSec = 0.85;
constexpr double kIntegrateSec = 0.08;

// EAM mode: the per-step budget splits across the three EAM passes
// instead of one LJ kernel.
constexpr double kEamDensitySec = 0.34;
constexpr double kEamEmbedSec = 0.16;
constexpr double kEamForceSec = 0.44;

/// Force model selector for the two LAMMPS-style modes.
enum class ForceModel { kLennardJones, kEam };

class MdLj final : public MiniApp {
 public:
  explicit MdLj(const AppParams& params,
                ForceModel model = ForceModel::kLennardJones)
      : params_(params), model_(model) {
    const double cs = std::max(0.05, params_.compute_scale);
    natoms_ = std::max<std::size_t>(64,
                                    static_cast<std::size_t>(400.0 * cs));
    box_ = std::cbrt(static_cast<double>(natoms_) / 0.8);  // density 0.8
    cutoff_ = 2.5;
  }

  std::string name() const override {
    return model_ == ForceModel::kLennardJones ? "lammps" : "lammps-eam";
  }
  double nominal_runtime_sec() const override { return 307.0; }
  std::size_t paper_ranks() const override { return 16; }
  std::size_t paper_phases() const override { return 4; }

  std::vector<core::ManualSite> manual_sites() const override {
    if (model_ == ForceModel::kEam) {
      return {{"PairEAM_compute", core::InstType::kBody},
              {"NPairHalf_build", core::InstType::kBody}};
    }
    // Table V's manual selection.
    return {{"PairLJCut_compute", core::InstType::kBody},
            {"NPairHalf_build", core::InstType::kBody}};
  }

  double checksum() const override { return sink_.value(); }

  void run(sim::ExecutionEngine& eng) override {
    velocity_create(eng);
    for (std::size_t step = 0; step < kTimesteps; ++step) {
      if (step % kRebuildEvery == 0) npair_half_build(eng);
      if (model_ == ForceModel::kLennardJones) {
        pair_lj_cut_compute(eng, step);
      } else {
        pair_eam_compute(eng, step);
      }
      verlet_integrate(eng);
    }
  }

 private:
  // --- setup -----------------------------------------------------------

  void velocity_create(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "Velocity_create");
    util::Rng rng(0x6d646c6au);
    pos_.assign(natoms_ * 3, 0.0);
    vel_.assign(natoms_ * 3, 0.0);
    force_.assign(natoms_ * 3, 0.0);
    // Lattice positions + Maxwell-Boltzmann velocities, in passes with
    // loop ticks so the 2.6 s init spans interval boundaries.
    const std::size_t side = static_cast<std::size_t>(
        std::ceil(std::cbrt(static_cast<double>(natoms_))));
    constexpr std::size_t kPasses = 13;
    const sim::vtime_t per_pass =
        scaled(kVelocityCreateSec / kPasses, params_.time_scale);
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
      for (std::size_t i = pass; i < natoms_; i += kPasses) {
        const double spacing = box_ / static_cast<double>(side);
        pos_[3 * i + 0] = spacing * static_cast<double>(i % side);
        pos_[3 * i + 1] = spacing * static_cast<double>((i / side) % side);
        pos_[3 * i + 2] = spacing * static_cast<double>(i / (side * side));
        for (int d = 0; d < 3; ++d) {
          vel_[3 * i + d] = rng.next_gaussian();
        }
      }
      eng.loop_tick();
      eng.work(per_pass);
    }
    sink_.consume(vel_[0]);
  }

  // --- neighbor list -----------------------------------------------------

  void npair_half_build(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "NPairHalf_build");
    // Real O(n^2)-with-cutoff half list (i < j), rebuilt in passes so
    // the rebuild spans virtual time with loop ticks.
    pairs_.clear();
    const double cut2 = cutoff_ * cutoff_ * 1.21;  // skin factor
    constexpr std::size_t kPasses = 4;
    const sim::vtime_t per_pass =
        scaled(kRebuildSec / kPasses, params_.time_scale);
    for (std::size_t pass = 0; pass < kPasses; ++pass) {
      for (std::size_t i = pass; i < natoms_; i += kPasses) {
        for (std::size_t j = i + 1; j < natoms_; ++j) {
          if (dist2(i, j) <= cut2) pairs_.emplace_back(i, j);
        }
      }
      eng.loop_tick();
      eng.work(per_pass);
    }
    sink_.consume(static_cast<double>(pairs_.size()));
  }

  // --- force + integration --------------------------------------------

  void pair_lj_cut_compute(sim::ExecutionEngine& eng, std::size_t step) {
    sim::ScopedFunction f(eng, "PairLJCut_compute");
    std::fill(force_.begin(), force_.end(), 0.0);
    const double cut2 = cutoff_ * cutoff_;
    double energy = 0.0;
    for (const auto& [i, j] : pairs_) {
      const double r2 = dist2(i, j);
      if (r2 > cut2 || r2 <= 1e-12) continue;
      const double inv2 = 1.0 / r2;
      const double inv6 = inv2 * inv2 * inv2;
      const double fmag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
      energy += 4.0 * inv6 * (inv6 - 1.0);
      for (int d = 0; d < 3; ++d) {
        const double dr = delta(i, j, d);
        force_[3 * i + d] += fmag * dr;
        force_[3 * j + d] -= fmag * dr;
      }
    }
    sink_.consume(energy);
    const double sec =
        step < kEquilibrationStep ? kPairSecEarly : kPairSecLate;
    // The pair compute is one long kernel; split its cost over a few
    // chunks so sampling lands inside it rather than at its edges.
    constexpr std::size_t kChunks = 8;
    for (std::size_t c = 0; c < kChunks; ++c) {
      eng.loop_tick();
      eng.work(scaled(sec / kChunks, params_.time_scale));
    }
  }

  // EAM: density accumulation, embedding-energy evaluation, then the
  // pair-force pass using the embedding derivatives. Each pass is a real
  // sweep over the half list / atoms.
  void pair_eam_compute(sim::ExecutionEngine& eng, std::size_t step) {
    sim::ScopedFunction f(eng, "PairEAM_compute");
    pair_eam_density(eng);
    pair_eam_embed(eng, step);
    pair_eam_force(eng, step);
  }

  void pair_eam_density(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "PairEAM_density");
    rho_.assign(natoms_, 0.0);
    const double cut2 = cutoff_ * cutoff_;
    for (const auto& [i, j] : pairs_) {
      const double r2 = dist2(i, j);
      if (r2 > cut2 || r2 <= 1e-12) continue;
      // Exponentially decaying electron density contribution.
      const double contrib = std::exp(-1.7 * std::sqrt(r2));
      rho_[i] += contrib;
      rho_[j] += contrib;
    }
    constexpr std::size_t kChunks = 4;
    for (std::size_t c = 0; c < kChunks; ++c) {
      eng.loop_tick();
      eng.work(scaled(kEamDensitySec / kChunks, params_.time_scale));
    }
  }

  void pair_eam_embed(sim::ExecutionEngine& eng, std::size_t step) {
    sim::ScopedFunction f(eng, "PairEAM_embed");
    double energy = 0.0;
    fprime_.resize(natoms_);
    for (std::size_t i = 0; i < natoms_; ++i) {
      // F(rho) = -sqrt(rho): the classic EAM embedding form.
      const double rho = std::max(rho_[i], 1e-12);
      energy += -std::sqrt(rho);
      fprime_[i] = -0.5 / std::sqrt(rho);
    }
    sink_.consume(energy + static_cast<double>(step));
    eng.loop_tick();
    eng.work(scaled(kEamEmbedSec, params_.time_scale));
  }

  void pair_eam_force(sim::ExecutionEngine& eng, std::size_t step) {
    sim::ScopedFunction f(eng, "PairEAM_force");
    std::fill(force_.begin(), force_.end(), 0.0);
    const double cut2 = cutoff_ * cutoff_;
    for (const auto& [i, j] : pairs_) {
      const double r2 = dist2(i, j);
      if (r2 > cut2 || r2 <= 1e-12) continue;
      const double r = std::sqrt(r2);
      // d(rho)/dr folded through both embedding derivatives, plus a
      // short-range repulsive pair term.
      const double drho = -1.7 * std::exp(-1.7 * r);
      const double fmag =
          -((fprime_[i] + fprime_[j]) * drho - 2.0 / (r2 * r2)) / r;
      for (int d = 0; d < 3; ++d) {
        const double dr = delta(i, j, d);
        force_[3 * i + d] += fmag * dr;
        force_[3 * j + d] -= fmag * dr;
      }
    }
    sink_.consume(force_[0]);
    const double drift = step < kEquilibrationStep ? 1.0 : 1.12;
    constexpr std::size_t kChunks = 6;
    for (std::size_t c = 0; c < kChunks; ++c) {
      eng.loop_tick();
      eng.work(scaled(kEamForceSec * drift / kChunks, params_.time_scale));
    }
  }

  void verlet_integrate(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "Verlet_run");
    constexpr double dt = 0.002;
    for (std::size_t i = 0; i < natoms_ * 3; ++i) {
      vel_[i] += dt * force_[i];
      pos_[i] += dt * vel_[i];
      // Periodic wrap.
      if (pos_[i] < 0.0) pos_[i] += box_;
      if (pos_[i] >= box_) pos_[i] -= box_;
    }
    eng.work(scaled(kIntegrateSec, params_.time_scale));
  }

  double delta(std::size_t i, std::size_t j, int d) const noexcept {
    double dr = pos_[3 * i + d] - pos_[3 * j + d];
    // Minimum image.
    if (dr > box_ / 2) dr -= box_;
    if (dr < -box_ / 2) dr += box_;
    return dr;
  }

  double dist2(std::size_t i, std::size_t j) const noexcept {
    double s = 0.0;
    for (int d = 0; d < 3; ++d) {
      const double dr = delta(i, j, d);
      s += dr * dr;
    }
    return s;
  }

  AppParams params_;
  ForceModel model_;
  std::size_t natoms_ = 0;
  double box_ = 0.0;
  double cutoff_ = 0.0;
  std::vector<double> pos_;
  std::vector<double> vel_;
  std::vector<double> force_;
  std::vector<double> rho_;
  std::vector<double> fprime_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs_;
  Blackhole sink_;
};

}  // namespace

std::unique_ptr<MiniApp> make_mdlj(const AppParams& params) {
  return std::make_unique<MdLj>(params, ForceModel::kLennardJones);
}

std::unique_ptr<MiniApp> make_mdlj_eam(const AppParams& params) {
  return std::make_unique<MdLj>(params, ForceModel::kEam);
}

}  // namespace incprof::apps
