#include "apps/miniapp.hpp"

#include "apps/gadget.hpp"
#include "apps/graph500.hpp"
#include "apps/mdlj.hpp"
#include "apps/minife.hpp"
#include "apps/miniamr.hpp"

#include <stdexcept>

namespace incprof::apps {

std::unique_ptr<MiniApp> make_app(const std::string& name,
                                  const AppParams& params) {
  if (name == "graph500") return make_graph500(params);
  if (name == "minife") return make_minife(params);
  if (name == "miniamr") return make_miniamr(params);
  if (name == "lammps") return make_mdlj(params);
  if (name == "lammps-eam") return make_mdlj_eam(params);
  if (name == "gadget") return make_gadget(params);
  throw std::invalid_argument("make_app: unknown app '" + name + "'");
}

std::vector<std::string> app_names() {
  return {"graph500", "minife", "miniamr", "lammps", "gadget"};
}

std::vector<std::string> extended_app_names() {
  auto names = app_names();
  names.push_back("lammps-eam");
  return names;
}

}  // namespace incprof::apps
