// LAMMPS-style molecular dynamics with the Lennard-Jones force model
// (paper, Section VI-D): velocity initialization, then a Verlet timestep
// loop dominated by the LJ pair-force computation, with periodic
// half-neighbor-list rebuilds. Function names match Table V (C++ scope
// separators rendered as '_' so the names survive the flat-profile text
// round trip unambiguously).
#pragma once

#include "apps/miniapp.hpp"

namespace incprof::apps {

/// Creates the LAMMPS-style LJ workload (the paper's evaluated mode).
std::unique_ptr<MiniApp> make_mdlj(const AppParams& params);

/// Creates the EAM-mode variant ("lammps-eam"). The paper notes that
/// "large multi-mode applications like LAMMPS should really be thought
/// of as a collection of related applications, each having unique but
/// related phase behavior" (Section VI-D); this second force model
/// exercises that: the timestep loop is the same shape, but the hot
/// functions (density pass, embedding energy, force pass) differ, so
/// phase discovery must find a different-but-related site set.
std::unique_ptr<MiniApp> make_mdlj_eam(const AppParams& params);

}  // namespace incprof::apps
