// MiniAMR-style adaptive-mesh-refinement proxy (paper, Section VI-C).
// A stencil computation sweeps over a block-structured mesh; periodic
// communication steps exchange block faces (pack_block/unpack_block), and
// a mid-run refinement event allocates new blocks as an object moves
// through the mesh. Function names match Table IV.
#pragma once

#include "apps/miniapp.hpp"

namespace incprof::apps {

/// Creates the MiniAMR workload.
std::unique_ptr<MiniApp> make_miniamr(const AppParams& params);

}  // namespace incprof::apps
