#include "apps/minife.hpp"

#include "apps/workload_common.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace incprof::apps {

namespace {

// Virtual-time budget (time_scale = 1), shaped to the paper's 617-second
// run and Table III's per-phase shares: structure generation ~5 s,
// matrix initialization ~60 s, element assembly ~120 s
// (sum_in_symm_elem_matrix-dominated, many calls per interval), Dirichlet
// conditions ~27 s, local-matrix setup ~4 s, then ~400 s of CG whose
// internal kernel mix shifts partway through (the paper's data shows two
// distinct cg_solve phases).
constexpr double kGenStructureSec = 5.0;
constexpr double kInitMatrixSec = 60.0;
constexpr double kAssemblySec = 120.0;
constexpr double kDirichletSec = 27.0;
constexpr double kLocalMatrixSec = 4.0;
constexpr std::size_t kCgIters = 790;
constexpr double kCgIterSec = 0.506;  // ~400 s of solve
constexpr std::size_t kAssemblyCallsPerSec = 200;

class MiniFE final : public MiniApp {
 public:
  explicit MiniFE(const AppParams& params) : params_(params) {
    const double cs = std::max(0.05, params_.compute_scale);
    // Structured nx*ny*nz node grid; 7-point stencil operator.
    n_ = std::max<std::size_t>(6, static_cast<std::size_t>(20.0 * std::cbrt(cs)));
    nrows_ = n_ * n_ * n_;
  }

  std::string name() const override { return "minife"; }
  double nominal_runtime_sec() const override { return 617.0; }
  std::size_t paper_ranks() const override { return 16; }
  std::size_t paper_phases() const override { return 5; }

  std::vector<core::ManualSite> manual_sites() const override {
    // Table III's manual selection.
    return {{"cg_solve", core::InstType::kLoop},
            {"perform_elem_loop", core::InstType::kLoop},
            {"init_matrix", core::InstType::kLoop},
            {"impose_dirichlet", core::InstType::kLoop},
            {"make_local_matrix", core::InstType::kLoop}};
  }

  double checksum() const override { return sink_.value(); }

  void run(sim::ExecutionEngine& eng) override {
    generate_matrix_structure(eng);
    init_matrix(eng);
    perform_elem_loop(eng);
    impose_dirichlet(eng);
    make_local_matrix(eng);
    cg_solve(eng);
  }

 private:
  // --- kernel 1: mesh / matrix structure -----------------------------

  void generate_matrix_structure(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "generate_matrix_structure");
    row_offsets_.assign(nrows_ + 1, 0);
    cols_.clear();
    // 7-point stencil sparsity.
    // Exactly kTicks work chunks regardless of grid size: the virtual
    // timeline must not depend on compute_scale.
    constexpr std::size_t kTicks = 10;
    const sim::vtime_t per_tick =
        scaled(kGenStructureSec / kTicks, params_.time_scale);
    for (std::size_t t = 0; t < kTicks; ++t) {
      const std::size_t lo = t * nrows_ / kTicks;
      const std::size_t hi = (t + 1) * nrows_ / kTicks;
      for (std::size_t r = lo; r < hi; ++r) {
        const auto [x, y, z] = coords(r);
        auto add = [&](std::size_t c) { cols_.push_back(c); };
        if (z > 0) add(r - n_ * n_);
        if (y > 0) add(r - n_);
        if (x > 0) add(r - 1);
        add(r);
        if (x + 1 < n_) add(r + 1);
        if (y + 1 < n_) add(r + n_);
        if (z + 1 < n_) add(r + n_ * n_);
        row_offsets_[r + 1] = cols_.size();
      }
      eng.loop_tick();
      eng.work(per_tick);
    }
    vals_.assign(cols_.size(), 0.0);
    sink_.consume(static_cast<double>(cols_.size()));
  }

  void init_matrix(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "init_matrix");
    constexpr std::size_t kTicks = 60;
    const sim::vtime_t per_tick =
        scaled(kInitMatrixSec / kTicks, params_.time_scale);
    for (std::size_t t = 0; t < kTicks; ++t) {
      const std::size_t lo = t * nrows_ / kTicks;
      const std::size_t hi = (t + 1) * nrows_ / kTicks;
      for (std::size_t r = lo; r < hi; ++r) {
        for (std::size_t e = row_offsets_[r]; e < row_offsets_[r + 1];
             ++e) {
          vals_[e] = cols_[e] == r ? 6.0 : -1.0;
        }
      }
      eng.loop_tick();
      eng.work(per_tick);
    }
    b_.assign(nrows_, 1.0);
    x_.assign(nrows_, 0.0);
  }

  // --- kernel 2: assembly --------------------------------------------

  void perform_elem_loop(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "perform_elem_loop");
    const std::size_t total_calls = static_cast<std::size_t>(
        kAssemblySec * kAssemblyCallsPerSec);
    const sim::vtime_t per_call = scaled(
        kAssemblySec / static_cast<double>(total_calls),
        params_.time_scale);
    const std::size_t nelems = (n_ - 1) * (n_ - 1) * (n_ - 1);
    for (std::size_t c = 0; c < total_calls; ++c) {
      sum_in_symm_elem_matrix(eng, c % nelems, per_call);
      eng.loop_tick();
    }
  }

  void sum_in_symm_elem_matrix(sim::ExecutionEngine& eng,
                               std::size_t elem, sim::vtime_t cost) {
    sim::ScopedFunction f(eng, "sum_in_symm_elem_matrix");
    // Real 8x8 symmetric hex-element diffusion matrix, summed into the
    // global operator's diagonal neighborhood.
    const std::size_t base = elem % nrows_;
    double acc = 0.0;
    for (int i = 0; i < 8; ++i) {
      for (int j = i; j < 8; ++j) {
        const double kij =
            (i == j ? 8.0 : -1.0) / (1.0 + 0.01 * static_cast<double>(i + j));
        acc += kij;
      }
    }
    vals_[row_offsets_[base]] += acc * 1e-9;
    sink_.consume(acc);
    eng.work(cost);
  }

  // --- boundary + parallel setup --------------------------------------

  void impose_dirichlet(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "impose_dirichlet");
    constexpr std::size_t kTicks = 27;
    const sim::vtime_t per_tick =
        scaled(kDirichletSec / kTicks, params_.time_scale);
    for (std::size_t t = 0; t < kTicks; ++t) {
      // Zero rows on the z=0 face, set diagonal, adjust rhs.
      for (std::size_t r = t; r < n_ * n_; r += kTicks) {
        for (std::size_t e = row_offsets_[r]; e < row_offsets_[r + 1];
             ++e) {
          vals_[e] = cols_[e] == r ? 1.0 : 0.0;
        }
        b_[r] = 0.0;
      }
      eng.loop_tick();
      eng.work(per_tick);
    }
  }

  void make_local_matrix(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "make_local_matrix");
    constexpr std::size_t kTicks = 8;
    const sim::vtime_t per_tick =
        scaled(kLocalMatrixSec / kTicks, params_.time_scale);
    std::size_t externals = 0;
    for (std::size_t t = 0; t < kTicks; ++t) {
      for (std::size_t r = t; r < nrows_; r += kTicks) {
        for (std::size_t e = row_offsets_[r]; e < row_offsets_[r + 1];
             ++e) {
          if (cols_[e] > r + n_) ++externals;
        }
      }
      eng.loop_tick();
      eng.work(per_tick);
    }
    sink_.consume(static_cast<double>(externals));
  }

  // --- kernel 3+4: CG solve with vector ops ----------------------------

  void cg_solve(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "cg_solve");
    std::vector<double> r = b_, p = b_, ap(nrows_, 0.0);
    double rr = dot_raw(r, r);

    for (std::size_t it = 0; it < kCgIters; ++it) {
      // The kernel mix shifts partway through the solve (heavier vector
      // operations late), which is what splits CG across two k-means
      // clusters, as the paper's Table III shows.
      const bool late = it >= kCgIters * 3 / 5;
      const double matvec_share = late ? 0.40 : 0.62;
      const double dot_share = late ? 0.22 : 0.14;
      const double waxpby_share = late ? 0.28 : 0.14;
      // Remaining share is cg_solve's own bookkeeping (self time), which
      // keeps cg_solve visible to the sampler every interval.
      const double self_share =
          1.0 - matvec_share - dot_share - waxpby_share;

      matvec(eng, p, ap, scaled(kCgIterSec * matvec_share,
                                params_.time_scale));
      const double pap =
          dot(eng, p, ap,
              scaled(kCgIterSec * dot_share / 2, params_.time_scale));
      const double alpha = pap != 0.0 ? rr / pap : 0.0;
      waxpby(eng, x_, 1.0, x_, alpha, p,
             scaled(kCgIterSec * waxpby_share / 2, params_.time_scale));
      waxpby(eng, r, 1.0, r, -alpha, ap,
             scaled(kCgIterSec * waxpby_share / 2, params_.time_scale));
      const double rr_new =
          dot(eng, r, r,
              scaled(kCgIterSec * dot_share / 2, params_.time_scale));
      const double beta = rr != 0.0 ? rr_new / rr : 0.0;
      for (std::size_t i = 0; i < nrows_; ++i) {
        p[i] = r[i] + beta * p[i];
      }
      rr = rr_new;
      eng.loop_tick();
      eng.work(scaled(kCgIterSec * self_share, params_.time_scale));
    }
    sink_.consume(rr);
  }

  void matvec(sim::ExecutionEngine& eng, const std::vector<double>& v,
              std::vector<double>& out, sim::vtime_t cost) {
    sim::ScopedFunction f(eng, "matvec");
    for (std::size_t r = 0; r < nrows_; ++r) {
      double s = 0.0;
      for (std::size_t e = row_offsets_[r]; e < row_offsets_[r + 1]; ++e) {
        s += vals_[e] * v[cols_[e]];
      }
      out[r] = s;
    }
    eng.work(cost);
  }

  double dot(sim::ExecutionEngine& eng, const std::vector<double>& a,
             const std::vector<double>& b, sim::vtime_t cost) {
    sim::ScopedFunction f(eng, "dot");
    const double s = dot_raw(a, b);
    eng.work(cost);
    return s;
  }

  static double dot_raw(const std::vector<double>& a,
                        const std::vector<double>& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
  }

  void waxpby(sim::ExecutionEngine& eng, std::vector<double>& w,
              double alpha, const std::vector<double>& x, double beta,
              const std::vector<double>& y, sim::vtime_t cost) {
    sim::ScopedFunction f(eng, "waxpby");
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] = alpha * x[i] + beta * y[i];
    }
    eng.work(cost);
  }

  std::tuple<std::size_t, std::size_t, std::size_t> coords(
      std::size_t r) const noexcept {
    return {r % n_, (r / n_) % n_, r / (n_ * n_)};
  }

  AppParams params_;
  std::size_t n_ = 0;
  std::size_t nrows_ = 0;
  std::vector<std::size_t> row_offsets_;
  std::vector<std::size_t> cols_;
  std::vector<double> vals_;
  std::vector<double> b_;
  std::vector<double> x_;
  Blackhole sink_;
};

}  // namespace

std::unique_ptr<MiniApp> make_minife(const AppParams& params) {
  return std::make_unique<MiniFE>(params);
}

}  // namespace incprof::apps
