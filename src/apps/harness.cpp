#include "apps/harness.hpp"

#include "core/report.hpp"
#include "prof/callgraph_profiler.hpp"
#include "prof/collector.hpp"
#include "prof/sampler.hpp"

namespace incprof::apps {

namespace {
sim::ExecutionEngine make_engine(const RunConfig& cfg) {
  sim::EngineConfig ec;
  ec.sample_period_ns = cfg.sample_period_ns;
  ec.work_jitter_rel = cfg.jitter;
  ec.seed = cfg.seed;
  return sim::ExecutionEngine(ec);
}
}  // namespace

ProfiledRun run_profiled(MiniApp& app, const RunConfig& cfg) {
  sim::ExecutionEngine eng = make_engine(cfg);
  prof::SamplingProfiler profiler(eng);
  prof::CallGraphProfiler callgraph(eng);
  prof::CollectorConfig cc;
  cc.interval_ns = cfg.interval_ns;
  prof::IncProfCollector collector(profiler, cc);
  eng.add_listener(&profiler);
  eng.add_listener(&callgraph);
  eng.add_listener(&collector);

  app.run(eng);
  eng.finish();

  ProfiledRun out;
  out.snapshots = collector.snapshots();
  out.callgraph = callgraph.snapshot(
      static_cast<std::uint32_t>(out.snapshots.size()), eng.now());
  out.runtime_ns = eng.now();
  out.checksum = app.checksum();
  return out;
}

sim::vtime_t run_baseline(MiniApp& app, const RunConfig& cfg) {
  sim::ExecutionEngine eng = make_engine(cfg);
  app.run(eng);
  eng.finish();
  return eng.now();
}

HeartbeatRun run_with_heartbeats(
    MiniApp& app, const std::vector<ekg::InstrumentedSite>& sites,
    const RunConfig& cfg) {
  sim::ExecutionEngine eng = make_engine(cfg);
  ekg::MemorySink sink;
  ekg::EkgConfig ekg_cfg;
  ekg_cfg.interval_ns = cfg.interval_ns;
  ekg::AppEkg ekg(ekg_cfg, sink);
  ekg::EkgEngineAdapter adapter(ekg, eng, sites);
  eng.add_listener(&adapter);

  app.run(eng);
  eng.finish();

  HeartbeatRun out;
  out.records = sink.records();
  out.runtime_ns = eng.now();
  const auto total_intervals = static_cast<std::size_t>(
      (eng.now() + cfg.interval_ns - 1) / cfg.interval_ns);
  out.series = ekg::HeartbeatSeries::from_records(out.records,
                                                  total_intervals);
  for (const auto& site : sites) {
    out.series.set_label(
        site.hb_id,
        site.function + "/" +
            (site.kind == ekg::SiteKind::kBody ? "body" : "loop"));
  }
  return out;
}

std::vector<ekg::InstrumentedSite> to_ekg_sites(
    const core::SiteSelectionResult& result) {
  const auto hb_ids = core::assign_heartbeat_ids(result);
  std::vector<ekg::InstrumentedSite> sites;
  for (const auto& [key, id] : hb_ids) {
    ekg::InstrumentedSite s;
    s.function = key.first;
    s.kind = key.second == core::InstType::kBody ? ekg::SiteKind::kBody
                                                 : ekg::SiteKind::kLoop;
    s.hb_id = id;
    sites.push_back(std::move(s));
  }
  return sites;
}

std::vector<ekg::InstrumentedSite> to_ekg_sites(
    const std::vector<core::ManualSite>& manual) {
  std::vector<ekg::InstrumentedSite> sites;
  ekg::HeartbeatId next = 1;
  for (const auto& m : manual) {
    ekg::InstrumentedSite s;
    s.function = m.function;
    s.kind = m.type == core::InstType::kBody ? ekg::SiteKind::kBody
                                             : ekg::SiteKind::kLoop;
    s.hb_id = next++;
    sites.push_back(std::move(s));
  }
  return sites;
}

core::PhaseAnalysis profile_and_analyze(
    MiniApp& app, const RunConfig& run_cfg,
    const core::PipelineConfig& pipe_cfg) {
  const ProfiledRun run = run_profiled(app, run_cfg);
  return core::analyze_snapshots(run.snapshots, pipe_cfg);
}

}  // namespace incprof::apps
