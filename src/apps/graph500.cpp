#include "apps/graph500.hpp"

#include "apps/workload_common.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace incprof::apps {

namespace {

// Virtual-time budget (time_scale = 1), chosen to land near the paper's
// 188-second uninstrumented run with the same internal proportions as
// Table II: edge generation ~20 s (make_one_edge-dominated, many calls
// per interval), CSR build ~3 s, then 16 trials of ~1.65 s BFS plus
// ~8.6 s validation.
constexpr double kEdgeGenSec = 20.0;

constexpr std::size_t kNumTrials = 16;
constexpr double kBfsSec = 3.6;
constexpr double kValidateSec = 5.9;
// Root sampling between trials runs outside any profiled function, like
// the untracked glue code of the real benchmark; its virtual time shifts
// each trial's alignment against the 1-second interval grid.
constexpr double kRootSampleSec = 0.85;
constexpr std::size_t kEdgeGenCalls = 10'000;

class Graph500 final : public MiniApp {
 public:
  explicit Graph500(const AppParams& params) : params_(params) {
    // Real problem size: vertices/edges of the in-memory graph the BFS
    // actually traverses.
    const double cs = std::max(0.05, params_.compute_scale);
    log_n_ = 13;
    nverts_ = static_cast<std::size_t>(
        std::max(64.0, std::ldexp(1.0, log_n_) * cs));
    nedges_ = nverts_ * 8;
  }

  std::string name() const override { return "graph500"; }
  double nominal_runtime_sec() const override { return 188.0; }
  std::size_t paper_ranks() const override { return 1; }
  std::size_t paper_phases() const override { return 4; }

  std::vector<core::ManualSite> manual_sites() const override {
    // Table II's manual selection.
    return {{"make_graph_data_structure", core::InstType::kBody},
            {"generate_kronecker_range", core::InstType::kBody},
            {"run_bfs", core::InstType::kBody},
            {"validate_bfs_result", core::InstType::kBody}};
  }

  double checksum() const override { return sink_.value(); }

  void run(sim::ExecutionEngine& eng) override {
    make_graph_data_structure(eng);
    for (std::size_t trial = 0; trial < kNumTrials; ++trial) {
      // Root selection happens in unprofiled glue code (empty shadow
      // stack: the sampler drops these ticks, as gprof does for time
      // outside compiled-with--pg code).
      eng.work(scaled(kRootSampleSec, params_.time_scale));
      const std::size_t root = edges_[trial % edges_.size()].first;
      run_bfs(eng, root);
      validate_bfs_result(eng, root);
    }
  }

 private:
  // --- graph construction -------------------------------------------

  void make_graph_data_structure(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "make_graph_data_structure");
    generate_kronecker_range(eng);
    build_csr(eng);
  }

  void generate_kronecker_range(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "generate_kronecker_range");
    util::Rng rng(0x67726170u);  // fixed: the graph itself is identical
                                 // across ranks, as in the real benchmark
    edges_.clear();
    edges_.reserve(nedges_);
    // Always kEdgeGenCalls calls: the virtual timeline (and thus the
    // interval structure) is independent of the real problem size.
    const std::size_t per_call =
        std::max<std::size_t>(1, (nedges_ + kEdgeGenCalls - 1) /
                                     kEdgeGenCalls);
    const sim::vtime_t cost =
        scaled(kEdgeGenSec / static_cast<double>(kEdgeGenCalls),
               params_.time_scale);
    for (std::size_t c = 0; c < kEdgeGenCalls; ++c) {
      make_one_edge(eng, rng, per_call, cost);
    }
  }

  void make_one_edge(sim::ExecutionEngine& eng, util::Rng& rng,
                     std::size_t count, sim::vtime_t cost) {
    sim::ScopedFunction f(eng, "make_one_edge");
    // R-MAT style recursive quadrant descent per edge: the real Graph500
    // Kronecker generator's per-edge work.
    for (std::size_t e = 0; e < count && edges_.size() < nedges_; ++e) {
      std::size_t u = 0, v = 0;
      for (std::size_t bit = nverts_ / 2; bit >= 1; bit /= 2) {
        const double r = rng.next_double();
        // A=0.57, B=0.19, C=0.19, D=0.05 — Graph500's quadrant weights.
        if (r < 0.57) {
          // top-left: no bits set
        } else if (r < 0.76) {
          v += bit;
        } else if (r < 0.95) {
          u += bit;
        } else {
          u += bit;
          v += bit;
        }
        if (bit == 1) break;
      }
      edges_.emplace_back(u % nverts_, v % nverts_);
      sink_.consume(static_cast<double>(u ^ v));
    }
    eng.work(cost);
  }

  void build_csr(sim::ExecutionEngine& eng) {
    // CSR assembly is cheap relative to generation and search in the
    // original (its symbol never surfaces in the paper's profiles); it
    // contributes real work here but negligible virtual self time.
    offsets_.assign(nverts_ + 1, 0);
    for (const auto& [u, v] : edges_) {
      ++offsets_[u + 1];
      ++offsets_[v + 1];
    }
    for (std::size_t i = 0; i < nverts_; ++i) {
      offsets_[i + 1] += offsets_[i];
    }
    targets_.assign(offsets_.back(), 0);
    std::vector<std::size_t> cursor(offsets_.begin(),
                                    offsets_.end() - 1);
    for (const auto& [u, v] : edges_) {
      targets_[cursor[u]++] = v;
      targets_[cursor[v]++] = u;
    }
    sink_.consume(static_cast<double>(offsets_.back()));
  }

  // --- search + validation ------------------------------------------

  void run_bfs(sim::ExecutionEngine& eng, std::size_t root) {
    sim::ScopedFunction f(eng, "run_bfs");
    parent_.assign(nverts_, kUnvisited);
    parent_[root] = root;
    std::vector<std::size_t> frontier{root};
    std::vector<std::size_t> next;

    // Spread the BFS's virtual budget across its level loop so interval
    // boundaries can fall inside a search (the behaviour that makes the
    // paper's run_bfs show up as both a body and a loop site).
    std::size_t levels = 0;
    std::vector<std::vector<std::size_t>> level_sets;
    while (!frontier.empty()) {
      next.clear();
      for (const std::size_t u : frontier) {
        for (std::size_t e = offsets_[u]; e < offsets_[u + 1]; ++e) {
          const std::size_t v = targets_[e];
          if (parent_[v] == kUnvisited) {
            parent_[v] = u;
            next.push_back(v);
          }
        }
      }
      level_sets.push_back(frontier);
      frontier.swap(next);
      ++levels;
    }
    const sim::vtime_t per_level = scaled(
        kBfsSec / static_cast<double>(std::max<std::size_t>(1, levels)),
        params_.time_scale);
    for (std::size_t l = 0; l < levels; ++l) {
      eng.loop_tick();
      eng.work(per_level);
      sink_.consume(static_cast<double>(level_sets[l].size()));
    }
  }

  void validate_bfs_result(sim::ExecutionEngine& eng, std::size_t root) {
    sim::ScopedFunction f(eng, "validate_bfs_result");
    // Real validation passes over the parent array and edge list (the
    // expensive part of real Graph500 runs), in chunks with virtual cost.
    constexpr std::size_t kChunks = 32;
    const sim::vtime_t per_chunk =
        scaled(kValidateSec / kChunks, params_.time_scale);
    std::size_t bad = 0;
    for (std::size_t c = 0; c < kChunks; ++c) {
      const std::size_t lo = c * edges_.size() / kChunks;
      const std::size_t hi = (c + 1) * edges_.size() / kChunks;
      for (std::size_t e = lo; e < hi; ++e) {
        const auto [u, v] = edges_[e];
        // Both endpoints of every edge must be on the same side of the
        // visited frontier, and parents must be visited.
        const bool uv = parent_[u] != kUnvisited;
        const bool vv = parent_[v] != kUnvisited;
        if (uv != vv) ++bad;
        if (uv && parent_[parent_[u]] == kUnvisited) ++bad;
      }
      eng.loop_tick();
      eng.work(per_chunk);
    }
    sink_.consume(static_cast<double>(bad + root));
  }

  static constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);

  AppParams params_;
  int log_n_ = 0;
  std::size_t nverts_ = 0;
  std::size_t nedges_ = 0;
  std::vector<std::pair<std::size_t, std::size_t>> edges_;
  std::vector<std::size_t> offsets_;
  std::vector<std::size_t> targets_;
  std::vector<std::size_t> parent_;
  Blackhole sink_;
};

}  // namespace

std::unique_ptr<MiniApp> make_graph500(const AppParams& params) {
  return std::make_unique<Graph500>(params);
}

}  // namespace incprof::apps
