// The mini-application suite: C++ re-creations of the five workloads the
// paper evaluates (Section VI). Each app performs real computation (so
// wall-clock overhead measurements mean something) while declaring
// virtual cost through the engine (so the profile timeline matches the
// paper's minutes-long runs deterministically). Function names follow the
// paper's tables so the discovered instrumentation sites can be compared
// directly.
#pragma once

#include "core/report.hpp"
#include "sim/engine.hpp"

#include <memory>
#include <string>
#include <vector>

namespace incprof::apps {

/// Scaling knobs shared by all apps.
struct AppParams {
  /// Multiplies every virtual duration. 1.0 reproduces the paper-scale
  /// run length (minutes of virtual time / hundreds of intervals);
  /// smaller values make quick test runs.
  double time_scale = 1.0;

  /// Multiplies the real computational work (problem sizes). 1.0 is the
  /// default bench size; tests may reduce it.
  double compute_scale = 1.0;
};

/// Interface every workload implements.
class MiniApp {
 public:
  virtual ~MiniApp() = default;

  /// Short identifier (e.g. "graph500").
  virtual std::string name() const = 0;

  /// Paper's Table I uninstrumented runtime for this app, seconds (the
  /// virtual-run target at time_scale = 1).
  virtual double nominal_runtime_sec() const = 0;

  /// Paper's Table I process count for this app.
  virtual std::size_t paper_ranks() const = 0;

  /// Paper's Table I number of phases discovered.
  virtual std::size_t paper_phases() const = 0;

  /// Runs the workload to completion on `eng` (does not call
  /// eng.finish(); the harness owns run lifecycle).
  virtual void run(sim::ExecutionEngine& eng) = 0;

  /// The paper's hand-picked comparison sites for this app.
  virtual std::vector<core::ManualSite> manual_sites() const = 0;

  /// A value derived from the real computation, to keep the optimizer
  /// honest and let tests check determinism of the compute itself.
  virtual double checksum() const = 0;
};

/// Factory for a named app. Throws std::invalid_argument for an unknown
/// name. Known names: graph500, minife, miniamr, lammps, gadget.
std::unique_ptr<MiniApp> make_app(const std::string& name,
                                  const AppParams& params = {});

/// All app names in the paper's Table I order.
std::vector<std::string> app_names();

/// Table I apps plus the extension workloads (currently lammps-eam, the
/// second LAMMPS mode motivating the paper's multi-mode discussion).
std::vector<std::string> extended_app_names();

}  // namespace incprof::apps
