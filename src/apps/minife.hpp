// MiniFE-style implicit finite-element mini-app (paper, Section VI-B).
// Four kernels, as the Mantevo documentation describes: mesh/matrix
// structure generation, sparse-matrix assembly over elements, a
// conjugate-gradient solve with sparse matrix-vector products, and
// supporting vector operations. Function names match Table III.
#pragma once

#include "apps/miniapp.hpp"

namespace incprof::apps {

/// Creates the MiniFE workload.
std::unique_ptr<MiniApp> make_minife(const AppParams& params);

}  // namespace incprof::apps
