#include "apps/miniamr.hpp"

#include "apps/workload_common.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace incprof::apps {

namespace {

// Virtual-time budget (time_scale = 1), shaped to the paper's 459-second
// run and its two discovered phases: a dominant stencil phase
// (check_sum, ~89 % of the execution) and a deviation phase made of the
// large mid-run mesh adaptation (allocate) plus periodic heavy
// communication steps (pack_block / unpack_block).
constexpr std::size_t kTimesteps = 470;
constexpr double kStencilSec = 0.82;       // per timestep, check_sum
constexpr double kSmallCommSec = 0.04;     // per timestep, pack+unpack
constexpr std::size_t kBigCommEvery = 50;  // heavy comm cadence
constexpr double kBigCommPackSec = 1.6;
constexpr double kBigCommUnpackSec = 1.3;
constexpr std::size_t kRefineAtStep = 235;  // mid-run adaptation
constexpr double kRefineSec = 14.0;         // allocate-dominated

class MiniAMR final : public MiniApp {
 public:
  explicit MiniAMR(const AppParams& params) : params_(params) {
    const double cs = std::max(0.05, params_.compute_scale);
    block_dim_ = std::max<std::size_t>(4, static_cast<std::size_t>(
                                              8.0 * std::cbrt(cs)));
    num_blocks_ = 48;
    blocks_.assign(num_blocks_,
                   std::vector<double>(cells_per_block(), 1.0));
  }

  std::string name() const override { return "miniamr"; }
  double nominal_runtime_sec() const override { return 459.0; }
  std::size_t paper_ranks() const override { return 16; }
  std::size_t paper_phases() const override { return 2; }

  std::vector<core::ManualSite> manual_sites() const override {
    // Table IV's manual selection.
    return {{"check_sum", core::InstType::kBody},
            {"stencil_calc", core::InstType::kBody},
            {"comm", core::InstType::kBody}};
  }

  double checksum() const override { return sink_.value(); }

  void run(sim::ExecutionEngine& eng) override {
    for (std::size_t step = 0; step < kTimesteps; ++step) {
      const bool big_comm = step > 0 && step % kBigCommEvery == 0;
      comm(eng, big_comm);
      stencil_calc(eng);
      if (step == kRefineAtStep) refine(eng);
    }
  }

 private:
  std::size_t cells_per_block() const noexcept {
    return block_dim_ * block_dim_ * block_dim_;
  }

  // --- communication ---------------------------------------------------

  void comm(sim::ExecutionEngine& eng, bool big) {
    sim::ScopedFunction f(eng, "comm");
    const double pack_sec = big ? kBigCommPackSec : kSmallCommSec * 0.55;
    const double unpack_sec =
        big ? kBigCommUnpackSec : kSmallCommSec * 0.45;
    // A heavy exchange touches every block several times; a light one a
    // couple of face exchanges.
    const std::size_t rounds = big ? 12 : 2;
    const sim::vtime_t pack_cost =
        scaled(pack_sec / static_cast<double>(rounds), params_.time_scale);
    const sim::vtime_t unpack_cost = scaled(
        unpack_sec / static_cast<double>(rounds), params_.time_scale);
    for (std::size_t r = 0; r < rounds; ++r) {
      pack_block(eng, r % blocks_.size(), pack_cost);
      unpack_block(eng, (r + 1) % blocks_.size(), unpack_cost);
    }
  }

  void pack_block(sim::ExecutionEngine& eng, std::size_t b,
                  sim::vtime_t cost) {
    sim::ScopedFunction f(eng, "pack_block");
    // Copy one face of the block into the message buffer.
    auto& blk = blocks_[b];
    buffer_.resize(block_dim_ * block_dim_);
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
      buffer_[i] = blk[i];
    }
    eng.work(cost);
  }

  void unpack_block(sim::ExecutionEngine& eng, std::size_t b,
                    sim::vtime_t cost) {
    sim::ScopedFunction f(eng, "unpack_block");
    auto& blk = blocks_[b];
    for (std::size_t i = 0; i < buffer_.size() && i < blk.size(); ++i) {
      blk[blk.size() - 1 - i] = 0.5 * (blk[blk.size() - 1 - i] + buffer_[i]);
    }
    eng.work(cost);
  }

  // --- computation -------------------------------------------------------

  void stencil_calc(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "stencil_calc");
    // The paper notes check_sum "is not a function that performs a simple
    // mathematical checksum but rather embodies more involved matrix
    // computations" — here it owns the 7-point sweep plus the reduction.
    check_sum(eng);
  }

  void check_sum(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "check_sum");
    const std::size_t d = block_dim_;
    double total = 0.0;
    const sim::vtime_t per_block = scaled(
        kStencilSec / static_cast<double>(blocks_.size()),
        params_.time_scale);
    for (auto& blk : blocks_) {
      scratch_.assign(blk.size(), 0.0);
      for (std::size_t z = 1; z + 1 < d; ++z) {
        for (std::size_t y = 1; y + 1 < d; ++y) {
          for (std::size_t x = 1; x + 1 < d; ++x) {
            const std::size_t i = (z * d + y) * d + x;
            scratch_[i] = (blk[i] + blk[i - 1] + blk[i + 1] + blk[i - d] +
                           blk[i + d] + blk[i - d * d] + blk[i + d * d]) /
                          7.0;
            total += scratch_[i];
          }
        }
      }
      blk.swap(scratch_);
      eng.work(per_block);
    }
    eng.loop_tick();
    sink_.consume(total);
  }

  // --- adaptation ----------------------------------------------------------

  void refine(sim::ExecutionEngine& eng) {
    sim::ScopedFunction f(eng, "allocate");
    // The moving object crosses a region: split blocks into octants and
    // allocate the children. One long allocation/copy episode.
    constexpr std::size_t kNewBlocks = 24;
    const sim::vtime_t per_block =
        scaled(kRefineSec / kNewBlocks, params_.time_scale);
    for (std::size_t nb = 0; nb < kNewBlocks; ++nb) {
      std::vector<double> child(cells_per_block(), 0.0);
      const auto& parent = blocks_[nb % blocks_.size()];
      for (std::size_t i = 0; i < child.size(); ++i) {
        child[i] = parent[i / 2 % parent.size()];
      }
      blocks_.push_back(std::move(child));
      eng.loop_tick();
      eng.work(per_block);
    }
    // Keep total block count bounded: coarsen the oldest blocks away.
    blocks_.erase(blocks_.begin(), blocks_.begin() + kNewBlocks);
    sink_.consume(static_cast<double>(blocks_.size()));
  }

  AppParams params_;
  std::size_t block_dim_ = 0;
  std::size_t num_blocks_ = 0;
  std::vector<std::vector<double>> blocks_;
  std::vector<double> buffer_;
  std::vector<double> scratch_;
  Blackhole sink_;
};

}  // namespace

std::unique_ptr<MiniApp> make_miniamr(const AppParams& params) {
  return std::make_unique<MiniAMR>(params);
}

}  // namespace incprof::apps
