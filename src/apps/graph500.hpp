// Graph500-style BFS benchmark (paper, Section VI-A). Re-creation of the
// mpi_simple flow of Graph500 2.1.4: Kronecker-style edge generation,
// graph construction, then repeated breadth-first searches each followed
// by result validation. Function names match Table II.
#pragma once

#include "apps/miniapp.hpp"

namespace incprof::apps {

/// Creates the Graph500 workload.
std::unique_ptr<MiniApp> make_graph500(const AppParams& params);

}  // namespace incprof::apps
