#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace incprof::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double population_variance(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) noexcept {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double coeff_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace incprof::util
