#include "util/csv.hpp"

#include <cstdio>

namespace incprof::util {

int CsvDocument::column(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

namespace {
bool needs_quoting(const std::string& s) {
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void write_field(std::ostream& os, const std::string& s) {
  if (!needs_quoting(s)) {
    os << s;
    return;
  }
  os << '"';
  for (char c : s) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}
}  // namespace

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os_ << ',';
    write_field(os_, fields[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::to_field(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string CsvWriter::to_field(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string CsvWriter::to_field(unsigned long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", v);
  return buf;
}

CsvDocument parse_csv(std::string_view text) {
  CsvDocument doc;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;

  std::size_t i = 0;
  const std::size_t n = text.size();
  bool any_in_row = false;
  auto flush_row = [&] {
    row.push_back(std::move(field));
    field.clear();
    if (doc.header.empty() && doc.rows.empty()) {
      doc.header = std::move(row);
    } else {
      doc.rows.push_back(std::move(row));
    }
    row.clear();
    any_in_row = false;
  };

  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      ++i;
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        any_in_row = true;
        ++i;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        any_in_row = true;
        ++i;
        break;
      case '\r':
        ++i;
        break;
      case '\n':
        if (any_in_row || !field.empty() || !row.empty()) flush_row();
        ++i;
        break;
      default:
        field += c;
        any_in_row = true;
        ++i;
        break;
    }
  }
  if (any_in_row || !field.empty() || !row.empty()) flush_row();
  return doc;
}

}  // namespace incprof::util
