#include "util/sparkline.hpp"

#include <algorithm>
#include <cstdio>

namespace incprof::util {

namespace {
// Five intensity levels keep the output pure ASCII (no UTF-8 blocks), so
// it renders identically in logs, CI output and terminals.
constexpr char kLevels[] = {' ', '.', ':', '+', '#'};
constexpr int kNumLevels = 5;
}  // namespace

std::string sparkline(std::span<const double> values, std::size_t width) {
  if (values.empty() || width == 0) return {};
  double maxv = 0.0;
  for (double v : values) maxv = std::max(maxv, v);

  std::string out;
  out.reserve(width);
  const std::size_t n = values.size();
  for (std::size_t col = 0; col < width; ++col) {
    // Average the bucket of samples that maps onto this column.
    const std::size_t lo = col * n / width;
    std::size_t hi = (col + 1) * n / width;
    if (hi <= lo) hi = lo + 1;
    double s = 0.0;
    for (std::size_t i = lo; i < hi && i < n; ++i) s += values[i];
    const double v = s / static_cast<double>(hi - lo);
    int level = 0;
    if (maxv > 0.0 && v > 0.0) {
      level = 1 + static_cast<int>(v / maxv * (kNumLevels - 2) + 0.5);
      level = std::clamp(level, 1, kNumLevels - 1);
    }
    out += kLevels[level];
  }
  return out;
}

void SeriesPlot::add_series(std::string label, std::vector<double> values) {
  series_.push_back({std::move(label), std::move(values)});
}

std::string SeriesPlot::render(std::size_t width) const {
  std::size_t label_w = 0;
  std::size_t n = 0;
  for (const auto& s : series_) {
    label_w = std::max(label_w, s.label.size());
    n = std::max(n, s.values.size());
  }
  std::string out;
  for (const auto& s : series_) {
    out += s.label;
    out += std::string(label_w - s.label.size(), ' ');
    out += " |";
    out += sparkline(s.values, width);
    out += "|\n";
  }
  // X-axis ruler: interval indices at the left and right edges.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%zu", n);
  std::string ruler(label_w, ' ');
  ruler += " |0";
  const std::string right(buf);
  if (width > 1 + right.size()) {
    ruler += std::string(width - 1 - right.size(), ' ');
    ruler += right;
  }
  ruler += "| interval\n";
  out += ruler;
  return out;
}

}  // namespace incprof::util
