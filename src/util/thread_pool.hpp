// Fork-join worker pool for the parallel analysis engine. The design
// goal is *determinism*, not general task scheduling: parallel_for(n, fn)
// runs fn(i) exactly once for every i in [0, n), each index computes an
// independent result into its own slot, and every reduction over those
// slots is performed by the caller in canonical index order afterwards —
// so the outcome is bit-identical to a serial loop regardless of thread
// count or interleaving. The pool is annotated with the repo's
// thread-safety machinery (util::Mutex / INCPROF_GUARDED_BY) so the
// clang analysis and the TSan lane cover it like the daemon.
#pragma once

#include "util/thread_annotations.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace incprof::util {

/// Persistent worker pool executing one indexed fork-join job at a time.
/// Thread roles: any external thread may call parallel_for (concurrent
/// callers are serialized); pool workers only ever run job bodies. A
/// parallel_for issued *from inside* a job body runs inline on the
/// calling worker (no nested fan-out, no deadlock).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. Zero workers is valid and makes every
  /// parallel_for run inline on the caller (the serial engine).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers. No parallel_for may be in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of pool worker threads (the caller participates too, so up
  /// to size() + 1 threads execute a job).
  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) exactly once for each i in [0, n), distributing indices
  /// over the workers plus the calling thread, and returns when all have
  /// completed. Exceptions thrown by fn are captured (first one wins),
  /// remaining indices are skipped, and the exception is rethrown here.
  /// All writes made by fn happen-before the return.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads() noexcept;

  /// Resolves a --threads style request: 0 means hardware_threads().
  static std::size_t resolve(std::size_t requested) noexcept;

  /// Pool for a --threads request, or nullptr when the resolved count is
  /// 1 (serial: no pool, no worker threads, the old code path).
  static std::unique_ptr<ThreadPool> create(std::size_t requested);

 private:
  void worker_loop();
  /// Claims and runs indices of the current job until none remain.
  void run_indices(const std::function<void(std::size_t)>& fn,
                   std::size_t n) noexcept;

  // Serializes concurrent parallel_for callers: acquired first, held for
  // the whole job (lock order: call_mu_ -> mu_; workers take only mu_).
  Mutex call_mu_;

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  /// Current job body; valid from publication until every worker has
  /// reported finished_ for its generation.
  const std::function<void(std::size_t)>* job_fn_
      INCPROF_GUARDED_BY(mu_) = nullptr;
  std::size_t job_n_ INCPROF_GUARDED_BY(mu_) = 0;
  /// Bumped once per job; workers acknowledge each generation exactly
  /// once, so the caller's finished_ wait is a full barrier.
  std::uint64_t generation_ INCPROF_GUARDED_BY(mu_) = 0;
  std::size_t finished_ INCPROF_GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ INCPROF_GUARDED_BY(mu_);
  bool stop_ INCPROF_GUARDED_BY(mu_) = false;

  /// Next unclaimed job index; relaxed fetch_add, slots are disjoint.
  std::atomic<std::size_t> next_{0};
  /// Set on the first job-body exception so the rest of the grid is
  /// drained without running.
  std::atomic<bool> failed_{false};

  std::vector<std::thread> workers_;
};

}  // namespace incprof::util
