// Deterministic 64-bit hashing shared by every subsystem that needs
// platform-stable placement: FNV-1a over the bytes, finished with the
// splitmix64 finalizer. Raw FNV-1a leaves near-identical short keys
// ("app-0", "app-1", ...) within a tiny arc of each other — one multiply
// per byte cannot reach the top bits — so anything that buckets by the
// high bits (the fleet hash ring, the online tracker's feature sketch)
// would see sequential names pile into one bucket. The splitmix64
// finalizer is a full-avalanche bijection, restoring uniformity without
// losing determinism. No std::hash anywhere: results are bit-identical
// across runs, platforms, and standard libraries, so tests can pin
// golden placements.
#pragma once

#include <cstdint>
#include <string_view>

namespace incprof::util {

/// splitmix64 finalizer: a full-avalanche bijection on u64.
constexpr std::uint64_t splitmix64_mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a-then-splitmix64 over a byte string. This is the fleet
/// HashRing key hash (golden-pinned there); keep the construction
/// stable.
constexpr std::uint64_t hash_string(std::string_view key) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV prime
  }
  return splitmix64_mix(h);
}

}  // namespace incprof::util
