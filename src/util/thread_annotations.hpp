// Clang Thread Safety Analysis, wired for the whole codebase. The
// INCPROF_* macros expand to clang's capability attributes when the
// compiler supports them and to nothing elsewhere (GCC builds the same
// sources unannotated), so locking discipline is machine-checked under
// `clang++ -Werror=thread-safety` (the CI `lint` lane) and free
// everywhere else.
//
// Usage pattern, enforced by tools/incprof_lint across src/:
//   - never declare a bare std::mutex; declare util::Mutex and mark the
//     fields it guards with INCPROF_GUARDED_BY(mu_)
//   - take it with util::MutexLock (scoped) and block on util::CondVar
//   - annotate functions that expect the caller to hold a mutex with
//     INCPROF_REQUIRES(mu_), and public entry points that must NOT be
//     called with it held with INCPROF_EXCLUDES(mu_)
//
// Condition-variable waits are written as explicit while loops around
// CondVar::wait rather than predicate lambdas: the analysis checks each
// function body separately, and a predicate lambda reading guarded
// fields would need its own annotations, which lambdas cannot carry
// portably.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define INCPROF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef INCPROF_THREAD_ANNOTATION
#define INCPROF_THREAD_ANNOTATION(x)  // no-op: GCC and older clang
#endif

/// Marks a class as a capability (a thing that can be held).
#define INCPROF_CAPABILITY(name) \
  INCPROF_THREAD_ANNOTATION(capability(name))

/// Marks an RAII class whose lifetime equals the hold of a capability.
#define INCPROF_SCOPED_CAPABILITY \
  INCPROF_THREAD_ANNOTATION(scoped_lockable)

/// Field is only read/written while holding `x`.
#define INCPROF_GUARDED_BY(x) INCPROF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is guarded by `x`.
#define INCPROF_PT_GUARDED_BY(x) \
  INCPROF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the caller to hold the given capabilities.
#define INCPROF_REQUIRES(...) \
  INCPROF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called WITHOUT the given capabilities held (it will
/// acquire them itself; calling with them held would deadlock).
#define INCPROF_EXCLUDES(...) \
  INCPROF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capabilities and holds them on return.
#define INCPROF_ACQUIRE(...) \
  INCPROF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases capabilities the caller held.
#define INCPROF_RELEASE(...) \
  INCPROF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `ret`.
#define INCPROF_TRY_ACQUIRE(ret, ...) \
  INCPROF_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Escape hatch for functions the analysis cannot model. Every use must
/// carry a comment saying why.
#define INCPROF_NO_THREAD_SAFETY_ANALYSIS \
  INCPROF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace incprof::util {

/// The repo's one blessed mutex: std::mutex wearing the capability
/// attribute so clang can track who holds it.
/// incprof-lint: allow(bare-mutex) — this wrapper is the one place a
/// bare std::mutex may live.
class INCPROF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() INCPROF_ACQUIRE() { mu_.lock(); }
  void unlock() INCPROF_RELEASE() { mu_.unlock(); }
  bool try_lock() INCPROF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over util::Mutex (the std::lock_guard / std::unique_lock
/// replacement). Supports mid-scope unlock()/lock() for wait loops that
/// drop the lock to do slow work.
class INCPROF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) INCPROF_ACQUIRE(mu)
      : mu_(mu), held_(true) {
    mu_.lock();
  }

  ~MutexLock() INCPROF_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() INCPROF_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

  void lock() INCPROF_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable bound to util::Mutex. Waits take the Mutex (which
/// the caller must hold, typically via a MutexLock on the same object)
/// so the REQUIRES annotation names the real capability.
/// incprof-lint: allow(bare-mutex) — wraps the one blessed
/// std::condition_variable_any.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until notified (spurious wakeups possible — always wrap in
  /// a while loop re-checking the guarded condition).
  void wait(Mutex& mu) INCPROF_REQUIRES(mu) { cv_.wait(mu); }

  /// Blocks until notified or `d` elapsed.
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& d)
      INCPROF_REQUIRES(mu) {
    return cv_.wait_for(mu, d);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace incprof::util
