// Small descriptive-statistics helpers used throughout the pipeline:
// aggregate per-rank summaries, overhead percentages, cluster quality
// measures, and the EXPERIMENTS.md tables all go through these.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace incprof::util {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 values.
double variance(std::span<const double> xs) noexcept;

/// Sample standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Population variance (n denominator); 0 for an empty span.
double population_variance(std::span<const double> xs) noexcept;

/// Minimum; 0 for an empty span.
double min_of(std::span<const double> xs) noexcept;

/// Maximum; 0 for an empty span.
double max_of(std::span<const double> xs) noexcept;

/// Sum of all values.
double sum(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. 0 for an empty span.
/// Copies and sorts internally; fine for the small vectors we use.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// Coefficient of variation (stddev / mean); 0 when the mean is 0.
double coeff_of_variation(std::span<const double> xs);

/// Running mean/variance accumulator (Welford). Used by the AppEKG
/// aggregator to keep per-interval duration statistics in O(1) memory.
class RunningStats {
 public:
  /// Folds one observation into the accumulator.
  void add(double x) noexcept;

  /// Number of observations so far.
  std::size_t count() const noexcept { return n_; }

  /// Mean of observations; 0 before the first observation.
  double mean() const noexcept { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance; 0 with fewer than 2 observations.
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Smallest observation; 0 before the first observation.
  double min() const noexcept { return n_ ? min_ : 0.0; }

  /// Largest observation; 0 before the first observation.
  double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Sum of all observations.
  double sum() const noexcept { return sum_; }

  /// Resets to the empty state.
  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace incprof::util
