// String helpers shared by the gprof-report parser, CSV layer and table
// formatters. Kept dependency-free and allocation-conscious: parsing the
// flat-profile text of hundreds of interval snapshots is on the analysis
// fast path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace incprof::util {

/// Removes leading and trailing ASCII whitespace (no allocation).
std::string_view trim(std::string_view s) noexcept;

/// Splits on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; empty fields are skipped.
/// This is the tokenizer for gprof flat-profile rows.
std::vector<std::string_view> split_ws(std::string_view s);

/// Splits into lines on '\n'; a trailing newline does not produce an
/// empty final line. '\r' before '\n' is stripped.
std::vector<std::string_view> split_lines(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Joins the pieces with `sep` between them.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Parses a double; returns false (leaving `out` untouched) on any
/// malformed or partially consumed input.
bool parse_double(std::string_view s, double& out) noexcept;

/// Parses a non-negative 64-bit integer; returns false on malformed
/// input or overflow.
bool parse_u64(std::string_view s, std::uint64_t& out) noexcept;

/// Parses a signed integer with full-string validation; returns false
/// (leaving `out` untouched) on malformed input, overflow, or a value
/// outside [lo, hi]. This is the checked replacement for std::atoi in
/// the tool flag parsers, where "--port banana" must be an error, not
/// port 0.
bool parse_int(std::string_view s, std::int64_t lo, std::int64_t hi,
               std::int64_t& out) noexcept;

/// Parses a "host:port" endpoint: non-empty host, port in [1, 65535]
/// validated via parse_int. Returns false (leaving the outputs
/// untouched) on a missing colon, empty host, or bad port — the tool
/// flag parsers turn that into exit 2.
bool parse_endpoint(std::string_view s, std::string& host,
                    std::uint16_t& port);

/// Formats `v` with `prec` digits after the decimal point.
std::string format_fixed(double v, int prec);

/// Formats a fraction in [0,1] as a percentage with one decimal, e.g.
/// 0.981 -> "98.1".
std::string format_pct(double fraction);

}  // namespace incprof::util
