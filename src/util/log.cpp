#include "util/log.hpp"

#include "util/thread_annotations.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>

namespace incprof::util {

namespace {

using Sink = std::function<void(LogLevel, std::string_view)>;

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// The sink is held by shared_ptr and swapped under a mutex; log()
// copies the pointer under the same lock but invokes the sink outside
// it, so a slow sink never blocks a concurrent swap and a swap never
// destroys a sink mid-call.
Mutex g_sink_mu;
std::shared_ptr<const Sink> g_sink INCPROF_GUARDED_BY(
    g_sink_mu);  // null = default stderr sink

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

double seconds_since_start() {
  static const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::uint32_t log_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed) + 1;
  return id;
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(std::function<void(LogLevel, std::string_view)> sink) {
  std::shared_ptr<const Sink> next =
      sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr;
  MutexLock lock(g_sink_mu);
  g_sink.swap(next);
  // `next` (the previous sink) is released outside the swap expression;
  // any thread still running it keeps its own shared_ptr copy.
}

std::string format_log_line(LogLevel level, std::string_view msg) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[incprof +%.6fs %s tid=%u] ",
                seconds_since_start(), level_name(level),
                log_thread_id());
  std::string line(prefix);
  line.append(msg);
  return line;
}

void log(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::shared_ptr<const Sink> sink;
  {
    MutexLock lock(g_sink_mu);
    sink = g_sink;
  }
  if (sink) {
    (*sink)(level, msg);
    return;
  }
  const std::string line = format_log_line(level, msg);
  std::fprintf(stderr, "%.*s\n", static_cast<int>(line.size()),
               line.data());
}

void log_debug(std::string_view msg) { log(LogLevel::kDebug, msg); }
void log_info(std::string_view msg) { log(LogLevel::kInfo, msg); }
void log_warn(std::string_view msg) { log(LogLevel::kWarn, msg); }
void log_error(std::string_view msg) { log(LogLevel::kError, msg); }

}  // namespace incprof::util
