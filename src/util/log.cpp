#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace incprof::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
std::function<void(LogLevel, std::string_view)> g_sink;
std::mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level = level; }

LogLevel log_level() noexcept { return g_level; }

void set_log_sink(std::function<void(LogLevel, std::string_view)> sink) {
  std::lock_guard lock(g_mutex);
  g_sink = std::move(sink);
}

void log(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::lock_guard lock(g_mutex);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[incprof %s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

void log_debug(std::string_view msg) { log(LogLevel::kDebug, msg); }
void log_info(std::string_view msg) { log(LogLevel::kInfo, msg); }
void log_warn(std::string_view msg) { log(LogLevel::kWarn, msg); }
void log_error(std::string_view msg) { log(LogLevel::kError, msg); }

}  // namespace incprof::util
