#include "util/table.hpp"

#include <algorithm>

namespace incprof::util {

std::string pad(std::string_view s, std::size_t width, Align a) {
  if (s.size() >= width) return std::string(s);
  const std::string fill(width - s.size(), ' ');
  if (a == Align::kRight) return fill + std::string(s);
  return std::string(s) + fill;
}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  aligns_.assign(header_.size(), Align::kLeft);
}

void TextTable::set_align(std::size_t col, Align a) {
  if (col < aligns_.size()) aligns_[col] = a;
}

void TextTable::add_row(std::vector<std::string> row) {
  Row r;
  r.cells = std::move(row);
  rows_.push_back(std::move(r));
}

void TextTable::add_section(std::string label) {
  Row r;
  r.is_section = true;
  r.section_label = std::move(label);
  rows_.push_back(std::move(r));
}

std::string TextTable::render() const {
  const std::size_t ncols = header_.size();
  std::vector<std::size_t> widths(ncols, 0);
  for (std::size_t c = 0; c < ncols; ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    if (r.is_section) continue;
    for (std::size_t c = 0; c < std::min(ncols, r.cells.size()); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  std::size_t total = ncols ? (ncols - 1) * 3 : 0;
  for (auto w : widths) total += w;

  std::string out;
  auto add_line = [&](char ch) { out += std::string(total, ch) + '\n'; };

  if (!title_.empty()) {
    out += title_ + '\n';
    add_line('=');
  }
  for (std::size_t c = 0; c < ncols; ++c) {
    if (c) out += " | ";
    out += pad(header_[c], widths[c], aligns_[c]);
  }
  out += '\n';
  add_line('-');
  for (const auto& r : rows_) {
    if (r.is_section) {
      add_line('-');
      out += r.section_label + '\n';
      add_line('-');
      continue;
    }
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c) out += " | ";
      const std::string_view cell =
          c < r.cells.size() ? std::string_view(r.cells[c])
                             : std::string_view();
      out += pad(cell, widths[c], aligns_[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace incprof::util
