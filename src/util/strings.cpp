#include "util/strings.hpp"

#include <charconv>
#include <cstdint>
#include <cstdio>

namespace incprof::util {

namespace {
constexpr bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> split_lines(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      std::size_t end = i;
      if (end > start && s[end - 1] == '\r') --end;
      out.push_back(s.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < s.size()) {
    std::size_t end = s.size();
    if (end > start && s[end - 1] == '\r') --end;
    out.push_back(s.substr(start, end - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool parse_double(std::string_view s, double& out) noexcept {
  s = trim(s);
  if (s.empty()) return false;
  double v = 0.0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return false;
  out = v;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) noexcept {
  s = trim(s);
  if (s.empty()) return false;
  std::uint64_t v = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return false;
  out = v;
  return true;
}

bool parse_int(std::string_view s, std::int64_t lo, std::int64_t hi,
               std::int64_t& out) noexcept {
  s = trim(s);
  if (s.empty()) return false;
  std::int64_t v = 0;
  const auto* first = s.data();
  const auto* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || ptr != last) return false;
  if (v < lo || v > hi) return false;
  out = v;
  return true;
}

bool parse_endpoint(std::string_view s, std::string& host,
                    std::uint16_t& port) {
  s = trim(s);
  // Last colon splits host from port, so a future bracketed-IPv6 form
  // stays representable; today hosts are names or IPv4 literals.
  const auto colon = s.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  std::int64_t p = 0;
  if (!parse_int(s.substr(colon + 1), 1, 65535, p)) return false;
  host = std::string(s.substr(0, colon));
  port = static_cast<std::uint16_t>(p);
  return true;
}

std::string format_fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string format_pct(double fraction) {
  return format_fixed(fraction * 100.0, 1);
}

}  // namespace incprof::util
