// Tiny leveled logger. Analysis tools report progress through this so the
// bench binaries can silence it; tests can capture it.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace incprof::util {

/// Severity levels, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kWarn,
/// so library code is silent unless something is wrong.
void set_log_level(LogLevel level) noexcept;

/// Current minimum level.
LogLevel log_level() noexcept;

/// Replaces the sink (default: stderr). Pass nullptr to restore stderr.
void set_log_sink(std::function<void(LogLevel, std::string_view)> sink);

/// Emits one message at `level` if it passes the threshold.
void log(LogLevel level, std::string_view msg);

/// printf-style convenience wrappers.
void log_debug(std::string_view msg);
void log_info(std::string_view msg);
void log_warn(std::string_view msg);
void log_error(std::string_view msg);

}  // namespace incprof::util
