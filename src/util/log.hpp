// Tiny leveled logger. Analysis tools report progress through this so the
// bench binaries can silence it; tests can capture it. The default
// stderr sink prefixes every line with a monotonic timestamp (seconds
// since process start), the level tag and a small per-thread id;
// custom sinks receive the raw message and apply their own framing.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace incprof::util {

/// Severity levels, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kWarn,
/// so library code is silent unless something is wrong. Thread-safe.
void set_log_level(LogLevel level) noexcept;

/// Current minimum level.
LogLevel log_level() noexcept;

/// Replaces the sink (default: stderr). Pass nullptr to restore stderr.
/// Safe to call concurrently with log(): in-flight messages finish on
/// whichever sink they started with.
void set_log_sink(std::function<void(LogLevel, std::string_view)> sink);

/// Emits one message at `level` if it passes the threshold.
void log(LogLevel level, std::string_view msg);

/// Convenience wrappers.
void log_debug(std::string_view msg);
void log_info(std::string_view msg);
void log_warn(std::string_view msg);
void log_error(std::string_view msg);

/// The default sink's line framing, exposed for tests and custom sinks
/// that want the standard prefix:
///   [incprof +12.345678s WARN tid=2] message
/// The timestamp is monotonic seconds since the first log call.
std::string format_log_line(LogLevel level, std::string_view msg);

}  // namespace incprof::util
