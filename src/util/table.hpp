// Fixed-width plain-text table renderer. The bench binaries print the
// paper's tables (Table I-VI) through this so the output visually matches
// the rows the paper reports.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace incprof::util {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// Accumulates rows and renders them with per-column widths, an optional
/// title, a header separator, and optional full-width section rows (used
/// for the "Manual Instrumentation Sites" separators in Tables II-VI).
class TextTable {
 public:
  /// Declares the column headers. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Sets the alignment of column `col` (default: left).
  void set_align(std::size_t col, Align a);

  /// Optional title printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  /// Adds a data row; missing trailing cells render empty.
  void add_row(std::vector<std::string> row);

  /// Adds a full-width section label row (rendered across all columns).
  void add_section(std::string label);

  /// Renders the table to a string.
  std::string render() const;

 private:
  struct Row {
    bool is_section = false;
    std::string section_label;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

/// Left/right-pads `s` to `width` with spaces.
std::string pad(std::string_view s, std::size_t width, Align a);

}  // namespace incprof::util
