// Deterministic pseudo-random number generation for reproducible workloads.
//
// Every stochastic element of the IncProf reproduction (workload jitter,
// k-means++ seeding, rank perturbation) draws from these generators so that
// a given seed always reproduces the same profile data, clustering, and
// instrumentation-site selection, regardless of platform or standard
// library implementation.
#pragma once

#include <cstdint>
#include <vector>

namespace incprof::util {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state. Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom
/// Number Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna): a small, fast, high-quality PRNG
/// with a 256-bit state. All distributions below are implemented on top of
/// it with fully specified arithmetic, so sequences are identical across
/// compilers — unlike std::uniform_real_distribution and friends.
class Rng {
 public:
  /// Seeds the 256-bit state from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal deviate (Marsaglia polar method).
  double next_gaussian() noexcept;

  /// Multiplicative jitter: 1 + rel * g where g ~ N(0,1), clamped to
  /// [1 - 3*rel, 1 + 3*rel] so pathological tails cannot produce negative
  /// work costs. rel == 0 returns exactly 1.
  double jitter(double rel) noexcept;

  /// Derives an independent child generator (e.g. one per MPI-style rank)
  /// whose stream does not overlap with the parent for practical lengths.
  Rng split() noexcept;

  /// Fisher-Yates shuffle of `v` in place.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace incprof::util
