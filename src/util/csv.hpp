// Minimal CSV reading/writing with RFC-4180-style quoting. Used for the
// AppEKG heartbeat interval records and the bench outputs that back the
// figures (one series row per interval).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace incprof::util {

/// A parsed CSV document: a header row plus data rows, all as strings.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 if absent.
  int column(std::string_view name) const noexcept;
};

/// Streams quoted CSV rows. Quotes a field only when it contains a comma,
/// quote or newline; embedded quotes are doubled.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row; fields are quoted as needed.
  void row(const std::vector<std::string>& fields);

  /// Convenience: writes a row of mixed printable values.
  template <typename... Ts>
  void row_of(const Ts&... vs) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(vs));
    (fields.push_back(to_field(vs)), ...);
    row(fields);
  }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(const char* s) { return s; }
  static std::string to_field(std::string_view s) { return std::string(s); }
  static std::string to_field(double v);
  static std::string to_field(long long v);
  static std::string to_field(unsigned long long v);
  static std::string to_field(int v) { return to_field((long long)v); }
  static std::string to_field(long v) { return to_field((long long)v); }
  static std::string to_field(unsigned v) {
    return to_field((unsigned long long)v);
  }
  static std::string to_field(std::size_t v) {
    return to_field((unsigned long long)v);
  }

  std::ostream& os_;
};

/// Parses CSV text. The first row becomes the header. Handles quoted
/// fields with embedded commas, doubled quotes and newlines.
CsvDocument parse_csv(std::string_view text);

}  // namespace incprof::util
