#include "util/thread_pool.hpp"

#include <algorithm>

namespace incprof::util {

namespace {

/// True on threads that are currently inside a job body; a nested
/// parallel_for from such a thread runs inline (fanning out again would
/// deadlock on the pool's own barrier).
thread_local bool t_inside_job = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    work_cv_.notify_all();
  }
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::size_t ThreadPool::hardware_threads() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::resolve(std::size_t requested) noexcept {
  return requested == 0 ? hardware_threads() : requested;
}

std::unique_ptr<ThreadPool> ThreadPool::create(std::size_t requested) {
  const std::size_t n = resolve(requested);
  if (n <= 1) return nullptr;
  // The caller participates in every job, so n threads of compute need
  // only n - 1 pool workers.
  return std::make_unique<ThreadPool>(n - 1);
}

void ThreadPool::run_indices(const std::function<void(std::size_t)>& fn,
                             std::size_t n) noexcept {
  const bool was_inside = t_inside_job;
  t_inside_job = true;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    if (failed_.load(std::memory_order_relaxed)) continue;
    try {
      fn(i);
    } catch (...) {
      MutexLock lock(mu_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }
  t_inside_job = was_inside;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_inside_job) {
    // Serial fast path: no workers, a single index, or a nested call
    // from inside a job body (inline keeps the outer barrier sound).
    const bool was_inside = t_inside_job;
    t_inside_job = true;
    struct Restore {
      bool* flag;
      bool value;
      ~Restore() { *flag = value; }
    } restore{&t_inside_job, was_inside};
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  MutexLock call_lock(call_mu_);
  {
    MutexLock lock(mu_);
    job_fn_ = &fn;
    job_n_ = n;
    finished_ = 0;
    error_ = nullptr;
    failed_.store(false, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
    work_cv_.notify_all();
  }

  run_indices(fn, n);

  std::exception_ptr error;
  {
    MutexLock lock(mu_);
    // Every worker acknowledges the generation exactly once, so this
    // wait is a full barrier: when it returns, no thread still holds a
    // reference to fn and all job writes are visible to the caller.
    while (finished_ < workers_.size()) done_cv_.wait(mu_);
    job_fn_ = nullptr;
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen) work_cv_.wait(mu_);
      if (stop_) return;
      seen = generation_;
      fn = job_fn_;
      n = job_n_;
    }
    run_indices(*fn, n);
    MutexLock lock(mu_);
    ++finished_;
    if (finished_ == workers_.size()) done_cv_.notify_all();
  }
}

}  // namespace incprof::util
