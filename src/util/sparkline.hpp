// ASCII time-series rendering for the heartbeat "figures". The paper's
// Figures 2-6 are per-interval heartbeat plots; the fig benches emit both
// a CSV of the series and this compact textual rendering so the *shape*
// (gaps, oscillation, init-only spikes) is reviewable in a terminal.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace incprof::util {

/// Renders one series as a single line of block characters, scaled to the
/// series max. Zero values render as a space (so gaps are visible, which
/// matters: the paper highlights intervals where long heartbeats do not
/// finish). `width` columns; the series is bucketed by mean.
std::string sparkline(std::span<const double> values, std::size_t width = 100);

/// A labelled multi-row plot: each series gets one sparkline row prefixed
/// by its padded label, plus a shared x-axis ruler with interval numbers.
class SeriesPlot {
 public:
  /// Adds one labelled series; all series should share the x domain.
  void add_series(std::string label, std::vector<double> values);

  /// Renders all rows at `width` columns.
  std::string render(std::size_t width = 100) const;

 private:
  struct Series {
    std::string label;
    std::vector<double> values;
  };
  std::vector<Series> series_;
};

}  // namespace incprof::util
