#include "util/rng.hpp"

#include <cmath>

namespace incprof::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // A state of all zeros is the one fixed point of xoshiro; SplitMix64
  // cannot produce four consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

double Rng::jitter(double rel) noexcept {
  if (rel <= 0.0) return 1.0;
  double f = 1.0 + rel * next_gaussian();
  const double lo = 1.0 - 3.0 * rel;
  const double hi = 1.0 + 3.0 * rel;
  if (f < lo) f = lo;
  if (f > hi) f = hi;
  return f;
}

Rng Rng::split() noexcept { return Rng(next_u64() ^ 0xd1342543de82ef95ULL); }

}  // namespace incprof::util
