#include "gmon/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace incprof::gmon {

namespace {
constexpr std::uint32_t kMagic = 0x4d475049;  // "IPGM" little-endian
constexpr std::uint32_t kVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((u >> (8 * i)) & 0xff));
  }
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::int64_t i64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return static_cast<std::int64_t>(v);
  }

  std::string str(std::size_t len) {
    need(len);
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  bool at_end() const noexcept { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::runtime_error("gmon binary: truncated snapshot");
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};
}  // namespace

std::string encode_binary(const ProfileSnapshot& snap) {
  std::string out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, snap.seq());
  put_u32(out, static_cast<std::uint32_t>(snap.functions().size()));
  put_i64(out, snap.timestamp_ns());
  for (const auto& fp : snap.functions()) {
    put_u32(out, static_cast<std::uint32_t>(fp.name.size()));
    out.append(fp.name);
    put_i64(out, fp.self_ns);
    put_i64(out, fp.calls);
    put_i64(out, fp.inclusive_ns);
  }
  return out;
}

ProfileSnapshot decode_binary(std::string_view bytes) {
  Reader r(bytes);
  if (r.u32() != kMagic) {
    throw std::runtime_error("gmon binary: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    throw std::runtime_error("gmon binary: unsupported version " +
                             std::to_string(version));
  }
  const std::uint32_t seq = r.u32();
  const std::uint32_t count = r.u32();
  const std::int64_t ts = r.i64();
  ProfileSnapshot snap(seq, ts);
  for (std::uint32_t i = 0; i < count; ++i) {
    FunctionProfile fp;
    const std::uint32_t name_len = r.u32();
    fp.name = r.str(name_len);
    fp.self_ns = r.i64();
    fp.calls = r.i64();
    fp.inclusive_ns = r.i64();
    snap.upsert(std::move(fp));
  }
  if (!r.at_end()) {
    throw std::runtime_error("gmon binary: trailing bytes");
  }
  return snap;
}

void write_binary_file(const ProfileSnapshot& snap,
                       const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw std::runtime_error("gmon binary: cannot open for write: " +
                             path.string());
  }
  const std::string bytes = encode_binary(snap);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!os) {
    throw std::runtime_error("gmon binary: write failed: " + path.string());
  }
}

ProfileSnapshot read_binary_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("gmon binary: cannot open for read: " +
                             path.string());
  }
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  return decode_binary(bytes);
}

}  // namespace incprof::gmon
