#include "gmon/scanner.hpp"

#include "gmon/binary_io.hpp"
#include "gmon/flat_text.hpp"
#include "util/strings.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>

namespace incprof::gmon {

namespace {
constexpr std::string_view kBinaryPrefix = "gmon-";
constexpr std::string_view kBinarySuffix = ".out";
constexpr std::string_view kTextPrefix = "flat-";
constexpr std::string_view kTextSuffix = ".txt";

std::vector<std::filesystem::path> matching_files(
    const std::filesystem::path& dir, std::string_view prefix,
    std::string_view suffix) {
  std::vector<std::filesystem::path> files;
  if (!std::filesystem::exists(dir)) return files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (util::starts_with(name, prefix) && util::ends_with(name, suffix)) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}
}  // namespace

std::string binary_dump_name(std::uint32_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "gmon-%06u.out", seq);
  return buf;
}

std::string text_dump_name(std::uint32_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "flat-%06u.txt", seq);
  return buf;
}

bool parse_dump_seq(const std::string& filename, std::uint32_t& seq) {
  std::string_view name = filename;
  std::string_view prefix, suffix;
  if (util::starts_with(name, kBinaryPrefix) &&
      util::ends_with(name, kBinarySuffix)) {
    prefix = kBinaryPrefix;
    suffix = kBinarySuffix;
  } else if (util::starts_with(name, kTextPrefix) &&
             util::ends_with(name, kTextSuffix)) {
    prefix = kTextPrefix;
    suffix = kTextSuffix;
  } else {
    return false;
  }
  const std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::uint64_t v = 0;
  if (digits.empty() || !util::parse_u64(digits, v) || v > 0xffffffffULL) {
    return false;
  }
  seq = static_cast<std::uint32_t>(v);
  return true;
}

std::vector<ProfileSnapshot> load_binary_dumps(
    const std::filesystem::path& dir) {
  std::vector<ProfileSnapshot> snaps;
  for (const auto& path : matching_files(dir, kBinaryPrefix, kBinarySuffix)) {
    snaps.push_back(read_binary_file(path));
  }
  std::sort(snaps.begin(), snaps.end(),
            [](const ProfileSnapshot& a, const ProfileSnapshot& b) {
              return a.seq() < b.seq();
            });
  return snaps;
}

LenientLoadResult load_binary_dumps_lenient(
    const std::filesystem::path& dir) {
  LenientLoadResult result;
  std::map<std::uint32_t, ProfileSnapshot> by_seq;
  for (const auto& path : matching_files(dir, kBinaryPrefix, kBinarySuffix)) {
    try {
      ProfileSnapshot snap = read_binary_file(path);
      auto [it, inserted] = by_seq.try_emplace(snap.seq(), snap);
      if (!inserted) {
        ++result.duplicates_dropped;
        // A restarted collector rewrote this seq; the dump with the
        // later profiled timestamp is the survivor.
        if (snap.timestamp_ns() > it->second.timestamp_ns()) {
          it->second = std::move(snap);
        }
      }
    } catch (const std::exception&) {
      result.skipped.push_back(path);
    }
  }
  result.snapshots.reserve(by_seq.size());
  for (auto& [seq, snap] : by_seq) {
    result.snapshots.push_back(std::move(snap));
  }
  return result;
}

std::vector<ProfileSnapshot> load_text_dumps(
    const std::filesystem::path& dir) {
  std::vector<ProfileSnapshot> snaps;
  for (const auto& path : matching_files(dir, kTextPrefix, kTextSuffix)) {
    std::uint32_t seq = 0;
    if (!parse_dump_seq(path.filename().string(), seq)) continue;
    std::ifstream is(path);
    if (!is) {
      throw std::runtime_error("scanner: cannot read " + path.string());
    }
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    ProfileSnapshot snap = parse_flat_profile(text);
    snap.set_seq(seq);
    snaps.push_back(std::move(snap));
  }
  std::sort(snaps.begin(), snaps.end(),
            [](const ProfileSnapshot& a, const ProfileSnapshot& b) {
              return a.seq() < b.seq();
            });
  return snaps;
}

std::size_t convert_dumps_to_text(const std::filesystem::path& dir,
                                  std::int64_t sample_period_ns) {
  std::size_t converted = 0;
  FlatTextOptions opts;
  opts.sample_period_ns = sample_period_ns;
  for (const auto& path : matching_files(dir, kBinaryPrefix, kBinarySuffix)) {
    const ProfileSnapshot snap = read_binary_file(path);
    const std::filesystem::path out = dir / text_dump_name(snap.seq());
    std::ofstream os(out, std::ios::trunc);
    if (!os) {
      throw std::runtime_error("scanner: cannot write " + out.string());
    }
    os << format_flat_profile(snap, opts);
    ++converted;
  }
  return converted;
}

}  // namespace incprof::gmon
