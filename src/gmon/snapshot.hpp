// The profile-snapshot data model. A ProfileSnapshot is what the gprof
// runtime dumps: *cumulative-since-program-start* per-function counters.
// IncProf's collector produces one snapshot per interval; the analysis
// stage (src/core) differences consecutive snapshots into per-interval
// profiles (paper, Section V-A).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace incprof::gmon {

/// Cumulative counters for one function at one dump instant.
struct FunctionProfile {
  /// Function symbol name (demangled form, as gprof reports it).
  std::string name;
  /// Cumulative self time attributed by PC sampling, in nanoseconds.
  std::int64_t self_ns = 0;
  /// Cumulative call count from entry instrumentation.
  std::int64_t calls = 0;
  /// Cumulative inclusive time (function anywhere on the stack), ns.
  /// Not representable in the gprof flat-profile text form; preserved by
  /// the binary format only. Used by the feature-ablation bench
  /// (children time = inclusive - self).
  std::int64_t inclusive_ns = 0;

  bool operator==(const FunctionProfile&) const = default;
};

/// One cumulative profile dump.
class ProfileSnapshot {
 public:
  ProfileSnapshot() = default;

  /// `seq` is the interval index assigned by the collector when it renames
  /// the dump (paper, Section IV); `timestamp_ns` is the dump instant on
  /// the profiled clock.
  ProfileSnapshot(std::uint32_t seq, std::int64_t timestamp_ns)
      : seq_(seq), timestamp_ns_(timestamp_ns) {}

  std::uint32_t seq() const noexcept { return seq_; }
  void set_seq(std::uint32_t s) noexcept { seq_ = s; }

  std::int64_t timestamp_ns() const noexcept { return timestamp_ns_; }
  void set_timestamp_ns(std::int64_t t) noexcept { timestamp_ns_ = t; }

  /// Functions sorted by name (maintained as an invariant so snapshots
  /// compare and difference deterministically).
  const std::vector<FunctionProfile>& functions() const noexcept {
    return functions_;
  }

  /// Inserts or overwrites the entry for `fp.name`.
  void upsert(FunctionProfile fp);

  /// Looks up a function by name.
  const FunctionProfile* find(std::string_view name) const noexcept;

  /// Sum of self_ns across all functions.
  std::int64_t total_self_ns() const noexcept;

  /// Number of functions with any recorded activity.
  std::size_t size() const noexcept { return functions_.size(); }
  bool empty() const noexcept { return functions_.empty(); }

  bool operator==(const ProfileSnapshot&) const = default;

 private:
  friend void difference_into(const ProfileSnapshot& cur,
                              const ProfileSnapshot& prev,
                              ProfileSnapshot& out);

  std::uint32_t seq_ = 0;
  std::int64_t timestamp_ns_ = 0;
  std::vector<FunctionProfile> functions_;  // sorted by name
};

/// Subtracts `prev` from `cur` field-wise per function, producing the
/// activity within one interval. Functions absent from `prev` are treated
/// as all-zero there. Negative deltas (clock skew, counter reset) are
/// clamped to zero — the real gprof data the paper processes is monotone,
/// and clamping keeps downstream feature vectors well-formed.
/// The result's seq/timestamp are taken from `cur`.
ProfileSnapshot difference(const ProfileSnapshot& cur,
                           const ProfileSnapshot& prev);

/// As difference(), but writes the result into `out`, reusing its
/// function and string storage — the allocation-free steady path for
/// per-interval consumers (the online tracker differences every dump
/// it sees). Single merge-walk over both sorted function lists, so it
/// is also O(|cur| + |prev|) instead of difference()'s per-name binary
/// search. `out` must not alias `cur` or `prev`.
void difference_into(const ProfileSnapshot& cur, const ProfileSnapshot& prev,
                     ProfileSnapshot& out);

}  // namespace incprof::gmon
