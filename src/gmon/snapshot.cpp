#include "gmon/snapshot.hpp"

#include <algorithm>

namespace incprof::gmon {

namespace {
struct NameLess {
  bool operator()(const FunctionProfile& fp, std::string_view name) const {
    return fp.name < name;
  }
};
}  // namespace

void ProfileSnapshot::upsert(FunctionProfile fp) {
  auto it = std::lower_bound(functions_.begin(), functions_.end(),
                             std::string_view(fp.name), NameLess{});
  if (it != functions_.end() && it->name == fp.name) {
    *it = std::move(fp);
  } else {
    functions_.insert(it, std::move(fp));
  }
}

const FunctionProfile* ProfileSnapshot::find(
    std::string_view name) const noexcept {
  auto it = std::lower_bound(functions_.begin(), functions_.end(), name,
                             NameLess{});
  if (it != functions_.end() && it->name == name) return &*it;
  return nullptr;
}

std::int64_t ProfileSnapshot::total_self_ns() const noexcept {
  std::int64_t total = 0;
  for (const auto& fp : functions_) total += fp.self_ns;
  return total;
}

ProfileSnapshot difference(const ProfileSnapshot& cur,
                           const ProfileSnapshot& prev) {
  ProfileSnapshot out(cur.seq(), cur.timestamp_ns());
  for (const auto& fp : cur.functions()) {
    FunctionProfile d = fp;
    if (const FunctionProfile* p = prev.find(fp.name)) {
      d.self_ns = std::max<std::int64_t>(0, fp.self_ns - p->self_ns);
      d.calls = std::max<std::int64_t>(0, fp.calls - p->calls);
      d.inclusive_ns =
          std::max<std::int64_t>(0, fp.inclusive_ns - p->inclusive_ns);
    }
    out.upsert(std::move(d));
  }
  return out;
}

}  // namespace incprof::gmon
