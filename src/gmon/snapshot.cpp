#include "gmon/snapshot.hpp"

#include <algorithm>

namespace incprof::gmon {

namespace {
struct NameLess {
  bool operator()(const FunctionProfile& fp, std::string_view name) const {
    return fp.name < name;
  }
};
}  // namespace

void ProfileSnapshot::upsert(FunctionProfile fp) {
  auto it = std::lower_bound(functions_.begin(), functions_.end(),
                             std::string_view(fp.name), NameLess{});
  if (it != functions_.end() && it->name == fp.name) {
    *it = std::move(fp);
  } else {
    functions_.insert(it, std::move(fp));
  }
}

const FunctionProfile* ProfileSnapshot::find(
    std::string_view name) const noexcept {
  auto it = std::lower_bound(functions_.begin(), functions_.end(), name,
                             NameLess{});
  if (it != functions_.end() && it->name == name) return &*it;
  return nullptr;
}

std::int64_t ProfileSnapshot::total_self_ns() const noexcept {
  std::int64_t total = 0;
  for (const auto& fp : functions_) total += fp.self_ns;
  return total;
}

ProfileSnapshot difference(const ProfileSnapshot& cur,
                           const ProfileSnapshot& prev) {
  ProfileSnapshot out;
  difference_into(cur, prev, out);
  return out;
}

void difference_into(const ProfileSnapshot& cur, const ProfileSnapshot& prev,
                     ProfileSnapshot& out) {
  out.seq_ = cur.seq();
  out.timestamp_ns_ = cur.timestamp_ns();
  // Both function lists are sorted by name (class invariant), so one
  // merge-walk finds every prev counterpart; the output inherits cur's
  // order and stays sorted. resize + copy-assign reuse out's vector and
  // string capacity from the previous call.
  out.functions_.resize(cur.functions_.size());
  auto pit = prev.functions_.begin();
  const auto pend = prev.functions_.end();
  for (std::size_t i = 0; i < cur.functions_.size(); ++i) {
    const FunctionProfile& fp = cur.functions_[i];
    FunctionProfile& d = out.functions_[i];
    d.name = fp.name;
    d.self_ns = fp.self_ns;
    d.calls = fp.calls;
    d.inclusive_ns = fp.inclusive_ns;
    while (pit != pend && pit->name < fp.name) ++pit;
    if (pit != pend && pit->name == fp.name) {
      d.self_ns = std::max<std::int64_t>(0, fp.self_ns - pit->self_ns);
      d.calls = std::max<std::int64_t>(0, fp.calls - pit->calls);
      d.inclusive_ns =
          std::max<std::int64_t>(0, fp.inclusive_ns - pit->inclusive_ns);
    }
  }
}

}  // namespace incprof::gmon
