#include "gmon/callgraph.hpp"

#include "util/strings.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>

namespace incprof::gmon {

namespace {
struct EdgeKeyLess {
  bool operator()(const CallEdge& e,
                  const std::pair<std::string_view, std::string_view>& key)
      const noexcept {
    if (e.caller != key.first) return e.caller < key.first;
    return e.callee < key.second;
  }
};

std::vector<CallEdge>::const_iterator lower_bound_edge(
    const std::vector<CallEdge>& edges, std::string_view caller,
    std::string_view callee) {
  return std::lower_bound(edges.begin(), edges.end(),
                          std::make_pair(caller, callee), EdgeKeyLess{});
}
}  // namespace

void CallGraphSnapshot::upsert(CallEdge edge) {
  auto it = lower_bound_edge(edges_, edge.caller, edge.callee);
  const auto idx = static_cast<std::size_t>(it - edges_.begin());
  if (it != edges_.end() && it->caller == edge.caller &&
      it->callee == edge.callee) {
    edges_[idx] = std::move(edge);
  } else {
    edges_.insert(edges_.begin() + static_cast<std::ptrdiff_t>(idx),
                  std::move(edge));
  }
}

void CallGraphSnapshot::accumulate(std::string_view caller,
                                   std::string_view callee,
                                   std::int64_t count_delta,
                                   std::int64_t time_delta_ns) {
  auto it = lower_bound_edge(edges_, caller, callee);
  const auto idx = static_cast<std::size_t>(it - edges_.begin());
  if (it != edges_.end() && it->caller == caller && it->callee == callee) {
    edges_[idx].count += count_delta;
    edges_[idx].time_ns += time_delta_ns;
    return;
  }
  CallEdge edge;
  edge.caller = std::string(caller);
  edge.callee = std::string(callee);
  edge.count = count_delta;
  edge.time_ns = time_delta_ns;
  edges_.insert(edges_.begin() + static_cast<std::ptrdiff_t>(idx),
                std::move(edge));
}

const CallEdge* CallGraphSnapshot::find(
    std::string_view caller, std::string_view callee) const noexcept {
  auto it = lower_bound_edge(edges_, caller, callee);
  if (it != edges_.end() && it->caller == caller && it->callee == callee) {
    return &*it;
  }
  return nullptr;
}

std::vector<const CallEdge*> CallGraphSnapshot::callers_of(
    std::string_view callee) const {
  std::vector<const CallEdge*> out;
  for (const auto& e : edges_) {
    if (e.callee == callee) out.push_back(&e);
  }
  return out;
}

std::vector<const CallEdge*> CallGraphSnapshot::callees_of(
    std::string_view caller) const {
  std::vector<const CallEdge*> out;
  auto it = lower_bound_edge(edges_, caller, "");
  for (; it != edges_.end() && it->caller == caller; ++it) {
    out.push_back(&*it);
  }
  return out;
}

std::int64_t CallGraphSnapshot::total_calls_into(
    std::string_view callee) const {
  std::int64_t total = 0;
  for (const auto& e : edges_) {
    if (e.callee == callee) total += e.count;
  }
  return total;
}

std::string format_call_graph(const CallGraphSnapshot& snap) {
  std::string out = "Call graph:\n\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-32s %10s %14s  %s\n", "caller",
                "calls", "self-s", "callee");
  out += buf;

  // Group by caller (edges are sorted by caller already).
  std::string_view current;
  bool first = true;
  for (const auto& e : snap.edges()) {
    if (first || e.caller != current) {
      current = e.caller;
      first = false;
      out += e.caller;
      out += '\n';
    }
    std::snprintf(buf, sizeof(buf), "%-32s %10lld %14.6f  %s\n", "",
                  static_cast<long long>(e.count),
                  static_cast<double>(e.time_ns) / 1e9, e.callee.c_str());
    out += buf;
  }
  return out;
}

CallGraphSnapshot parse_call_graph(std::string_view text) {
  CallGraphSnapshot snap;
  bool saw_banner = false;
  bool in_rows = false;
  std::string caller;

  for (std::string_view line : util::split_lines(text)) {
    if (util::starts_with(util::trim(line), "Call graph:")) {
      saw_banner = true;
      continue;
    }
    if (!saw_banner) continue;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    if (util::starts_with(trimmed, "caller")) {
      in_rows = true;
      continue;
    }
    if (!in_rows) continue;

    if (!line.empty() && line[0] != ' ') {
      // A caller heading (flush to the left margin).
      caller = std::string(trimmed);
      continue;
    }
    // An edge row: calls, self seconds, callee name (may contain spaces).
    const auto tokens = util::split_ws(trimmed);
    if (tokens.size() < 3) {
      throw std::runtime_error("call graph: short edge row: " +
                               std::string(line));
    }
    std::uint64_t count = 0;
    double secs = 0.0;
    if (!util::parse_u64(tokens[0], count) ||
        !util::parse_double(tokens[1], secs)) {
      throw std::runtime_error("call graph: bad edge columns: " +
                               std::string(line));
    }
    if (caller.empty()) {
      throw std::runtime_error("call graph: edge row before any caller");
    }
    std::string callee;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      if (i > 2) callee += ' ';
      callee.append(tokens[i]);
    }
    CallEdge edge;
    edge.caller = caller;
    edge.callee = std::move(callee);
    edge.count = static_cast<std::int64_t>(count);
    edge.time_ns = static_cast<std::int64_t>(secs * 1e9 + 0.5);
    snap.upsert(std::move(edge));
  }
  if (!saw_banner) {
    throw std::runtime_error("call graph: missing 'Call graph:' banner");
  }
  return snap;
}

namespace {
constexpr std::uint32_t kMagic = 0x47435049;  // "IPCG" little-endian
constexpr std::uint32_t kVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void put_i64(std::string& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((u >> (8 * i)) & 0xff));
  }
}
void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::int64_t i64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return static_cast<std::int64_t>(v);
  }
  std::string str() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }
  bool at_end() const noexcept { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::runtime_error("call graph binary: truncated");
    }
  }
  std::string_view bytes_;
  std::size_t pos_ = 0;
};
}  // namespace

std::string encode_call_graph(const CallGraphSnapshot& snap) {
  std::string out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u32(out, snap.seq());
  put_u32(out, static_cast<std::uint32_t>(snap.edges().size()));
  put_i64(out, snap.timestamp_ns());
  for (const auto& e : snap.edges()) {
    put_str(out, e.caller);
    put_str(out, e.callee);
    put_i64(out, e.count);
    put_i64(out, e.time_ns);
  }
  return out;
}

CallGraphSnapshot decode_call_graph(std::string_view bytes) {
  Reader r(bytes);
  if (r.u32() != kMagic) {
    throw std::runtime_error("call graph binary: bad magic");
  }
  if (r.u32() != kVersion) {
    throw std::runtime_error("call graph binary: unsupported version");
  }
  const std::uint32_t seq = r.u32();
  const std::uint32_t count = r.u32();
  const std::int64_t ts = r.i64();
  CallGraphSnapshot snap(seq, ts);
  for (std::uint32_t i = 0; i < count; ++i) {
    CallEdge e;
    e.caller = r.str();
    e.callee = r.str();
    e.count = r.i64();
    e.time_ns = r.i64();
    snap.upsert(std::move(e));
  }
  if (!r.at_end()) {
    throw std::runtime_error("call graph binary: trailing bytes");
  }
  return snap;
}

}  // namespace incprof::gmon
