// Call-graph profile data — the second half of what gprof collects.
// The paper's analysis uses only the flat profile, but explicitly keeps
// the call graph on the table: "we have ongoing experiments with using
// the call-graph profile data to improve the results" (Section IV), and
// for MiniFE "extending the discovery analysis to use the call-graph
// structure might be a way to improve it and select our site, which is
// higher up in the call graph" (Section VI-B). src/core/lift.hpp builds
// that improvement on this data model.
//
// An edge (caller -> callee) carries the call count and the sampled
// self time of the callee while directly invoked from that caller.
// Calls with no instrumented caller use gprof's "<spontaneous>" parent.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace incprof::gmon {

/// gprof's name for a caller outside the profiled code.
inline constexpr std::string_view kSpontaneous = "<spontaneous>";

/// One caller->callee arc with cumulative counters.
struct CallEdge {
  std::string caller;
  std::string callee;
  /// Cumulative number of calls along this arc.
  std::int64_t count = 0;
  /// Cumulative sampled self time of `callee` while its direct parent
  /// was `caller`, ns.
  std::int64_t time_ns = 0;

  bool operator==(const CallEdge&) const = default;
};

/// A cumulative call-graph dump (companion to ProfileSnapshot).
class CallGraphSnapshot {
 public:
  CallGraphSnapshot() = default;
  CallGraphSnapshot(std::uint32_t seq, std::int64_t timestamp_ns)
      : seq_(seq), timestamp_ns_(timestamp_ns) {}

  std::uint32_t seq() const noexcept { return seq_; }
  std::int64_t timestamp_ns() const noexcept { return timestamp_ns_; }
  void set_seq(std::uint32_t s) noexcept { seq_ = s; }
  void set_timestamp_ns(std::int64_t t) noexcept { timestamp_ns_ = t; }

  /// Edges sorted by (caller, callee) — a class invariant.
  const std::vector<CallEdge>& edges() const noexcept { return edges_; }

  /// Inserts or overwrites the edge for (edge.caller, edge.callee).
  void upsert(CallEdge edge);

  /// Adds to the counters of an edge, creating it if absent.
  void accumulate(std::string_view caller, std::string_view callee,
                  std::int64_t count_delta, std::int64_t time_delta_ns);

  /// Looks up one edge, or nullptr.
  const CallEdge* find(std::string_view caller,
                       std::string_view callee) const noexcept;

  /// All edges whose callee is `callee` (the callers of a function).
  std::vector<const CallEdge*> callers_of(std::string_view callee) const;

  /// All edges whose caller is `caller` (the callees of a function).
  std::vector<const CallEdge*> callees_of(std::string_view caller) const;

  /// Total calls into `callee` across all callers (spontaneous included).
  std::int64_t total_calls_into(std::string_view callee) const;

  std::size_t size() const noexcept { return edges_.size(); }
  bool empty() const noexcept { return edges_.empty(); }

  bool operator==(const CallGraphSnapshot&) const = default;

 private:
  std::uint32_t seq_ = 0;
  std::int64_t timestamp_ns_ = 0;
  std::vector<CallEdge> edges_;  // sorted by (caller, callee)
};

/// Renders a readable call-graph report, one block per parent in
/// gprof's visual style:
///
///   Call graph:
///
///   caller                          calls        self-s  callee
///   <spontaneous>
///                                      12       1.170000  validate_bfs_result
///   run_bfs
///                                  24000       11.820000  sum_in_symm_elem_matrix
std::string format_call_graph(const CallGraphSnapshot& snap);

/// Parses the text produced by format_call_graph. Throws
/// std::runtime_error on malformed input.
CallGraphSnapshot parse_call_graph(std::string_view text);

/// Binary serialization (magic "IPCG"), mirroring the flat-profile
/// binary format.
std::string encode_call_graph(const CallGraphSnapshot& snap);
CallGraphSnapshot decode_call_graph(std::string_view bytes);

}  // namespace incprof::gmon
