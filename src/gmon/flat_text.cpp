#include "gmon/flat_text.hpp"

#include "util/strings.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace incprof::gmon {

namespace {
constexpr double kNsPerSec = 1e9;
constexpr double kNsPerUs = 1e3;

struct Row {
  const FunctionProfile* fp;
};
}  // namespace

std::string format_flat_profile(const ProfileSnapshot& snap,
                                const FlatTextOptions& opts) {
  std::vector<const FunctionProfile*> rows;
  rows.reserve(snap.functions().size());
  for (const auto& fp : snap.functions()) {
    if (!opts.include_idle && fp.self_ns == 0 && fp.calls == 0) continue;
    rows.push_back(&fp);
  }
  std::sort(rows.begin(), rows.end(),
            [](const FunctionProfile* a, const FunctionProfile* b) {
              if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
              return a->name < b->name;
            });

  const std::int64_t total_ns = snap.total_self_ns();

  std::string out;
  out += "Flat profile:\n\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "Each sample counts as %.9f seconds.\n",
                static_cast<double>(opts.sample_period_ns) / kNsPerSec);
  out += buf;
  out +=
      "  %   cumulative   self              self     total\n"
      " time   seconds   seconds    calls  us/call  us/call  name\n";

  double cumulative = 0.0;
  for (const FunctionProfile* fp : rows) {
    const double self_s = static_cast<double>(fp->self_ns) / kNsPerSec;
    cumulative += self_s;
    const double pct =
        total_ns > 0
            ? 100.0 * static_cast<double>(fp->self_ns) /
                  static_cast<double>(total_ns)
            : 0.0;
    if (fp->calls > 0) {
      const double self_per_call =
          static_cast<double>(fp->self_ns) / kNsPerUs /
          static_cast<double>(fp->calls);
      const double total_per_call =
          static_cast<double>(fp->inclusive_ns) / kNsPerUs /
          static_cast<double>(fp->calls);
      std::snprintf(buf, sizeof(buf),
                    "%6.2f %10.6f %9.6f %8lld %8.2f %8.2f  %s\n", pct,
                    cumulative, self_s,
                    static_cast<long long>(fp->calls), self_per_call,
                    total_per_call, fp->name.c_str());
    } else {
      // Sampled but never counted entering: gprof leaves the three call
      // columns blank. This is the signature of a long-lived function
      // that the site selector designates "loop".
      std::snprintf(buf, sizeof(buf),
                    "%6.2f %10.6f %9.6f %8s %8s %8s  %s\n", pct, cumulative,
                    self_s, "", "", "", fp->name.c_str());
    }
    out += buf;
  }
  return out;
}

ProfileSnapshot parse_flat_profile(std::string_view text) {
  ProfileSnapshot snap;
  bool saw_banner = false;
  bool in_rows = false;

  for (std::string_view line : util::split_lines(text)) {
    const std::string_view t = util::trim(line);
    if (t.empty()) continue;
    if (util::starts_with(t, "Flat profile:")) {
      saw_banner = true;
      continue;
    }
    if (util::starts_with(t, "Each sample counts")) continue;
    if (util::starts_with(t, "%")) continue;  // first header line
    if (util::starts_with(t, "time")) {       // second header line
      in_rows = true;
      continue;
    }
    if (!in_rows) continue;

    const auto tokens = util::split_ws(t);
    // A data row is either:
    //   pct cum self calls self/call total/call name...
    // or (zero-call row):
    //   pct cum self name...
    if (tokens.size() < 4) {
      throw std::runtime_error("flat profile: short row: " +
                               std::string(t));
    }
    double pct = 0.0, cum = 0.0, self_s = 0.0;
    if (!util::parse_double(tokens[0], pct) ||
        !util::parse_double(tokens[1], cum) ||
        !util::parse_double(tokens[2], self_s)) {
      throw std::runtime_error("flat profile: bad numeric columns: " +
                               std::string(t));
    }

    FunctionProfile fp;
    fp.self_ns = static_cast<std::int64_t>(std::llround(self_s * kNsPerSec));

    std::uint64_t calls = 0;
    std::size_t name_start;
    if (tokens.size() >= 7 && util::parse_u64(tokens[3], calls)) {
      double self_pc = 0.0, total_pc = 0.0;
      if (!util::parse_double(tokens[4], self_pc) ||
          !util::parse_double(tokens[5], total_pc)) {
        throw std::runtime_error("flat profile: bad per-call columns: " +
                                 std::string(t));
      }
      fp.calls = static_cast<std::int64_t>(calls);
      fp.inclusive_ns = static_cast<std::int64_t>(
          std::llround(total_pc * kNsPerUs * static_cast<double>(calls)));
      name_start = 6;
    } else {
      // Zero-call row: call columns are blank, so the 4th token starts
      // the name. Inclusive time is unrecoverable; approximate by self.
      fp.calls = 0;
      fp.inclusive_ns = fp.self_ns;
      name_start = 3;
    }

    std::string name;
    for (std::size_t i = name_start; i < tokens.size(); ++i) {
      if (i > name_start) name += ' ';
      name.append(tokens[i]);
    }
    if (name.empty()) {
      throw std::runtime_error("flat profile: row without a name: " +
                               std::string(t));
    }
    fp.name = std::move(name);
    snap.upsert(std::move(fp));
  }

  if (!saw_banner) {
    throw std::runtime_error("flat profile: missing 'Flat profile:' banner");
  }
  return snap;
}

}  // namespace incprof::gmon
