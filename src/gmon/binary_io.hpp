// Binary snapshot serialization — the stand-in for gprof's gmon.out
// format. The IncProf collector writes one of these per interval (then
// "renames it to a unique sample name", paper Section IV); the analysis
// stage reads them back. Fixed little-endian layout:
//
//   magic   u32  'IPGM' (0x4d475049)
//   version u32  (currently 1)
//   seq     u32
//   count   u32  number of function records
//   ts      i64  dump timestamp, ns
//   then per function:
//     name_len u32, name bytes (no NUL)
//     self_ns i64, calls i64, inclusive_ns i64
#pragma once

#include "gmon/snapshot.hpp"

#include <filesystem>
#include <string>

namespace incprof::gmon {

/// Serializes a snapshot to the binary gmon-style byte string.
std::string encode_binary(const ProfileSnapshot& snap);

/// Parses a binary snapshot. Throws std::runtime_error on a bad magic,
/// unsupported version, truncated input, or trailing garbage.
ProfileSnapshot decode_binary(std::string_view bytes);

/// Writes a snapshot to `path` (binary). Throws std::runtime_error on I/O
/// failure.
void write_binary_file(const ProfileSnapshot& snap,
                       const std::filesystem::path& path);

/// Reads a snapshot from `path`. Throws std::runtime_error on I/O or
/// format failure.
ProfileSnapshot read_binary_file(const std::filesystem::path& path);

}  // namespace incprof::gmon
