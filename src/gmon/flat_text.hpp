// gprof flat-profile text rendering and parsing. The paper found it
// "easier to just invoke the gprof command line tool to convert the data
// into standard gprof textual reports, and then process those" (Section
// IV); we preserve that code path: the analysis pipeline can round-trip
// every snapshot through this text form before differencing.
//
// Format mirrors `gprof -b -p`:
//
//   Flat profile:
//
//   Each sample counts as 0.000001 seconds.
//     %   cumulative   self              self     total
//    time   seconds   seconds    calls  us/call  us/call  name
//    62.21     1.17      1.17       12    97.50    97.50  validate_bfs_result
//    ...
//
// Functions with zero calls leave the three call columns blank, exactly
// as gprof does for functions that were sampled but never counted (the
// long-running "loop" case the site selector cares about).
//
// Limitations (same as real gprof text): inclusive_ns is not representable
// and parses back as self_ns for calls==0 rows / calls*total_per_call
// otherwise; seq and timestamp are carried by the enclosing file name,
// not the text.
#pragma once

#include "gmon/snapshot.hpp"

#include <string>
#include <string_view>

namespace incprof::gmon {

/// Options for rendering the flat-profile text.
struct FlatTextOptions {
  /// Sampling period represented by one sample, in nanoseconds; printed
  /// in the "Each sample counts as" banner (gprof's 100 Hz default).
  std::int64_t sample_period_ns = 10'000'000;
  /// Print rows for functions with zero self time and zero calls.
  bool include_idle = false;
};

/// Renders the snapshot as a gprof-style flat profile. Rows are ordered
/// by descending self time then name, as gprof orders them.
std::string format_flat_profile(const ProfileSnapshot& snap,
                                const FlatTextOptions& opts = {});

/// Parses a flat-profile text back into a snapshot. The returned
/// snapshot's seq/timestamp are zero (assign them from the file name).
/// Throws std::runtime_error on malformed input.
ProfileSnapshot parse_flat_profile(std::string_view text);

}  // namespace incprof::gmon
