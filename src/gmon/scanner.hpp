// Snapshot-directory scanning. The IncProf collector leaves a directory of
// per-interval dumps named like gmon-000042.out (binary) or
// flat-000042.txt (already-converted text reports); the analysis stage
// loads them all, ordered by the interval id embedded in the name — the
// "unique sample name" of the paper's rename step.
#pragma once

#include "gmon/snapshot.hpp"

#include <filesystem>
#include <string>
#include <vector>

namespace incprof::gmon {

/// File-name helpers used by both the collector and the scanner.
/// Sequence numbers are zero-padded to six digits so lexicographic and
/// numeric order agree.
std::string binary_dump_name(std::uint32_t seq);
std::string text_dump_name(std::uint32_t seq);

/// Extracts the sequence number from a dump file name of either kind;
/// returns false if the name does not match.
bool parse_dump_seq(const std::string& filename, std::uint32_t& seq);

/// Loads all binary dumps (gmon-*.out) under `dir`, ordered by seq.
/// Throws std::runtime_error on unreadable or malformed files.
std::vector<ProfileSnapshot> load_binary_dumps(
    const std::filesystem::path& dir);

/// Outcome of a lenient directory load.
struct LenientLoadResult {
  std::vector<ProfileSnapshot> snapshots;
  /// Files that failed to parse (truncated by a crash, partially
  /// written over NFS, ...), skipped rather than fatal.
  std::vector<std::filesystem::path> skipped;
  /// Duplicate-seq dumps dropped (the collector was restarted into the
  /// same directory); the chronologically later file wins.
  std::size_t duplicates_dropped = 0;
};

/// Like load_binary_dumps, but corrupt files are skipped and duplicate
/// sequence numbers resolved instead of throwing — what an analysis run
/// over a production dump directory wants. The interval axis may have
/// gaps; differencing still works because dumps are cumulative.
LenientLoadResult load_binary_dumps_lenient(
    const std::filesystem::path& dir);

/// Loads all text dumps (flat-*.txt) under `dir`, ordered by seq, and
/// assigns each snapshot's seq from its file name.
std::vector<ProfileSnapshot> load_text_dumps(
    const std::filesystem::path& dir);

/// Converts every binary dump in `dir` to the gprof flat-profile text
/// form next to it (flat-NNNNNN.txt) — the equivalent of the paper's
/// "invoke the gprof command line tool on each gmon file" step. Returns
/// the number of files converted.
std::size_t convert_dumps_to_text(const std::filesystem::path& dir,
                                  std::int64_t sample_period_ns);

}  // namespace incprof::gmon
