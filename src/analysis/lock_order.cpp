#include "analysis/lock_order.hpp"

#include <sstream>
#include <vector>

namespace incprof::analysis {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    tokens.push_back(tok);
  }
  return tokens;
}

}  // namespace

LockOrder LockOrder::parse(const std::string& text, std::string* error) {
  LockOrder order;
  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& why) {
    if (error) {
      *error = "lock_order.txt:" + std::to_string(line_no) + ": " + why;
    }
    return LockOrder{};
  };
  while (std::getline(is, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "leaf") {
      if (tokens.size() != 2) return fail("expected: leaf <mutex>");
      order.known_.insert(tokens[1]);
    } else if (tokens[0] == "order") {
      // order A > B [> C ...] — a chain of direct edges.
      if (tokens.size() < 4 || tokens.size() % 2 != 0) {
        return fail("expected: order <mutex> > <mutex> [> <mutex> ...]");
      }
      for (std::size_t i = 2; i < tokens.size(); i += 2) {
        if (tokens[i] != ">") return fail("expected '>' separator");
        const std::string& outer = tokens[i - 1];
        const std::string& inner = tokens[i + 1];
        if (outer == inner) return fail("self-edge " + outer);
        order.known_.insert(outer);
        order.known_.insert(inner);
        order.may_acquire_[outer].insert(inner);
      }
    } else {
      return fail("unknown declaration '" + tokens[0] + "'");
    }
  }
  // Transitive closure (the inventory is tiny; fixpoint is fine).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [outer, inners] : order.may_acquire_) {
      std::set<std::string> grown = inners;
      for (const std::string& mid : inners) {
        auto it = order.may_acquire_.find(mid);
        if (it == order.may_acquire_.end()) continue;
        grown.insert(it->second.begin(), it->second.end());
      }
      if (grown.size() != inners.size()) {
        inners = std::move(grown);
        changed = true;
      }
    }
  }
  // A cycle would make the "hierarchy" vacuous; reject it.
  for (const auto& [outer, inners] : order.may_acquire_) {
    if (inners.count(outer)) {
      line_no = 0;
      return fail("cycle through " + outer);
    }
  }
  if (error) error->clear();
  return order;
}

bool LockOrder::allows(const std::string& outer,
                       const std::string& inner) const {
  auto it = may_acquire_.find(outer);
  return it != may_acquire_.end() && it->second.count(inner) != 0;
}

}  // namespace incprof::analysis
