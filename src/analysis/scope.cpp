#include "analysis/scope.hpp"

#include <algorithm>
#include <cctype>
#include <regex>

namespace incprof::analysis {

namespace {

enum class ScopeKind { kNamespace, kClass, kFunction, kBlock };

struct Scope {
  ScopeKind kind;
  std::string name;  // class or function name; empty for blocks
  int depth;         // brace depth of this scope's body
};

struct ActiveLock {
  std::string key;
  std::string var;
  std::string function;
  int decl_depth;
  bool active;
  std::size_t seg_line;
  std::size_t seg_col;
};

const std::regex kLockDeclRe(
    R"(\b(?:util\s*::\s*)?MutexLock(?:Maybe)?\s+(\w+)\s*\(\s*([^)]*?)\s*\))");
const std::regex kToggleRe(R"(\b(\w+)\s*\.\s*(unlock|lock)\s*\(\s*\))");
const std::regex kTemplatePrefixRe(R"(^template\s*<[^<>]*>\s*)");
const std::regex kAccessPrefixRe(
    R"(^(?:public|private|protected)\s*:\s*)");
const std::regex kClassHeadRe(
    R"(^(?:typedef\s+)?(?:class|struct|union|enum)\b)");
const std::regex kTrailingIdRe(R"(([A-Za-z_~][A-Za-z0-9_:~]*)\s*$)");

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Last identifier of `text` (possibly ::-qualified); empty if none.
std::string trailing_identifier(const std::string& text) {
  std::smatch m;
  if (std::regex_search(text, m, kTrailingIdRe)) return m[1].str();
  return "";
}

/// Class name from a class/struct header: the last identifier before
/// any base-clause colon (a `:` that is not part of `::`).
std::string class_name_of(const std::string& header) {
  std::string head = header;
  for (std::size_t i = 0; i + 1 <= head.size(); ++i) {
    if (head[i] != ':') continue;
    const bool part_of_scope =
        (i + 1 < head.size() && head[i + 1] == ':') ||
        (i > 0 && head[i - 1] == ':');
    if (!part_of_scope) {
      head = head.substr(0, i);
      break;
    }
  }
  return trailing_identifier(trim(head));
}

/// Function name from a function header: the identifier immediately
/// before the parameter list's `(`.
std::string function_name_of(const std::string& header) {
  const std::size_t paren = header.find('(');
  if (paren == std::string::npos) return "";
  return trailing_identifier(header.substr(0, paren));
}

struct Event {
  enum Kind { kDecl, kToggle } kind;
  std::size_t col;
  std::size_t end_col;
  // kDecl: var + mutex expression; kToggle: var + "lock"/"unlock".
  std::string a;
  std::string b;
};

}  // namespace

bool LockAnalysis::held_at(std::size_t line, std::size_t col) const {
  return !held_keys_at(line, col).empty();
}

std::vector<std::string> LockAnalysis::held_keys_at(
    std::size_t line, std::size_t col) const {
  std::vector<std::string> keys;
  for (const LockSpan& s : spans) {
    const bool after_begin =
        line > s.begin_line || (line == s.begin_line && col > s.begin_col);
    const bool before_end =
        line < s.end_line || (line == s.end_line && col < s.end_col);
    if (after_begin && before_end) keys.push_back(s.key);
  }
  return keys;
}

LockAnalysis analyze_locks(const FileViews& views) {
  LockAnalysis out;
  std::vector<Scope> scopes;
  std::vector<ActiveLock> locks;
  std::string header;  // code since the last ; { } — the next brace's
                       // declaration header, accumulated across lines
  int depth = 0;
  bool in_preproc = false;

  auto innermost_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == ScopeKind::kClass) return it->name;
    }
    return "";
  };
  auto innermost_function = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == ScopeKind::kFunction) return it->name;
    }
    return "";
  };

  auto qualify = [&](const std::string& expr) -> std::string {
    // Only simple identifiers get class-qualified; anything with an
    // explicit object path is reported as written.
    std::string e = expr;
    if (e.rfind("this->", 0) == 0) e = e.substr(6);
    const bool simple =
        !e.empty() && std::all_of(e.begin(), e.end(), [](char c) {
          return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
        });
    if (!simple) return e;
    std::string cls = innermost_class();
    if (cls.empty()) {
      // Out-of-line member function: qualify with the class part of
      // the function's own name (Server::stop -> Server).
      const std::string fn = innermost_function();
      const std::size_t sep = fn.rfind("::");
      if (sep != std::string::npos) cls = fn.substr(0, sep);
    }
    return cls.empty() ? e : cls + "::" + e;
  };

  auto close_segment = [&](ActiveLock& lk, std::size_t line_no,
                           std::size_t col) {
    if (!lk.active) return;
    lk.active = false;
    out.spans.push_back({lk.key, lk.var, lk.function, lk.seg_line,
                         lk.seg_col, line_no, col});
  };

  for (std::size_t n = 0; n < views.code.size(); ++n) {
    const std::string& code = views.code[n];
    const std::string& raw = views.raw[n];
    const std::size_t line_no = n + 1;

    const std::string t = trim(code);
    if (in_preproc || (!t.empty() && t[0] == '#')) {
      in_preproc = !raw.empty() && raw.back() == '\\';
      continue;
    }

    // Collect in-line events (lock declarations and toggles), then
    // walk the line character by character, applying each event at its
    // column so brace scoping and lock lifetimes interleave correctly.
    std::vector<Event> events;
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        kLockDeclRe);
         it != std::sregex_iterator(); ++it) {
      events.push_back({Event::kDecl,
                        static_cast<std::size_t>(it->position()),
                        static_cast<std::size_t>(it->position()) +
                            it->length(),
                        (*it)[1].str(), (*it)[2].str()});
    }
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        kToggleRe);
         it != std::sregex_iterator(); ++it) {
      events.push_back({Event::kToggle,
                        static_cast<std::size_t>(it->position()),
                        static_cast<std::size_t>(it->position()) +
                            it->length(),
                        (*it)[1].str(), (*it)[2].str()});
    }
    std::sort(events.begin(), events.end(),
              [](const Event& x, const Event& y) { return x.col < y.col; });
    std::size_t next_event = 0;

    for (std::size_t col = 0; col <= code.size(); ++col) {
      while (next_event < events.size() &&
             events[next_event].col == col) {
        const Event& ev = events[next_event++];
        if (ev.kind == Event::kDecl) {
          const std::string key = qualify(ev.b);
          const std::string fn = innermost_function();
          out.acquisitions.push_back({key, line_no, fn});
          for (const ActiveLock& held : locks) {
            if (held.active) {
              out.nestings.push_back({held.key, key, line_no, fn});
            }
          }
          locks.push_back({key, ev.a, fn, depth, true, line_no, ev.col});
        } else if (ev.b == "unlock") {
          for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
            if (it->var == ev.a && it->active) {
              close_segment(*it, line_no, ev.end_col);
              break;
            }
          }
        } else {  // re-lock of a previously unlock()ed MutexLock
          for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
            if (it->var == ev.a && !it->active) {
              it->active = true;
              it->seg_line = line_no;
              it->seg_col = ev.col;
              out.acquisitions.push_back(
                  {it->key, line_no, it->function});
              for (const ActiveLock& held : locks) {
                if (held.active && &held != &*it) {
                  out.nestings.push_back(
                      {held.key, it->key, line_no, it->function});
                }
              }
              break;
            }
          }
        }
      }
      if (col == code.size()) break;
      const char c = code[col];
      if (c == '{') {
        const std::string head = trim(header);
        header.clear();
        ++depth;
        std::string stripped =
            std::regex_replace(head, kTemplatePrefixRe, "");
        // An access label glued to the header ("private: struct
        // Handler") must not hide the class head.
        std::smatch access;
        while (std::regex_search(stripped, access, kAccessPrefixRe)) {
          stripped = stripped.substr(access[0].length());
        }
        ScopeKind kind = ScopeKind::kBlock;
        std::string name;
        if (stripped.rfind("namespace", 0) == 0) {
          kind = ScopeKind::kNamespace;
        } else if (std::regex_search(stripped, kClassHeadRe) &&
                   stripped.find('=') == std::string::npos) {
          kind = ScopeKind::kClass;
          name = class_name_of(stripped);
        } else if (stripped.find('(') != std::string::npos &&
                   stripped.find('=') == std::string::npos) {
          // A parenthesized header at namespace/class scope is a
          // function definition; inside a function it is control flow.
          const bool in_code = !scopes.empty() &&
                               (scopes.back().kind == ScopeKind::kFunction ||
                                scopes.back().kind == ScopeKind::kBlock);
          if (!in_code) {
            kind = ScopeKind::kFunction;
            name = function_name_of(stripped);
            const std::string cls = innermost_class();
            if (!cls.empty() && name.find("::") == std::string::npos) {
              name = cls + "::" + name;
            }
          }
        }
        scopes.push_back({kind, name, depth});
      } else if (c == '}') {
        header.clear();
        // Locks declared directly in the closing scope die here.
        for (auto it = locks.begin(); it != locks.end();) {
          if (it->decl_depth == depth) {
            close_segment(*it, line_no, col);
            it = locks.erase(it);
          } else {
            ++it;
          }
        }
        if (!scopes.empty() && scopes.back().depth == depth) {
          scopes.pop_back();
        }
        if (depth > 0) --depth;
      } else if (c == ';') {
        header.clear();
      } else {
        header.push_back(c);
      }
    }
    header.push_back(' ');  // line break separates header tokens
  }

  // Malformed input (unbalanced braces): close dangling segments at
  // EOF so spans are always well-formed.
  const std::size_t last = views.code.size();
  for (ActiveLock& lk : locks) {
    close_segment(lk, last == 0 ? 1 : last,
                  last == 0 ? 0 : views.code[last - 1].size());
  }
  return out;
}

}  // namespace incprof::analysis
