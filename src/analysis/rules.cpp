#include "analysis/rules.hpp"

#include <algorithm>
#include <regex>

namespace incprof::analysis {

namespace {

const std::regex kBareMutexRe(
    R"(std\s*::\s*(recursive_mutex|recursive_timed_mutex|timed_mutex|shared_mutex|shared_timed_mutex|mutex|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable_any|condition_variable)\b)");
const std::regex kDetachRe(R"((\.|->)\s*detach\s*\(\s*\))");
const std::regex kMetricCallRe(
    R"(\b(counter|gauge|histogram)\s*\(\s*"((?:[^"\\]|\\.)*)\")");
const std::regex kSpanRe(R"(\bScopedSpan\s+\w+\s*\(\s*"([^"]*)\")");
// Prometheus-compatible: lowercase, digits allowed after the first
// character (tests register names like shared_0).
const std::regex kMetricNameRe(R"([a-z_][a-z0-9_]*(\{.*\})?)");
const std::regex kSpanNameRe(R"([a-z_][a-z0-9_.]*)");
const std::regex kNakedNewRe(R"(\bnew\b)");
const std::regex kMallocRe(R"(\b(malloc|calloc|realloc|free)\s*\()");
// `#include <new>` names the header, not an allocation.
const std::regex kIncludeLineRe(R"(^\s*#\s*include\b)");
// The §6 determinism contract: the clustering kernels must not read
// wall clocks, process entropy, or the environment.
const std::regex kDeterminismRe(
    R"(\b(random_device|system_clock|getenv)\b|\b(rand|srand|time)\s*\()");
// Fast-math opt-ins (flag spellings in macros/strings, float_control
// or GCC optimize pragmas) would let the compiler reassociate the
// kernels' reductions, silently voiding the scalar/SIMD bitwise
// parity the §6 dispatch tiers promise. Matched on the
// comment-stripped literal-preserving view: pragma string arguments
// count, prose in comments does not.
const std::regex kFastMathRe(R"(fast-math|\bfloat_control\b)");
// Calls that can block on the outside world (or another thread).
// `join()` matches only the zero-argument thread join.
const std::regex kBlockingCallRe(
    R"(\b(send|recv|sendto|recvfrom|read|write|poll|select|accept|connect|sleep_for|flush)\s*\(|\bjoin\s*\(\s*\))");
// Fleet-synthesized exposition names (string literals in src/fleet).
const std::regex kFleetLiteralRe(R"re("(fleet_[a-z][a-z0-9_]*)")re");
// Inline markdown code span.
const std::regex kDocSpanRe(R"(`([^`]+)`)");
// A doc token that claims to be a metric: name with optional labels.
const std::regex kDocMetricRe(R"(^([a-z][a-z0-9_]*)(\{[^}]*\})?$)");

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Is this inline-code doc token plausibly a metric citation (rather
/// than a function, flag, or file name)? Tight on purpose: a label
/// block, a unit suffix, or a reserved exposition prefix. Tokens with
/// a trailing underscore are prefix mentions (`fleet_`), not names.
bool doc_token_is_metric(const std::string& name, bool has_labels) {
  if (name.empty() || name.back() == '_') return false;
  if (has_labels) return true;
  static constexpr std::string_view kSuffixes[] = {
      "_total", "_seconds", "_ns", "_ms", "_bytes"};
  for (const auto s : kSuffixes) {
    if (ends_with(name, s)) return true;
  }
  return starts_with(name, "fleet_") || starts_with(name, "obs_");
}

}  // namespace

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> rules = {
      kRuleBareMutex,  kRuleDetach,        kRuleMetricName,
      kRuleNakedNew,   kRuleLockOrder,     kRuleLockAcrossIo,
      kRuleDeterminism, kRuleMetricRegistry};
  return rules;
}

bool suppressed(const std::string& raw_line, std::string_view rule) {
  const std::string marker =
      "incprof-lint: allow(" + std::string(rule) + ")";
  return raw_line.find(marker) != std::string::npos;
}

void check_file(const FileCheckInput& input,
                std::vector<Finding>& findings) {
  const FileViews& views = *input.views;
  for (std::size_t n = 0; n < views.code.size(); ++n) {
    const std::string& raw = views.raw[n];
    const std::string& code = views.code[n];
    const std::string& nc = views.no_comments[n];
    const std::size_t line_no = n + 1;
    std::smatch m;

    if (input.rules.bare_mutex && !input.is_annotations_header &&
        std::regex_search(code, m, kBareMutexRe) &&
        !suppressed(raw, kRuleBareMutex)) {
      findings.push_back(
          {input.display_path, line_no, kRuleBareMutex,
           "use util::Mutex / util::MutexLock / util::CondVar from "
           "util/thread_annotations.hpp instead of std::" +
               m[1].str()});
    }

    if (input.rules.detach && std::regex_search(code, m, kDetachRe) &&
        !suppressed(raw, kRuleDetach)) {
      findings.push_back({input.display_path, line_no, kRuleDetach,
                          "detached threads escape join accounting; "
                          "track and join the thread instead"});
    }

    // Metric names live in string literals, so match against the
    // comment-stripped (literal-preserving) view.
    if (input.rules.metric_name) {
      for (auto it = std::sregex_iterator(nc.begin(), nc.end(),
                                          kMetricCallRe);
           it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[2].str();
        if (!std::regex_match(name, kMetricNameRe) &&
            !suppressed(raw, kRuleMetricName)) {
          findings.push_back(
              {input.display_path, line_no, kRuleMetricName,
               "metric name \"" + name +
                   "\" does not match [a-z_][a-z0-9_]*(\\{.*\\})?"});
        }
      }
    }

    if (input.rules.naked_new &&
        (std::regex_search(code, m, kNakedNewRe) ||
         std::regex_search(code, m, kMallocRe)) &&
        !std::regex_search(code, kIncludeLineRe) &&
        !suppressed(raw, kRuleNakedNew)) {
      findings.push_back({input.display_path, line_no, kRuleNakedNew,
                          "allocate through make_unique/make_shared "
                          "or a container"});
    }

    if (input.rules.determinism &&
        std::regex_search(code, m, kDeterminismRe) &&
        !suppressed(raw, kRuleDeterminism)) {
      const std::string what =
          m[1].matched ? m[1].str() : m[2].str() + "(";
      findings.push_back(
          {input.display_path, line_no, kRuleDeterminism,
           "`" + what +
               "` in a deterministic kernel — the §6 contract forbids "
               "wall clocks, process entropy, and the environment; "
               "thread seeded util::Rng / virtual time through instead"});
    }

    if (input.rules.determinism && std::regex_search(nc, m, kFastMathRe) &&
        !suppressed(raw, kRuleDeterminism)) {
      findings.push_back(
          {input.display_path, line_no, kRuleDeterminism,
           "`" + m.str() +
               "` in a deterministic kernel — fast-math reassociation "
               "voids the §6 scalar/SIMD bitwise parity contract; keep "
               "strict FP semantics (-ffp-contract=off at most)"});
    }

    if (input.rules.lock_across_io && input.locks != nullptr) {
      for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                          kBlockingCallRe);
           it != std::sregex_iterator(); ++it) {
        const auto col = static_cast<std::size_t>(it->position());
        const auto held = input.locks->held_keys_at(line_no, col);
        if (held.empty() || suppressed(raw, kRuleLockAcrossIo)) {
          continue;
        }
        std::string held_list;
        for (const auto& k : held) {
          if (!held_list.empty()) held_list += ", ";
          held_list += k;
        }
        std::string call = it->str();
        call.erase(std::remove_if(call.begin(), call.end(),
                                  [](char c) {
                                    return c == ' ' || c == '(' ||
                                           c == ')';
                                  }),
                   call.end());
        findings.push_back(
            {input.display_path, line_no, kRuleLockAcrossIo,
             "blocking call `" + call + "()` while holding " +
                 held_list +
                 " — release the lock before I/O (copy state out "
                 "under the lock, act on it outside)"});
      }
    }
  }

  if (input.rules.lock_order && input.locks != nullptr) {
    const LockOrder* order = input.order;
    auto raw_of = [&](std::size_t line) -> const std::string& {
      static const std::string empty;
      return line >= 1 && line <= views.raw.size() ? views.raw[line - 1]
                                                   : empty;
    };
    for (const LockAcquisition& acq : input.locks->acquisitions) {
      const bool known = order != nullptr && order->knows(acq.key);
      if (!known && !suppressed(raw_of(acq.line), kRuleLockOrder)) {
        findings.push_back(
            {input.display_path, acq.line, kRuleLockOrder,
             "mutex " + acq.key + " (in " +
                 (acq.function.empty() ? std::string("?")
                                       : acq.function) +
                 ") is not declared in src/analysis/lock_order.txt — "
                 "add it to the manifest (and DESIGN §5.3)"});
      }
    }
    if (order != nullptr) {
      for (const LockNesting& nest : input.locks->nestings) {
        if (!order->knows(nest.outer_key) ||
            !order->knows(nest.inner_key)) {
          continue;  // already reported as unknown above
        }
        if (order->allows(nest.outer_key, nest.inner_key)) continue;
        if (suppressed(raw_of(nest.line), kRuleLockOrder)) continue;
        const std::string why =
            nest.inner_key == nest.outer_key
                ? "re-acquiring " + nest.outer_key + " while held"
                : "acquiring " + nest.inner_key + " while holding " +
                      nest.outer_key +
                      " violates the declared partial order";
        findings.push_back({input.display_path, nest.line,
                            kRuleLockOrder,
                            why + " (in " + nest.function +
                                "; see src/analysis/lock_order.txt)"});
      }
    }
  }
}

void MetricRegistryCheck::scan_source(const std::string& display_path,
                                      const FileViews& views) {
  const bool in_fleet = display_path.rfind("src/fleet/", 0) == 0;
  for (std::size_t n = 0; n < views.no_comments.size(); ++n) {
    const std::string& nc = views.no_comments[n];
    const std::string& raw = views.raw[n];
    const std::size_t line_no = n + 1;
    for (auto it = std::sregex_iterator(nc.begin(), nc.end(),
                                        kMetricCallRe);
         it != std::sregex_iterator(); ++it) {
      std::string name = (*it)[2].str();
      const std::size_t brace = name.find('{');
      if (brace != std::string::npos) name = name.substr(0, brace);
      if (name.empty()) continue;
      auto& kinds = names_[name];
      kinds.emplace((*it)[1].str(), Site{display_path, line_no, raw});
    }
    for (auto it =
             std::sregex_iterator(nc.begin(), nc.end(), kSpanRe);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (name.empty()) continue;
      names_[name].emplace("span", Site{display_path, line_no, raw});
    }
    if (in_fleet) {
      for (auto it = std::sregex_iterator(nc.begin(), nc.end(),
                                          kFleetLiteralRe);
           it != std::sregex_iterator(); ++it) {
        synthesized_.insert((*it)[1].str());
      }
    }
  }
}

void MetricRegistryCheck::scan_docs(const std::string& display_path,
                                    const std::string& text) {
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    ++line_no;
    for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                        kDocSpanRe);
         it != std::sregex_iterator(); ++it) {
      const std::string token = (*it)[1].str();
      std::smatch m;
      if (!std::regex_match(token, m, kDocMetricRe)) continue;
      const std::string name = m[1].str();
      if (!doc_token_is_metric(name, m[2].matched)) continue;
      cites_.push_back({display_path, line_no, name, line});
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
}

void MetricRegistryCheck::finish(std::vector<Finding>& findings) const {
  for (const auto& [name, kinds] : names_) {
    // The fleet_ namespace is reserved for the merged exposition the
    // gateway synthesizes; a shard-level registration would collide
    // with the prefixed merge of some other metric.
    if (starts_with(name, "fleet_")) {
      for (const auto& [kind, site] : kinds) {
        if (kind == "span") continue;
        if (suppressed(site.raw, kRuleMetricRegistry)) continue;
        findings.push_back(
            {site.file, site.line, kRuleMetricRegistry,
             "metric \"" + name + "\" registered as a " + kind +
                 " — the fleet_ prefix is reserved for the gateway's "
                 "merged exposition (src/fleet)"});
      }
    }
    if (kinds.size() < 2) continue;
    // One name, several kinds: report every site after the first so
    // the finding points at the drift, not the original.
    const auto& first = *kinds.begin();
    for (auto it = std::next(kinds.begin()); it != kinds.end(); ++it) {
      const Site& site = it->second;
      if (suppressed(site.raw, kRuleMetricRegistry)) continue;
      findings.push_back(
          {site.file, site.line, kRuleMetricRegistry,
           "\"" + name + "\" registered as a " + it->first +
               " but already a " + first.first + " (" + first.second.file +
               ":" + std::to_string(first.second.line) +
               ") — metric/span names must keep one type"});
    }
  }

  for (const Cite& cite : cites_) {
    bool known = names_.count(cite.name) != 0 ||
                 synthesized_.count(cite.name) != 0;
    if (!known && starts_with(cite.name, "fleet_")) {
      // The merged exposition prefixes every shard series with fleet_
      // (and derives _count/_sum/_max families from histograms).
      std::string base = cite.name.substr(6);
      known = names_.count(base) != 0;
      for (const std::string_view suffix :
           {"_count", "_sum", "_max", "_bucket"}) {
        if (known) break;
        if (ends_with(base, suffix)) {
          const std::string stem =
              base.substr(0, base.size() - suffix.size());
          auto it = names_.find(stem);
          known = it != names_.end() && it->second.count("histogram");
        }
      }
    }
    if (!known && !starts_with(cite.name, "fleet_")) {
      // Daemon-side derived histogram families (exposition suffixes).
      for (const std::string_view suffix :
           {"_count", "_sum", "_max", "_bucket"}) {
        if (ends_with(cite.name, suffix)) {
          const std::string stem =
              cite.name.substr(0, cite.name.size() - suffix.size());
          auto it = names_.find(stem);
          if (it != names_.end() && it->second.count("histogram")) {
            known = true;
            break;
          }
        }
      }
    }
    if (known || suppressed(cite.raw, kRuleMetricRegistry)) continue;
    findings.push_back(
        {cite.file, cite.line, kRuleMetricRegistry,
         "doc cites metric `" + cite.name +
             "` but no such metric/span is registered in src/ or "
             "tools/ — fix the doc or register the metric"});
  }
  std::sort(findings.begin(), findings.end());
}

}  // namespace incprof::analysis
