// Machine-readable mirror of the DESIGN §5.3 lock hierarchy
// (src/analysis/lock_order.txt). The lock-order rule checks every
// lexically nested acquisition against this partial order, and every
// acquisition against the manifest's mutex inventory, so the document
// and the code cannot drift apart silently.
//
// Grammar (one declaration per line; `#` starts a comment):
//   order A > B [> C ...]   A may be held while acquiring B (and B
//                           while acquiring C); closed transitively.
//   leaf X                  nothing may be acquired while X is held.
// Every mutex named in either form is "known"; acquiring a mutex that
// is absent from the manifest is a finding.
#pragma once

#include <map>
#include <set>
#include <string>

namespace incprof::analysis {

class LockOrder {
 public:
  /// Parses manifest text. On grammar errors returns an empty order
  /// and sets `error` (first offending line).
  static LockOrder parse(const std::string& text, std::string* error);

  bool empty() const { return known_.empty(); }
  bool knows(const std::string& mutex) const {
    return known_.count(mutex) != 0;
  }

  /// True when `outer` may be held while acquiring `inner`
  /// (transitive closure of the declared edges).
  bool allows(const std::string& outer, const std::string& inner) const;

  const std::set<std::string>& known() const { return known_; }

 private:
  std::map<std::string, std::set<std::string>> may_acquire_;
  std::set<std::string> known_;
};

}  // namespace incprof::analysis
