// Brace/scope recovery over the blanked code view: which function each
// line belongs to, and where every util::MutexLock / MutexLockMaybe
// region begins, ends, and toggles (mid-scope unlock()/lock()).
//
// This is lexical analysis, not symbol resolution: a lock taken behind
// a function call is invisible, and a lambda body is attributed to its
// enclosing function. That is exactly the subset DESIGN §5.3 commits
// to keeping analyzable — straight-line RAII locking with the mutex
// named at the acquisition site — and the lock-order / lock-across-io
// rules are defined over it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/lexer.hpp"

namespace incprof::analysis {

/// One contiguous stretch of held lock. A MutexLock that is
/// mid-scope unlock()ed and later re-lock()ed produces one span per
/// held stretch (the reaper pattern in server.cpp).
struct LockSpan {
  /// Hierarchy key: `Class::member` when the acquisition site sits in
  /// a member function (in-class or out-of-line), the bare expression
  /// otherwise (file-scope mutexes like g_sink_mu).
  std::string key;
  std::string var;       ///< the MutexLock variable name
  std::string function;  ///< enclosing function, as written (qualified)
  std::size_t begin_line = 0;  ///< 1-based, inclusive
  std::size_t begin_col = 0;   ///< 0-based column of the acquisition
  std::size_t end_line = 0;    ///< 1-based, inclusive
  std::size_t end_col = 0;     ///< column one past the release point
};

/// A lock acquired while other locks are held: one record per
/// (held, acquired) pair, in hierarchy keys.
struct LockNesting {
  std::string outer_key;
  std::string inner_key;
  std::size_t line = 0;  ///< line of the inner acquisition
  std::string function;
};

/// Every acquisition site (for manifest-membership checks).
struct LockAcquisition {
  std::string key;
  std::size_t line = 0;
  std::string function;
};

struct LockAnalysis {
  std::vector<LockSpan> spans;
  std::vector<LockNesting> nestings;
  std::vector<LockAcquisition> acquisitions;

  /// True when any lock span covers (line, col). `line` is 1-based,
  /// `col` a 0-based column in that line.
  bool held_at(std::size_t line, std::size_t col) const;

  /// Keys of the spans covering (line, col).
  std::vector<std::string> held_keys_at(std::size_t line,
                                        std::size_t col) const;
};

/// Runs the brace/scope tracker over the blanked code view.
LockAnalysis analyze_locks(const FileViews& views);

}  // namespace incprof::analysis
