#include "analysis/lexer.hpp"

#include <cctype>
#include <cstddef>

namespace incprof::analysis {

namespace {

/// True when a `'` at the end of `line_code` would continue a numeric
/// literal rather than open a char literal. The preceding token is the
/// maximal [0-9a-zA-Z_.] run (pp-number characters); if it starts with
/// a digit the quote is a C++14 digit separator (1'000'000, 0xff'ff).
/// A run starting with a letter (L, u8, x) means a char literal or an
/// identifier, never a number.
bool is_digit_separator(const std::string& line_code) {
  std::size_t begin = line_code.size();
  while (begin > 0) {
    const unsigned char c =
        static_cast<unsigned char>(line_code[begin - 1]);
    if (std::isalnum(c) || c == '_' || c == '.') {
      --begin;
    } else {
      break;
    }
  }
  if (begin == line_code.size()) return false;  // no preceding token
  return std::isdigit(static_cast<unsigned char>(line_code[begin])) != 0;
}

}  // namespace

FileViews make_views(const std::string& text) {
  enum class State { kCode, kLineComment, kBlockComment, kString,
                     kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the )delim" terminator
  std::string line_raw, line_code, line_nc;
  FileViews views;

  auto flush_line = [&] {
    views.raw.push_back(line_raw);
    views.code.push_back(line_code);
    views.no_comments.push_back(line_nc);
    line_raw.clear();
    line_code.clear();
    line_nc.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    line_raw.push_back(c);
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          line_code += ' ';
          line_nc += ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          line_raw.push_back(next);
          line_code += "  ";
          line_nc += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string? The R must directly precede the quote and not
          // be part of an identifier (LR"..." etc. treated the same).
          std::size_t j = line_code.size();
          if (j >= 1 && line_code[j - 1] == 'R' &&
              (j < 2 || (!std::isalnum(static_cast<unsigned char>(
                             line_code[j - 2])) &&
                         line_code[j - 2] != '_'))) {
            state = State::kRawString;
            raw_delim = ")";
            for (std::size_t k = i + 1;
                 k < text.size() && text[k] != '(' && text[k] != '\n';
                 ++k) {
              raw_delim.push_back(text[k]);
            }
            raw_delim.push_back('"');
          } else {
            state = State::kString;
          }
          line_code.push_back('"');
          line_nc.push_back('"');
        } else if (c == '\'') {
          if (is_digit_separator(line_code)) {
            // Part of a numeric literal (1'000'000): stay in code so
            // the rest of the line is not mistaken for a char literal.
            line_code.push_back('\'');
            line_nc.push_back('\'');
          } else {
            state = State::kChar;
            line_code.push_back('\'');
            line_nc.push_back('\'');
          }
        } else {
          line_code.push_back(c);
          line_nc.push_back(c);
        }
        break;
      case State::kLineComment:
        line_code += ' ';
        line_nc += ' ';
        break;
      case State::kBlockComment:
        line_code += ' ';
        line_nc += ' ';
        if (c == '*' && next == '/') {
          state = State::kCode;
          line_raw.push_back(next);
          line_code += ' ';
          line_nc += ' ';
          ++i;
        }
        break;
      case State::kString:
        line_nc.push_back(c);
        if (c == '\\' && next != '\0') {
          line_raw.push_back(next);
          line_nc.push_back(next);
          line_code += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          line_code.push_back('"');
        } else {
          line_code.push_back(' ');
        }
        break;
      case State::kChar:
        line_nc.push_back(c);
        if (c == '\\' && next != '\0') {
          line_raw.push_back(next);
          line_nc.push_back(next);
          line_code += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          line_code.push_back('\'');
        } else {
          line_code.push_back(' ');
        }
        break;
      case State::kRawString:
        line_nc.push_back(c);
        line_code.push_back(c == '"' ? '"' : ' ');
        if (c == raw_delim.back() && line_raw.size() >= raw_delim.size() &&
            line_raw.compare(line_raw.size() - raw_delim.size(),
                             raw_delim.size(), raw_delim) == 0) {
          state = State::kCode;
        }
        break;
    }
  }
  flush_line();
  return views;
}

}  // namespace incprof::analysis
