// The incprof_lint rule set, as a library. Per-file rules (the four
// legacy regex rules plus the scope-aware lock-order / lock-across-io
// and the determinism rule) run over one translation unit's views;
// the metric-registry rule is cross-file and accumulates state across
// the whole tree before reporting.
//
// Every rule honors the in-place escape
//   // incprof-lint: allow(<rule>)
// on the offending line (docs use <!-- incprof-lint: allow(...) -->).
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/finding.hpp"
#include "analysis/lexer.hpp"
#include "analysis/lock_order.hpp"
#include "analysis/scope.hpp"

namespace incprof::analysis {

/// Rule identifiers, as they appear in findings, allow() escapes and
/// --rules filters.
inline constexpr const char* kRuleBareMutex = "bare-mutex";
inline constexpr const char* kRuleDetach = "detach";
inline constexpr const char* kRuleMetricName = "metric-name";
inline constexpr const char* kRuleNakedNew = "naked-new";
inline constexpr const char* kRuleLockOrder = "lock-order";
inline constexpr const char* kRuleLockAcrossIo = "lock-across-io";
inline constexpr const char* kRuleDeterminism = "determinism";
inline constexpr const char* kRuleMetricRegistry = "metric-registry";

/// All eight rule ids, in reporting order.
const std::vector<std::string>& all_rules();

/// Which per-file rules to run on one file (a per-directory profile
/// row; see analyzer.cpp for the directory -> profile mapping).
struct RuleSet {
  bool bare_mutex = false;
  bool detach = false;
  bool metric_name = false;
  bool naked_new = false;
  bool lock_order = false;
  bool lock_across_io = false;
  bool determinism = false;
};

/// True when `raw_line` carries the escape comment for `rule`.
bool suppressed(const std::string& raw_line, std::string_view rule);

struct FileCheckInput {
  std::string display_path;
  const FileViews* views = nullptr;
  const LockAnalysis* locks = nullptr;   ///< required for lock rules
  const LockOrder* order = nullptr;      ///< null = no manifest loaded
  RuleSet rules;
  /// src/util/thread_annotations.hpp hosts the blessed primitives.
  bool is_annotations_header = false;
};

/// Runs the enabled per-file rules, appending to `findings`.
void check_file(const FileCheckInput& input,
                std::vector<Finding>& findings);

/// Cross-file metric/span name registry: uniqueness across kinds, the
/// fleet_ prefix reservation, and doc drift (every metric cited in
/// README.md / DESIGN.md must exist in code).
class MetricRegistryCheck {
 public:
  /// Collects counter()/gauge()/histogram() registrations and
  /// ScopedSpan names from one source file.
  void scan_source(const std::string& display_path,
                   const FileViews& views);

  /// Collects metric citations (inline `code` spans) from one
  /// markdown document.
  void scan_docs(const std::string& display_path,
                 const std::string& text);

  /// Emits the cross-file findings.
  void finish(std::vector<Finding>& findings) const;

 private:
  struct Site {
    std::string file;
    std::size_t line = 0;
    std::string raw;  // for allow() suppression
  };
  /// name -> kind ("counter"/"gauge"/"histogram"/"span") -> first site.
  std::map<std::string, std::map<std::string, Site>> names_;
  /// fleet_* literals synthesized by the merged exposition (src/fleet).
  std::set<std::string> synthesized_;
  struct Cite {
    std::string file;
    std::size_t line = 0;
    std::string name;
    std::string raw;
  };
  std::vector<Cite> cites_;
};

}  // namespace incprof::analysis
