#pragma once

#include <cstddef>
#include <string>

namespace incprof::analysis {

struct Finding {
  std::string file;  ///< repo-relative path
  std::size_t line = 0;
  std::string rule;
  std::string detail;
};

inline bool operator==(const Finding& a, const Finding& b) {
  return a.file == b.file && a.line == b.line && a.rule == b.rule &&
         a.detail == b.detail;
}

inline bool operator<(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.detail < b.detail;
}

}  // namespace incprof::analysis
