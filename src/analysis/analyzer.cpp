#include "analysis/analyzer.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "analysis/lexer.hpp"
#include "analysis/lock_order.hpp"
#include "analysis/rules.hpp"
#include "analysis/scope.hpp"

namespace incprof::analysis {

namespace fs = std::filesystem;

namespace {

bool has_cpp_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

bool read_file(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Fixture trees that are deliberately dirty; scanned only when passed
/// as the root themselves.
bool is_excluded(const std::string& rel) {
  return starts_with(rel, "tests/lint_seed/") ||
         starts_with(rel, "tests/analysis/corpus/");
}

/// Intersects a profile with the --rules selection (empty = all).
void restrict_to(RuleSet& rules, bool& collect_registry,
                 const std::set<std::string>& enabled) {
  if (enabled.empty()) return;
  rules.bare_mutex &= enabled.count(kRuleBareMutex) != 0;
  rules.detach &= enabled.count(kRuleDetach) != 0;
  rules.metric_name &= enabled.count(kRuleMetricName) != 0;
  rules.naked_new &= enabled.count(kRuleNakedNew) != 0;
  rules.lock_order &= enabled.count(kRuleLockOrder) != 0;
  rules.lock_across_io &= enabled.count(kRuleLockAcrossIo) != 0;
  rules.determinism &= enabled.count(kRuleDeterminism) != 0;
  collect_registry &= enabled.count(kRuleMetricRegistry) != 0;
}

bool any_lock_rule(const RuleSet& r) {
  return r.lock_order || r.lock_across_io;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

FileProfile profile_for_path(const std::string& rel) {
  FileProfile p;
  if (starts_with(rel, "src/")) {
    p.rules.bare_mutex = true;
    p.rules.detach = true;
    p.rules.metric_name = true;
    p.rules.naked_new = true;
    p.rules.lock_order = true;
    p.rules.lock_across_io = true;
    p.rules.determinism = starts_with(rel, "src/cluster/") ||
                          starts_with(rel, "src/core/");
    p.collect_registry = true;
  } else if (starts_with(rel, "tools/")) {
    p.rules.bare_mutex = true;
    p.rules.detach = true;
    p.rules.metric_name = true;
    p.rules.naked_new = true;
    p.rules.lock_order = true;
    p.rules.lock_across_io = true;
    p.collect_registry = true;
  } else if (starts_with(rel, "tests/")) {
    p.rules.bare_mutex = true;
    p.rules.detach = true;
    p.rules.metric_name = true;
    p.rules.lock_order = true;
    p.rules.lock_across_io = true;
  }
  return p;
}

AnalyzeResult analyze_tree(const std::string& root,
                           const AnalyzeOptions& options) {
  AnalyzeResult result;
  const fs::path root_path(root);

  LockOrder order;
  bool have_order = false;
  const fs::path manifest_path =
      root_path / "src" / "analysis" / "lock_order.txt";
  if (fs::exists(manifest_path)) {
    std::string text;
    if (!read_file(manifest_path, &text)) {
      result.errors.push_back("cannot read " + manifest_path.string());
    } else {
      std::string error;
      order = LockOrder::parse(text, &error);
      if (!error.empty()) {
        result.errors.push_back(error);
      } else {
        have_order = true;
      }
    }
  }

  MetricRegistryCheck registry;
  bool registry_used = false;

  std::vector<fs::path> files;
  for (const char* subdir : {"src", "tools", "tests"}) {
    const fs::path dir = root_path / subdir;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && has_cpp_extension(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  for (const fs::path& path : files) {
    const std::string rel =
        fs::relative(path, root_path).generic_string();
    if (is_excluded(rel)) continue;
    std::string text;
    if (!read_file(path, &text)) {
      result.errors.push_back("cannot read " + path.string());
      continue;
    }
    ++result.files_scanned;
    const FileViews views = make_views(text);

    FileProfile profile = profile_for_path(rel);
    restrict_to(profile.rules, profile.collect_registry, options.rules);
    if (!have_order) profile.rules.lock_order = false;

    LockAnalysis locks;
    if (any_lock_rule(profile.rules)) {
      locks = analyze_locks(views);
    }

    FileCheckInput input;
    input.display_path = rel;
    input.views = &views;
    input.locks = any_lock_rule(profile.rules) ? &locks : nullptr;
    input.order = have_order ? &order : nullptr;
    input.rules = profile.rules;
    input.is_annotations_header =
        rel == "src/util/thread_annotations.hpp";
    check_file(input, result.findings);

    if (profile.collect_registry) {
      registry.scan_source(rel, views);
      registry_used = true;
    }
  }

  if (registry_used) {
    for (const char* doc : {"README.md", "DESIGN.md"}) {
      const fs::path doc_path = root_path / doc;
      std::string text;
      if (fs::exists(doc_path) && read_file(doc_path, &text)) {
        registry.scan_docs(doc, text);
      }
    }
    registry.finish(result.findings);
  }

  std::sort(result.findings.begin(), result.findings.end());
  return result;
}

std::string baseline_key(const Finding& finding) {
  return finding.file + "\t" + finding.rule + "\t" + finding.detail;
}

std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const std::string& baseline_text) {
  std::multiset<std::string> accepted;
  std::istringstream is(baseline_text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    accepted.insert(line);
  }
  std::vector<Finding> kept;
  for (const Finding& f : findings) {
    auto it = accepted.find(baseline_key(f));
    if (it != accepted.end()) {
      accepted.erase(it);  // each entry absolves one finding
    } else {
      kept.push_back(f);
    }
  }
  return kept;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::ostringstream os;
  os << "# incprof_lint baseline: one accepted finding per line,\n"
     << "# file<TAB>rule<TAB>detail. Regenerate with --write-baseline.\n";
  for (const Finding& f : findings) {
    os << baseline_key(f) << "\n";
  }
  return os.str();
}

std::string format_text(const AnalyzeResult& result) {
  std::ostringstream os;
  for (const std::string& error : result.errors) {
    os << "error: " << error << "\n";
  }
  for (const Finding& f : result.findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.detail
       << "\n";
  }
  os << result.findings.size() << " finding(s) in "
     << result.files_scanned << " file(s)\n";
  return os.str();
}

std::string format_json(const AnalyzeResult& result) {
  std::ostringstream os;
  os << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    os << (i ? "," : "") << "\n    {\"file\": \"" << json_escape(f.file)
       << "\", \"line\": " << f.line << ", \"rule\": \""
       << json_escape(f.rule) << "\", \"detail\": \""
       << json_escape(f.detail) << "\"}";
  }
  os << (result.findings.empty() ? "" : "\n  ") << "],\n"
     << "  \"errors\": [";
  for (std::size_t i = 0; i < result.errors.size(); ++i) {
    os << (i ? ", " : "") << "\"" << json_escape(result.errors[i])
       << "\"";
  }
  os << "],\n  \"files_scanned\": " << result.files_scanned << "\n}\n";
  return os.str();
}

std::string format_sarif(const AnalyzeResult& result) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"incprof_lint\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/incprof\",\n"
     << "          \"rules\": [";
  const auto& rules = all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << (i ? "," : "") << "\n            {\"id\": \""
       << json_escape(rules[i]) << "\"}";
  }
  os << "\n          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    os << (i ? "," : "") << "\n        {\n"
       << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": {\"text\": \"" << json_escape(f.detail)
       << "\"},\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": {\"uri\": \""
       << json_escape(f.file) << "\"},\n"
       << "                \"region\": {\"startLine\": "
       << (f.line == 0 ? 1 : f.line) << "}\n"
       << "              }\n"
       << "            }\n"
       << "          ]\n"
       << "        }";
  }
  os << (result.findings.empty() ? "" : "\n      ") << "]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace incprof::analysis
