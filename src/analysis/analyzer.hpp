// Whole-tree analysis: walks a repo root, applies the per-directory
// rule profiles, accumulates the cross-file metric registry, and
// renders findings as text, JSON, or SARIF 2.1.0.
//
// Directory profiles (relative to the scanned root):
//   src/    all rules; determinism only under src/cluster/ + src/core/
//   tools/  all rules except determinism
//   tests/  bare-mutex, detach, metric-name, lock-order, lock-across-io
//           (tests may allocate freely and keep scratch registries)
// The metric registry is collected from src/ and tools/ only; doc
// citations come from README.md and DESIGN.md at the root.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/finding.hpp"
#include "analysis/rules.hpp"

namespace incprof::analysis {

struct AnalyzeOptions {
  /// Rule ids to run; empty means all eight.
  std::set<std::string> rules;
};

/// The per-file rule profile for a repo-relative path (the table at
/// the top of this header). Paths outside src/, tools/ and tests/ get
/// an empty profile.
struct FileProfile {
  RuleSet rules;
  bool collect_registry = false;
};
FileProfile profile_for_path(const std::string& rel_path);

struct AnalyzeResult {
  std::vector<Finding> findings;  ///< sorted by (file, line, rule)
  std::vector<std::string> errors;  ///< I/O or manifest problems
  std::size_t files_scanned = 0;
};

/// Scans `root`/{src,tools,tests} plus README.md / DESIGN.md. The
/// seeded-violation fixtures (tests/lint_seed, tests/analysis/corpus)
/// are excluded so they can stay deliberately dirty; pass one of them
/// AS the root to lint it.
AnalyzeResult analyze_tree(const std::string& root,
                           const AnalyzeOptions& options = {});

/// Baselines are one finding per line, `file<TAB>rule<TAB>detail` (no
/// line number, so unrelated edits don't invalidate them). Applying a
/// baseline removes one matching finding per entry (multiset
/// semantics).
std::string baseline_key(const Finding& finding);
std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const std::string& baseline_text);
std::string render_baseline(const std::vector<Finding>& findings);

std::string format_text(const AnalyzeResult& result);
std::string format_json(const AnalyzeResult& result);
std::string format_sarif(const AnalyzeResult& result);

}  // namespace incprof::analysis
