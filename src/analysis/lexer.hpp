// The comment/string-blanking lexer behind incprof_lint, extracted so
// the scope tracker and the rules can share one tokenization and so it
// can be unit-tested on its own (tests/analysis/test_lexer.cpp).
//
// The lexer is deliberately not a C++ parser: it is a one-pass state
// machine good enough to decide, for every byte of a translation unit,
// whether it is code, comment, or literal. Everything downstream
// (scope recovery, every lint rule) works on the views it produces.
#pragma once

#include <string>
#include <vector>

namespace incprof::analysis {

/// Per-line views of one translation unit. All three vectors have the
/// same length and each entry the same column layout as the input, so
/// a (line, column) position means the same place in every view:
///   raw          the untouched source line
///   code         comments and string/char literal *contents* blanked
///                (delimiters kept), so identifier/keyword scans never
///                match inside text
///   no_comments  comments blanked but literals preserved, for rules
///                that must read string contents (metric names)
struct FileViews {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> no_comments;
};

/// One-pass lexer: good enough C++ tokenization to blank comments,
/// string literals ("...", with escapes), char literals and raw
/// strings (R"delim(...)delim"), all of which may span lines. Digit
/// separators (1'000'000) are recognized as part of the number, not as
/// char-literal starts.
FileViews make_views(const std::string& text);

}  // namespace incprof::analysis
