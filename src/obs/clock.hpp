// Monotonic time base for the observability layer. Everything in
// src/obs stamps wall durations with the host's steady clock (not the
// simulation's virtual clock): self-telemetry measures what *our* code
// costs, which is exactly the quantity the paper's Table I overhead
// methodology compares against the application's runtime.
#pragma once

#include <chrono>
#include <cstdint>

namespace incprof::obs {

/// Nanoseconds on the steady clock (arbitrary epoch, monotonic).
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Small dense per-thread tag (1, 2, 3, ... in first-use order) for
/// trace events and log lines — std::thread::id is opaque and wide,
/// while Chrome trace viewers want small integer tids.
std::uint32_t thread_tag() noexcept;

}  // namespace incprof::obs
