// Fixed-capacity ring of span events, exportable as Chrome trace_event
// JSON ("X" complete events) so a run of the daemon or a bench can be
// dropped straight into Perfetto / chrome://tracing. The ring records
// with one atomic fetch_add plus a per-slot seqlock, never allocates on
// the hot path (names must be string literals or otherwise outlive the
// buffer), and simply overwrites the oldest spans when full — a flight
// recorder, not a log.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace incprof::obs {

/// One completed span. `name`/`category` are borrowed pointers: pass
/// string literals (or strings that outlive the buffer).
struct SpanEvent {
  const char* name = "";
  const char* category = "";
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Distributed-trace context (all zero when the span was recorded
  /// outside any trace): the end-to-end trace this span belongs to, its
  /// own id, and its parent span (0 = a root within the trace).
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_span = 0;
};

/// Concurrent fixed-capacity span ring.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 16384);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Records one span (no-op while disabled). Thread-safe, lock-free.
  void record(const char* name, const char* category,
              std::uint64_t start_ns, std::uint64_t duration_ns) noexcept {
    record(name, category, start_ns, duration_ns, 0, 0, 0);
  }

  /// Records one span carrying distributed-trace context (zeros =
  /// untraced). Thread-safe, lock-free.
  void record(const char* name, const char* category,
              std::uint64_t start_ns, std::uint64_t duration_ns,
              std::uint64_t trace_id, std::uint32_t span_id,
              std::uint32_t parent_span) noexcept;

  /// Spans currently retained, oldest first. Slots being overwritten
  /// concurrently are skipped rather than returned torn.
  std::vector<SpanEvent> events() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}) of events().
  std::string export_chrome_json() const;

  /// Total spans ever recorded (including those overwritten since).
  std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  /// Spans overwritten (dropped from the ring) since construction /
  /// clear(): everything recorded beyond capacity displaced an older
  /// span. Monotonic, so it exports cleanly as a counter.
  std::uint64_t dropped() const noexcept {
    const std::uint64_t n = next_.load(std::memory_order_relaxed);
    return n > slots_.size() ? n - slots_.size() : 0;
  }

  std::size_t capacity() const noexcept { return slots_.size(); }

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Forgets all retained spans. Not intended to race live recorders
  /// (tests and bench setup only).
  void clear() noexcept;

 private:
  struct Slot {
    /// 0 = empty, ~0 = being written, otherwise 1 + global span index.
    std::atomic<std::uint64_t> seq{0};
    // Seqlock payload. Each field is individually atomic and accessed
    // with relaxed order: a reader racing a writer may observe a torn
    // *event* (mixed fields), but never a torn *load* or a C++ data
    // race — tearing is detected and discarded via the seq re-read.
    // Ordering comes from the fences in record()/events(), following
    // Boehm's seqlock construction (HotPar'12), so the ring is clean
    // under TSan with no suppressions.
    std::atomic<const char*> name{""};
    std::atomic<const char*> category{""};
    std::atomic<std::uint32_t> tid{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> duration_ns{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint32_t> span_id{0};
    std::atomic<std::uint32_t> parent_span{0};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<bool> enabled_{true};
};

/// Process-global trace ring every ScopedSpan feeds by default.
TraceBuffer& trace();

}  // namespace incprof::obs
