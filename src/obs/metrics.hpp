// Operational metrics for the whole framework: named monotonic counters,
// set/max gauges and log-bucketed histograms with stable addresses,
// cheap enough to bump on the frame hot path (one relaxed atomic op),
// dumpable as CSV and as Prometheus text exposition for the daemon's
// scrape endpoint. Promoted from src/service (which re-exports these
// names) so the analysis pipeline, ekg and the benches can share one
// registry without depending on the service layer.
#pragma once

#include "obs/histogram.hpp"
#include "util/thread_annotations.hpp"

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace incprof::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, live sessions). `record_max`
/// retains the high-water mark semantics some gauges want.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }

  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raises the gauge to `v` if it is below (monotone high-water mark).
  void record_max(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// One metric's exported row.
struct MetricSample {
  std::string name;
  std::string kind;  // "counter" | "gauge"
  std::int64_t value = 0;
};

/// Prometheus-style label pairs, rendered as {k="v",...} in key order
/// of appearance. Keep values free of '"' and '\'.
using Labels =
    std::initializer_list<std::pair<std::string_view, std::string_view>>;

/// Create-on-first-use registry. Returned references stay valid for the
/// registry's lifetime, so hot paths resolve a metric once and keep the
/// pointer. All operations are thread-safe.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Counter& counter(std::string_view name, Labels labels);
  Gauge& gauge(std::string_view name);
  Gauge& gauge(std::string_view name, Labels labels);
  Histogram& histogram(std::string_view name);
  Histogram& histogram(std::string_view name, Labels labels);

  /// Current value of a named counter/gauge (0 when absent) — for tests
  /// and reports that do not hold the reference. For labeled metrics
  /// pass the full key, e.g. `frames{transport="tcp"}`.
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;

  /// All counters and gauges, sorted by name, counters first.
  std::vector<MetricSample> samples() const;

  /// Snapshot of every histogram, sorted by full key.
  std::vector<std::pair<std::string, HistogramSnapshot>>
  histogram_snapshots() const;

  /// Writes `metric,kind,value` rows (with header) via util::csv.
  /// Counters and gauges only — histograms go through the Prometheus
  /// exposition or histogram_snapshots().
  void write_csv(std::ostream& os) const;

  /// Prometheus text exposition (format 0.0.4): `# TYPE` line per
  /// family, counters/gauges verbatim, histograms as cumulative
  /// `_bucket{le=...}` series plus `_sum`/`_count`.
  std::string render_prometheus() const;

 private:
  // mu_ guards only the name→metric maps; the metrics themselves are
  // atomics with stable addresses, so hot paths resolve once and bump
  // without the lock. Leaf lock: nothing is acquired while held.
  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      INCPROF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      INCPROF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_ INCPROF_GUARDED_BY(mu_);
};

/// Render a full metric key from a base name and labels.
std::string labeled_key(std::string_view name, Labels labels);

/// Process-global registry for instrumentation that has no natural
/// owner (the analysis pipeline's stage histograms, ekg aggregation
/// timing). Daemon-owned components keep their own registry.
MetricsRegistry& default_registry();

}  // namespace incprof::obs
