// RAII timing helpers. A ScopedSpan stamps the wall time on entry and,
// on destruction, records the elapsed ns into an optional Histogram and
// the trace ring — one object serving both the aggregate (percentiles)
// and the individual (Perfetto timeline) views of the same event. Names
// must be string literals (the trace ring borrows the pointer).
#pragma once

#include "obs/clock.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace incprof::obs {

/// Bare stopwatch for call sites that want the number itself.
class Timer {
 public:
  Timer() noexcept : start_ns_(now_ns()) {}

  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_ns_; }

  double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

  void restart() noexcept { start_ns_ = now_ns(); }

 private:
  std::uint64_t start_ns_;
};

/// Times a scope; records into `histogram` (if any) and `buffer` (if
/// any) when the scope exits or stop() is called, whichever is first.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category,
             Histogram* histogram = nullptr,
             TraceBuffer* buffer = &trace()) noexcept
      : name_(name),
        category_(category),
        histogram_(histogram),
        buffer_(buffer),
        start_ns_(now_ns()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { stop(); }

  /// Ends the span early; later calls (and destruction) are no-ops.
  void stop() noexcept {
    if (done_) return;
    done_ = true;
    const std::uint64_t duration = now_ns() - start_ns_;
    if (histogram_ != nullptr) histogram_->record(duration);
    if (buffer_ != nullptr) {
      buffer_->record(name_, category_, start_ns_, duration);
    }
  }

 private:
  const char* name_;
  const char* category_;
  Histogram* histogram_;
  TraceBuffer* buffer_;
  std::uint64_t start_ns_;
  bool done_ = false;
};

}  // namespace incprof::obs
