// RAII timing helpers. A ScopedSpan stamps the wall time on entry and,
// on destruction, records the elapsed ns into an optional Histogram and
// the trace ring — one object serving both the aggregate (percentiles)
// and the individual (Perfetto timeline) views of the same event. Names
// must be string literals (the trace ring borrows the pointer).
//
// Spans participate in distributed tracing automatically: when the
// thread carries a TraceContext (see trace_context.hpp) the span mints
// its own id, records the carrier's trace/parent ids, and installs
// itself as the thread's current context for its lifetime — so nested
// spans chain parent→child with no plumbing at the call sites. Outside
// a context the only extra cost is one thread-local read.
#pragma once

#include "obs/clock.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"

namespace incprof::obs {

/// Bare stopwatch for call sites that want the number itself.
class Timer {
 public:
  Timer() noexcept : start_ns_(now_ns()) {}

  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_ns_; }

  double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

  void restart() noexcept { start_ns_ = now_ns(); }

 private:
  std::uint64_t start_ns_;
};

/// Times a scope; records into `histogram` (if any) and `buffer` (if
/// any) when the scope exits or stop() is called, whichever is first.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category,
             Histogram* histogram = nullptr,
             TraceBuffer* buffer = &trace()) noexcept
      : name_(name),
        category_(category),
        histogram_(histogram),
        buffer_(buffer) {
    const TraceContext ctx = current_trace_context();
    if (ctx.trace_id != 0) {
      trace_id_ = ctx.trace_id;
      parent_span_ = ctx.span_id;
      span_id_ = next_span_id();
      set_current_trace_context({trace_id_, span_id_});
    }
    // Clock read last so context bookkeeping is not billed to the span.
    start_ns_ = now_ns();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { stop(); }

  /// Ends the span early; later calls (and destruction) are no-ops.
  void stop() noexcept {
    if (done_) return;
    done_ = true;
    const std::uint64_t duration = now_ns() - start_ns_;
    if (span_id_ != 0) {
      // Pop self: children created after this span ends attach to the
      // same parent this span had. Spans nest strictly (stack order),
      // so the restore cannot clobber an unrelated context.
      set_current_trace_context({trace_id_, parent_span_});
    }
    if (histogram_ != nullptr) histogram_->record(duration);
    if (buffer_ != nullptr) {
      buffer_->record(name_, category_, start_ns_, duration, trace_id_,
                      span_id_, parent_span_);
    }
  }

  /// This span's trace context (zeros when created outside a trace).
  std::uint64_t trace_id() const noexcept { return trace_id_; }
  std::uint32_t span_id() const noexcept { return span_id_; }

 private:
  const char* name_;
  const char* category_;
  Histogram* histogram_;
  TraceBuffer* buffer_;
  std::uint64_t start_ns_;
  std::uint64_t trace_id_ = 0;
  std::uint32_t span_id_ = 0;
  std::uint32_t parent_span_ = 0;
  bool done_ = false;
};

}  // namespace incprof::obs
