#include "obs/build_info.hpp"

#include "obs/clock.hpp"

// Baked in per-build by src/obs/CMakeLists.txt; the fallbacks keep the
// translation unit compilable standalone (and honest: "unknown", not a
// stale value).
#ifndef INCPROF_VERSION
#define INCPROF_VERSION "unknown"
#endif
#ifndef INCPROF_GIT_SHA
#define INCPROF_GIT_SHA "unknown"
#endif
#ifndef INCPROF_BUILD_TYPE
#define INCPROF_BUILD_TYPE "unknown"
#endif

namespace incprof::obs {

namespace {

/// Captured at static initialization — as close to process start as a
/// library can observe without main() cooperation.
const std::uint64_t g_process_start_ns = now_ns();

}  // namespace

BuildInfo build_info() noexcept {
  return {INCPROF_VERSION, INCPROF_GIT_SHA, INCPROF_BUILD_TYPE};
}

std::uint64_t process_start_ns() noexcept { return g_process_start_ns; }

void register_build_info(MetricsRegistry& registry) {
  const BuildInfo info = build_info();
  registry
      .gauge("incprof_build_info", {{"version", info.version},
                                    {"git_sha", info.git_sha},
                                    {"build_type", info.build_type}})
      .set(1);
}

void update_process_uptime(MetricsRegistry& registry) {
  registry.gauge("process_uptime_seconds")
      .set(static_cast<std::int64_t>((now_ns() - g_process_start_ns) /
                                     1'000'000'000ull));
}

}  // namespace incprof::obs
