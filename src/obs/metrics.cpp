#include "obs/metrics.hpp"

#include "util/csv.hpp"

#include <algorithm>

namespace incprof::obs {

namespace {

/// Splits a full key into (family, label body without braces).
std::pair<std::string_view, std::string_view> split_key(
    std::string_view key) {
  const std::size_t brace = key.find('{');
  if (brace == std::string_view::npos) return {key, {}};
  std::string_view labels = key.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {key.substr(0, brace), labels};
}

template <typename Map, typename Factory>
auto& find_or_create(Map& map, std::string_view key, Factory make) {
  auto it = map.find(key);
  if (it == map.end()) {
    it = map.emplace(std::string(key), make()).first;
  }
  return *it->second;
}

}  // namespace

std::string labeled_key(std::string_view name, Labels labels) {
  std::string key(name);
  if (labels.size() == 0) return key;
  key.push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key.push_back(',');
    first = false;
    key.append(k);
    key += "=\"";
    key.append(v);
    key.push_back('"');
  }
  key.push_back('}');
  return key;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mu_);
  return find_or_create(counters_, name,
                        [] { return std::make_unique<Counter>(); });
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return counter(labeled_key(name, labels));
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mu_);
  return find_or_create(gauges_, name,
                        [] { return std::make_unique<Gauge>(); });
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return gauge(labeled_key(name, labels));
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  util::MutexLock lock(mu_);
  return find_or_create(histograms_, name,
                        [] { return std::make_unique<Histogram>(); });
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      Labels labels) {
  return histogram(labeled_key(name, labels));
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  util::MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  util::MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

std::vector<MetricSample> MetricsRegistry::samples() const {
  util::MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, "counter",
                   static_cast<std::int64_t>(c->value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, "gauge", g->value()});
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::histogram_snapshots() const {
  util::MutexLock lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  util::CsvWriter w(os);
  w.row({"metric", "kind", "value"});
  for (const auto& s : samples()) {
    w.row_of(s.name, s.kind, static_cast<long long>(s.value));
  }
}

std::string MetricsRegistry::render_prometheus() const {
  // Group every metric under its family so each family gets exactly one
  // `# TYPE` line even when labeled variants interleave in sort order.
  struct Family {
    std::string kind;
    std::vector<std::string> lines;
  };
  std::map<std::string, Family, std::less<>> families;

  const auto family_of = [&](std::string_view key,
                             const char* kind) -> Family& {
    const auto [base, labels] = split_key(key);
    (void)labels;
    Family& fam = families[std::string(base)];
    if (fam.kind.empty()) fam.kind = kind;
    return fam;
  };

  {
    util::MutexLock lock(mu_);
    for (const auto& [key, c] : counters_) {
      family_of(key, "counter")
          .lines.push_back(key + " " + std::to_string(c->value()));
    }
    for (const auto& [key, g] : gauges_) {
      family_of(key, "gauge")
          .lines.push_back(key + " " + std::to_string(g->value()));
    }
    for (const auto& [key, h] : histograms_) {
      Family& fam = family_of(key, "histogram");
      const auto [base, labels] = split_key(key);
      const HistogramSnapshot snap = h->snapshot();
      const auto bucket_line = [&](const std::string& le,
                                   std::uint64_t cum) {
        std::string line(base);
        line += "_bucket{";
        if (!labels.empty()) {
          line.append(labels);
          line.push_back(',');
        }
        line += "le=\"" + le + "\"} " + std::to_string(cum);
        fam.lines.push_back(std::move(line));
      };
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < snap.counts.size(); ++i) {
        if (snap.counts[i] == 0) continue;
        cum += snap.counts[i];
        bucket_line(std::to_string(Histogram::bucket_upper(i)), cum);
      }
      // Keep +Inf and _count consistent even if recordings raced the
      // snapshot (bucket loads and the total are separate atomics).
      const std::uint64_t total = std::max(cum, snap.count);
      bucket_line("+Inf", total);
      std::string suffix = labels.empty()
                               ? std::string()
                               : "{" + std::string(labels) + "}";
      fam.lines.push_back(std::string(base) + "_sum" + suffix + " " +
                          std::to_string(snap.sum));
      fam.lines.push_back(std::string(base) + "_count" + suffix + " " +
                          std::to_string(total));
    }
  }

  std::string out;
  for (const auto& [base, fam] : families) {
    out += "# TYPE " + base + " " + fam.kind + "\n";
    for (const auto& line : fam.lines) {
      out += line;
      out.push_back('\n');
    }
  }
  return out;
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace incprof::obs
