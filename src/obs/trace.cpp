#include "obs/trace.hpp"

#include "obs/clock.hpp"

#include <algorithm>

namespace incprof::obs {

namespace {

constexpr std::uint64_t kWriting = ~std::uint64_t{0};

std::atomic<std::uint32_t> g_next_thread_tag{0};

/// Minimal JSON string escaping (names are literals, but be safe).
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u0020";  // control chars have no business in span names
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

std::uint32_t thread_tag() noexcept {
  thread_local const std::uint32_t tag =
      g_next_thread_tag.fetch_add(1, std::memory_order_relaxed) + 1;
  return tag;
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : slots_(std::max<std::size_t>(1, capacity)) {}

void TraceBuffer::record(const char* name, const char* category,
                         std::uint64_t start_ns,
                         std::uint64_t duration_ns) noexcept {
  if (!enabled()) return;
  const std::uint64_t index =
      next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index % slots_.size()];
  // Per-slot seqlock: mark writing, publish the fields, then stamp the
  // slot with its global index so a concurrent reader can tell a torn
  // slot (seq changed underneath it) from a settled one.
  slot.seq.store(kWriting, std::memory_order_release);
  slot.event.name = name;
  slot.event.category = category;
  slot.event.tid = thread_tag();
  slot.event.start_ns = start_ns;
  slot.event.duration_ns = duration_ns;
  slot.seq.store(index + 1, std::memory_order_release);
}

std::vector<SpanEvent> TraceBuffer::events() const {
  struct Tagged {
    std::uint64_t seq;
    SpanEvent event;
  };
  std::vector<Tagged> got;
  got.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || before == kWriting) continue;
    const SpanEvent copy = slot.event;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;
    got.push_back({before, copy});
  }
  std::sort(got.begin(), got.end(),
            [](const Tagged& a, const Tagged& b) { return a.seq < b.seq; });
  std::vector<SpanEvent> out;
  out.reserve(got.size());
  for (const Tagged& t : got) out.push_back(t.event);
  return out;
}

std::string TraceBuffer::export_chrome_json() const {
  const auto evs = events();
  std::string out;
  out.reserve(64 + evs.size() * 96);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& ev : evs) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    append_escaped(out, ev.category);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    // Chrome trace timestamps are microseconds; keep ns precision via
    // the fractional part.
    out += ",\"ts\":";
    out += std::to_string(ev.start_ns / 1000);
    out.push_back('.');
    const std::uint64_t ts_frac = ev.start_ns % 1000;
    out += std::to_string(ts_frac / 100);
    out += std::to_string((ts_frac / 10) % 10);
    out += std::to_string(ts_frac % 10);
    out += ",\"dur\":";
    out += std::to_string(ev.duration_ns / 1000);
    out.push_back('.');
    const std::uint64_t dur_frac = ev.duration_ns % 1000;
    out += std::to_string(dur_frac / 100);
    out += std::to_string((dur_frac / 10) % 10);
    out += std::to_string(dur_frac % 10);
    out += "}";
  }
  out += "]}";
  return out;
}

void TraceBuffer::clear() noexcept {
  for (Slot& slot : slots_) slot.seq.store(0, std::memory_order_relaxed);
  next_.store(0, std::memory_order_relaxed);
}

TraceBuffer& trace() {
  static TraceBuffer buffer(16384);
  return buffer;
}

}  // namespace incprof::obs
