#include "obs/trace.hpp"

#include "obs/clock.hpp"

#include <algorithm>

namespace incprof::obs {

namespace {

constexpr std::uint64_t kWriting = ~std::uint64_t{0};

std::atomic<std::uint32_t> g_next_thread_tag{0};

/// Minimal JSON string escaping (names are literals, but be safe).
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u0020";  // control chars have no business in span names
    } else {
      out.push_back(c);
    }
  }
}

void append_hex_u64(std::string& out, std::uint64_t v) {
  char buf[19];
  int at = 18;
  buf[at] = '\0';
  do {
    buf[--at] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  } while (v != 0);
  out += "0x";
  out += &buf[at];
}

}  // namespace

std::uint32_t thread_tag() noexcept {
  thread_local const std::uint32_t tag =
      g_next_thread_tag.fetch_add(1, std::memory_order_relaxed) + 1;
  return tag;
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : slots_(std::max<std::size_t>(1, capacity)) {}

void TraceBuffer::record(const char* name, const char* category,
                         std::uint64_t start_ns, std::uint64_t duration_ns,
                         std::uint64_t trace_id, std::uint32_t span_id,
                         std::uint32_t parent_span) noexcept {
  if (!enabled()) return;
  const std::uint64_t index =
      next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index % slots_.size()];
  // Per-slot seqlock: mark writing, publish the fields, then stamp the
  // slot with its global index so a concurrent reader can tell a torn
  // slot (seq changed underneath it) from a settled one.
  //
  // The release *fence* (not a release store) is what makes the mark
  // effective: it keeps the relaxed payload stores from becoming
  // visible before the kWriting mark, so a reader that managed to load
  // any of this writer's payload is guaranteed to observe seq !=
  // `before` on its re-read and discard the copy. A release order on
  // the kWriting store alone would order the *preceding* accesses, not
  // the payload stores that follow it — the original form of this
  // writer had exactly that bug.
  slot.seq.store(kWriting, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.category.store(category, std::memory_order_relaxed);
  slot.tid.store(thread_tag(), std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.parent_span.store(parent_span, std::memory_order_relaxed);
  // The release store pairs with the reader's acquire load of seq: a
  // reader that sees index + 1 sees every payload store above.
  slot.seq.store(index + 1, std::memory_order_release);
}

std::vector<SpanEvent> TraceBuffer::events() const {
  struct Tagged {
    std::uint64_t seq;
    SpanEvent event;
  };
  std::vector<Tagged> got;
  got.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    // Seqlock read side: acquire load of seq (pairs with the writer's
    // final release store), relaxed payload loads, acquire fence, then
    // a relaxed re-read of seq. If a writer touched the slot while we
    // copied, the fence guarantees the re-read observes its kWriting
    // mark (or a newer stamp) and the torn copy is discarded.
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || before == kWriting) continue;
    SpanEvent copy;
    copy.name = slot.name.load(std::memory_order_relaxed);
    copy.category = slot.category.load(std::memory_order_relaxed);
    copy.tid = slot.tid.load(std::memory_order_relaxed);
    copy.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    copy.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    copy.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    copy.span_id = slot.span_id.load(std::memory_order_relaxed);
    copy.parent_span = slot.parent_span.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;
    got.push_back({before, copy});
  }
  std::sort(got.begin(), got.end(),
            [](const Tagged& a, const Tagged& b) { return a.seq < b.seq; });
  std::vector<SpanEvent> out;
  out.reserve(got.size());
  for (const Tagged& t : got) out.push_back(t.event);
  return out;
}

std::string TraceBuffer::export_chrome_json() const {
  const auto evs = events();
  std::string out;
  out.reserve(64 + evs.size() * 96);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& ev : evs) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    append_escaped(out, ev.category);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    // Chrome trace timestamps are microseconds; keep ns precision via
    // the fractional part.
    out += ",\"ts\":";
    out += std::to_string(ev.start_ns / 1000);
    out.push_back('.');
    const std::uint64_t ts_frac = ev.start_ns % 1000;
    out += std::to_string(ts_frac / 100);
    out += std::to_string((ts_frac / 10) % 10);
    out += std::to_string(ts_frac % 10);
    out += ",\"dur\":";
    out += std::to_string(ev.duration_ns / 1000);
    out.push_back('.');
    const std::uint64_t dur_frac = ev.duration_ns % 1000;
    out += std::to_string(dur_frac / 100);
    out += std::to_string((dur_frac / 10) % 10);
    out += std::to_string(dur_frac % 10);
    if (ev.trace_id != 0) {
      // Distributed-trace context: Perfetto shows these in the args
      // pane, and the fleet merger joins spans across processes on
      // trace_id.
      out += ",\"args\":{\"trace_id\":\"";
      append_hex_u64(out, ev.trace_id);
      out += "\",\"span\":";
      out += std::to_string(ev.span_id);
      out += ",\"parent\":";
      out += std::to_string(ev.parent_span);
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

void TraceBuffer::clear() noexcept {
  for (Slot& slot : slots_) slot.seq.store(0, std::memory_order_relaxed);
  next_.store(0, std::memory_order_relaxed);
}

TraceBuffer& trace() {
  static TraceBuffer buffer(16384);
  return buffer;
}

}  // namespace incprof::obs
