#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>

namespace incprof::obs {

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Highest set bit selects the octave; the kSubBits bits below it
  // select the linear sub-bucket within the octave.
  const auto top = static_cast<std::size_t>(std::bit_width(value)) - 1;
  const std::size_t sub = static_cast<std::size_t>(
      (value >> (top - kSubBits)) & (kSubBuckets - 1));
  return kSubBuckets + (top - kSubBits) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_lower(std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  const std::size_t oct = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  const std::size_t top = oct + kSubBits;
  return (std::uint64_t{1} << top) +
         (static_cast<std::uint64_t>(sub) << (top - kSubBits));
}

std::uint64_t Histogram::bucket_upper(std::size_t index) noexcept {
  if (index < kSubBuckets) return index;
  const std::size_t oct = (index - kSubBuckets) / kSubBuckets;
  const std::size_t top = oct + kSubBits;
  return bucket_lower(index) + (std::uint64_t{1} << (top - kSubBits)) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (cur < value &&
         !max_.compare_exchange_weak(cur, value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  const std::uint64_t omax = other.max_value();
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (cur < omax &&
         !max_.compare_exchange_weak(cur, omax,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.counts.resize(kBuckets);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count();
  s.sum = sum();
  s.max = max_value();
  return s;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th value among the `count` recorded ones (0-based).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1) + 0.5);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum > rank) {
      const std::uint64_t lo = Histogram::bucket_lower(i);
      const std::uint64_t hi =
          std::min(Histogram::bucket_upper(i), max > 0 ? max : lo);
      return lo == hi ? static_cast<double>(lo)
                      : (static_cast<double>(lo) + static_cast<double>(hi)) /
                            2.0;
    }
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.counts.size() > counts.size()) {
    counts.resize(other.counts.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

double HistogramSnapshot::mean() const {
  return count == 0
             ? 0.0
             : static_cast<double>(sum) / static_cast<double>(count);
}

}  // namespace incprof::obs
