// Log-bucketed latency histogram: HdrHistogram-style power-of-two
// octaves subdivided into 16 linear sub-buckets, so any recorded value
// lands in a bucket whose width is at most 1/16th of its magnitude
// (≤ ~6 % relative quantile error). Recording is a handful of relaxed
// atomic ops — cheap enough for the per-frame service hot path — and
// buckets are mergeable across histograms (worker-local → global), the
// property flat counters lack and the one quantile sketches are built
// around.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace incprof::obs {

/// Plain (non-atomic) copy of a histogram's state, safe to query and
/// carry around while the source keeps recording.
struct HistogramSnapshot {
  /// Per-bucket counts, indexed like Histogram::bucket_index.
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  /// Quantile estimate, q in [0, 1]; 0 for an empty snapshot. Exact for
  /// values < 16, otherwise the midpoint of the covering bucket.
  double quantile(double q) const;

  /// Mean of all recorded values; 0 when empty.
  double mean() const;

  /// Folds another snapshot in: buckets and totals add, max takes the
  /// larger. This is the wire-level counterpart of Histogram::merge —
  /// a fleet gateway merges snapshots it pulled from remote shards,
  /// where no live Histogram exists on this side.
  void merge(const HistogramSnapshot& other);

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Thread-safe log-bucketed histogram over non-negative integers
/// (typically durations in ns).
class Histogram {
 public:
  /// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per octave.
  static constexpr std::size_t kSubBits = 4;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  /// Values below kSubBuckets get one exact bucket each; each of the
  /// remaining 64 - kSubBits octaves gets kSubBuckets sub-buckets.
  static constexpr std::size_t kBuckets =
      kSubBuckets + (64 - kSubBits) * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one value. Lock-free: a few relaxed atomic RMWs.
  void record(std::uint64_t value) noexcept;

  /// Folds another histogram's current contents into this one.
  void merge(const Histogram& other) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_value() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// Convenience quantile straight off the live buckets (one snapshot).
  double quantile(double q) const { return snapshot().quantile(q); }

  /// Consistent-enough copy for reporting (individual bucket loads are
  /// relaxed; totals may trail concurrent recordings by a few events).
  HistogramSnapshot snapshot() const;

  /// Bucket index a value lands in.
  static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Inclusive value range [lower, upper] of a bucket.
  static std::uint64_t bucket_lower(std::size_t index) noexcept;
  static std::uint64_t bucket_upper(std::size_t index) noexcept;

 private:
  // Concurrency: wait-free by construction — every field is an atomic
  // bumped with relaxed RMWs and there is no cross-field invariant to
  // protect (a snapshot may see a bucket increment whose matching
  // count_/sum_ bump has not landed yet, which reporting tolerates).
  // No mutex, nothing to annotate.
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace incprof::obs
