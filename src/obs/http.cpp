#include "obs/http.hpp"

#include "obs/build_info.hpp"
#include "obs/clock.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace incprof::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 400: return "Bad Request";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
  }
  return "Internal Server Error";
}

void send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

enum class ReadOutcome { kOk, kTimeout, kTooLarge, kClosed };

/// Reads until the header terminator (we ignore bodies: GET only),
/// under a total deadline so a drip-feeding client cannot hold the
/// handler thread — each chunk waits only for the time remaining.
ReadOutcome read_request(int fd, std::chrono::milliseconds deadline,
                         std::string& req) {
  const std::uint64_t start_ns = now_ns();
  const std::uint64_t deadline_ns =
      static_cast<std::uint64_t>(deadline.count()) * 1000000ull;
  char chunk[1024];
  while (req.find("\r\n\r\n") == std::string::npos) {
    if (req.size() >= kMaxRequestBytes) return ReadOutcome::kTooLarge;
    const std::uint64_t elapsed = now_ns() - start_ns;
    if (elapsed >= deadline_ns) return ReadOutcome::kTimeout;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int wait_ms = static_cast<int>(
        std::min<std::uint64_t>((deadline_ns - elapsed) / 1000000ull + 1,
                                1000));
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return ReadOutcome::kClosed;
    }
    if (rc == 0) continue;  // re-check the deadline
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return ReadOutcome::kClosed;
    req.append(chunk, static_cast<std::size_t>(n));
  }
  return ReadOutcome::kOk;
}

}  // namespace

HttpEndpoint::HttpEndpoint(std::uint16_t port, HttpHandler handler,
                           std::chrono::milliseconds read_timeout)
    : handler_(std::move(handler)), read_timeout_(read_timeout) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("obs http: socket: ") +
                             std::strerror(errno));
  }
  // Close-on-exec: an exec'd child must not inherit (and keep bound)
  // the scrape port. SO_REUSEADDR so a rapid restart never hits
  // EADDRINUSE on TIME_WAIT remnants.
  const int fdflags = ::fcntl(fd_, F_GETFD);
  if (fdflags >= 0) ::fcntl(fd_, F_SETFD, fdflags | FD_CLOEXEC);
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 16) != 0) {
    const int err = errno;
    ::close(fd_);
    throw std::runtime_error(std::string("obs http: bind/listen: ") +
                             std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

HttpEndpoint::~HttpEndpoint() {
  stop();
  ::close(fd_);
}

void HttpEndpoint::stop() {
  if (stopped_.exchange(true)) return;
  ::shutdown(fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  // Kick any client still mid-request, then join its worker. Once the
  // accept thread has exited nobody adds to clients_, so moving the
  // vector out and joining outside the lock cannot miss a worker.
  std::vector<std::unique_ptr<ClientWorker>> workers;
  {
    util::MutexLock lock(clients_mu_);
    for (const auto& w : clients_) ::shutdown(w->fd, SHUT_RDWR);
    workers.swap(clients_);
  }
  for (auto& w : workers) {
    if (w->thread.joinable()) w->thread.join();
  }
}

bool HttpEndpoint::spawn_client(int client) {
  // Discard workers that already finished, so the list stays bounded
  // by in-flight requests rather than requests ever served. They are
  // unhooked under the lock but joined outside it: clients_mu_ is a
  // leaf and a join (however brief) must not run under it.
  std::vector<std::unique_ptr<ClientWorker>> finished;
  {
    util::MutexLock lock(clients_mu_);
    if (stopped_.load(std::memory_order_relaxed)) return false;
    for (auto it = clients_.begin(); it != clients_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = clients_.erase(it);
      } else {
        ++it;
      }
    }
    auto worker = std::make_unique<ClientWorker>(client);
    ClientWorker* w = worker.get();
    // The worker object outlives the thread: it leaves clients_ only
    // via a join (here or in stop()), and `done` is flipped last.
    w->thread = std::thread([this, w] {
      handle_client(w->fd);
      ::shutdown(w->fd, SHUT_RDWR);
      ::close(w->fd);
      w->done.store(true, std::memory_order_release);
    });
    clients_.push_back(std::move(worker));
  }
  for (auto& w : finished) {
    if (w->thread.joinable()) w->thread.join();
  }
  return true;
}

void HttpEndpoint::serve_loop() {
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    const int cflags = ::fcntl(client, F_GETFD);
    if (cflags >= 0) ::fcntl(client, F_SETFD, cflags | FD_CLOEXEC);
    // One tracked thread per request: a scraper stalled mid-headers
    // blocks only its own thread, never the next /metrics scrape.
    if (!spawn_client(client)) {  // stop() already ran
      ::close(client);
      return;
    }
  }
}

void HttpEndpoint::handle_client(int client) {
  std::string request;
  const ReadOutcome outcome =
      read_request(client, read_timeout_, request);
  HttpResponse resp;
  switch (outcome) {
    case ReadOutcome::kClosed:
      return;  // nothing to answer
    case ReadOutcome::kTimeout:
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      resp = {408, "text/plain; charset=utf-8", "request timeout\n"};
      break;
    case ReadOutcome::kTooLarge:
      resp = {431, "text/plain; charset=utf-8",
              "request headers exceed 8192 bytes\n"};
      break;
    case ReadOutcome::kOk: {
      const std::size_t line_end = request.find("\r\n");
      const std::string line = request.substr(
          0, line_end == std::string::npos ? request.size() : line_end);
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos) {
        resp = {400, "text/plain; charset=utf-8", "bad request\n"};
      } else if (line.substr(0, sp1) != "GET") {
        resp = {405, "text/plain; charset=utf-8", "GET only\n"};
      } else {
        std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
        const std::size_t query = path.find('?');
        if (query != std::string::npos) path.resize(query);
        resp = handler_(path);
      }
      break;
    }
  }

  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     status_text(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  send_all(client, head);
  send_all(client, resp.body);
  served_.fetch_add(1, std::memory_order_relaxed);
}

HttpHandler make_obs_handler(MetricsRegistry& registry,
                             TraceBuffer& buffer) {
  const std::uint64_t start_ns = now_ns();
  register_build_info(registry);
  // Counter is add-only, but TraceBuffer::dropped() is a running total —
  // export the delta since the previous scrape so the series stays
  // monotonic and equal to the buffer's count.
  auto dropped_seen = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [&registry, &buffer, start_ns,
          dropped_seen](const std::string& path) {
    HttpResponse resp;
    if (path == "/metrics" || path == "/metrics/") {
      registry.counter("obs_scrapes").add();
      registry.gauge("obs_uptime_seconds")
          .set(static_cast<std::int64_t>((now_ns() - start_ns) /
                                         1'000'000'000ull));
      update_process_uptime(registry);
      const std::uint64_t dropped = buffer.dropped();
      const std::uint64_t seen =
          dropped_seen->exchange(dropped, std::memory_order_relaxed);
      auto& dropped_total = registry.counter("obs_trace_dropped_total");
      if (dropped > seen) dropped_total.add(dropped - seen);
      else dropped_total.add(0);  // materialize the series at zero
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
      resp.body = registry.render_prometheus();
    } else if (path == "/healthz" || path == "/healthz/") {
      resp.body = "ok\n";
    } else if (path == "/trace.json") {
      resp.content_type = "application/json";
      resp.body = buffer.export_chrome_json();
    } else {
      resp.status = 404;
      resp.body = "not found (try /metrics, /healthz, /trace.json)\n";
    }
    return resp;
  };
}

}  // namespace incprof::obs
