// Minimal HTTP/1.1 GET server for the observability endpoints: one
// accept thread, one short-lived thread per connection, one request per
// connection, Connection: close. This is deliberately not a web
// framework — it exists so `curl` and a Prometheus scraper can reach a
// running incprofd (/metrics, /healthz, /trace.json) over the same
// POSIX socket machinery the TCP frame transport uses, without teaching
// the frame protocol to speak HTTP. Requests are read under a deadline
// (408 when the header never finishes, 431 when it exceeds 8 KiB), so a
// stalled or malicious client can neither block other scrapers nor hold
// a thread forever.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace incprof::obs {

/// What a route handler returns.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Maps a request path ("/metrics") to a response.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

/// Tiny blocking HTTP server bound to 0.0.0.0:<port>.
class HttpEndpoint {
 public:
  /// Binds, listens and spawns the accept thread; `port == 0` picks an
  /// ephemeral port (read it back with port()). `read_timeout` bounds
  /// how long one client may take to deliver its request headers before
  /// it is answered 408 and disconnected. Throws std::runtime_error on
  /// bind failure.
  HttpEndpoint(std::uint16_t port, HttpHandler handler,
               std::chrono::milliseconds read_timeout =
                   std::chrono::milliseconds(5000));
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Requests answered so far (any status).
  std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Requests dropped for taking too long to arrive (answered 408).
  std::uint64_t requests_timed_out() const noexcept {
    return timed_out_.load(std::memory_order_relaxed);
  }

  /// Stops accepting, force-closes in-flight clients, and joins every
  /// thread. Idempotent.
  void stop();

 private:
  void serve_loop();
  void handle_client(int client);
  bool track_client(int client);
  void untrack_client(int client);

  int fd_ = -1;
  std::uint16_t port_ = 0;
  HttpHandler handler_;
  const std::chrono::milliseconds read_timeout_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> timed_out_{0};

  std::mutex clients_mu_;
  std::condition_variable clients_cv_;
  std::vector<int> client_fds_;  // in-flight connections
  std::size_t active_clients_ = 0;

  std::thread thread_;
};

/// The standard incprofd observability routes over a registry + trace
/// ring: GET /metrics (Prometheus text), GET /healthz ("ok"), GET
/// /trace.json (Chrome trace_event JSON), 404 otherwise. Each scrape
/// bumps the registry's `obs_scrapes` counter and refreshes its
/// `obs_uptime_seconds` gauge, so /metrics is never empty.
HttpHandler make_obs_handler(MetricsRegistry& registry,
                             TraceBuffer& buffer);

}  // namespace incprof::obs
