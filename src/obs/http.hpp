// Minimal HTTP/1.1 GET server for the observability endpoints: one
// accept thread, one request per connection, Connection: close. This is
// deliberately not a web framework — it exists so `curl` and a
// Prometheus scraper can reach a running incprofd (/metrics, /healthz,
// /trace.json) over the same POSIX socket machinery the TCP frame
// transport uses, without teaching the frame protocol to speak HTTP.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace incprof::obs {

/// What a route handler returns.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Maps a request path ("/metrics") to a response.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

/// Tiny blocking HTTP server bound to 0.0.0.0:<port>.
class HttpEndpoint {
 public:
  /// Binds, listens and spawns the accept thread; `port == 0` picks an
  /// ephemeral port (read it back with port()). Throws
  /// std::runtime_error on bind failure.
  HttpEndpoint(std::uint16_t port, HttpHandler handler);
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Requests answered so far (any status).
  std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Stops accepting and joins the accept thread. Idempotent.
  void stop();

 private:
  void serve_loop();

  int fd_ = -1;
  std::uint16_t port_ = 0;
  HttpHandler handler_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread thread_;
};

/// The standard incprofd observability routes over a registry + trace
/// ring: GET /metrics (Prometheus text), GET /healthz ("ok"), GET
/// /trace.json (Chrome trace_event JSON), 404 otherwise. Each scrape
/// bumps the registry's `obs_scrapes` counter and refreshes its
/// `obs_uptime_seconds` gauge, so /metrics is never empty.
HttpHandler make_obs_handler(MetricsRegistry& registry,
                             TraceBuffer& buffer);

}  // namespace incprof::obs
