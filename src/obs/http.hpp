// Minimal HTTP/1.1 GET server for the observability endpoints: one
// accept thread, one short-lived thread per connection, one request per
// connection, Connection: close. This is deliberately not a web
// framework — it exists so `curl` and a Prometheus scraper can reach a
// running incprofd (/metrics, /healthz, /trace.json) over the same
// POSIX socket machinery the TCP frame transport uses, without teaching
// the frame protocol to speak HTTP. Requests are read under a deadline
// (408 when the header never finishes, 431 when it exceeds 8 KiB), so a
// stalled or malicious client can neither block other scrapers nor hold
// a thread forever.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_annotations.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace incprof::obs {

/// What a route handler returns.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Maps a request path ("/metrics") to a response.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

/// Tiny blocking HTTP server bound to 0.0.0.0:<port>.
class HttpEndpoint {
 public:
  /// Binds, listens and spawns the accept thread; `port == 0` picks an
  /// ephemeral port (read it back with port()). `read_timeout` bounds
  /// how long one client may take to deliver its request headers before
  /// it is answered 408 and disconnected. Throws std::runtime_error on
  /// bind failure.
  HttpEndpoint(std::uint16_t port, HttpHandler handler,
               std::chrono::milliseconds read_timeout =
                   std::chrono::milliseconds(5000));
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Requests answered so far (any status).
  std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }

  /// Requests dropped for taking too long to arrive (answered 408).
  std::uint64_t requests_timed_out() const noexcept {
    return timed_out_.load(std::memory_order_relaxed);
  }

  /// Stops accepting, force-closes in-flight clients, and joins every
  /// thread. Idempotent.
  void stop();

 private:
  /// One in-flight request: its socket and the thread serving it. The
  /// worker flips `done` when finished; the accept loop joins and
  /// discards finished workers before spawning the next one, and stop()
  /// joins whatever is left — no thread is ever detach()ed.
  struct ClientWorker {
    explicit ClientWorker(int fd_in) : fd(fd_in) {}
    const int fd;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void serve_loop();
  void handle_client(int client);
  /// Registers + spawns a worker for `client`; false once stopped.
  bool spawn_client(int client);

  int fd_ = -1;
  std::uint16_t port_ = 0;
  HttpHandler handler_;
  const std::chrono::milliseconds read_timeout_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> timed_out_{0};

  /// Leaf lock guarding the in-flight worker list.
  util::Mutex clients_mu_;
  std::vector<std::unique_ptr<ClientWorker>> clients_
      INCPROF_GUARDED_BY(clients_mu_);

  std::thread thread_;
};

/// The standard incprofd observability routes over a registry + trace
/// ring: GET /metrics (Prometheus text), GET /healthz ("ok"), GET
/// /trace.json (Chrome trace_event JSON), 404 otherwise. Each scrape
/// bumps the registry's `obs_scrapes` counter and refreshes its
/// `obs_uptime_seconds` gauge, so /metrics is never empty.
HttpHandler make_obs_handler(MetricsRegistry& registry,
                             TraceBuffer& buffer);

}  // namespace incprof::obs
