// Thread-local distributed-trace context. A context is the pair
// (trace_id, span_id): trace_id names one end-to-end trace (a client
// session crossing gateway and shard), span_id the innermost live span
// on this thread — the parent every new child span attaches to. The
// context is carried per-thread, installed/restored RAII-style, so
// instrumentation composes with zero signature changes: a ScopedSpan
// created while a context is active inherits it automatically, and the
// service layer stamps the current context into outgoing wire frames.
//
// Everything here is header-only and branch-light on purpose: the
// no-context fast path of a ScopedSpan adds one thread-local read, and
// the traced path two thread-local writes plus one relaxed fetch_add —
// the ≤100 ns span budget holds either way.
#pragma once

#include <atomic>
#include <cstdint>

namespace incprof::obs {

/// The (trace, parent span) pair a thread is currently working under.
struct TraceContext {
  /// 0 = not inside any trace.
  std::uint64_t trace_id = 0;
  /// The innermost live span on this thread (0 = root: children of
  /// this context have no parent).
  std::uint32_t span_id = 0;

  bool active() const noexcept { return trace_id != 0; }
};

namespace detail {
inline thread_local TraceContext t_trace_context;
inline std::atomic<std::uint32_t> g_next_span_id{1};
}  // namespace detail

/// The calling thread's current context ({0, 0} outside any trace).
inline TraceContext current_trace_context() noexcept {
  return detail::t_trace_context;
}

inline void set_current_trace_context(TraceContext ctx) noexcept {
  detail::t_trace_context = ctx;
}

/// Allocates a process-unique nonzero span id.
inline std::uint32_t next_span_id() noexcept {
  const std::uint32_t id =
      detail::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  // The counter wrapping to 0 (after 4 billion spans) would mint an id
  // that means "no span"; skip it.
  return id != 0
             ? id
             : detail::g_next_span_id.fetch_add(1,
                                                std::memory_order_relaxed);
}

/// RAII context installer: saves the thread's current context, installs
/// `ctx`, restores on destruction. Must nest strictly (stack order).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx) noexcept
      : saved_(current_trace_context()) {
    set_current_trace_context(ctx);
  }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  ~ScopedTraceContext() { set_current_trace_context(saved_); }

 private:
  const TraceContext saved_;
};

}  // namespace incprof::obs
