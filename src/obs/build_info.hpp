// Build identity and process lifetime for the observability endpoints.
// Every /metrics exposition should answer two operator questions before
// any other: *which build is this* (incprof_build_info with version /
// git sha / build type as labels, the Prometheus info-metric idiom:
// constant value 1, identity in the labels) and *how long has it been
// up* (process_uptime_seconds — a restart shows as the gauge snapping
// back to zero even when every counter happens to survive in a
// dashboard's rate window).
#pragma once

#include "obs/metrics.hpp"

#include <cstdint>

namespace incprof::obs {

/// Compile-time build identity (values baked in by CMake; "unknown"
/// when building outside the repo or without git).
struct BuildInfo {
  const char* version;
  const char* git_sha;
  const char* build_type;
};

BuildInfo build_info() noexcept;

/// Steady-clock stamp taken at process start (static init), the
/// reference point for process_uptime_seconds.
std::uint64_t process_start_ns() noexcept;

/// Registers the constant incprof_build_info{version,git_sha,build_type}
/// = 1 gauge on `registry`. Call once per registry at startup; calling
/// again is harmless (same series, same value).
void register_build_info(MetricsRegistry& registry);

/// Refreshes the process_uptime_seconds gauge on `registry` (call per
/// scrape so the exposition is current).
void update_process_uptime(MetricsRegistry& registry);

}  // namespace incprof::obs
