// LDMS-style record transport. The paper integrates AppEKG into "the
// LDMS data collection framework ... a proven efficient and scalable
// data collector" (Section III-A): at every collection interval the
// aggregated records are shipped as one batch to the monitoring side.
// StreamSink models that hop: records buffer per interval and a
// subscriber callback receives each completed interval's batch; a
// bounded buffer with a drop counter stands in for transport
// back-pressure (a monitor must tolerate missing batches).
#pragma once

#include "ekg/heartbeat.hpp"

#include <functional>
#include <span>
#include <vector>

namespace incprof::ekg {

/// Delivers per-interval record batches to a subscriber.
class StreamSink : public HeartbeatSink {
 public:
  /// Receives all records of one completed interval, in id order.
  using Handler = std::function<void(std::span<const HeartbeatRecord>)>;

  /// `max_pending` bounds the in-flight buffer; records beyond it are
  /// dropped (and counted) rather than blocking the application — the
  /// production-side non-negotiable.
  explicit StreamSink(Handler handler, std::size_t max_pending = 4096);

  // HeartbeatSink
  void emit(const HeartbeatRecord& rec) override;
  void close() override;

  /// Batches delivered so far.
  std::size_t delivered_batches() const noexcept { return batches_; }

  /// Records dropped due to the buffer bound.
  std::size_t dropped_records() const noexcept { return dropped_; }

 private:
  void flush();

  Handler handler_;
  std::size_t max_pending_;
  std::vector<HeartbeatRecord> pending_;
  bool has_interval_ = false;
  std::uint32_t current_interval_ = 0;
  std::size_t batches_ = 0;
  std::size_t dropped_ = 0;
  bool closed_ = false;
};

}  // namespace incprof::ekg
