#include "ekg/analysis.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace incprof::ekg {

std::vector<HeartbeatBaseline> build_baselines(
    const std::vector<HeartbeatRecord>& records) {
  obs::ScopedSpan span(
      "ekg.build_baselines", "ekg",
      &obs::default_registry().histogram("ekg_baseline_build_ns"));
  std::map<HeartbeatId, HeartbeatBaseline> by_id;
  for (const auto& rec : records) {
    HeartbeatBaseline& b = by_id[rec.id];
    b.id = rec.id;
    ++b.records;
    b.total_count += rec.count;
    b.count_stats.add(static_cast<double>(rec.count));
    b.duration_stats.add(rec.mean_duration_ns);
  }
  std::vector<HeartbeatBaseline> out;
  out.reserve(by_id.size());
  for (auto& [id, b] : by_id) out.push_back(std::move(b));
  return out;
}

std::vector<HeartbeatAnomaly> detect_anomalies(
    const std::vector<HeartbeatRecord>& history,
    const std::vector<HeartbeatRecord>& records,
    const AnomalyConfig& config) {
  std::map<HeartbeatId, HeartbeatBaseline> baselines;
  for (auto& b : build_baselines(history)) baselines[b.id] = b;

  std::vector<HeartbeatAnomaly> out;
  for (const auto& rec : records) {
    const auto it = baselines.find(rec.id);
    if (it == baselines.end()) continue;
    const HeartbeatBaseline& b = it->second;
    if (b.records < config.min_history) continue;

    auto z = [](double x, const util::RunningStats& s) {
      const double sd = s.stddev();
      if (sd <= 0.0) return 0.0;
      return (x - s.mean()) / sd;
    };
    HeartbeatAnomaly a;
    a.record = rec;
    a.duration_z = z(rec.mean_duration_ns, b.duration_stats);
    a.count_z = z(static_cast<double>(rec.count), b.count_stats);
    if (std::fabs(a.duration_z) >= config.z_threshold ||
        std::fabs(a.count_z) >= config.z_threshold) {
      out.push_back(a);
    }
  }
  return out;
}

double lane_overlap(const SeriesLane& a, const SeriesLane& b) {
  const std::size_t n = std::min(a.counts.size(), b.counts.size());
  std::size_t both = 0, either = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool aa = a.counts[i] > 0.0;
    const bool bb = b.counts[i] > 0.0;
    if (aa && bb) ++both;
    if (aa || bb) ++either;
  }
  // Tail beyond the common length: only one lane can be active there.
  for (std::size_t i = n; i < a.counts.size(); ++i) {
    if (a.counts[i] > 0.0) ++either;
  }
  for (std::size_t i = n; i < b.counts.size(); ++i) {
    if (b.counts[i] > 0.0) ++either;
  }
  return either ? static_cast<double>(both) / static_cast<double>(either)
                : 0.0;
}

std::vector<LaneOverlap> all_overlaps(const HeartbeatSeries& series) {
  std::vector<LaneOverlap> out;
  const auto& lanes = series.lanes();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    for (std::size_t j = i + 1; j < lanes.size(); ++j) {
      LaneOverlap o;
      o.a = lanes[i].id;
      o.b = lanes[j].id;
      o.jaccard = lane_overlap(lanes[i], lanes[j]);
      out.push_back(o);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LaneOverlap& x, const LaneOverlap& y) {
              return x.jaccard > y.jaccard;
            });
  return out;
}

cluster::Matrix counts_matrix(const HeartbeatSeries& series) {
  const auto& lanes = series.lanes();
  cluster::Matrix m(series.num_intervals(), lanes.size());
  for (std::size_t j = 0; j < lanes.size(); ++j) {
    for (std::size_t i = 0; i < series.num_intervals(); ++i) {
      m.at(i, j) = lanes[j].counts[i];
    }
  }
  return m;
}

double mean_overlap(const HeartbeatSeries& series) {
  const auto overlaps = all_overlaps(series);
  if (overlaps.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& o : overlaps) sum += o.jaccard;
  return sum / static_cast<double>(overlaps.size());
}

}  // namespace incprof::ekg
