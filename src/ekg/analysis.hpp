// Heartbeat-data analysis (paper, Section III): "as a history of an
// application is built up this data can be used to identify when the
// application is running poorly and when it is running well", plus the
// MiniAMR observation (Section VI-C) that simultaneously-active
// heartbeats indicate overlapping, not sequenced, phases. This module
// provides those analyses over the aggregated record stream:
//
//   * per-heartbeat baselines (rate + duration statistics),
//   * anomaly detection (intervals deviating from a heartbeat's own
//     baseline by a z-score threshold),
//   * lane-overlap measurement (Jaccard overlap of activity, to tell
//     interleaved phase structure from sequential structure).
#pragma once

#include "cluster/matrix.hpp"
#include "ekg/heartbeat.hpp"
#include "ekg/series.hpp"
#include "util/stats.hpp"

#include <vector>

namespace incprof::ekg {

/// Baseline statistics for one heartbeat id over a run (or a history of
/// runs — records can be folded in from many executions).
struct HeartbeatBaseline {
  HeartbeatId id = 0;
  /// Records (active intervals) folded in.
  std::size_t records = 0;
  /// Total heartbeats.
  std::uint64_t total_count = 0;
  /// Distribution of per-interval counts (rate).
  util::RunningStats count_stats;
  /// Distribution of per-interval mean durations, ns.
  util::RunningStats duration_stats;
};

/// Builds baselines per heartbeat id from a record stream.
std::vector<HeartbeatBaseline> build_baselines(
    const std::vector<HeartbeatRecord>& records);

/// One flagged deviation.
struct HeartbeatAnomaly {
  HeartbeatRecord record;
  /// z-score of the record's mean duration against the id's baseline.
  double duration_z = 0.0;
  /// z-score of the record's count against the id's baseline.
  double count_z = 0.0;
};

/// Anomaly-scan parameters.
struct AnomalyConfig {
  /// |z| threshold on duration or count to flag a record.
  double z_threshold = 3.0;
  /// Minimum baseline records before scanning an id (small histories
  /// make z-scores meaningless).
  std::size_t min_history = 8;
};

/// Flags records deviating from their heartbeat's baseline. The
/// baselines are computed over `history`; `records` is scanned (pass the
/// same vector twice for a self-scan).
std::vector<HeartbeatAnomaly> detect_anomalies(
    const std::vector<HeartbeatRecord>& history,
    const std::vector<HeartbeatRecord>& records,
    const AnomalyConfig& config = {});

/// Pairwise activity overlap of two series lanes: Jaccard index of the
/// interval sets where each lane has nonzero count. 1 = always active
/// together (the paper's MiniAMR manual sites), 0 = disjoint phases.
double lane_overlap(const SeriesLane& a, const SeriesLane& b);

/// A pair of lanes with their overlap, for reporting.
struct LaneOverlap {
  HeartbeatId a = 0;
  HeartbeatId b = 0;
  double jaccard = 0.0;
};

/// All pairwise overlaps in a series, sorted by descending overlap.
std::vector<LaneOverlap> all_overlaps(const HeartbeatSeries& series);

/// Classification of a whole series' phase structure: "sequenced" when
/// lanes are mostly disjoint, "overlapping" when lanes co-occur — the
/// distinction the paper draws between MiniFE-style and MiniAMR-style
/// instrumentation. Returns the mean pairwise Jaccard.
double mean_overlap(const HeartbeatSeries& series);

/// Interval-by-lane heartbeat-count matrix: row i = interval i, column
/// j = counts of the j-th lane (in lanes() order). This closes the
/// paper's loop — "phase identification is shown by the time-varying
/// activity of the heartbeats" (Section VI): clustering this matrix
/// must recover the phases the heartbeat sites were selected for.
cluster::Matrix counts_matrix(const HeartbeatSeries& series);

}  // namespace incprof::ekg
