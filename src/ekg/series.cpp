#include "ekg/series.hpp"

#include <algorithm>

namespace incprof::ekg {

double SeriesLane::activity_fraction() const noexcept {
  if (counts.empty()) return 0.0;
  std::size_t active = 0;
  for (double c : counts) {
    if (c > 0.0) ++active;
  }
  return static_cast<double>(active) / static_cast<double>(counts.size());
}

HeartbeatSeries HeartbeatSeries::from_records(
    const std::vector<HeartbeatRecord>& records, std::size_t min_intervals) {
  HeartbeatSeries s;
  std::size_t n = min_intervals;
  for (const auto& r : records) {
    n = std::max(n, static_cast<std::size_t>(r.interval) + 1);
  }
  s.num_intervals_ = n;

  std::map<HeartbeatId, std::size_t> index;
  for (const auto& r : records) {
    auto [it, inserted] = index.try_emplace(r.id, s.lanes_.size());
    if (inserted) {
      SeriesLane lane;
      lane.id = r.id;
      lane.counts.assign(n, 0.0);
      lane.mean_duration_us.assign(n, 0.0);
      s.lanes_.push_back(std::move(lane));
    }
    SeriesLane& lane = s.lanes_[it->second];
    lane.counts[r.interval] += static_cast<double>(r.count);
    lane.mean_duration_us[r.interval] = r.mean_duration_ns / 1e3;
  }
  std::sort(s.lanes_.begin(), s.lanes_.end(),
            [](const SeriesLane& a, const SeriesLane& b) {
              return a.id < b.id;
            });
  return s;
}

const SeriesLane* HeartbeatSeries::lane(HeartbeatId id) const noexcept {
  for (const auto& lane : lanes_) {
    if (lane.id == id) return &lane;
  }
  return nullptr;
}

void HeartbeatSeries::set_label(HeartbeatId id, std::string label) {
  for (auto& lane : lanes_) {
    if (lane.id == id) {
      lane.label = std::move(label);
      return;
    }
  }
}

}  // namespace incprof::ekg
