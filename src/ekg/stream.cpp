#include "ekg/stream.hpp"

#include <stdexcept>

namespace incprof::ekg {

StreamSink::StreamSink(Handler handler, std::size_t max_pending)
    : handler_(std::move(handler)), max_pending_(max_pending) {
  if (!handler_) {
    throw std::invalid_argument("StreamSink: handler required");
  }
  if (max_pending_ == 0) {
    throw std::invalid_argument("StreamSink: max_pending must be > 0");
  }
}

void StreamSink::emit(const HeartbeatRecord& rec) {
  if (has_interval_ && rec.interval != current_interval_) flush();
  has_interval_ = true;
  current_interval_ = rec.interval;
  if (pending_.size() >= max_pending_) {
    ++dropped_;
    return;
  }
  pending_.push_back(rec);
}

void StreamSink::close() {
  if (closed_) return;
  closed_ = true;
  flush();
}

void StreamSink::flush() {
  if (pending_.empty()) return;
  handler_(std::span<const HeartbeatRecord>(pending_));
  ++batches_;
  pending_.clear();
}

}  // namespace incprof::ekg
