// AppEKG — the heartbeat instrumentation framework (paper, Section III-A).
//
// The API is the paper's two-step design: beginHeartbeat(ID) /
// endHeartbeat(ID), where each unique ID represents one application
// phase. The runtime does NOT record individual heartbeats; it
// accumulates, per collection interval, the number of heartbeats that
// *finished* in the interval and their average duration, and writes one
// record per (interval, id) at the interval boundary. That aggregation is
// what keeps production overhead negligible.
#pragma once

#include "sim/clock.hpp"
#include "util/stats.hpp"

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace incprof::ekg {

/// Application-assigned heartbeat identity; one per phase.
using HeartbeatId = std::uint32_t;

/// One aggregated record: what AppEKG writes out per interval per id.
struct HeartbeatRecord {
  /// Zero-based collection-interval index.
  std::uint32_t interval = 0;
  HeartbeatId id = 0;
  /// Heartbeats that ended within this interval.
  std::uint64_t count = 0;
  /// Mean duration of those heartbeats, ns (0 when count == 0).
  double mean_duration_ns = 0.0;
  /// Max duration within the interval, ns.
  double max_duration_ns = 0.0;

  bool operator==(const HeartbeatRecord&) const = default;
};

/// Receives aggregated records at each interval flush.
class HeartbeatSink {
 public:
  virtual ~HeartbeatSink() = default;
  /// One record per (interval, id) with nonzero activity.
  virtual void emit(const HeartbeatRecord& rec) = 0;
  /// The run ended; release buffers / close files.
  virtual void close() {}
};

/// Keeps all records in memory (analysis & tests).
class MemorySink : public HeartbeatSink {
 public:
  void emit(const HeartbeatRecord& rec) override { records_.push_back(rec); }
  const std::vector<HeartbeatRecord>& records() const noexcept {
    return records_;
  }

 private:
  std::vector<HeartbeatRecord> records_;
};

/// Streams records as CSV rows: interval,id,count,mean_us,max_us.
/// The LDMS integration of the paper is a transport around exactly this
/// per-interval record stream.
class CsvSink : public HeartbeatSink {
 public:
  /// Writes a header row immediately. The stream must outlive the sink.
  explicit CsvSink(std::ostream& os);
  void emit(const HeartbeatRecord& rec) override;

 private:
  std::ostream& os_;
};

/// AppEKG runtime configuration.
struct EkgConfig {
  /// Collection interval on the application clock. The paper's plots use
  /// 1-second intervals.
  sim::vtime_t interval_ns = sim::kNsPerSec;
};

/// The heartbeat runtime for one process. Time is supplied by the caller
/// (virtual engine time in the reproduction; any monotonic clock in a
/// real deployment). Begin/end pairs may nest per id; a heartbeat is
/// attributed to the interval in which it *ends*.
class AppEkg {
 public:
  /// `sink` must outlive the runtime.
  AppEkg(EkgConfig cfg, HeartbeatSink& sink);

  /// Marks the start of heartbeat `id` at time `now`.
  void begin(HeartbeatId id, sim::vtime_t now);

  /// Marks the end of heartbeat `id`; pairs with the most recent
  /// unmatched begin of the same id. An end without a begin is counted
  /// with zero duration (robustness over strictness, as in production
  /// instrumentation).
  void end(HeartbeatId id, sim::vtime_t now);

  /// Convenience: a zero-duration "impulse" heartbeat (the paper's
  /// original single-event design, kept for loop-site adapters).
  void impulse(HeartbeatId id, sim::vtime_t now);

  /// Informs the runtime that time has advanced; flushes any completed
  /// intervals. Call this periodically (the engine adapter calls it on
  /// every sample).
  void advance(sim::vtime_t now);

  /// Final flush at end of run; emits the trailing partial interval.
  void finalize(sim::vtime_t now);

  /// Heartbeat ids seen so far.
  std::vector<HeartbeatId> known_ids() const;

  /// Total begin() calls (for overhead accounting in tests).
  std::uint64_t begin_calls() const noexcept { return begin_calls_; }

 private:
  struct IdState {
    std::vector<sim::vtime_t> open_begins;  // stack for nesting
    std::uint64_t count = 0;                // ends within current interval
    util::RunningStats durations;           // ns, within current interval
  };

  void flush_through(sim::vtime_t now);
  void flush_interval();

  EkgConfig cfg_;
  HeartbeatSink& sink_;
  std::map<HeartbeatId, IdState> states_;
  std::uint32_t current_interval_ = 0;
  sim::vtime_t interval_end_;
  std::uint64_t begin_calls_ = 0;
  bool finalized_ = false;
};

}  // namespace incprof::ekg
