// Dense per-interval heartbeat time series, reconstructed from the
// aggregated record stream. This is the data behind the paper's Figures
// 2-6: for each heartbeat id, a count and a mean-duration value per
// interval (zero where the id produced no record — the "gaps" the paper
// discusses for heartbeats longer than the collection interval).
#pragma once

#include "ekg/heartbeat.hpp"

#include <map>
#include <span>
#include <string>
#include <vector>

namespace incprof::ekg {

/// One id's dense series.
struct SeriesLane {
  HeartbeatId id = 0;
  /// Optional display label (site function name).
  std::string label;
  /// counts[i] = heartbeats that ended in interval i.
  std::vector<double> counts;
  /// mean_duration_us[i] = mean duration (microseconds) in interval i.
  std::vector<double> mean_duration_us;

  /// Fraction of intervals with nonzero count.
  double activity_fraction() const noexcept;
};

/// All lanes over a common interval axis [0, num_intervals).
class HeartbeatSeries {
 public:
  /// Builds dense lanes from records. The axis length is
  /// max(record.interval)+1, or `min_intervals` if larger.
  static HeartbeatSeries from_records(
      const std::vector<HeartbeatRecord>& records,
      std::size_t min_intervals = 0);

  /// Number of intervals on the axis.
  std::size_t num_intervals() const noexcept { return num_intervals_; }

  /// All lanes, ordered by id.
  const std::vector<SeriesLane>& lanes() const noexcept { return lanes_; }

  /// Lane for `id`, or nullptr.
  const SeriesLane* lane(HeartbeatId id) const noexcept;

  /// Attaches a display label to a lane (no-op for unknown ids).
  void set_label(HeartbeatId id, std::string label);

 private:
  std::size_t num_intervals_ = 0;
  std::vector<SeriesLane> lanes_;
};

}  // namespace incprof::ekg
