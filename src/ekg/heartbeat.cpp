#include "ekg/heartbeat.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"

#include <stdexcept>

namespace incprof::ekg {

CsvSink::CsvSink(std::ostream& os) : os_(os) {
  os_ << "interval,hb_id,count,mean_duration_us,max_duration_us\n";
}

void CsvSink::emit(const HeartbeatRecord& rec) {
  os_ << rec.interval << ',' << rec.id << ',' << rec.count << ','
      << rec.mean_duration_ns / 1e3 << ',' << rec.max_duration_ns / 1e3
      << '\n';
}

AppEkg::AppEkg(EkgConfig cfg, HeartbeatSink& sink)
    : cfg_(cfg), sink_(sink), interval_end_(cfg.interval_ns) {
  if (cfg_.interval_ns <= 0) {
    throw std::invalid_argument("AppEkg: interval must be positive");
  }
}

void AppEkg::begin(HeartbeatId id, sim::vtime_t now) {
  flush_through(now);
  ++begin_calls_;
  states_[id].open_begins.push_back(now);
}

void AppEkg::end(HeartbeatId id, sim::vtime_t now) {
  flush_through(now);
  IdState& st = states_[id];
  sim::vtime_t begun = now;  // unmatched end -> zero duration
  if (!st.open_begins.empty()) {
    begun = st.open_begins.back();
    st.open_begins.pop_back();
  }
  ++st.count;
  st.durations.add(static_cast<double>(now - begun));
}

void AppEkg::impulse(HeartbeatId id, sim::vtime_t now) {
  begin(id, now);
  end(id, now);
}

void AppEkg::advance(sim::vtime_t now) { flush_through(now); }

void AppEkg::finalize(sim::vtime_t now) {
  if (finalized_) return;
  flush_through(now);
  // Emit the trailing partial interval if it holds any activity.
  flush_interval();
  finalized_ = true;
  sink_.close();
}

std::vector<HeartbeatId> AppEkg::known_ids() const {
  std::vector<HeartbeatId> ids;
  ids.reserve(states_.size());
  for (const auto& [id, st] : states_) ids.push_back(id);
  return ids;
}

void AppEkg::flush_through(sim::vtime_t now) {
  while (now >= interval_end_) {
    flush_interval();
    ++current_interval_;
    interval_end_ += cfg_.interval_ns;
  }
}

void AppEkg::flush_interval() {
  // Self-telemetry on the aggregation hop itself: the paper's overhead
  // story (Table I) rests on per-interval aggregation being negligible
  // next to the interval length, so we measure it.
  obs::ScopedSpan span(
      "ekg.flush_interval", "ekg",
      &obs::default_registry().histogram("ekg_flush_ns"));
  for (auto& [id, st] : states_) {
    if (st.count == 0) continue;
    HeartbeatRecord rec;
    rec.interval = current_interval_;
    rec.id = id;
    rec.count = st.count;
    rec.mean_duration_ns = st.durations.mean();
    rec.max_duration_ns = st.durations.max();
    sink_.emit(rec);
    st.count = 0;
    st.durations.reset();
  }
}

}  // namespace incprof::ekg
