#include "ekg/adapter.hpp"

namespace incprof::ekg {

EkgEngineAdapter::EkgEngineAdapter(AppEkg& ekg,
                                   const sim::ExecutionEngine& engine,
                                   std::vector<InstrumentedSite> sites)
    : ekg_(ekg), engine_(engine), sites_(std::move(sites)) {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    pending_by_name_.emplace(sites_[i].function, i);
  }
  refresh_bindings();
}

void EkgEngineAdapter::refresh_bindings() {
  const auto& reg = engine_.registry();
  for (; checked_fids_ < reg.size(); ++checked_fids_) {
    const auto fid = static_cast<sim::FunctionId>(checked_fids_);
    auto it = pending_by_name_.find(reg.name(fid));
    if (it == pending_by_name_.end()) continue;
    const InstrumentedSite& site = sites_[it->second];
    SiteBinding b;
    b.hb_id = site.hb_id;
    b.kind = site.kind;
    bindings_.emplace(fid, b);
    pending_by_name_.erase(it);
  }
}

EkgEngineAdapter::SiteBinding* EkgEngineAdapter::binding_for(
    sim::FunctionId fid) {
  if (!pending_by_name_.empty()) refresh_bindings();
  auto it = bindings_.find(fid);
  return it == bindings_.end() ? nullptr : &it->second;
}

void EkgEngineAdapter::on_enter(sim::FunctionId fid, sim::vtime_t now) {
  SiteBinding* b = binding_for(fid);
  if (b == nullptr) return;
  if (b->kind == SiteKind::kBody) {
    ekg_.begin(b->hb_id, now);
  } else {
    b->last_tick = -1;  // fresh activation: reset the iteration timer
  }
}

void EkgEngineAdapter::on_leave(sim::FunctionId fid, sim::vtime_t now) {
  SiteBinding* b = binding_for(fid);
  if (b == nullptr) return;
  if (b->kind == SiteKind::kBody) {
    ekg_.end(b->hb_id, now);
  } else {
    b->last_tick = -1;
  }
}

void EkgEngineAdapter::on_loop_tick(sim::FunctionId fid, sim::vtime_t now) {
  SiteBinding* b = binding_for(fid);
  if (b == nullptr || b->kind != SiteKind::kLoop) return;
  // One heartbeat per loop iteration: the iteration spans from the
  // previous tick (or activation start when unknown) to this tick.
  if (b->last_tick >= 0) {
    ekg_.begin(b->hb_id, b->last_tick);
    ekg_.end(b->hb_id, now);
  } else {
    ekg_.impulse(b->hb_id, now);
  }
  b->last_tick = now;
}

void EkgEngineAdapter::on_sample(const sim::ExecutionEngine&,
                                 sim::vtime_t now) {
  ekg_.advance(now);
}

void EkgEngineAdapter::on_finish(const sim::ExecutionEngine&,
                                 sim::vtime_t now) {
  ekg_.finalize(now);
}

}  // namespace incprof::ekg
