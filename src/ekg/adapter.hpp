// Bridges engine execution to AppEKG heartbeats for a set of
// instrumentation sites. This models physically editing the application:
// a *body* site gets beginHeartbeat at function entry and endHeartbeat at
// function exit; a *loop* site gets a heartbeat per iteration of the main
// loop inside the function (the engine's loop_tick markers). The same
// adapter serves both the manually chosen sites and the sites Algorithm 1
// discovers, so the paper's discovered-vs-manual comparison (Figures 2-6)
// runs through identical machinery.
#pragma once

#include "ekg/heartbeat.hpp"
#include "sim/engine.hpp"

#include <string>
#include <unordered_map>
#include <vector>

namespace incprof::ekg {

/// How a site is instrumented (paper, Section V-B).
enum class SiteKind {
  /// Instrument function entry/exit.
  kBody,
  /// Instrument an iteration of a loop within the function body.
  kLoop,
};

/// One instrumentation site: function + kind + assigned heartbeat id.
struct InstrumentedSite {
  std::string function;
  SiteKind kind = SiteKind::kBody;
  HeartbeatId hb_id = 0;
};

/// Engine listener that fires AppEKG heartbeats for the given sites, and
/// drives the AppEKG interval clock from engine samples.
class EkgEngineAdapter : public sim::EngineListener {
 public:
  /// `ekg` and `engine` must outlive the adapter. Site function names are
  /// resolved against the engine registry lazily, since apps intern
  /// names only as execution first reaches them.
  EkgEngineAdapter(AppEkg& ekg, const sim::ExecutionEngine& engine,
                   std::vector<InstrumentedSite> sites);

  // EngineListener
  void on_enter(sim::FunctionId fid, sim::vtime_t now) override;
  void on_leave(sim::FunctionId fid, sim::vtime_t now) override;
  void on_loop_tick(sim::FunctionId fid, sim::vtime_t now) override;
  void on_sample(const sim::ExecutionEngine& eng,
                 sim::vtime_t now) override;
  void on_finish(const sim::ExecutionEngine& eng,
                 sim::vtime_t now) override;

  /// The configured sites.
  const std::vector<InstrumentedSite>& sites() const noexcept {
    return sites_;
  }

 private:
  struct SiteBinding {
    HeartbeatId hb_id = 0;
    SiteKind kind = SiteKind::kBody;
    // Loop sites: virtual time of the previous loop_tick within the
    // current activation, or -1 when none yet.
    sim::vtime_t last_tick = -1;
  };

  /// Checks registry ids interned since the last call against the
  /// still-unbound site names.
  void refresh_bindings();

  /// Binding for fid, or nullptr if the function is not a site.
  SiteBinding* binding_for(sim::FunctionId fid);

  AppEkg& ekg_;
  const sim::ExecutionEngine& engine_;
  std::vector<InstrumentedSite> sites_;
  std::unordered_map<std::string, std::size_t> pending_by_name_;
  std::unordered_map<sim::FunctionId, SiteBinding> bindings_;
  std::size_t checked_fids_ = 0;
};

}  // namespace incprof::ekg
