// Coverage-count profiling — the gcov-shaped data source. The paper's
// footnote 1: "we have created proof-of-concept implementations for both
// the gcov and JaCoCo tools" — i.e. the IncProf methodology runs on
// *execution counts* as well as on sampled time. CoverageProfiler counts
// function entries and loop iterations (the per-function aggregate of
// gcov's line counts) and emits the same cumulative ProfileSnapshot
// shape the pipeline consumes, with counts standing in for work:
//
//   self_ns   <- body executions: entries + loop iterations (the
//                function's "lines executed", scaled to a nominal ns
//                per hit so the downstream seconds-based code is
//                reusable unchanged)
//   calls     <- function entries (unchanged meaning)
//
// bench_ablation_coverage and the tests show phase detection from
// coverage counts agreeing with time-based detection on the mini-apps.
#pragma once

#include "gmon/snapshot.hpp"
#include "sim/engine.hpp"

#include <vector>

namespace incprof::prof {

/// Counts entries and loop ticks per function, cumulatively.
class CoverageProfiler : public sim::EngineListener {
 public:
  /// `engine` must outlive the profiler. `ns_per_hit` is the nominal
  /// weight of one loop iteration in the emitted self_ns column (the
  /// clustering is scale-invariant per column, so the default is fine).
  explicit CoverageProfiler(const sim::ExecutionEngine& engine,
                            std::int64_t ns_per_hit = 1000)
      : engine_(engine), ns_per_hit_(ns_per_hit) {}

  // EngineListener
  void on_enter(sim::FunctionId fid, sim::vtime_t now) override;
  void on_loop_tick(sim::FunctionId fid, sim::vtime_t now) override;

  /// Cumulative coverage snapshot in ProfileSnapshot form (see header
  /// comment for the column mapping).
  gmon::ProfileSnapshot snapshot(std::uint32_t seq,
                                 sim::vtime_t timestamp_ns) const;

  /// Total loop iterations recorded (all functions).
  std::uint64_t total_hits() const noexcept { return total_hits_; }

 private:
  void ensure_size(std::size_t n);

  const sim::ExecutionEngine& engine_;
  std::int64_t ns_per_hit_;
  std::vector<std::uint64_t> entries_;
  std::vector<std::uint64_t> hits_;
  std::uint64_t total_hits_ = 0;
};

/// A collector for coverage data: periodically snapshots a
/// CoverageProfiler at fixed virtual intervals, like IncProfCollector
/// does for time profiles, driven by loop ticks and calls rather than
/// samples (gcov-mode gathers no samples). Dumps are taken at the first
/// event on or after each interval boundary.
class CoverageCollector : public sim::EngineListener {
 public:
  CoverageCollector(const CoverageProfiler& profiler,
                    sim::vtime_t interval_ns);

  // EngineListener
  void on_enter(sim::FunctionId fid, sim::vtime_t now) override;
  void on_loop_tick(sim::FunctionId fid, sim::vtime_t now) override;
  void on_sample(const sim::ExecutionEngine& eng,
                 sim::vtime_t now) override;
  void on_finish(const sim::ExecutionEngine& eng,
                 sim::vtime_t now) override;

  /// All cumulative snapshots, ordered by seq.
  const std::vector<gmon::ProfileSnapshot>& snapshots() const noexcept {
    return snapshots_;
  }

 private:
  void maybe_dump(sim::vtime_t now);

  const CoverageProfiler& profiler_;
  sim::vtime_t interval_ns_;
  sim::vtime_t next_dump_at_;
  std::uint32_t next_seq_ = 0;
  bool finished_ = false;
  std::vector<gmon::ProfileSnapshot> snapshots_;
};

}  // namespace incprof::prof
