// The IncProf collector — the reproduction of the paper's preloadable
// shared library (Section IV). The original runs a thread in a
// sleep/wakeup cycle; at each wakeup it calls the hidden glibc gprof
// write function, renames gmon.out to a unique per-interval name, and
// sleeps again. Here the "wakeup" is the crossing of each interval
// boundary on the virtual clock, and the "write + rename" is a cumulative
// SamplingProfiler snapshot stamped with the interval sequence number —
// optionally persisted as a binary gmon-style file per interval.
#pragma once

#include "gmon/snapshot.hpp"
#include "prof/sampler.hpp"
#include "sim/engine.hpp"

#include <filesystem>
#include <optional>
#include <vector>

namespace incprof::prof {

/// Collector configuration.
struct CollectorConfig {
  /// Dump interval on the profiled clock. The paper uses one second
  /// ("with a data write-out rate of once per second").
  sim::vtime_t interval_ns = sim::kNsPerSec;

  /// When set, each snapshot is also written to this directory as
  /// gmon-NNNNNN.out (the rename-to-unique-sample-name step).
  std::optional<std::filesystem::path> dump_dir;

  /// Also dump the final partial interval at on_finish. The real tool
  /// always leaves a last gmon.out behind at exit; keep it on.
  bool dump_final_partial = true;
};

/// Periodically snapshots a SamplingProfiler. Register with the engine
/// *after* the profiler so each dump sees the sample that triggered it.
class IncProfCollector : public sim::EngineListener {
 public:
  /// `profiler` must be registered on the same engine and outlive the
  /// collector.
  IncProfCollector(const SamplingProfiler& profiler, CollectorConfig cfg);

  // EngineListener
  void on_sample(const sim::ExecutionEngine& eng,
                 sim::vtime_t now) override;
  void on_finish(const sim::ExecutionEngine& eng,
                 sim::vtime_t now) override;

  /// All cumulative snapshots collected, ordered by seq.
  const std::vector<gmon::ProfileSnapshot>& snapshots() const noexcept {
    return snapshots_;
  }

  /// Number of dumps taken.
  std::size_t dump_count() const noexcept { return snapshots_.size(); }

 private:
  void dump(sim::vtime_t now);

  const SamplingProfiler& profiler_;
  CollectorConfig cfg_;
  sim::vtime_t next_dump_at_;
  std::uint32_t next_seq_ = 0;
  bool finished_ = false;
  std::vector<gmon::ProfileSnapshot> snapshots_;
};

}  // namespace incprof::prof
