// The gprof-equivalent runtime profiler: PC sampling plus call counting.
//
// gprof attributes one "tick" of self time to whatever function the
// program counter is in at each profiling-clock interrupt, and counts
// calls via -pg entry stubs. SamplingProfiler does exactly that against
// the engine's shadow stack: on_sample charges the stack top with one
// sample of self time (and every distinct function on the stack with one
// sample of inclusive time), on_enter bumps the call counter.
#pragma once

#include "gmon/snapshot.hpp"
#include "sim/engine.hpp"

#include <cstdint>
#include <vector>

namespace incprof::prof {

/// Accumulates cumulative profile counters for one engine (one rank).
/// Register with ExecutionEngine::add_listener before the run starts.
class SamplingProfiler : public sim::EngineListener {
 public:
  /// `engine` must outlive the profiler; the profiler reads its registry
  /// when taking snapshots.
  explicit SamplingProfiler(const sim::ExecutionEngine& engine)
      : engine_(engine) {}

  // EngineListener
  void on_enter(sim::FunctionId fid, sim::vtime_t now) override;
  void on_sample(const sim::ExecutionEngine& eng,
                 sim::vtime_t now) override;

  /// Builds a cumulative snapshot of everything recorded so far.
  /// Mirrors the gprof data-file write the IncProf collector triggers.
  gmon::ProfileSnapshot snapshot(std::uint32_t seq,
                                 sim::vtime_t timestamp_ns) const;

  /// Total self samples recorded (across all functions).
  std::uint64_t total_samples() const noexcept { return total_samples_; }

  /// Samples that fell on an empty stack (attributed to no function and
  /// not reported, like ticks in unmapped code under real gprof).
  std::uint64_t dropped_samples() const noexcept { return dropped_; }

 private:
  void ensure_size(std::size_t n);

  const sim::ExecutionEngine& engine_;
  std::vector<std::uint64_t> self_samples_;
  std::vector<std::uint64_t> inclusive_samples_;
  std::vector<std::uint64_t> calls_;
  std::vector<std::uint32_t> stamp_;  // de-dup marks for inclusive counting
  std::uint32_t epoch_ = 0;
  std::uint64_t total_samples_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace incprof::prof
