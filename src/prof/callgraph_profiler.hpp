// Call-graph collection — the runtime side of gprof's second table.
// Records, per (direct caller, callee) arc, the call count (from entry
// instrumentation) and the callee's sampled self time under that caller
// (from PC sampling plus the shadow stack — exactly the information
// mcount-based gprof reconstructs). Feeds core::lift_sites.
#pragma once

#include "gmon/callgraph.hpp"
#include "sim/engine.hpp"

#include <unordered_map>
#include <vector>

namespace incprof::prof {

/// Accumulates cumulative caller->callee counters for one engine.
class CallGraphProfiler : public sim::EngineListener {
 public:
  /// `engine` must outlive the profiler.
  explicit CallGraphProfiler(const sim::ExecutionEngine& engine)
      : engine_(engine) {}

  // EngineListener
  void on_enter(sim::FunctionId fid, sim::vtime_t now) override;
  void on_sample(const sim::ExecutionEngine& eng,
                 sim::vtime_t now) override;

  /// Builds the cumulative call-graph snapshot.
  gmon::CallGraphSnapshot snapshot(std::uint32_t seq,
                                   sim::vtime_t timestamp_ns) const;

 private:
  struct Cell {
    std::int64_t count = 0;
    std::int64_t samples = 0;
  };

  // Arc key: (caller id + 1, callee id); caller 0 = spontaneous.
  using Key = std::uint64_t;
  static Key key(sim::FunctionId caller_plus1,
                 sim::FunctionId callee) noexcept {
    return (static_cast<Key>(caller_plus1) << 32) | callee;
  }

  const sim::ExecutionEngine& engine_;
  std::unordered_map<Key, Cell> cells_;
};

}  // namespace incprof::prof
