#include "prof/callgraph_profiler.hpp"

namespace incprof::prof {

void CallGraphProfiler::on_enter(sim::FunctionId fid, sim::vtime_t) {
  // The engine notifies after pushing, so the caller sits one below the
  // top of the stack.
  const auto stack = engine_.stack();
  const sim::FunctionId caller =
      stack.size() >= 2 ? stack[stack.size() - 2] : sim::kNoFunction;
  const sim::FunctionId caller_plus1 =
      caller == sim::kNoFunction ? 0 : caller + 1;
  ++cells_[key(caller_plus1, fid)].count;
}

void CallGraphProfiler::on_sample(const sim::ExecutionEngine& eng,
                                  sim::vtime_t) {
  const auto stack = eng.stack();
  if (stack.empty()) return;
  const sim::FunctionId top = stack.back();
  const sim::FunctionId caller =
      stack.size() >= 2 ? stack[stack.size() - 2] : sim::kNoFunction;
  const sim::FunctionId caller_plus1 =
      caller == sim::kNoFunction ? 0 : caller + 1;
  ++cells_[key(caller_plus1, top)].samples;
}

gmon::CallGraphSnapshot CallGraphProfiler::snapshot(
    std::uint32_t seq, sim::vtime_t timestamp_ns) const {
  gmon::CallGraphSnapshot snap(seq, timestamp_ns);
  const auto period = engine_.sample_period_ns();
  for (const auto& [k, cell] : cells_) {
    const auto caller_plus1 = static_cast<sim::FunctionId>(k >> 32);
    const auto callee = static_cast<sim::FunctionId>(k & 0xffffffffu);
    gmon::CallEdge edge;
    edge.caller = caller_plus1 == 0
                      ? std::string(gmon::kSpontaneous)
                      : engine_.registry().name(caller_plus1 - 1);
    edge.callee = engine_.registry().name(callee);
    edge.count = cell.count;
    edge.time_ns = cell.samples * period;
    snap.upsert(std::move(edge));
  }
  return snap;
}

}  // namespace incprof::prof
