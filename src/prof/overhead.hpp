// Wall-clock overhead measurement (Table I's "IncProf Ovhd %" and
// "Heartbeat Ovhd %" columns). Runs the same workload in different
// instrumentation configurations and compares real elapsed time. The
// absolute percentages depend on the host; the paper's claim being
// reproduced is the *bound*: IncProf collection stays in the ~10 % class,
// heartbeats well under that.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace incprof::prof {

/// One measured configuration.
struct OverheadSample {
  std::string label;
  double mean_sec = 0.0;
  double min_sec = 0.0;
  double stddev_sec = 0.0;
  std::size_t repetitions = 0;
};

/// Result of comparing a configuration against the baseline.
struct OverheadReport {
  OverheadSample baseline;
  OverheadSample instrumented;

  /// (instrumented - baseline) / baseline * 100, using min times (the
  /// standard noise-robust choice for overhead microcomparisons).
  double overhead_pct() const noexcept;
};

/// Times `fn` `reps` times (after `warmups` unrecorded runs) and returns
/// the distribution summary.
OverheadSample time_workload(const std::string& label,
                             const std::function<void()>& fn,
                             std::size_t reps = 5, std::size_t warmups = 1);

/// Convenience: measures baseline vs instrumented and packages the report.
OverheadReport compare_overhead(const std::function<void()>& baseline,
                                const std::function<void()>& instrumented,
                                std::size_t reps = 5,
                                std::size_t warmups = 1);

}  // namespace incprof::prof
