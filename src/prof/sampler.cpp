#include "prof/sampler.hpp"

namespace incprof::prof {

void SamplingProfiler::ensure_size(std::size_t n) {
  if (self_samples_.size() < n) {
    self_samples_.resize(n, 0);
    inclusive_samples_.resize(n, 0);
    calls_.resize(n, 0);
    stamp_.resize(n, 0);
  }
}

void SamplingProfiler::on_enter(sim::FunctionId fid, sim::vtime_t) {
  ensure_size(static_cast<std::size_t>(fid) + 1);
  ++calls_[fid];
}

void SamplingProfiler::on_sample(const sim::ExecutionEngine& eng,
                                 sim::vtime_t) {
  const sim::FunctionId top = eng.current();
  if (top == sim::kNoFunction) {
    ++dropped_;
    return;
  }
  ensure_size(eng.registry().size());
  ++self_samples_[top];
  ++total_samples_;

  // Inclusive: each distinct function on the stack gets one sample.
  // Recursion must not double-charge, hence the epoch stamps.
  ++epoch_;
  for (const sim::FunctionId fid : eng.stack()) {
    if (stamp_[fid] == epoch_) continue;
    stamp_[fid] = epoch_;
    ++inclusive_samples_[fid];
  }
}

gmon::ProfileSnapshot SamplingProfiler::snapshot(
    std::uint32_t seq, sim::vtime_t timestamp_ns) const {
  gmon::ProfileSnapshot snap(seq, timestamp_ns);
  const auto period = engine_.sample_period_ns();
  const std::size_t n = self_samples_.size();
  for (std::size_t fid = 0; fid < n; ++fid) {
    if (self_samples_[fid] == 0 && calls_[fid] == 0 &&
        inclusive_samples_[fid] == 0) {
      continue;
    }
    gmon::FunctionProfile fp;
    fp.name = engine_.registry().name(static_cast<sim::FunctionId>(fid));
    fp.self_ns = static_cast<std::int64_t>(self_samples_[fid]) * period;
    fp.calls = static_cast<std::int64_t>(calls_[fid]);
    fp.inclusive_ns =
        static_cast<std::int64_t>(inclusive_samples_[fid]) * period;
    snap.upsert(std::move(fp));
  }
  return snap;
}

}  // namespace incprof::prof
