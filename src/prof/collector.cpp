#include "prof/collector.hpp"

#include "gmon/binary_io.hpp"
#include "gmon/scanner.hpp"

#include <cassert>
#include <stdexcept>

namespace incprof::prof {

IncProfCollector::IncProfCollector(const SamplingProfiler& profiler,
                                   CollectorConfig cfg)
    : profiler_(profiler), cfg_(cfg), next_dump_at_(cfg.interval_ns) {
  if (cfg_.interval_ns <= 0) {
    throw std::invalid_argument(
        "IncProfCollector: interval must be positive");
  }
  if (cfg_.dump_dir) {
    std::filesystem::create_directories(*cfg_.dump_dir);
  }
}

void IncProfCollector::on_sample(const sim::ExecutionEngine&,
                                 sim::vtime_t now) {
  // Multiple intervals can elapse within one long work() call only if the
  // sample period exceeds the interval; dump until caught up either way.
  while (now >= next_dump_at_) {
    dump(next_dump_at_);
    next_dump_at_ += cfg_.interval_ns;
  }
}

void IncProfCollector::on_finish(const sim::ExecutionEngine&,
                                 sim::vtime_t now) {
  if (finished_) return;
  finished_ = true;
  if (cfg_.dump_final_partial && now >= next_dump_at_ - cfg_.interval_ns) {
    // Dump whatever accumulated since the last boundary (if anything new
    // happened at all since start).
    if (snapshots_.empty() ||
        snapshots_.back().timestamp_ns() < now) {
      dump(now);
    }
  }
}

void IncProfCollector::dump(sim::vtime_t now) {
  gmon::ProfileSnapshot snap = profiler_.snapshot(next_seq_, now);
  if (cfg_.dump_dir) {
    gmon::write_binary_file(snap,
                            *cfg_.dump_dir /
                                gmon::binary_dump_name(next_seq_));
  }
  snapshots_.push_back(std::move(snap));
  ++next_seq_;
}

}  // namespace incprof::prof
