#include "prof/overhead.hpp"

#include "util/stats.hpp"

#include <chrono>

namespace incprof::prof {

double OverheadReport::overhead_pct() const noexcept {
  if (baseline.min_sec <= 0.0) return 0.0;
  return (instrumented.min_sec - baseline.min_sec) / baseline.min_sec *
         100.0;
}

OverheadSample time_workload(const std::string& label,
                             const std::function<void()>& fn,
                             std::size_t reps, std::size_t warmups) {
  using clock = std::chrono::steady_clock;
  for (std::size_t i = 0; i < warmups; ++i) fn();

  std::vector<double> times;
  times.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    times.push_back(std::chrono::duration<double>(t1 - t0).count());
  }

  OverheadSample s;
  s.label = label;
  s.mean_sec = util::mean(times);
  s.min_sec = util::min_of(times);
  s.stddev_sec = util::stddev(times);
  s.repetitions = reps;
  return s;
}

OverheadReport compare_overhead(const std::function<void()>& baseline,
                                const std::function<void()>& instrumented,
                                std::size_t reps, std::size_t warmups) {
  OverheadReport r;
  r.baseline = time_workload("baseline", baseline, reps, warmups);
  r.instrumented = time_workload("instrumented", instrumented, reps, warmups);
  return r;
}

}  // namespace incprof::prof
