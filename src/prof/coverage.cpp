#include "prof/coverage.hpp"

#include <stdexcept>

namespace incprof::prof {

void CoverageProfiler::ensure_size(std::size_t n) {
  if (entries_.size() < n) {
    entries_.resize(n, 0);
    hits_.resize(n, 0);
  }
}

void CoverageProfiler::on_enter(sim::FunctionId fid, sim::vtime_t) {
  ensure_size(static_cast<std::size_t>(fid) + 1);
  ++entries_[fid];
}

void CoverageProfiler::on_loop_tick(sim::FunctionId fid, sim::vtime_t) {
  if (fid == sim::kNoFunction) return;
  ensure_size(static_cast<std::size_t>(fid) + 1);
  ++hits_[fid];
  ++total_hits_;
}

gmon::ProfileSnapshot CoverageProfiler::snapshot(
    std::uint32_t seq, sim::vtime_t timestamp_ns) const {
  gmon::ProfileSnapshot snap(seq, timestamp_ns);
  for (std::size_t fid = 0; fid < entries_.size(); ++fid) {
    if (entries_[fid] == 0 && hits_[fid] == 0) continue;
    gmon::FunctionProfile fp;
    fp.name = engine_.registry().name(static_cast<sim::FunctionId>(fid));
    // Each entry executes the function's straight-line body at least
    // once, each loop tick re-executes the loop body: both are "lines
    // executed" in gcov terms.
    fp.self_ns =
        static_cast<std::int64_t>(hits_[fid] + entries_[fid]) *
        ns_per_hit_;
    fp.calls = static_cast<std::int64_t>(entries_[fid]);
    fp.inclusive_ns = fp.self_ns;
    snap.upsert(std::move(fp));
  }
  return snap;
}

CoverageCollector::CoverageCollector(const CoverageProfiler& profiler,
                                     sim::vtime_t interval_ns)
    : profiler_(profiler),
      interval_ns_(interval_ns),
      next_dump_at_(interval_ns) {
  if (interval_ns_ <= 0) {
    throw std::invalid_argument(
        "CoverageCollector: interval must be positive");
  }
}

void CoverageCollector::maybe_dump(sim::vtime_t now) {
  while (now >= next_dump_at_) {
    snapshots_.push_back(profiler_.snapshot(next_seq_, next_dump_at_));
    ++next_seq_;
    next_dump_at_ += interval_ns_;
  }
}

void CoverageCollector::on_enter(sim::FunctionId, sim::vtime_t now) {
  maybe_dump(now);
}

void CoverageCollector::on_loop_tick(sim::FunctionId, sim::vtime_t now) {
  maybe_dump(now);
}

void CoverageCollector::on_sample(const sim::ExecutionEngine&,
                                  sim::vtime_t now) {
  // gcov-mode has no sampler of its own, but when one is present its
  // ticks give finer dump granularity for free.
  maybe_dump(now);
}

void CoverageCollector::on_finish(const sim::ExecutionEngine&,
                                  sim::vtime_t now) {
  if (finished_) return;
  finished_ = true;
  if (snapshots_.empty() || snapshots_.back().timestamp_ns() < now) {
    snapshots_.push_back(profiler_.snapshot(next_seq_, now));
  }
}

}  // namespace incprof::prof
