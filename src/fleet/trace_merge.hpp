// Fleet trace merging: fold the gateway's own span ring and every
// shard's kTraceDump reply into one Chrome trace_event JSON document.
// Each process gets its own pid lane (gateway = pid 0, shard = its
// shard id) with a process_name metadata row, and every trace id seen
// on both sides of a gateway→shard hop gets a flow-event pair
// (ph "s" on the gateway span, ph "f"/bp "e" on the shard span) so
// Perfetto draws the arrow that makes one client interval traceable
// gateway → shard → pipeline stage.
#pragma once

#include "obs/trace.hpp"
#include "service/trace_wire.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace incprof::fleet {

/// One shard's contribution to the merged trace.
struct ShardTrace {
  /// pid lane in the merged document. Fleet shard ids start at 1
  /// (shard 0 means "standalone daemon"), so the gateway can keep pid 0
  /// without collision.
  std::uint32_t pid = 0;
  /// process_name metadata ("incprofd shard 3").
  std::string label;
  service::TraceDump dump;
};

/// Merges the gateway's span events (pid 0) with every shard dump into
/// a Chrome trace_event JSON document ({"traceEvents": [...]}),
/// loadable in Perfetto / chrome://tracing.
std::string merge_chrome_trace(
    const std::vector<obs::SpanEvent>& gateway_events,
    const std::vector<ShardTrace>& shards);

}  // namespace incprof::fleet
