// The fleet gateway: the thin coordinator that makes N incprofd shards
// look like one daemon. It terminates nothing — clients speak the
// unmodified length-prefixed protocol, the gateway reads exactly one
// frame (the hello) to pick a shard, then pumps raw frames both ways.
//
// Routing:
//   - A fresh hello is routed by consistent hash of its client name
//     (the only stable identity a session has before the shard assigns
//     an id). Dead shards are dropped from the ring, so retries land on
//     survivors.
//   - A resume hello names a session id, and session ids are
//     partitioned by shard (service::session_id_shard), so the owner is
//     derived from the id alone — no routing state to persist. When the
//     owner is gone or draining the gateway itself answers
//     kUnknownSession; the client's resilient replay then restarts the
//     stream as a fresh session, which the ring places on a surviving
//     shard. Nothing is lost: the full stream is re-sent.
//
// Aggregation: a background thread pulls every shard's kFleetState
// snapshot (sessionless control query) each pull_period and folds them
// with service::merge_shard_state. The merged view is eventually
// consistent — shards are pulled at different instants — but each
// shard's contribution is a consistent snapshot and advances
// monotonically, so on a quiesced fleet the merge equals the exact sum.
// A pull failure marks the shard dead (dropped from the ring, reported
// in /healthz) until a later pull succeeds.
//
// Concurrency (PR 4 conventions): all three gateway locks — state_mu_,
// workers_mu_, agg_mu_ — are leaves; no lock is ever held across a
// connect, send, or receive, and no thread is detached (proxy workers
// are tracked and joined, the HttpEndpoint pattern).
#pragma once

#include "fleet/hash_ring.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "service/fleet_state.hpp"
#include "service/replay.hpp"
#include "service/transport.hpp"
#include "util/thread_annotations.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace incprof::fleet {

struct GatewayConfig {
  /// Virtual nodes per shard on the routing ring.
  std::size_t vnodes_per_shard = HashRing::kDefaultVnodesPerShard;
  /// Aggregator pull cadence; 0 disables the background thread (tests
  /// drive poll_once() by hand).
  std::chrono::milliseconds pull_period{1000};
  /// Receive deadline for one control pull / drain ack, when the
  /// transport supports deadlines.
  std::chrono::milliseconds pull_timeout{1000};
};

/// One shard's health row in the fleet view.
struct ShardHealth {
  std::uint32_t id = 0;
  bool alive = true;
  bool draining = false;
  std::uint64_t open_sessions = 0;
  std::uint64_t total_intervals = 0;
  std::uint64_t pulls = 0;
  std::uint64_t pull_failures = 0;
  /// Age of the last successful state pull (ns at view() time); only
  /// meaningful when ever_pulled. Surfaces the stale-but-not-dead shard:
  /// alive (last probe worked) yet with data older than the pull cadence
  /// should allow.
  std::uint64_t last_pull_age_ns = 0;
  bool ever_pulled = false;
};

/// A point-in-time copy of the gateway's merged knowledge.
struct FleetView {
  std::vector<ShardHealth> shards;
  /// Fold of every live shard's last state (merge_shard_state);
  /// merged.shard_id is meaningless.
  service::ShardState merged;
};

/// Fleet coordinator over a frontend Listener (not owned, must outlive
/// the gateway). Lifecycle mirrors service::Server: construct,
/// add_shard()s, start(), stop().
class Gateway {
 public:
  explicit Gateway(service::Listener& frontend, GatewayConfig cfg = {});
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Registers a shard and its connect factory (fresh connection per
  /// call; nullptr/throw = attempt failed). Callable before or after
  /// start(); re-adding a drained or dead id revives it.
  void add_shard(std::uint32_t shard_id, service::ConnectFn connect);

  /// Spawns the frontend accept loop and (pull_period > 0) the
  /// aggregator thread.
  void start();

  /// Stops accepting, force-closes every proxied connection, joins all
  /// threads. Idempotent.
  void stop();

  /// Drains one shard: removes it from the ring (no new or resumed
  /// sessions route there), then sends it the kDrain control frame so
  /// it force-closes its attached sessions — their clients reconnect
  /// through this gateway and land on the remaining shards. Returns the
  /// shard's reported closed-session count, 0 when it was unreachable
  /// or unknown.
  std::uint32_t drain_shard(std::uint32_t shard_id);

  /// One synchronous aggregator pass over every shard (also what the
  /// background thread runs). Exposed so tests can poll
  /// deterministically.
  void poll_once();

  /// Copy of the merged fleet view as of the last poll.
  FleetView view() const;

  /// Routes for the gateway's obs HttpEndpoint: GET /metrics (gateway
  /// registry + merged per-shard metrics, Prometheus text), /healthz
  /// (per-shard liveness; 503 while any registered shard is down),
  /// /fleet.json (machine-readable view), /trace.json (fleet-merged
  /// Chrome trace), 404 otherwise.
  obs::HttpHandler http_handler();

  /// Fleet-merged Chrome trace JSON: pulls every shard's span ring on
  /// demand (kTraceDump control query) and folds it with the gateway's
  /// own ring — per-process pid lanes plus flow events linking gateway
  /// spans to shard spans. What /trace.json serves.
  std::string merged_trace_json();

  /// The gateway's own operational metrics (sessions routed, redirects,
  /// pull failures, ...).
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }
  obs::MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Client connections accepted so far.
  std::uint64_t connections_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct ShardEntry {
    service::ConnectFn connect;
    bool alive = true;
    bool draining = false;
    std::uint64_t pulls = 0;
    std::uint64_t pull_failures = 0;
    /// Last successfully pulled state (fold input for the merged view).
    service::ShardState last_state;
    bool has_state = false;
    /// obs::now_ns() of the last successful pull (0 = never).
    std::uint64_t last_pull_ns = 0;
  };

  /// One proxied client: the worker thread routes the hello, then the
  /// pair of pumps shuttle raw frames until either side closes. The
  /// worker joins its own backward pump; the accept loop and stop()
  /// join workers (no detach).
  struct ProxyWorker {
    std::shared_ptr<service::Connection> client;
    std::shared_ptr<service::Connection> backend;  // set after routing
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void aggregator_loop();
  void proxy(ProxyWorker* worker);
  /// Routes a decoded hello; returns the backend connection (nullptr =>
  /// a typed refusal was already sent to the client).
  std::shared_ptr<service::Connection> route(
      service::Connection& client, const service::HelloPayload& hello);
  /// Connects to one shard, marking it dead (ring removal) on failure.
  std::shared_ptr<service::Connection> try_connect(std::uint32_t shard_id);
  void reap_finished_workers();

  service::Listener& frontend_;
  const GatewayConfig cfg_;
  obs::MetricsRegistry metrics_;

  // Proxy-path latency histograms, resolved once so the per-connection
  // path never takes the registry lock (the Server ctor pattern).
  obs::Histogram& route_hist_;
  obs::Histogram& proxy_hist_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> accepted_{0};

  /// Leaf lock: routing ring + shard table + merged view. Never held
  /// across connect/send/receive.
  mutable util::Mutex state_mu_;
  HashRing ring_ INCPROF_GUARDED_BY(state_mu_);
  std::map<std::uint32_t, ShardEntry> shards_ INCPROF_GUARDED_BY(state_mu_);

  /// Leaf lock: in-flight proxy workers.
  util::Mutex workers_mu_;
  std::vector<std::unique_ptr<ProxyWorker>> workers_
      INCPROF_GUARDED_BY(workers_mu_);

  /// Leaf lock: aggregator pacing and shutdown.
  util::Mutex agg_mu_;
  util::CondVar agg_cv_;
  bool agg_stop_ INCPROF_GUARDED_BY(agg_mu_) = false;

  std::thread accept_thread_;
  std::thread agg_thread_;
};

}  // namespace incprof::fleet
