// Consistent-hash ring over shard ids: the gateway's routing table.
// Each shard contributes `vnodes_per_shard` points on a 64-bit ring
// (the classic Karger construction); a key is owned by the first point
// clockwise from its hash. Adding or removing one shard of N remaps
// only ~1/N of the key space — the property that makes shard drain and
// crash migration cheap — and the virtual nodes smooth per-shard load
// to within a few percent of uniform.
//
// Everything here is fixed-point integer arithmetic (splitmix64-style
// mixing for vnode points, FNV-1a for string keys): no floating point,
// no platform-dependent std::hash, so placements are bit-identical
// across runs and machines and tests can assert exact golden owners.
//
// Not thread-safe by itself; the Gateway guards its ring with its own
// annotated mutex.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

namespace incprof::fleet {

class HashRing {
 public:
  /// ≥64 keeps the max/mean shard load under ~1.35 for up to 16 shards
  /// (asserted by tests/fleet/test_hash_ring).
  static constexpr std::size_t kDefaultVnodesPerShard = 64;

  explicit HashRing(std::size_t vnodes_per_shard = kDefaultVnodesPerShard);

  /// Adds a shard's virtual nodes. Adding an id twice is a no-op.
  void add_shard(std::uint32_t shard_id);

  /// Removes every point of the shard; unknown ids are a no-op.
  void remove_shard(std::uint32_t shard_id);

  bool contains(std::uint32_t shard_id) const;
  std::size_t shard_count() const;
  /// Distinct shard ids on the ring, ascending.
  std::vector<std::uint32_t> shards() const;

  /// The shard owning `key`; nullopt on an empty ring.
  std::optional<std::uint32_t> owner(std::string_view key) const;

  /// Owner of a precomputed 64-bit hash (for non-string keys).
  std::optional<std::uint32_t> owner_of_hash(std::uint64_t h) const;

  /// FNV-1a 64 over the bytes of `key`, finalized with splitmix64 so
  /// near-identical keys ("app-0", "app-1", ...) still land uniformly
  /// on the ring — deterministic across platforms, unlike std::hash.
  static std::uint64_t hash_key(std::string_view key) noexcept;

  /// The ring point of one virtual node (a splitmix64 finalizer over
  /// shard id and vnode index).
  static std::uint64_t vnode_point(std::uint32_t shard_id,
                                   std::uint32_t vnode) noexcept;

 private:
  const std::size_t vnodes_;
  /// (point, shard) sorted by point; ties broken by shard id so the
  /// ring is deterministic even under (astronomically unlikely) point
  /// collisions.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace incprof::fleet
