#include "fleet/trace_merge.hpp"

#include <algorithm>
#include <map>
#include <string_view>

namespace incprof::fleet {

namespace {

/// Minimal JSON string escaping (mirrors the obs trace exporter).
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      const unsigned char u = static_cast<unsigned char>(c);
      out += "\\u00";
      out.push_back("0123456789abcdef"[u >> 4]);
      out.push_back("0123456789abcdef"[u & 0xf]);
    } else {
      out.push_back(c);
    }
  }
}

void append_hex_u64(std::string& out, std::uint64_t v) {
  char buf[19];
  int at = 18;
  buf[at] = '\0';
  do {
    buf[--at] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  } while (v != 0);
  out += "0x";
  out += &buf[at];
}

/// Chrome trace timestamps are microseconds; keep ns precision via the
/// fractional digits (same formatting as TraceBuffer::export_chrome_json).
void append_micros(std::string& out, std::uint64_t ns) {
  out += std::to_string(ns / 1000);
  out.push_back('.');
  const std::uint64_t frac = ns % 1000;
  out += std::to_string(frac / 100);
  out += std::to_string((frac / 10) % 10);
  out += std::to_string(frac % 10);
}

void append_process_name(std::string& out, bool& first, std::uint32_t pid,
                         std::string_view label) {
  if (!first) out.push_back(',');
  first = false;
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
  append_escaped(out, label);
  out += "\"}}";
}

/// One "X" complete event in pid lane `pid`.
void append_span(std::string& out, bool& first, std::uint32_t pid,
                 std::string_view name, std::string_view category,
                 std::uint32_t tid, std::uint64_t start_ns,
                 std::uint64_t duration_ns, std::uint64_t trace_id,
                 std::uint32_t span_id, std::uint32_t parent_span) {
  if (!first) out.push_back(',');
  first = false;
  out += "{\"name\":\"";
  append_escaped(out, name);
  out += "\",\"cat\":\"";
  append_escaped(out, category);
  out += "\",\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"ts\":";
  append_micros(out, start_ns);
  out += ",\"dur\":";
  append_micros(out, duration_ns);
  if (trace_id != 0) {
    out += ",\"args\":{\"trace_id\":\"";
    append_hex_u64(out, trace_id);
    out += "\",\"span\":" + std::to_string(span_id) +
           ",\"parent\":" + std::to_string(parent_span) + "}";
  }
  out += "}";
}

/// The anchor a flow endpoint binds to: the earliest span carrying a
/// given trace id within one process. Flow events attach to whatever
/// slice is open at (pid, tid, ts), so anchoring at the earliest span's
/// start puts the arrow on the first thing that happened there.
struct FlowAnchor {
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  bool set = false;

  void offer(std::uint32_t t, std::uint64_t s) {
    if (!set || s < start_ns) {
      tid = t;
      start_ns = s;
      set = true;
    }
  }
};

void append_flow(std::string& out, bool& first, const char* ph,
                 const std::string& flow_id, std::uint32_t pid,
                 const FlowAnchor& at) {
  if (!first) out.push_back(',');
  first = false;
  out += "{\"ph\":\"";
  out += ph;
  out += "\",\"name\":\"trace\",\"cat\":\"flow\",\"id\":\"";
  append_escaped(out, flow_id);
  out += "\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(at.tid) + ",\"ts\":";
  append_micros(out, at.start_ns);
  if (ph[0] == 'f') out += ",\"bp\":\"e\"";
  out += "}";
}

}  // namespace

std::string merge_chrome_trace(
    const std::vector<obs::SpanEvent>& gateway_events,
    const std::vector<ShardTrace>& shards) {
  std::string out;
  std::size_t spans = gateway_events.size();
  for (const auto& s : shards) spans += s.dump.spans.size();
  out.reserve(256 + spans * 128);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;

  append_process_name(out, first, 0, "incprof_gateway");
  for (const auto& s : shards) {
    append_process_name(out, first, s.pid, s.label);
  }

  // Gateway spans (pid 0), collecting each trace id's earliest span as
  // the outgoing flow anchor.
  std::map<std::uint64_t, FlowAnchor> gateway_anchor;
  for (const obs::SpanEvent& ev : gateway_events) {
    append_span(out, first, 0, ev.name, ev.category, ev.tid, ev.start_ns,
                ev.duration_ns, ev.trace_id, ev.span_id, ev.parent_span);
    if (ev.trace_id != 0) {
      gateway_anchor[ev.trace_id].offer(ev.tid, ev.start_ns);
    }
  }

  // Shard spans, each lane keeping its own per-trace anchor.
  std::vector<std::map<std::uint64_t, FlowAnchor>> shard_anchor(
      shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardTrace& shard = shards[i];
    for (const service::TraceSpanRow& row : shard.dump.spans) {
      append_span(out, first, shard.pid, row.name, row.category, row.tid,
                  row.start_ns, row.duration_ns, row.trace_id, row.span_id,
                  row.parent_span);
      if (row.trace_id != 0) {
        shard_anchor[i][row.trace_id].offer(row.tid, row.start_ns);
      }
    }
  }

  // Flow pairs: every trace id observed both at the gateway and on a
  // shard gets an s/f arrow per shard, keyed uniquely by
  // "<trace>-><pid>" so resumed sessions that touched two shards render
  // as two distinct arrows.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    for (const auto& [trace_id, to] : shard_anchor[i]) {
      const auto from = gateway_anchor.find(trace_id);
      if (from == gateway_anchor.end()) continue;
      std::string flow_id;
      append_hex_u64(flow_id, trace_id);
      flow_id += "->" + std::to_string(shards[i].pid);
      append_flow(out, first, "s", flow_id, 0, from->second);
      append_flow(out, first, "f", flow_id, shards[i].pid, to);
    }
  }

  out += "]}";
  return out;
}

}  // namespace incprof::fleet
