#include "fleet/gateway.hpp"

#include "fleet/trace_merge.hpp"
#include "obs/build_info.hpp"
#include "obs/clock.hpp"
#include "obs/span.hpp"
#include "obs/trace_context.hpp"
#include "util/log.hpp"

#include <algorithm>
#include <optional>
#include <utility>

namespace incprof::fleet {

namespace {

/// Shuttles complete wire frames from `from` into `to` until either
/// side closes (or the stream desynchronizes, which is unrecoverable —
/// the client's resume path takes over from there).
void pump(service::Connection& from, service::Connection& to) {
  try {
    while (auto bytes = from.receive()) {
      if (!to.send(*bytes)) break;
    }
  } catch (const std::exception&) {
  }
}

/// "name{labels}" -> "fleet_name<suffix>{labels}".
std::string fleet_key(const std::string& key, const char* suffix) {
  const auto brace = key.find('{');
  if (brace == std::string::npos) return "fleet_" + key + suffix;
  return "fleet_" + key.substr(0, brace) + suffix + key.substr(brace);
}

std::string render_merged_prometheus(const FleetView& v) {
  std::string out;
  const auto gauge_line = [&out](const char* name, std::uint64_t value) {
    out += "# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += ' ' + std::to_string(value) + '\n';
  };
  std::size_t alive = 0;
  for (const auto& s : v.shards) {
    if (s.alive) ++alive;
  }
  gauge_line("fleet_shards", v.shards.size());
  gauge_line("fleet_shards_alive", alive);
  out += "# TYPE fleet_shard_up gauge\n";
  for (const auto& s : v.shards) {
    out += "fleet_shard_up{shard=\"" + std::to_string(s.id) + "\"} " +
           (s.alive ? "1" : "0") + '\n';
  }
  gauge_line("fleet_open_sessions", v.merged.open_sessions);
  gauge_line("fleet_total_intervals", v.merged.total_intervals);
  gauge_line("fleet_total_transitions", v.merged.total_transitions);

  // Merged per-shard registries, prefixed fleet_ so they never collide
  // with the gateway's own families. Rows are sorted so labeled series
  // of one family sit under a single # TYPE line.
  auto counters = v.merged.counters;
  std::sort(counters.begin(), counters.end());
  std::string family;
  for (const auto& [key, value] : counters) {
    std::string fam = "fleet_" + key.substr(0, key.find('{'));
    if (fam != family) {
      out += "# TYPE " + fam + " counter\n";
      family = std::move(fam);
    }
    out += "fleet_" + key + ' ' + std::to_string(value) + '\n';
  }
  auto gauges = v.merged.gauges;
  std::sort(gauges.begin(), gauges.end());
  family.clear();
  for (const auto& [key, value] : gauges) {
    std::string fam = "fleet_" + key.substr(0, key.find('{'));
    if (fam != family) {
      out += "# TYPE " + fam + " gauge\n";
      family = std::move(fam);
    }
    out += "fleet_" + key + ' ' + std::to_string(value) + '\n';
  }
  // Histograms reduced to count/sum/max series (full buckets travel to
  // /fleet.json consumers via the shard-state codec). One suffix family
  // at a time, sorted, so each family's labeled series sit under a
  // single # TYPE line like the counter/gauge loops above.
  auto hists = v.merged.histograms;
  std::sort(hists.begin(), hists.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const auto hist_series = [&](const char* suffix, const char* kind,
                               auto pick) {
    std::string fam_seen;
    for (const auto& [key, snap] : hists) {
      std::string fam = "fleet_" + key.substr(0, key.find('{')) + suffix;
      if (fam != fam_seen) {
        out += "# TYPE " + fam + ' ' + kind + '\n';
        fam_seen = std::move(fam);
      }
      out +=
          fleet_key(key, suffix) + ' ' + std::to_string(pick(snap)) + '\n';
    }
  };
  hist_series("_count", "counter",
              [](const obs::HistogramSnapshot& s) { return s.count; });
  hist_series("_sum", "counter",
              [](const obs::HistogramSnapshot& s) { return s.sum; });
  hist_series("_max", "gauge",
              [](const obs::HistogramSnapshot& s) { return s.max; });
  return out;
}

std::string render_fleet_json(const FleetView& v) {
  std::string out = "{\"shards\":[";
  bool first = true;
  for (const auto& s : v.shards) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(s.id) +
           ",\"alive\":" + (s.alive ? "true" : "false") +
           ",\"draining\":" + (s.draining ? "true" : "false") +
           ",\"open_sessions\":" + std::to_string(s.open_sessions) +
           ",\"total_intervals\":" + std::to_string(s.total_intervals) +
           ",\"pulls\":" + std::to_string(s.pulls) +
           ",\"pull_failures\":" + std::to_string(s.pull_failures) +
           ",\"last_pull_age_ms\":" +
           (s.ever_pulled ? std::to_string(s.last_pull_age_ns / 1000000)
                          : std::string("null")) +
           "}";
  }
  out += "],\"merged\":{\"open_sessions\":" +
         std::to_string(v.merged.open_sessions) +
         ",\"total_intervals\":" + std::to_string(v.merged.total_intervals) +
         ",\"total_transitions\":" +
         std::to_string(v.merged.total_transitions) +
         ",\"sessions\":" + std::to_string(v.merged.sessions.size()) +
         ",\"phase_count_histogram\":[";
  first = true;
  for (const std::uint64_t n : v.merged.phase_count_histogram) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(n);
  }
  out += "]}}";
  return out;
}

}  // namespace

Gateway::Gateway(service::Listener& frontend, GatewayConfig cfg)
    : frontend_(frontend),
      cfg_(cfg),
      route_hist_(metrics_.histogram("gateway_stage_ns",
                                     {{"stage", "route"}})),
      proxy_hist_(metrics_.histogram("gateway_stage_ns",
                                     {{"stage", "proxy"}})),
      ring_(cfg_.vnodes_per_shard) {}

Gateway::~Gateway() { stop(); }

void Gateway::add_shard(std::uint32_t shard_id, service::ConnectFn connect) {
  util::MutexLock lock(state_mu_);
  ShardEntry& entry = shards_[shard_id];
  entry.connect = std::move(connect);
  entry.alive = true;
  entry.draining = false;
  if (!ring_.contains(shard_id)) ring_.add_shard(shard_id);
}

void Gateway::start() {
  if (started_.exchange(true)) return;
  // Prime the view so routing and /healthz reflect shard reality from
  // the first request on.
  poll_once();
  if (cfg_.pull_period.count() > 0) {
    agg_thread_ = std::thread([this] { aggregator_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Gateway::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  frontend_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    util::MutexLock lock(agg_mu_);
    agg_stop_ = true;
    agg_cv_.notify_all();
  }
  if (agg_thread_.joinable()) agg_thread_.join();

  // No new workers can appear now (accept loop is gone). Close both
  // ends of every proxied pair so pumps unblock, then join.
  std::vector<std::unique_ptr<ProxyWorker>> workers;
  std::vector<std::shared_ptr<service::Connection>> to_close;
  {
    util::MutexLock lock(workers_mu_);
    workers.swap(workers_);
    for (const auto& w : workers) {
      to_close.push_back(w->client);
      if (w->backend) to_close.push_back(w->backend);
    }
  }
  for (const auto& c : to_close) c->close();
  for (const auto& w : workers) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void Gateway::accept_loop() {
  while (auto conn = frontend_.accept()) {
    reap_finished_workers();
    accepted_.fetch_add(1, std::memory_order_relaxed);
    metrics_.counter("connections_accepted").add();
    auto worker = std::make_unique<ProxyWorker>();
    worker->client = std::shared_ptr<service::Connection>(std::move(conn));
    ProxyWorker* raw = worker.get();
    // Register and spawn under the same lock so stop() never sees a
    // worker whose thread is still being constructed.
    util::MutexLock lock(workers_mu_);
    workers_.push_back(std::move(worker));
    workers_.back()->thread = std::thread([this, raw] { proxy(raw); });
  }
}

void Gateway::reap_finished_workers() {
  std::vector<std::unique_ptr<ProxyWorker>> finished;
  {
    util::MutexLock lock(workers_mu_);
    for (auto it = workers_.begin(); it != workers_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = workers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& w : finished) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void Gateway::proxy(ProxyWorker* worker) {
  const auto client = worker->client;
  std::optional<std::string> first;
  try {
    first = client->receive();
  } catch (const std::exception&) {
    first.reset();
  }
  service::HelloPayload hello;
  bool have_hello = false;
  if (first) {
    try {
      const auto frame = service::decode_frame(*first);
      if (frame.type == service::FrameType::kHello) {
        hello = service::decode_hello(frame.payload);
        have_hello = true;
      }
    } catch (const std::exception&) {
    }
  }
  if (!have_hello) {
    if (first) {
      metrics_.counter("front_rejects").add();
      service::ProtocolErrorPayload err;
      err.code = service::ProtocolErrorCode::kUnexpectedFrame;
      err.message = "gateway expects a hello first";
      client->send(service::make_protocol_error_frame(0, err));
    }
    client->close();
    worker->done.store(true, std::memory_order_release);
    return;
  }

  // Adopt the hello's wire trace context for this worker: the route and
  // proxy spans below join the client's end-to-end trace, and the fleet
  // merger links them to the shard's spans via the shared trace id.
  const service::WireTraceContext wire = service::peek_trace_context(*first);
  obs::ScopedTraceContext trace_scope({wire.trace_id, wire.parent_span});

  std::shared_ptr<service::Connection> backend;
  std::string forward;
  {
    obs::ScopedSpan route_span("gateway.route", "gateway", &route_hist_);
    backend = route(*client, hello);
    // Re-encode the hello inside the route span's scope: frame_of
    // stamps the thread's current context, so the forwarded hello names
    // the route span as parent and the shard's decode/process spans
    // hang off the gateway's in the merged trace. Frames after the
    // hello are pumped verbatim and keep the client's own parent ids.
    forward = service::make_hello_frame(hello);
  }
  if (backend && !backend->send(forward)) {
    // The shard died between connect and hello; dropping the client
    // makes its resilient replay retry through us, and the next pull
    // will mark the shard dead.
    backend->close();
    backend = nullptr;
  }
  if (!backend) {
    client->close();
    worker->done.store(true, std::memory_order_release);
    return;
  }
  {
    // Publish the backend so stop() can force-close it (workers_mu_
    // covers the field; the worker writes it exactly once).
    util::MutexLock lock(workers_mu_);
    worker->backend = backend;
  }

  // Both directions pump raw frames verbatim until either side closes;
  // the backward pump is joined here, never detached. The proxy span
  // covers the whole pumped lifetime of the connection pair.
  obs::ScopedSpan proxy_span("gateway.proxy", "gateway", &proxy_hist_);
  std::thread backward([client, backend] {
    pump(*backend, *client);
    client->close();
    backend->close();
  });
  pump(*client, *backend);
  backend->close();
  client->close();
  backward.join();
  worker->done.store(true, std::memory_order_release);
}

std::shared_ptr<service::Connection> Gateway::route(
    service::Connection& client, const service::HelloPayload& hello) {
  if (hello.resume_session_id != 0) {
    // Session ids are partitioned by shard, so the owner is a pure
    // function of the id.
    const std::uint32_t owner =
        service::session_id_shard(hello.resume_session_id);
    bool routable = false;
    {
      util::MutexLock lock(state_mu_);
      const auto it = shards_.find(owner);
      routable = it != shards_.end() && !it->second.draining;
    }
    if (routable) {
      if (auto backend = try_connect(owner)) {
        metrics_.counter("resumes_routed").add();
        return backend;
      }
    }
    // The owner is gone or draining: answer in its stead so the
    // client's resilient replay falls back to a fresh session — which
    // routes to a surviving shard and re-sends the whole stream.
    metrics_.counter("resumes_rerouted").add();
    service::ProtocolErrorPayload err;
    err.code = service::ProtocolErrorCode::kUnknownSession;
    err.message =
        "shard " + std::to_string(owner) + " unavailable; restart stream";
    client.send(
        service::make_protocol_error_frame(hello.resume_session_id, err));
    client.close();
    return nullptr;
  }

  // Fresh session: consistent-hash placement by client name (the only
  // stable identity before the shard assigns an id). A failed connect
  // marks the shard dead and re-picks on the shrunken ring.
  for (;;) {
    std::optional<std::uint32_t> owner;
    {
      util::MutexLock lock(state_mu_);
      owner = ring_.owner(hello.client_name);
    }
    if (!owner) break;
    if (auto backend = try_connect(*owner)) {
      const std::string shard_label = std::to_string(*owner);
      metrics_.counter("sessions_routed", {{"shard", shard_label}}).add();
      return backend;
    }
  }
  metrics_.counter("front_redirects").add();
  service::ProtocolErrorPayload err;
  err.code = service::ProtocolErrorCode::kRedirect;
  err.message = "no serving shards; retry later";
  client.send(service::make_protocol_error_frame(0, err));
  client.close();
  return nullptr;
}

std::shared_ptr<service::Connection> Gateway::try_connect(
    std::uint32_t shard_id) {
  service::ConnectFn connect;
  {
    util::MutexLock lock(state_mu_);
    const auto it = shards_.find(shard_id);
    if (it == shards_.end() || it->second.draining) return nullptr;
    connect = it->second.connect;
  }
  std::unique_ptr<service::Connection> conn;
  try {
    conn = connect();
  } catch (const std::exception&) {
    conn = nullptr;
  }
  if (conn) return std::shared_ptr<service::Connection>(std::move(conn));
  metrics_.counter("shard_connect_failures").add();
  util::MutexLock lock(state_mu_);
  const auto it = shards_.find(shard_id);
  if (it != shards_.end() && it->second.alive) {
    it->second.alive = false;
    util::log_warn("incprof_gateway: shard " + std::to_string(shard_id) +
                   " unreachable; removed from ring");
  }
  ring_.remove_shard(shard_id);
  return nullptr;
}

std::uint32_t Gateway::drain_shard(std::uint32_t shard_id) {
  service::ConnectFn connect;
  {
    // Out of the ring before the drain order goes out, so no client
    // reconnect can race back onto the draining shard.
    util::MutexLock lock(state_mu_);
    const auto it = shards_.find(shard_id);
    if (it == shards_.end()) return 0;
    it->second.draining = true;
    connect = it->second.connect;
    ring_.remove_shard(shard_id);
  }
  metrics_.counter("shard_drains").add();
  try {
    auto conn = connect();
    if (!conn) return 0;
    conn->set_receive_timeout(cfg_.pull_timeout);
    if (conn->send(service::make_drain_frame())) {
      while (auto bytes = conn->receive()) {
        const auto frame = service::decode_frame(*bytes);
        if (frame.type != service::FrameType::kDrainAck) continue;
        const auto ack = service::decode_drain_ack(frame.payload);
        conn->close();
        return ack.sessions_closed;
      }
    }
    conn->close();
  } catch (const std::exception&) {
  }
  return 0;
}

void Gateway::poll_once() {
  std::vector<std::pair<std::uint32_t, service::ConnectFn>> targets;
  {
    util::MutexLock lock(state_mu_);
    for (const auto& [id, entry] : shards_) {
      targets.emplace_back(id, entry.connect);
    }
  }
  for (const auto& [id, connect] : targets) {
    bool ok = false;
    service::ShardState state;
    try {
      auto conn = connect();
      if (conn) {
        conn->set_receive_timeout(cfg_.pull_timeout);
        service::QueryPayload query;
        query.kind = service::QueryKind::kFleetState;
        if (conn->send(service::make_query_frame(0, query))) {
          while (auto bytes = conn->receive()) {
            const auto frame = service::decode_frame(*bytes);
            if (frame.type != service::FrameType::kQueryReply) continue;
            const auto reply = service::decode_query_reply(frame.payload);
            state = service::decode_shard_state(reply.text);
            ok = true;
            break;
          }
        }
        conn->close();
      }
    } catch (const std::exception&) {
      ok = false;
    }

    util::MutexLock lock(state_mu_);
    const auto it = shards_.find(id);
    if (it == shards_.end()) continue;  // removed while we pulled
    ShardEntry& entry = it->second;
    if (ok) {
      ++entry.pulls;
      metrics_.counter("shard_pulls").add();
      if (!entry.alive) {
        util::log_info("incprof_gateway: shard " + std::to_string(id) +
                       " back; rejoining ring");
      }
      entry.alive = true;
      // A drain is sticky until the shard is re-added: either side
      // (gateway order or shard self-report) marks it.
      entry.draining = entry.draining || state.draining;
      entry.last_state = std::move(state);
      entry.has_state = true;
      entry.last_pull_ns = obs::now_ns();
      if (!entry.draining && !ring_.contains(id)) ring_.add_shard(id);
    } else {
      ++entry.pull_failures;
      metrics_.counter("shard_pull_failures").add();
      if (entry.alive) {
        entry.alive = false;
        util::log_warn("incprof_gateway: shard " + std::to_string(id) +
                       " unreachable; removed from ring");
      }
      ring_.remove_shard(id);
    }
  }
}

void Gateway::aggregator_loop() {
  util::MutexLock lock(agg_mu_);
  while (!agg_stop_) {
    // Plain timed wait: a spurious wakeup just pulls early, and the
    // stop flag is re-checked every pass.
    agg_cv_.wait_for(agg_mu_, cfg_.pull_period);
    if (agg_stop_) break;
    lock.unlock();
    poll_once();
    lock.lock();
  }
}

FleetView Gateway::view() const {
  const std::uint64_t now = obs::now_ns();
  util::MutexLock lock(state_mu_);
  FleetView v;
  for (const auto& [id, entry] : shards_) {
    ShardHealth h;
    h.id = id;
    h.alive = entry.alive;
    h.draining = entry.draining;
    if (entry.has_state) {
      h.open_sessions = entry.last_state.open_sessions;
      h.total_intervals = entry.last_state.total_intervals;
    }
    h.pulls = entry.pulls;
    h.pull_failures = entry.pull_failures;
    if (entry.last_pull_ns != 0) {
      h.ever_pulled = true;
      h.last_pull_age_ns =
          now > entry.last_pull_ns ? now - entry.last_pull_ns : 0;
    }
    v.shards.push_back(h);
    if (entry.alive && entry.has_state) {
      service::merge_shard_state(v.merged, entry.last_state);
    }
  }
  return v;
}

std::string Gateway::merged_trace_json() {
  // Fresh pull per request (no caching): a trace view is a debugging
  // artifact, and the reader wants the rings as they are now. No lock
  // is held across the pulls — the shard table is copied first.
  std::vector<std::pair<std::uint32_t, service::ConnectFn>> targets;
  {
    util::MutexLock lock(state_mu_);
    for (const auto& [id, entry] : shards_) {
      targets.emplace_back(id, entry.connect);
    }
  }
  std::vector<ShardTrace> dumps;
  for (const auto& [id, connect] : targets) {
    bool ok = false;
    ShardTrace st;
    st.pid = id;
    st.label = "incprofd shard " + std::to_string(id);
    try {
      auto conn = connect();
      if (conn) {
        conn->set_receive_timeout(cfg_.pull_timeout);
        service::QueryPayload query;
        query.kind = service::QueryKind::kTraceDump;
        if (conn->send(service::make_query_frame(0, query))) {
          while (auto bytes = conn->receive()) {
            const auto frame = service::decode_frame(*bytes);
            if (frame.type != service::FrameType::kQueryReply) continue;
            const auto reply = service::decode_query_reply(frame.payload);
            st.dump = service::decode_trace_dump(reply.text);
            ok = true;
            break;
          }
        }
        conn->close();
      }
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok) {
      metrics_.counter("trace_pulls").add();
      dumps.push_back(std::move(st));
    } else {
      // An unreachable shard is simply absent from this trace view; the
      // aggregator's next pull handles the liveness consequences.
      metrics_.counter("trace_pull_failures").add();
    }
  }
  return merge_chrome_trace(obs::trace().events(), dumps);
}

obs::HttpHandler Gateway::http_handler() {
  obs::register_build_info(metrics_);
  return [this](const std::string& path) -> obs::HttpResponse {
    obs::HttpResponse resp;
    if (path == "/metrics") {
      metrics_.counter("obs_scrapes").add();
      obs::update_process_uptime(metrics_);
      resp.body =
          metrics_.render_prometheus() + render_merged_prometheus(view());
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    } else if (path == "/healthz") {
      const FleetView v = view();
      // Stale = alive (the last probe worked) but the last successful
      // pull is older than three cadences: the shard answers probes yet
      // its contribution to the merged view has stopped advancing.
      const std::uint64_t stale_ns =
          static_cast<std::uint64_t>(cfg_.pull_period.count()) *
          3'000'000ull;
      std::size_t down = 0;
      std::string body;
      for (const auto& s : v.shards) {
        body += "shard " + std::to_string(s.id) + ' ';
        body += !s.alive ? "down" : (s.draining ? "draining" : "up");
        if (s.ever_pulled) {
          body +=
              " pull_age_ms=" + std::to_string(s.last_pull_age_ns / 1000000);
          if (s.alive && stale_ns > 0 && s.last_pull_age_ns > stale_ns) {
            body += " stale";
          }
        } else {
          body += " never_pulled";
        }
        body += '\n';
        if (!s.alive) ++down;
      }
      resp.status = down == 0 ? 200 : 503;
      resp.body = (down == 0 ? std::string("ok\n") : "degraded\n") + body;
    } else if (path == "/fleet.json") {
      resp.body = render_fleet_json(view());
      resp.content_type = "application/json";
    } else if (path == "/trace.json") {
      resp.body = merged_trace_json();
      resp.content_type = "application/json";
    } else {
      resp.status = 404;
      resp.body = "not found\n";
    }
    return resp;
  };
}

}  // namespace incprof::fleet
