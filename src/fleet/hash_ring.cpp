#include "fleet/hash_ring.hpp"

#include "util/hash.hpp"

#include <algorithm>

namespace incprof::fleet {

HashRing::HashRing(std::size_t vnodes_per_shard)
    : vnodes_(vnodes_per_shard == 0 ? 1 : vnodes_per_shard) {}

std::uint64_t HashRing::hash_key(std::string_view key) noexcept {
  // FNV-1a + splitmix64 finalizer (util/hash.hpp) — see there for why
  // the finalizer matters for sequentially named clients. The golden
  // placements in tests/fleet pin this construction.
  return util::hash_string(key);
}

std::uint64_t HashRing::vnode_point(std::uint32_t shard_id,
                                    std::uint32_t vnode) noexcept {
  // splitmix64 spreads vnode points uniformly however clustered the
  // (shard, vnode) inputs are.
  return util::splitmix64_mix(
      (static_cast<std::uint64_t>(shard_id) << 32) | vnode);
}

void HashRing::add_shard(std::uint32_t shard_id) {
  if (contains(shard_id)) return;
  points_.reserve(points_.size() + vnodes_);
  for (std::uint32_t v = 0; v < vnodes_; ++v) {
    points_.emplace_back(vnode_point(shard_id, v), shard_id);
  }
  std::sort(points_.begin(), points_.end());
}

void HashRing::remove_shard(std::uint32_t shard_id) {
  std::erase_if(points_,
                [shard_id](const auto& p) { return p.second == shard_id; });
}

bool HashRing::contains(std::uint32_t shard_id) const {
  return std::any_of(points_.begin(), points_.end(), [shard_id](
                         const auto& p) { return p.second == shard_id; });
}

std::size_t HashRing::shard_count() const { return shards().size(); }

std::vector<std::uint32_t> HashRing::shards() const {
  std::vector<std::uint32_t> ids;
  for (const auto& [point, shard] : points_) ids.push_back(shard);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::optional<std::uint32_t> HashRing::owner(std::string_view key) const {
  return owner_of_hash(hash_key(key));
}

std::optional<std::uint32_t> HashRing::owner_of_hash(
    std::uint64_t h) const {
  if (points_.empty()) return std::nullopt;
  // First point strictly clockwise of h, wrapping past the top.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), h,
      [](std::uint64_t value, const auto& p) { return value < p.first; });
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

}  // namespace incprof::fleet
