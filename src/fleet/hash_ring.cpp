#include "fleet/hash_ring.hpp"

#include <algorithm>

namespace incprof::fleet {

namespace {

/// splitmix64 finalizer: a full-avalanche bijection on u64, so vnode
/// points spread uniformly however clustered the (shard, vnode) inputs.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

HashRing::HashRing(std::size_t vnodes_per_shard)
    : vnodes_(vnodes_per_shard == 0 ? 1 : vnodes_per_shard) {}

std::uint64_t HashRing::hash_key(std::string_view key) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV prime
  }
  // Raw FNV-1a leaves near-identical short keys ("app-0", "app-1", ...)
  // within a ~2^-24 arc of each other — one multiply per byte cannot
  // reach the top bits — so a fleet of sequentially named clients would
  // pile onto one shard. The splitmix64 finalizer is a full-avalanche
  // bijection, restoring uniform placement without losing determinism.
  return mix64(h);
}

std::uint64_t HashRing::vnode_point(std::uint32_t shard_id,
                                    std::uint32_t vnode) noexcept {
  return mix64((static_cast<std::uint64_t>(shard_id) << 32) | vnode);
}

void HashRing::add_shard(std::uint32_t shard_id) {
  if (contains(shard_id)) return;
  points_.reserve(points_.size() + vnodes_);
  for (std::uint32_t v = 0; v < vnodes_; ++v) {
    points_.emplace_back(vnode_point(shard_id, v), shard_id);
  }
  std::sort(points_.begin(), points_.end());
}

void HashRing::remove_shard(std::uint32_t shard_id) {
  std::erase_if(points_,
                [shard_id](const auto& p) { return p.second == shard_id; });
}

bool HashRing::contains(std::uint32_t shard_id) const {
  return std::any_of(points_.begin(), points_.end(), [shard_id](
                         const auto& p) { return p.second == shard_id; });
}

std::size_t HashRing::shard_count() const { return shards().size(); }

std::vector<std::uint32_t> HashRing::shards() const {
  std::vector<std::uint32_t> ids;
  for (const auto& [point, shard] : points_) ids.push_back(shard);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::optional<std::uint32_t> HashRing::owner(std::string_view key) const {
  return owner_of_hash(hash_key(key));
}

std::optional<std::uint32_t> HashRing::owner_of_hash(
    std::uint64_t h) const {
  if (points_.empty()) return std::nullopt;
  // First point strictly clockwise of h, wrapping past the top.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), h,
      [](std::uint64_t value, const auto& p) { return value < p.first; });
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

}  // namespace incprof::fleet
