// Virtual time. The whole reproduction runs on a deterministic virtual
// clock measured in nanoseconds: workloads declare the cost of their
// computation, the engine advances the clock, and the profiler samples at
// fixed virtual periods. This keeps every experiment bit-reproducible
// while preserving the real pipeline's timing semantics (1-second dump
// intervals over minutes-long runs).
#pragma once

#include <cstdint>

namespace incprof::sim {

/// Virtual time in nanoseconds since engine start.
using vtime_t = std::int64_t;

/// Nanoseconds per second, for readable conversions at call sites.
inline constexpr vtime_t kNsPerSec = 1'000'000'000;

/// Nanoseconds per millisecond.
inline constexpr vtime_t kNsPerMs = 1'000'000;

/// Nanoseconds per microsecond.
inline constexpr vtime_t kNsPerUs = 1'000;

/// Converts seconds (double) to virtual nanoseconds.
constexpr vtime_t seconds(double s) noexcept {
  return static_cast<vtime_t>(s * 1e9);
}

/// Converts milliseconds (double) to virtual nanoseconds.
constexpr vtime_t millis(double ms) noexcept {
  return static_cast<vtime_t>(ms * 1e6);
}

/// Converts virtual nanoseconds to seconds (double).
constexpr double to_seconds(vtime_t t) noexcept {
  return static_cast<double>(t) / 1e9;
}

}  // namespace incprof::sim
