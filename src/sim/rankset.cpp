#include "sim/rankset.hpp"

#include "util/rng.hpp"
#include "util/stats.hpp"

#include <limits>

namespace incprof::sim {

std::vector<double> RankSetResult::runtimes_sec() const {
  std::vector<double> out;
  out.reserve(ranks.size());
  for (const auto& r : ranks) out.push_back(to_seconds(r.runtime_ns));
  return out;
}

double RankSetResult::mean_runtime_sec() const {
  const auto rt = runtimes_sec();
  return util::mean(rt);
}

double RankSetResult::imbalance() const {
  if (ranks.empty()) return 1.0;
  double lo = std::numeric_limits<double>::max();
  double hi = 0.0;
  for (const auto& r : ranks) {
    const double s = to_seconds(r.runtime_ns);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  return lo > 0.0 ? hi / lo : 1.0;
}

std::uint64_t rank_seed(std::uint64_t base_seed, std::size_t rank) noexcept {
  // One SplitMix64 step keyed by rank: cheap, stable, well mixed.
  util::SplitMix64 sm(base_seed + 0x9e3779b97f4a7c15ULL * (rank + 1));
  return sm.next();
}

RankSetResult run_symmetric_ranks(std::size_t nranks,
                                  std::uint64_t base_seed,
                                  const RankBody& body) {
  RankSetResult result;
  result.ranks.reserve(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    RankOutcome out;
    out.rank = r;
    out.seed = rank_seed(base_seed, r);
    out.runtime_ns = body(r, out.seed);
    result.ranks.push_back(out);
  }
  return result;
}

}  // namespace incprof::sim
