// The virtual-time execution engine. Mini-apps run real computations and
// declare their virtual cost through work(); the engine maintains a
// shadow call stack, advances the virtual clock, and fires
// profiler-visible events:
//
//   on_enter / on_leave  — what -pg function-entry instrumentation sees
//   on_sample            — what the PC-sampling half of gprof sees (the
//                          stack top at each fixed sampling period)
//   on_loop_tick         — a loop-iteration marker inside long-running
//                          functions, used by the AppEKG auto-instrument
//                          adapter for "loop"-type sites
//   on_finish            — end of run, so collectors can flush
//
// This is the substitution for running under the real gprof runtime (see
// DESIGN.md): identical observable data, deterministic and fast.
#pragma once

#include "sim/clock.hpp"
#include "sim/registry.hpp"
#include "util/rng.hpp"

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace incprof::sim {

class ExecutionEngine;

/// Observer interface for engine events. Implementations: the sampling
/// profiler, the IncProf collector, and the AppEKG adapters. Methods have
/// empty defaults so observers override only what they need.
class EngineListener {
 public:
  virtual ~EngineListener() = default;

  /// A function was entered (call instrumentation).
  virtual void on_enter(FunctionId fid, vtime_t now) {
    (void)fid;
    (void)now;
  }

  /// The current function returned.
  virtual void on_leave(FunctionId fid, vtime_t now) {
    (void)fid;
    (void)now;
  }

  /// One sampling period elapsed; query engine.current()/stack() to
  /// attribute the sample.
  virtual void on_sample(const ExecutionEngine& eng, vtime_t now) {
    (void)eng;
    (void)now;
  }

  /// The running function signalled one iteration of its main loop.
  virtual void on_loop_tick(FunctionId fid, vtime_t now) {
    (void)fid;
    (void)now;
  }

  /// The run completed; flush any pending state.
  virtual void on_finish(const ExecutionEngine& eng, vtime_t now) {
    (void)eng;
    (void)now;
  }
};

/// Engine construction parameters.
struct EngineConfig {
  /// Virtual sampling period (gprof's profiling clock). Defaults to
  /// gprof's 10 ms (100 Hz) — the sampling-resolution effects the paper
  /// reports (sites active in 9x % rather than 100 % of a phase's
  /// intervals) depend on it.
  vtime_t sample_period_ns = 10 * kNsPerMs;

  /// Relative multiplicative jitter applied to every work() cost
  /// (standard deviation as a fraction; 0 = fully deterministic costs).
  /// This is how symmetric MPI-style ranks get distinct-but-similar
  /// profiles.
  double work_jitter_rel = 0.0;

  /// Seed for the engine's jitter stream.
  std::uint64_t seed = 1;
};

/// Deterministic virtual-time executor with a shadow call stack.
/// Not thread-safe: one engine per simulated process (rank).
class ExecutionEngine {
 public:
  explicit ExecutionEngine(EngineConfig cfg = {});

  /// The symbol registry for this engine.
  FunctionRegistry& registry() noexcept { return registry_; }
  const FunctionRegistry& registry() const noexcept { return registry_; }

  /// Current virtual time.
  vtime_t now() const noexcept { return now_; }

  /// Configured sampling period.
  vtime_t sample_period_ns() const noexcept { return cfg_.sample_period_ns; }

  /// Registers a non-owning observer. Listeners are invoked in
  /// registration order. The caller keeps ownership and must outlive the
  /// run.
  void add_listener(EngineListener* listener);

  /// Removes a previously registered observer.
  void remove_listener(EngineListener* listener);

  /// Enters a function by interned id.
  void enter(FunctionId fid);

  /// Enters a function by name (interned on first use).
  FunctionId enter(std::string_view name);

  /// Leaves the current function. Precondition: stack not empty.
  void leave();

  /// Performs `cost_ns` of virtual work attributed (by sampling) to the
  /// current stack top. Jitter from EngineConfig is applied here. Safe to
  /// call with an empty stack (time passes, samples attribute to
  /// kNoFunction and are dropped by the profiler).
  void work(vtime_t cost_ns);

  /// Signals one iteration of the current function's main loop.
  void loop_tick();

  /// Ends the run: fires on_finish on every listener. Idempotent per
  /// added listener set; call once after the workload returns.
  void finish();

  /// Innermost active function, or kNoFunction if the stack is empty.
  FunctionId current() const noexcept {
    return stack_.empty() ? kNoFunction : stack_.back();
  }

  /// Whole shadow stack, outermost first.
  std::span<const FunctionId> stack() const noexcept { return stack_; }

  /// Current shadow-stack depth.
  std::size_t depth() const noexcept { return stack_.size(); }

 private:
  EngineConfig cfg_;
  FunctionRegistry registry_;
  util::Rng rng_;
  vtime_t now_ = 0;
  vtime_t next_sample_at_;
  std::vector<FunctionId> stack_;
  std::vector<EngineListener*> listeners_;
};

/// RAII frame: enters on construction, leaves on destruction. This is the
/// idiom every mini-app function starts with, mirroring what -pg
/// compilation does implicitly.
class ScopedFunction {
 public:
  ScopedFunction(ExecutionEngine& eng, std::string_view name)
      : eng_(eng) {
    eng_.enter(name);
  }
  ~ScopedFunction() { eng_.leave(); }

  ScopedFunction(const ScopedFunction&) = delete;
  ScopedFunction& operator=(const ScopedFunction&) = delete;

 private:
  ExecutionEngine& eng_;
};

}  // namespace incprof::sim
