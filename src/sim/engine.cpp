#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace incprof::sim {

ExecutionEngine::ExecutionEngine(EngineConfig cfg)
    : cfg_(cfg), rng_(cfg.seed), next_sample_at_(cfg.sample_period_ns) {
  assert(cfg_.sample_period_ns > 0);
  stack_.reserve(64);
  listeners_.reserve(8);
}

void ExecutionEngine::add_listener(EngineListener* listener) {
  assert(listener != nullptr);
  listeners_.push_back(listener);
}

void ExecutionEngine::remove_listener(EngineListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

void ExecutionEngine::enter(FunctionId fid) {
  stack_.push_back(fid);
  for (auto* l : listeners_) l->on_enter(fid, now_);
}

FunctionId ExecutionEngine::enter(std::string_view name) {
  const FunctionId fid = registry_.intern(name);
  enter(fid);
  return fid;
}

void ExecutionEngine::leave() {
  assert(!stack_.empty());
  const FunctionId fid = stack_.back();
  stack_.pop_back();
  for (auto* l : listeners_) l->on_leave(fid, now_);
}

void ExecutionEngine::work(vtime_t cost_ns) {
  if (cost_ns <= 0) return;
  if (cfg_.work_jitter_rel > 0.0) {
    cost_ns = static_cast<vtime_t>(std::llround(
        static_cast<double>(cost_ns) * rng_.jitter(cfg_.work_jitter_rel)));
    if (cost_ns <= 0) return;
  }
  vtime_t remaining = cost_ns;
  while (remaining > 0) {
    const vtime_t to_tick = next_sample_at_ - now_;
    const vtime_t step = std::min(remaining, to_tick);
    now_ += step;
    remaining -= step;
    if (now_ == next_sample_at_) {
      for (auto* l : listeners_) l->on_sample(*this, now_);
      next_sample_at_ += cfg_.sample_period_ns;
    }
  }
}

void ExecutionEngine::loop_tick() {
  const FunctionId fid = current();
  for (auto* l : listeners_) l->on_loop_tick(fid, now_);
}

void ExecutionEngine::finish() {
  for (auto* l : listeners_) l->on_finish(*this, now_);
}

}  // namespace incprof::sim
