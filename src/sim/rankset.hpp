// Symmetric multi-rank execution. The paper's applications are MPI codes
// whose ranks all behave similarly; analysis uses one representative rank
// but "our framework does produce profiles ... from all processes"
// (Section VI). RankSet runs R independent replicas of a workload with
// per-rank seeds (so work jitter differs across ranks) and gathers the
// aggregate descriptive statistics the paper mentions.
#pragma once

#include "sim/clock.hpp"
#include "sim/engine.hpp"

#include <cstdint>
#include <functional>
#include <vector>

namespace incprof::sim {

/// Per-rank outcome.
struct RankOutcome {
  std::size_t rank = 0;
  std::uint64_t seed = 0;
  vtime_t runtime_ns = 0;
};

/// Aggregate over all ranks.
struct RankSetResult {
  std::vector<RankOutcome> ranks;

  /// Per-rank runtimes in seconds.
  std::vector<double> runtimes_sec() const;

  /// Mean of per-rank runtimes (seconds).
  double mean_runtime_sec() const;

  /// Max-over-min runtime ratio — a quick symmetric-behaviour check; 1.0
  /// means perfectly symmetric ranks.
  double imbalance() const;
};

/// A per-rank body: given the rank index and its derived seed, construct
/// an engine and workload, run it, and return the final virtual time.
/// The body owns all per-rank state (listeners, collectors).
using RankBody = std::function<vtime_t(std::size_t rank, std::uint64_t seed)>;

/// Runs `nranks` replicas, deriving rank seeds deterministically from
/// `base_seed`. Ranks run sequentially (the simulation is CPU-bound and
/// deterministic; ordering cannot change results).
RankSetResult run_symmetric_ranks(std::size_t nranks,
                                  std::uint64_t base_seed,
                                  const RankBody& body);

/// Derives the seed for one rank from a base seed (stable across runs).
std::uint64_t rank_seed(std::uint64_t base_seed, std::size_t rank) noexcept;

}  // namespace incprof::sim
