#include "sim/registry.hpp"

namespace incprof::sim {

FunctionId FunctionRegistry::intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<FunctionId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

FunctionId FunctionRegistry::lookup(std::string_view name) const noexcept {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNoFunction : it->second;
}

}  // namespace incprof::sim
