// Function-symbol interning. The engine tracks the call stack as small
// integer ids; the registry maps them to the source-level function names
// that the snapshots, reports, and instrumentation-site tables use.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace incprof::sim {

/// Dense id of an interned function name.
using FunctionId = std::uint32_t;

/// Sentinel meaning "no function" (empty stack).
inline constexpr FunctionId kNoFunction = 0xffffffffu;

/// Bidirectional name <-> id map. Ids are dense and assigned in intern
/// order, so per-function arrays can be indexed directly.
class FunctionRegistry {
 public:
  /// Returns the id for `name`, interning it on first use.
  FunctionId intern(std::string_view name);

  /// Looks up an existing id; returns kNoFunction if never interned.
  FunctionId lookup(std::string_view name) const noexcept;

  /// Name of an interned id. Precondition: id < size().
  const std::string& name(FunctionId id) const noexcept {
    return names_[id];
  }

  /// Number of interned functions.
  std::size_t size() const noexcept { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, FunctionId> ids_;
};

}  // namespace incprof::sim
