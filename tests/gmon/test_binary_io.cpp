#include "gmon/binary_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <unistd.h>

namespace incprof::gmon {
namespace {

ProfileSnapshot sample_snapshot() {
  ProfileSnapshot s(42, 987654321);
  FunctionProfile a;
  a.name = "validate_bfs_result";
  a.self_ns = 1'170'000'000;
  a.calls = 12;
  a.inclusive_ns = 1'170'000'000;
  s.upsert(a);
  FunctionProfile b;
  b.name = "PairLJCut::compute";  // punctuation must survive
  b.self_ns = 7;
  b.calls = 0;
  b.inclusive_ns = 9;
  s.upsert(b);
  return s;
}

TEST(BinaryIo, RoundTripPreservesEverything) {
  const ProfileSnapshot s = sample_snapshot();
  const ProfileSnapshot back = decode_binary(encode_binary(s));
  EXPECT_EQ(back, s);
}

TEST(BinaryIo, EmptySnapshotRoundTrips) {
  const ProfileSnapshot s(0, 0);
  EXPECT_EQ(decode_binary(encode_binary(s)), s);
}

TEST(BinaryIo, BadMagicThrows) {
  std::string bytes = encode_binary(sample_snapshot());
  bytes[0] = 'X';
  EXPECT_THROW(decode_binary(bytes), std::runtime_error);
}

TEST(BinaryIo, UnsupportedVersionThrows) {
  std::string bytes = encode_binary(sample_snapshot());
  bytes[4] = 99;
  EXPECT_THROW(decode_binary(bytes), std::runtime_error);
}

TEST(BinaryIo, TruncationThrows) {
  const std::string bytes = encode_binary(sample_snapshot());
  for (const std::size_t cut : {std::size_t{1}, std::size_t{4},
                                std::size_t{10}, bytes.size() - 1}) {
    EXPECT_THROW(decode_binary(std::string_view(bytes).substr(0, cut)),
                 std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(BinaryIo, TrailingGarbageThrows) {
  std::string bytes = encode_binary(sample_snapshot());
  bytes += "junk";
  EXPECT_THROW(decode_binary(bytes), std::runtime_error);
}

TEST(BinaryIo, EmptyInputThrows) {
  EXPECT_THROW(decode_binary(""), std::runtime_error);
}

class BinaryFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("incprof_binio_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(BinaryFileTest, FileRoundTrip) {
  const ProfileSnapshot s = sample_snapshot();
  const auto path = dir_ / "gmon-000042.out";
  write_binary_file(s, path);
  EXPECT_EQ(read_binary_file(path), s);
}

TEST_F(BinaryFileTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_binary_file(dir_ / "nope.out"), std::runtime_error);
}

TEST_F(BinaryFileTest, WriteToMissingDirectoryThrows) {
  EXPECT_THROW(
      write_binary_file(sample_snapshot(), dir_ / "no" / "such" / "dir.out"),
      std::runtime_error);
}

}  // namespace
}  // namespace incprof::gmon
