#include "gmon/snapshot.hpp"

#include <gtest/gtest.h>

namespace incprof::gmon {
namespace {

FunctionProfile fp(std::string name, std::int64_t self, std::int64_t calls,
                   std::int64_t incl = 0) {
  FunctionProfile p;
  p.name = std::move(name);
  p.self_ns = self;
  p.calls = calls;
  p.inclusive_ns = incl ? incl : self;
  return p;
}

TEST(Snapshot, UpsertKeepsNamesSorted) {
  ProfileSnapshot s;
  s.upsert(fp("zeta", 1, 1));
  s.upsert(fp("alpha", 2, 2));
  s.upsert(fp("mid", 3, 3));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.functions()[0].name, "alpha");
  EXPECT_EQ(s.functions()[1].name, "mid");
  EXPECT_EQ(s.functions()[2].name, "zeta");
}

TEST(Snapshot, UpsertOverwritesExisting) {
  ProfileSnapshot s;
  s.upsert(fp("f", 10, 1));
  s.upsert(fp("f", 20, 2));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.functions()[0].self_ns, 20);
  EXPECT_EQ(s.functions()[0].calls, 2);
}

TEST(Snapshot, FindByName) {
  ProfileSnapshot s;
  s.upsert(fp("run_bfs", 5, 1));
  ASSERT_NE(s.find("run_bfs"), nullptr);
  EXPECT_EQ(s.find("run_bfs")->self_ns, 5);
  EXPECT_EQ(s.find("missing"), nullptr);
  EXPECT_EQ(s.find(""), nullptr);
}

TEST(Snapshot, TotalSelfNs) {
  ProfileSnapshot s;
  s.upsert(fp("a", 100, 1));
  s.upsert(fp("b", 250, 1));
  EXPECT_EQ(s.total_self_ns(), 350);
  EXPECT_EQ(ProfileSnapshot().total_self_ns(), 0);
}

TEST(Snapshot, SeqAndTimestampCarried) {
  ProfileSnapshot s(7, 123456789);
  EXPECT_EQ(s.seq(), 7u);
  EXPECT_EQ(s.timestamp_ns(), 123456789);
  s.set_seq(9);
  s.set_timestamp_ns(42);
  EXPECT_EQ(s.seq(), 9u);
  EXPECT_EQ(s.timestamp_ns(), 42);
}

TEST(Difference, SubtractsPerFunction) {
  ProfileSnapshot prev(0, 1000);
  prev.upsert(fp("f", 100, 2, 150));
  ProfileSnapshot cur(1, 2000);
  cur.upsert(fp("f", 175, 5, 250));

  const ProfileSnapshot d = difference(cur, prev);
  EXPECT_EQ(d.seq(), 1u);
  EXPECT_EQ(d.timestamp_ns(), 2000);
  ASSERT_NE(d.find("f"), nullptr);
  EXPECT_EQ(d.find("f")->self_ns, 75);
  EXPECT_EQ(d.find("f")->calls, 3);
  EXPECT_EQ(d.find("f")->inclusive_ns, 100);
}

TEST(Difference, NewFunctionDifferencesAgainstZero) {
  ProfileSnapshot prev(0, 0);
  ProfileSnapshot cur(1, 10);
  cur.upsert(fp("fresh", 40, 4));
  const ProfileSnapshot d = difference(cur, prev);
  EXPECT_EQ(d.find("fresh")->self_ns, 40);
  EXPECT_EQ(d.find("fresh")->calls, 4);
}

TEST(Difference, NegativeDeltasClampToZero) {
  // Counter regressions (shouldn't happen with a monotone profiler, but
  // the analysis must stay well-formed if a dump is corrupt).
  ProfileSnapshot prev(0, 0);
  prev.upsert(fp("f", 100, 10));
  ProfileSnapshot cur(1, 10);
  cur.upsert(fp("f", 50, 5));
  const ProfileSnapshot d = difference(cur, prev);
  EXPECT_EQ(d.find("f")->self_ns, 0);
  EXPECT_EQ(d.find("f")->calls, 0);
}

TEST(Difference, FunctionOnlyInPrevIsDropped) {
  // gprof dumps are cumulative: a function can never vanish. If one
  // does, the differenced interval simply has no row for it.
  ProfileSnapshot prev(0, 0);
  prev.upsert(fp("gone", 10, 1));
  ProfileSnapshot cur(1, 10);
  cur.upsert(fp("kept", 5, 1));
  const ProfileSnapshot d = difference(cur, prev);
  EXPECT_EQ(d.find("gone"), nullptr);
  EXPECT_NE(d.find("kept"), nullptr);
}

TEST(Difference, IdenticalSnapshotsGiveAllZeroDeltas) {
  ProfileSnapshot a(3, 100);
  a.upsert(fp("f", 10, 2));
  const ProfileSnapshot d = difference(a, a);
  EXPECT_EQ(d.find("f")->self_ns, 0);
  EXPECT_EQ(d.find("f")->calls, 0);
}

}  // namespace
}  // namespace incprof::gmon
