#include "gmon/snapshot.hpp"

#include <gtest/gtest.h>

namespace incprof::gmon {
namespace {

FunctionProfile fp(std::string name, std::int64_t self, std::int64_t calls,
                   std::int64_t incl = 0) {
  FunctionProfile p;
  p.name = std::move(name);
  p.self_ns = self;
  p.calls = calls;
  p.inclusive_ns = incl ? incl : self;
  return p;
}

TEST(Snapshot, UpsertKeepsNamesSorted) {
  ProfileSnapshot s;
  s.upsert(fp("zeta", 1, 1));
  s.upsert(fp("alpha", 2, 2));
  s.upsert(fp("mid", 3, 3));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.functions()[0].name, "alpha");
  EXPECT_EQ(s.functions()[1].name, "mid");
  EXPECT_EQ(s.functions()[2].name, "zeta");
}

TEST(Snapshot, UpsertOverwritesExisting) {
  ProfileSnapshot s;
  s.upsert(fp("f", 10, 1));
  s.upsert(fp("f", 20, 2));
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.functions()[0].self_ns, 20);
  EXPECT_EQ(s.functions()[0].calls, 2);
}

TEST(Snapshot, FindByName) {
  ProfileSnapshot s;
  s.upsert(fp("run_bfs", 5, 1));
  ASSERT_NE(s.find("run_bfs"), nullptr);
  EXPECT_EQ(s.find("run_bfs")->self_ns, 5);
  EXPECT_EQ(s.find("missing"), nullptr);
  EXPECT_EQ(s.find(""), nullptr);
}

TEST(Snapshot, TotalSelfNs) {
  ProfileSnapshot s;
  s.upsert(fp("a", 100, 1));
  s.upsert(fp("b", 250, 1));
  EXPECT_EQ(s.total_self_ns(), 350);
  EXPECT_EQ(ProfileSnapshot().total_self_ns(), 0);
}

TEST(Snapshot, SeqAndTimestampCarried) {
  ProfileSnapshot s(7, 123456789);
  EXPECT_EQ(s.seq(), 7u);
  EXPECT_EQ(s.timestamp_ns(), 123456789);
  s.set_seq(9);
  s.set_timestamp_ns(42);
  EXPECT_EQ(s.seq(), 9u);
  EXPECT_EQ(s.timestamp_ns(), 42);
}

TEST(Difference, SubtractsPerFunction) {
  ProfileSnapshot prev(0, 1000);
  prev.upsert(fp("f", 100, 2, 150));
  ProfileSnapshot cur(1, 2000);
  cur.upsert(fp("f", 175, 5, 250));

  const ProfileSnapshot d = difference(cur, prev);
  EXPECT_EQ(d.seq(), 1u);
  EXPECT_EQ(d.timestamp_ns(), 2000);
  ASSERT_NE(d.find("f"), nullptr);
  EXPECT_EQ(d.find("f")->self_ns, 75);
  EXPECT_EQ(d.find("f")->calls, 3);
  EXPECT_EQ(d.find("f")->inclusive_ns, 100);
}

TEST(Difference, NewFunctionDifferencesAgainstZero) {
  ProfileSnapshot prev(0, 0);
  ProfileSnapshot cur(1, 10);
  cur.upsert(fp("fresh", 40, 4));
  const ProfileSnapshot d = difference(cur, prev);
  EXPECT_EQ(d.find("fresh")->self_ns, 40);
  EXPECT_EQ(d.find("fresh")->calls, 4);
}

TEST(Difference, NegativeDeltasClampToZero) {
  // Counter regressions (shouldn't happen with a monotone profiler, but
  // the analysis must stay well-formed if a dump is corrupt).
  ProfileSnapshot prev(0, 0);
  prev.upsert(fp("f", 100, 10));
  ProfileSnapshot cur(1, 10);
  cur.upsert(fp("f", 50, 5));
  const ProfileSnapshot d = difference(cur, prev);
  EXPECT_EQ(d.find("f")->self_ns, 0);
  EXPECT_EQ(d.find("f")->calls, 0);
}

TEST(Difference, FunctionOnlyInPrevIsDropped) {
  // gprof dumps are cumulative: a function can never vanish. If one
  // does, the differenced interval simply has no row for it.
  ProfileSnapshot prev(0, 0);
  prev.upsert(fp("gone", 10, 1));
  ProfileSnapshot cur(1, 10);
  cur.upsert(fp("kept", 5, 1));
  const ProfileSnapshot d = difference(cur, prev);
  EXPECT_EQ(d.find("gone"), nullptr);
  EXPECT_NE(d.find("kept"), nullptr);
}

TEST(Difference, IdenticalSnapshotsGiveAllZeroDeltas) {
  ProfileSnapshot a(3, 100);
  a.upsert(fp("f", 10, 2));
  const ProfileSnapshot d = difference(a, a);
  EXPECT_EQ(d.find("f")->self_ns, 0);
  EXPECT_EQ(d.find("f")->calls, 0);
}

TEST(DifferenceInto, MatchesDifferenceOnInterleavedNames) {
  // Names unique to cur, unique to prev, and shared — the merge-walk
  // must line up counterparts exactly as the allocating overload does.
  ProfileSnapshot prev(0, 1000);
  prev.upsert(fp("bravo", 10, 1));
  prev.upsert(fp("charlie", 20, 2));
  prev.upsert(fp("delta", 30, 3));
  ProfileSnapshot cur(1, 2000);
  cur.upsert(fp("alpha", 5, 1));
  cur.upsert(fp("charlie", 45, 6));
  cur.upsert(fp("echo", 7, 2));

  ProfileSnapshot out;
  difference_into(cur, prev, out);
  const ProfileSnapshot ref = difference(cur, prev);
  EXPECT_EQ(out.seq(), ref.seq());
  EXPECT_EQ(out.timestamp_ns(), ref.timestamp_ns());
  ASSERT_EQ(out.size(), ref.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.functions()[i].name, ref.functions()[i].name);
    EXPECT_EQ(out.functions()[i].self_ns, ref.functions()[i].self_ns);
    EXPECT_EQ(out.functions()[i].calls, ref.functions()[i].calls);
    EXPECT_EQ(out.functions()[i].inclusive_ns,
              ref.functions()[i].inclusive_ns);
  }
  EXPECT_EQ(out.find("charlie")->self_ns, 25);
  EXPECT_EQ(out.find("delta"), nullptr);
}

TEST(DifferenceInto, ReusesOutputStorageAcrossCalls) {
  ProfileSnapshot prev(0, 0);
  prev.upsert(fp("f", 10, 1));
  prev.upsert(fp("g", 20, 2));
  ProfileSnapshot cur(1, 10);
  cur.upsert(fp("f", 30, 3));
  cur.upsert(fp("g", 50, 5));

  ProfileSnapshot out;
  difference_into(cur, prev, out);
  const FunctionProfile* const stable = out.functions().data();
  ProfileSnapshot cur2(2, 20);
  cur2.upsert(fp("f", 100, 7));
  cur2.upsert(fp("g", 90, 9));
  difference_into(cur2, cur, out);
  // Same element count: the second call must not reallocate the vector.
  EXPECT_EQ(out.functions().data(), stable);
  EXPECT_EQ(out.seq(), 2u);
  EXPECT_EQ(out.find("f")->self_ns, 70);
  EXPECT_EQ(out.find("g")->self_ns, 40);
}

TEST(DifferenceInto, OverwritesStaleRowsWhenOutputShrinks) {
  ProfileSnapshot prev(0, 0);
  ProfileSnapshot big(1, 10);
  big.upsert(fp("a", 1, 1));
  big.upsert(fp("b", 2, 2));
  big.upsert(fp("c", 3, 3));
  ProfileSnapshot out;
  difference_into(big, prev, out);
  ASSERT_EQ(out.size(), 3u);

  ProfileSnapshot small(2, 20);
  small.upsert(fp("b", 5, 4));
  difference_into(small, big, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.functions()[0].name, "b");
  EXPECT_EQ(out.functions()[0].self_ns, 3);
  EXPECT_EQ(out.find("a"), nullptr);
  EXPECT_EQ(out.find("c"), nullptr);
}

}  // namespace
}  // namespace incprof::gmon
