#include "gmon/flat_text.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace incprof::gmon {
namespace {

FunctionProfile fp(std::string name, std::int64_t self, std::int64_t calls,
                   std::int64_t incl) {
  FunctionProfile p;
  p.name = std::move(name);
  p.self_ns = self;
  p.calls = calls;
  p.inclusive_ns = incl;
  return p;
}

TEST(FlatText, BannerAndHeaderPresent) {
  ProfileSnapshot s;
  s.upsert(fp("f", 1'000'000'000, 3, 1'000'000'000));
  const std::string text = format_flat_profile(s);
  EXPECT_NE(text.find("Flat profile:"), std::string::npos);
  EXPECT_NE(text.find("Each sample counts as 0.010000000 seconds."),
            std::string::npos);
  EXPECT_NE(text.find("cumulative"), std::string::npos);
  EXPECT_NE(text.find("name"), std::string::npos);
}

TEST(FlatText, RowsOrderedByDescendingSelfTime) {
  ProfileSnapshot s;
  s.upsert(fp("small", 10'000'000, 1, 10'000'000));
  s.upsert(fp("big", 900'000'000, 1, 900'000'000));
  const std::string text = format_flat_profile(s);
  EXPECT_LT(text.find("big"), text.find("small"));
}

TEST(FlatText, ZeroCallRowHasBlankCallColumns) {
  ProfileSnapshot s;
  s.upsert(fp("long_lived", 500'000'000, 0, 500'000'000));
  const std::string text = format_flat_profile(s);
  // gprof leaves the calls / per-call columns blank for sampled-but-
  // never-counted functions; our parser keys the loop designation on it.
  const auto pos = text.find("long_lived");
  ASSERT_NE(pos, std::string::npos);
  const auto line_start = text.rfind('\n', pos) + 1;
  const std::string line = text.substr(line_start, pos - line_start);
  EXPECT_EQ(line.find_first_of("0123456789", 30), std::string::npos)
      << "call columns should be blank: " << line;
}

TEST(FlatText, IdleFunctionsHiddenByDefault) {
  ProfileSnapshot s;
  s.upsert(fp("active", 10'000'000, 1, 10'000'000));
  s.upsert(fp("idle", 0, 0, 0));
  EXPECT_EQ(format_flat_profile(s).find("idle"), std::string::npos);
  FlatTextOptions opts;
  opts.include_idle = true;
  EXPECT_NE(format_flat_profile(s, opts).find("idle"), std::string::npos);
}

TEST(FlatText, ParseRoundTripPreservesSelfAndCalls) {
  ProfileSnapshot s;
  s.upsert(fp("validate_bfs_result", 1'170'000'000, 12, 1'200'000'000));
  s.upsert(fp("run_bfs", 230'000'000, 0, 230'000'000));
  s.upsert(fp("make_one_edge", 10'000'000, 512, 10'000'000));

  const ProfileSnapshot back = parse_flat_profile(format_flat_profile(s));
  ASSERT_EQ(back.size(), 3u);
  for (const auto& orig : s.functions()) {
    const FunctionProfile* p = back.find(orig.name);
    ASSERT_NE(p, nullptr) << orig.name;
    EXPECT_EQ(p->self_ns, orig.self_ns) << orig.name;
    EXPECT_EQ(p->calls, orig.calls) << orig.name;
  }
}

TEST(FlatText, ParseRecoversInclusiveApproximately) {
  ProfileSnapshot s;
  s.upsert(fp("parent", 100'000'000, 4, 900'000'000));
  const ProfileSnapshot back = parse_flat_profile(format_flat_profile(s));
  // total us/call prints at 2 decimals -> inclusive recovered to within
  // calls * 10 us.
  EXPECT_NEAR(static_cast<double>(back.find("parent")->inclusive_ns),
              900'000'000.0, 4 * 10'000.0);
}

TEST(FlatText, ParsePercentAndCumulativeIgnored) {
  // Hand-written report in gprof's own style.
  const std::string text =
      "Flat profile:\n"
      "\n"
      "Each sample counts as 0.01 seconds.\n"
      "  %   cumulative   self              self     total\n"
      " time   seconds   seconds    calls  us/call  us/call  name\n"
      " 62.21       1.17      1.17       12    97.50    97.50  validate\n"
      " 13.20       1.42      0.25                             run_bfs\n";
  const ProfileSnapshot s = parse_flat_profile(text);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.find("validate")->calls, 12);
  EXPECT_EQ(s.find("validate")->self_ns, 1'170'000'000);
  EXPECT_EQ(s.find("run_bfs")->calls, 0);
  EXPECT_EQ(s.find("run_bfs")->self_ns, 250'000'000);
  // Zero-call row: inclusive falls back to self.
  EXPECT_EQ(s.find("run_bfs")->inclusive_ns, 250'000'000);
}

TEST(FlatText, ParseNameWithSpaces) {
  const std::string text =
      "Flat profile:\n"
      " time   seconds   seconds    calls  us/call  us/call  name\n"
      " 50.00       0.10      0.10        1   100.00   100.00  operator "
      "new(unsigned long)\n";
  const ProfileSnapshot s = parse_flat_profile(text);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.functions()[0].name, "operator new(unsigned long)");
}

TEST(FlatText, ParseMissingBannerThrows) {
  EXPECT_THROW(parse_flat_profile("no banner here\n"), std::runtime_error);
}

TEST(FlatText, ParseMalformedRowThrows) {
  const std::string text =
      "Flat profile:\n"
      " time   seconds   seconds    calls  us/call  us/call  name\n"
      " not numbers at all\n";
  EXPECT_THROW(parse_flat_profile(text), std::runtime_error);
}

TEST(FlatText, ParseShortRowThrows) {
  const std::string text =
      "Flat profile:\n"
      " time   seconds   seconds    calls  us/call  us/call  name\n"
      " 1.0 2.0\n";
  EXPECT_THROW(parse_flat_profile(text), std::runtime_error);
}

TEST(FlatText, EmptySnapshotStillHasBanner) {
  const ProfileSnapshot s;
  const std::string text = format_flat_profile(s);
  const ProfileSnapshot back = parse_flat_profile(text);
  EXPECT_TRUE(back.empty());
}

class SelfTimeResolutionTest
    : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SelfTimeResolutionTest, MicrosecondResolutionSurvivesText) {
  // Self seconds print with 6 decimals: any multiple of 1 us round-trips.
  ProfileSnapshot s;
  s.upsert(fp("f", GetParam(), 1, GetParam()));
  const ProfileSnapshot back = parse_flat_profile(format_flat_profile(s));
  EXPECT_EQ(back.find("f")->self_ns, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, SelfTimeResolutionTest,
                         ::testing::Values(1'000, 10'000'000, 123'456'000,
                                           999'999'999'000));

}  // namespace
}  // namespace incprof::gmon
