#include "gmon/scanner.hpp"

#include "gmon/binary_io.hpp"
#include "gmon/flat_text.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

namespace incprof::gmon {
namespace {

ProfileSnapshot snap(std::uint32_t seq, std::int64_t self_ns) {
  ProfileSnapshot s(seq, static_cast<std::int64_t>(seq) * 1'000'000'000);
  FunctionProfile f;
  f.name = "work";
  f.self_ns = self_ns;
  f.calls = seq + 1;
  f.inclusive_ns = self_ns;
  s.upsert(f);
  return s;
}

TEST(DumpNames, ZeroPaddedAndParseable) {
  EXPECT_EQ(binary_dump_name(0), "gmon-000000.out");
  EXPECT_EQ(binary_dump_name(42), "gmon-000042.out");
  EXPECT_EQ(text_dump_name(7), "flat-000007.txt");

  std::uint32_t seq = 99;
  EXPECT_TRUE(parse_dump_seq("gmon-000042.out", seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_TRUE(parse_dump_seq("flat-000007.txt", seq));
  EXPECT_EQ(seq, 7u);
}

TEST(DumpNames, RejectsForeignNames) {
  std::uint32_t seq = 0;
  EXPECT_FALSE(parse_dump_seq("gmon.out", seq));
  EXPECT_FALSE(parse_dump_seq("gmon-xyz.out", seq));
  EXPECT_FALSE(parse_dump_seq("flat-12.csv", seq));
  EXPECT_FALSE(parse_dump_seq("other-000001.out", seq));
  EXPECT_FALSE(parse_dump_seq("", seq));
}

TEST(DumpNames, LargeSequenceNumbersOverflowTheFixedPad) {
  // More than 6 digits still round-trips (pad is a minimum, not a cap).
  const std::string name = binary_dump_name(1234567);
  std::uint32_t seq = 0;
  EXPECT_TRUE(parse_dump_seq(name, seq));
  EXPECT_EQ(seq, 1234567u);
}

class ScannerDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("incprof_scan_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(ScannerDirTest, LoadBinaryDumpsOrderedBySeq) {
  // Write out of order; loader must sort by seq.
  for (const std::uint32_t seq : {2u, 0u, 1u}) {
    write_binary_file(snap(seq, (seq + 1) * 1000), dir_ / binary_dump_name(seq));
  }
  const auto snaps = load_binary_dumps(dir_);
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].seq(), 0u);
  EXPECT_EQ(snaps[1].seq(), 1u);
  EXPECT_EQ(snaps[2].seq(), 2u);
}

TEST_F(ScannerDirTest, IgnoresUnrelatedFiles) {
  write_binary_file(snap(0, 5000), dir_ / binary_dump_name(0));
  std::ofstream(dir_ / "notes.txt") << "not a dump";
  std::ofstream(dir_ / "gmon.out") << "legacy un-renamed dump";
  EXPECT_EQ(load_binary_dumps(dir_).size(), 1u);
}

TEST_F(ScannerDirTest, MissingDirectoryGivesEmpty) {
  EXPECT_TRUE(load_binary_dumps(dir_ / "missing").empty());
  EXPECT_TRUE(load_text_dumps(dir_ / "missing").empty());
}

TEST_F(ScannerDirTest, ConvertThenLoadTextMatchesBinary) {
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    write_binary_file(snap(seq, (seq + 1) * 10'000'000),
                      dir_ / binary_dump_name(seq));
  }
  EXPECT_EQ(convert_dumps_to_text(dir_, 10'000'000), 4u);

  const auto text_snaps = load_text_dumps(dir_);
  const auto bin_snaps = load_binary_dumps(dir_);
  ASSERT_EQ(text_snaps.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(text_snaps[i].seq(), bin_snaps[i].seq());
    const auto* t = text_snaps[i].find("work");
    const auto* b = bin_snaps[i].find("work");
    ASSERT_NE(t, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(t->self_ns, b->self_ns);
    EXPECT_EQ(t->calls, b->calls);
  }
}

TEST_F(ScannerDirTest, CorruptBinaryDumpThrows) {
  std::ofstream(dir_ / binary_dump_name(0), std::ios::binary) << "garbage";
  EXPECT_THROW(load_binary_dumps(dir_), std::runtime_error);
}

}  // namespace
}  // namespace incprof::gmon
