#include "gmon/callgraph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace incprof::gmon {
namespace {

CallEdge edge(std::string caller, std::string callee, std::int64_t count,
              std::int64_t time_ns) {
  CallEdge e;
  e.caller = std::move(caller);
  e.callee = std::move(callee);
  e.count = count;
  e.time_ns = time_ns;
  return e;
}

CallGraphSnapshot sample_graph() {
  CallGraphSnapshot g(3, 5'000'000'000);
  g.upsert(edge(std::string(kSpontaneous), "perform_elem_loop", 1, 0));
  g.upsert(edge("perform_elem_loop", "sum_in_symm_elem_matrix", 24000,
                11'820'000'000));
  g.upsert(edge("cg_solve", "matvec", 790, 3'000'000'000));
  g.upsert(edge("cg_solve", "dot", 1580, 1'000'000'000));
  return g;
}

TEST(CallGraph, EdgesSortedByCallerThenCallee) {
  const auto g = sample_graph();
  ASSERT_EQ(g.size(), 4u);
  EXPECT_EQ(g.edges()[0].caller, kSpontaneous);
  EXPECT_EQ(g.edges()[1].caller, "cg_solve");
  EXPECT_EQ(g.edges()[1].callee, "dot");
  EXPECT_EQ(g.edges()[2].callee, "matvec");
  EXPECT_EQ(g.edges()[3].caller, "perform_elem_loop");
}

TEST(CallGraph, UpsertOverwrites) {
  CallGraphSnapshot g;
  g.upsert(edge("a", "b", 1, 10));
  g.upsert(edge("a", "b", 5, 50));
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g.find("a", "b")->count, 5);
}

TEST(CallGraph, AccumulateAddsAndCreates) {
  CallGraphSnapshot g;
  g.accumulate("a", "b", 1, 10);
  g.accumulate("a", "b", 2, 20);
  g.accumulate("a", "c", 1, 5);
  EXPECT_EQ(g.find("a", "b")->count, 3);
  EXPECT_EQ(g.find("a", "b")->time_ns, 30);
  EXPECT_EQ(g.find("a", "c")->count, 1);
}

TEST(CallGraph, FindMissingReturnsNull) {
  const auto g = sample_graph();
  EXPECT_EQ(g.find("nobody", "nothing"), nullptr);
  EXPECT_EQ(g.find("cg_solve", "nothing"), nullptr);
}

TEST(CallGraph, CallersAndCalleesQueries) {
  const auto g = sample_graph();
  const auto callers = g.callers_of("sum_in_symm_elem_matrix");
  ASSERT_EQ(callers.size(), 1u);
  EXPECT_EQ(callers[0]->caller, "perform_elem_loop");

  const auto callees = g.callees_of("cg_solve");
  ASSERT_EQ(callees.size(), 2u);
  EXPECT_EQ(callees[0]->callee, "dot");
  EXPECT_EQ(callees[1]->callee, "matvec");
}

TEST(CallGraph, TotalCallsInto) {
  CallGraphSnapshot g;
  g.upsert(edge("a", "x", 10, 0));
  g.upsert(edge("b", "x", 5, 0));
  g.upsert(edge(std::string(kSpontaneous), "x", 1, 0));
  EXPECT_EQ(g.total_calls_into("x"), 16);
  EXPECT_EQ(g.total_calls_into("y"), 0);
}

TEST(CallGraph, TextRoundTrip) {
  const auto g = sample_graph();
  const std::string text = format_call_graph(g);
  EXPECT_NE(text.find("Call graph:"), std::string::npos);
  const CallGraphSnapshot back = parse_call_graph(text);
  ASSERT_EQ(back.size(), g.size());
  for (const auto& e : g.edges()) {
    const CallEdge* p = back.find(e.caller, e.callee);
    ASSERT_NE(p, nullptr) << e.caller << "->" << e.callee;
    EXPECT_EQ(p->count, e.count);
    EXPECT_EQ(p->time_ns, e.time_ns);
  }
}

TEST(CallGraph, ParseRejectsMalformed) {
  EXPECT_THROW(parse_call_graph("no banner"), std::runtime_error);
  EXPECT_THROW(parse_call_graph("Call graph:\n"
                                "caller  calls  self-s  callee\n"
                                "a\n"
                                "   bogus row here\n"),
               std::runtime_error);
}

TEST(CallGraph, BinaryRoundTripPreservesSeqAndTimestamp) {
  const auto g = sample_graph();
  const CallGraphSnapshot back = decode_call_graph(encode_call_graph(g));
  EXPECT_EQ(back, g);
  EXPECT_EQ(back.seq(), 3u);
  EXPECT_EQ(back.timestamp_ns(), 5'000'000'000);
}

TEST(CallGraph, BinaryRejectsCorruption) {
  std::string bytes = encode_call_graph(sample_graph());
  EXPECT_THROW(decode_call_graph(bytes.substr(0, bytes.size() / 2)),
               std::runtime_error);
  bytes[0] = 'z';
  EXPECT_THROW(decode_call_graph(bytes), std::runtime_error);
  EXPECT_THROW(decode_call_graph(""), std::runtime_error);
}

}  // namespace
}  // namespace incprof::gmon
