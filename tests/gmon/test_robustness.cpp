// Failure-injection tests for the dump-directory loaders: crashed
// collectors leave truncated files, restarted collectors rewrite
// sequence numbers, and dumps go missing — the lenient loader must
// shrug all of it off while the strict loader reports it.
#include "gmon/scanner.hpp"

#include "core/pipeline.hpp"
#include "gmon/binary_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

namespace incprof::gmon {
namespace {

ProfileSnapshot snap(std::uint32_t seq, std::int64_t self_ns) {
  ProfileSnapshot s(seq, static_cast<std::int64_t>(seq + 1) * 1'000'000'000);
  FunctionProfile f;
  f.name = "work";
  f.self_ns = self_ns;
  f.calls = seq + 1;
  f.inclusive_ns = self_ns;
  s.upsert(f);
  return s;
}

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("incprof_robust_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void write_good(std::uint32_t seq, std::int64_t self_ns) {
    write_binary_file(snap(seq, self_ns), dir_ / binary_dump_name(seq));
  }

  std::filesystem::path dir_;
};

TEST_F(RobustnessTest, TruncatedDumpIsSkippedNotFatal) {
  write_good(0, 1000);
  write_good(2, 3000);
  // A dump truncated mid-write (collector killed).
  const std::string full = encode_binary(snap(1, 2000));
  std::ofstream(dir_ / binary_dump_name(1), std::ios::binary)
      << full.substr(0, full.size() / 2);

  EXPECT_THROW(load_binary_dumps(dir_), std::runtime_error);

  const auto lenient = load_binary_dumps_lenient(dir_);
  ASSERT_EQ(lenient.snapshots.size(), 2u);
  ASSERT_EQ(lenient.skipped.size(), 1u);
  EXPECT_EQ(lenient.skipped[0].filename().string(), binary_dump_name(1));
  EXPECT_EQ(lenient.snapshots[0].seq(), 0u);
  EXPECT_EQ(lenient.snapshots[1].seq(), 2u);
}

TEST_F(RobustnessTest, DuplicateSeqKeepsLaterTimestamp) {
  write_good(0, 1000);
  // Simulate a restarted collector: same seq, later timestamp, written
  // under a colliding-but-distinct name (extra zero padding).
  ProfileSnapshot rewritten = snap(0, 5000);
  rewritten.set_timestamp_ns(9'000'000'000);
  write_binary_file(rewritten, dir_ / "gmon-0000000.out");

  const auto lenient = load_binary_dumps_lenient(dir_);
  ASSERT_EQ(lenient.snapshots.size(), 1u);
  EXPECT_EQ(lenient.duplicates_dropped, 1u);
  EXPECT_EQ(lenient.snapshots[0].find("work")->self_ns, 5000);
}

TEST_F(RobustnessTest, MissingIntervalStillAnalyzable) {
  // A dropped dump (seq 1 lost): cumulative data means the next dump
  // simply covers a double-length interval; the pipeline must cope.
  write_good(0, 1'000'000'000);
  write_good(2, 3'000'000'000);
  write_good(3, 4'000'000'000);

  const auto lenient = load_binary_dumps_lenient(dir_);
  ASSERT_EQ(lenient.snapshots.size(), 3u);
  const auto data = core::IntervalData::from_cumulative(lenient.snapshots);
  ASSERT_EQ(data.num_intervals(), 3u);
  // The merged interval carries the two missing seconds of activity.
  EXPECT_DOUBLE_EQ(data.self_seconds().at(1, 0), 2.0);
}

TEST_F(RobustnessTest, EmptyDirectoryYieldsEmptyResult) {
  const auto lenient = load_binary_dumps_lenient(dir_);
  EXPECT_TRUE(lenient.snapshots.empty());
  EXPECT_TRUE(lenient.skipped.empty());
}

TEST_F(RobustnessTest, AllCorruptYieldsAllSkipped) {
  std::ofstream(dir_ / binary_dump_name(0), std::ios::binary) << "junk";
  std::ofstream(dir_ / binary_dump_name(1), std::ios::binary) << "junk2";
  const auto lenient = load_binary_dumps_lenient(dir_);
  EXPECT_TRUE(lenient.snapshots.empty());
  EXPECT_EQ(lenient.skipped.size(), 2u);
}

TEST_F(RobustnessTest, OutOfOrderWritesComeBackSorted) {
  for (const std::uint32_t seq : {5u, 1u, 3u, 0u}) {
    write_good(seq, (seq + 1) * 100);
  }
  const auto lenient = load_binary_dumps_lenient(dir_);
  ASSERT_EQ(lenient.snapshots.size(), 4u);
  for (std::size_t i = 1; i < lenient.snapshots.size(); ++i) {
    EXPECT_LT(lenient.snapshots[i - 1].seq(), lenient.snapshots[i].seq());
  }
}

}  // namespace
}  // namespace incprof::gmon
