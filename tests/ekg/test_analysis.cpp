#include "ekg/analysis.hpp"

#include <gtest/gtest.h>

namespace incprof::ekg {
namespace {

HeartbeatRecord rec(std::uint32_t interval, HeartbeatId id,
                    std::uint64_t count, double mean_ns) {
  HeartbeatRecord r;
  r.interval = interval;
  r.id = id;
  r.count = count;
  r.mean_duration_ns = mean_ns;
  return r;
}

TEST(Baselines, PerIdStatistics) {
  const std::vector<HeartbeatRecord> records{
      rec(0, 1, 2, 100.0), rec(1, 1, 4, 200.0), rec(0, 2, 1, 50.0)};
  const auto baselines = build_baselines(records);
  ASSERT_EQ(baselines.size(), 2u);
  EXPECT_EQ(baselines[0].id, 1u);
  EXPECT_EQ(baselines[0].records, 2u);
  EXPECT_EQ(baselines[0].total_count, 6u);
  EXPECT_DOUBLE_EQ(baselines[0].count_stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(baselines[0].duration_stats.mean(), 150.0);
  EXPECT_EQ(baselines[1].id, 2u);
}

TEST(Baselines, EmptyInput) {
  EXPECT_TRUE(build_baselines({}).empty());
}

std::vector<HeartbeatRecord> steady_history(std::size_t n,
                                            double duration_ns) {
  std::vector<HeartbeatRecord> out;
  for (std::size_t i = 0; i < n; ++i) {
    // Slight wobble so the baseline has nonzero variance.
    out.push_back(rec(static_cast<std::uint32_t>(i), 1, 10,
                      duration_ns + (i % 2 ? 1.0 : -1.0)));
  }
  return out;
}

TEST(Anomalies, FlagsDurationOutlier) {
  auto history = steady_history(20, 1000.0);
  const auto slow = rec(20, 1, 10, 5000.0);  // 5x slower interval
  std::vector<HeartbeatRecord> scan = history;
  scan.push_back(slow);

  const auto anomalies = detect_anomalies(scan, scan);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].record.interval, 20u);
  EXPECT_GT(anomalies[0].duration_z, 3.0);
}

TEST(Anomalies, FlagsRateDrop) {
  std::vector<HeartbeatRecord> history;
  for (std::size_t i = 0; i < 20; ++i) {
    history.push_back(rec(static_cast<std::uint32_t>(i), 1,
                          100 + (i % 3), 1000.0));
  }
  const auto stall = rec(20, 1, 5, 1000.0);  // rate collapse
  std::vector<HeartbeatRecord> scan = history;
  scan.push_back(stall);
  const auto anomalies = detect_anomalies(scan, scan);
  ASSERT_GE(anomalies.size(), 1u);
  EXPECT_LT(anomalies.back().count_z, -3.0);
}

TEST(Anomalies, ShortHistoryIsNotScanned) {
  const auto history = steady_history(3, 1000.0);
  std::vector<HeartbeatRecord> scan = history;
  scan.push_back(rec(3, 1, 10, 99999.0));
  EXPECT_TRUE(detect_anomalies(scan, scan).empty());
}

TEST(Anomalies, UnknownIdIgnored) {
  const auto history = steady_history(20, 1000.0);
  const std::vector<HeartbeatRecord> scan{rec(0, 77, 10, 1e9)};
  EXPECT_TRUE(detect_anomalies(history, scan).empty());
}

TEST(Anomalies, SteadyRunHasNone) {
  const auto history = steady_history(50, 1000.0);
  EXPECT_TRUE(detect_anomalies(history, history).empty());
}

TEST(Anomalies, ThresholdConfigurable) {
  auto history = steady_history(20, 1000.0);
  history.push_back(rec(20, 1, 10, 1003.0));  // ~3 sd at wobble 1.0
  AnomalyConfig strict;
  strict.z_threshold = 10.0;
  EXPECT_TRUE(detect_anomalies(history, history, strict).empty());
  AnomalyConfig loose;
  loose.z_threshold = 1.5;
  EXPECT_FALSE(detect_anomalies(history, history, loose).empty());
}

SeriesLane lane(HeartbeatId id, std::vector<double> counts) {
  SeriesLane l;
  l.id = id;
  l.counts = std::move(counts);
  l.mean_duration_us.assign(l.counts.size(), 0.0);
  return l;
}

TEST(LaneOverlapMetric, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(lane_overlap(lane(1, {1, 1, 0, 0}),
                                lane(2, {0, 0, 1, 1})),
                   0.0);
}

TEST(LaneOverlapMetric, IdenticalActivityIsOne) {
  EXPECT_DOUBLE_EQ(lane_overlap(lane(1, {1, 0, 2, 0}),
                                lane(2, {3, 0, 1, 0})),
                   1.0);
}

TEST(LaneOverlapMetric, PartialOverlap) {
  // Active sets {0,1} and {1,2}: intersection 1, union 3.
  EXPECT_NEAR(lane_overlap(lane(1, {1, 1, 0}), lane(2, {0, 1, 1})),
              1.0 / 3.0, 1e-12);
}

TEST(LaneOverlapMetric, DifferentLengthsUseUnionDenominator) {
  EXPECT_NEAR(lane_overlap(lane(1, {1, 1}), lane(2, {1, 1, 1, 1})),
              0.5, 1e-12);
}

TEST(LaneOverlapMetric, BothEmptyIsZero) {
  EXPECT_DOUBLE_EQ(lane_overlap(lane(1, {0, 0}), lane(2, {0, 0})), 0.0);
}

TEST(AllOverlaps, SortedDescending) {
  const auto series = HeartbeatSeries::from_records({
      rec(0, 1, 1, 0), rec(1, 1, 1, 0),           // lane 1: {0,1}
      rec(0, 2, 1, 0), rec(1, 2, 1, 0),           // lane 2: {0,1}
      rec(5, 3, 1, 0),                            // lane 3: {5}
  });
  const auto overlaps = all_overlaps(series);
  ASSERT_EQ(overlaps.size(), 3u);
  EXPECT_EQ(overlaps[0].a, 1u);
  EXPECT_EQ(overlaps[0].b, 2u);
  EXPECT_DOUBLE_EQ(overlaps[0].jaccard, 1.0);
  EXPECT_DOUBLE_EQ(overlaps[1].jaccard, 0.0);
}

TEST(MeanOverlap, SequencedVsOverlappingStructures) {
  // Sequenced (MiniFE-like): three lanes in disjoint interval ranges.
  std::vector<HeartbeatRecord> sequenced;
  for (std::uint32_t i = 0; i < 10; ++i) sequenced.push_back(rec(i, 1, 1, 0));
  for (std::uint32_t i = 10; i < 20; ++i) sequenced.push_back(rec(i, 2, 1, 0));
  for (std::uint32_t i = 20; i < 30; ++i) sequenced.push_back(rec(i, 3, 1, 0));
  const double seq =
      mean_overlap(HeartbeatSeries::from_records(sequenced));

  // Overlapping (MiniAMR-manual-like): three lanes active everywhere.
  std::vector<HeartbeatRecord> overlapping;
  for (std::uint32_t i = 0; i < 30; ++i) {
    for (HeartbeatId id = 1; id <= 3; ++id) {
      overlapping.push_back(rec(i, id, 1, 0));
    }
  }
  const double ovl =
      mean_overlap(HeartbeatSeries::from_records(overlapping));

  EXPECT_LT(seq, 0.05);
  EXPECT_GT(ovl, 0.95);
}

TEST(MeanOverlap, SingleLaneIsZero) {
  const auto series = HeartbeatSeries::from_records({rec(0, 1, 1, 0)});
  EXPECT_DOUBLE_EQ(mean_overlap(series), 0.0);
}

}  // namespace
}  // namespace incprof::ekg
