#include "ekg/stream.hpp"

#include <gtest/gtest.h>

namespace incprof::ekg {
namespace {

HeartbeatRecord rec(std::uint32_t interval, HeartbeatId id,
                    std::uint64_t count = 1) {
  HeartbeatRecord r;
  r.interval = interval;
  r.id = id;
  r.count = count;
  return r;
}

TEST(StreamSink, RejectsBadConstruction) {
  EXPECT_THROW(StreamSink(nullptr), std::invalid_argument);
  EXPECT_THROW(StreamSink([](auto) {}, 0), std::invalid_argument);
}

TEST(StreamSink, BatchesPerInterval) {
  std::vector<std::vector<HeartbeatRecord>> batches;
  StreamSink sink([&](std::span<const HeartbeatRecord> batch) {
    batches.emplace_back(batch.begin(), batch.end());
  });

  sink.emit(rec(0, 1));
  sink.emit(rec(0, 2));
  EXPECT_TRUE(batches.empty());  // interval 0 still open
  sink.emit(rec(1, 1));          // interval advanced -> flush 0
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batches[0][1].id, 2u);

  sink.close();  // flush the open interval 1
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1].size(), 1u);
  EXPECT_EQ(sink.delivered_batches(), 2u);
}

TEST(StreamSink, SkippedIntervalsStillBatchCorrectly) {
  std::vector<std::size_t> batch_intervals;
  StreamSink sink([&](std::span<const HeartbeatRecord> batch) {
    batch_intervals.push_back(batch.front().interval);
  });
  sink.emit(rec(0, 1));
  sink.emit(rec(7, 1));  // quiet gap between 1 and 6
  sink.close();
  EXPECT_EQ(batch_intervals, (std::vector<std::size_t>{0, 7}));
}

TEST(StreamSink, CloseIsIdempotentAndEmptyCloseDeliversNothing) {
  std::size_t calls = 0;
  StreamSink sink([&](auto) { ++calls; });
  sink.close();
  sink.close();
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(sink.delivered_batches(), 0u);
}

TEST(StreamSink, BoundedBufferDropsAndCounts) {
  std::size_t delivered = 0;
  StreamSink sink([&](std::span<const HeartbeatRecord> b) {
    delivered += b.size();
  },
                  /*max_pending=*/2);
  for (HeartbeatId id = 1; id <= 5; ++id) sink.emit(rec(0, id));
  sink.close();
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(sink.dropped_records(), 3u);
}

TEST(StreamSink, BackPressureCountsExactlyAndKeepsBatchOrder) {
  // Fill well past max_pending across two intervals: the overflow count
  // must be exact and the delivered batches must keep the surviving
  // records in emission (id) order.
  std::vector<std::vector<HeartbeatRecord>> batches;
  StreamSink sink([&](std::span<const HeartbeatRecord> b) {
    batches.emplace_back(b.begin(), b.end());
  },
                  /*max_pending=*/3);
  for (HeartbeatId id = 1; id <= 8; ++id) sink.emit(rec(0, id));
  for (HeartbeatId id = 1; id <= 5; ++id) sink.emit(rec(1, id));
  sink.close();

  EXPECT_EQ(sink.dropped_records(), 5u + 2u);
  EXPECT_EQ(sink.delivered_batches(), 2u);
  ASSERT_EQ(batches.size(), 2u);
  for (const auto& batch : batches) {
    ASSERT_EQ(batch.size(), 3u);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].id, i + 1);  // first-come survivors, in order
    }
  }
  EXPECT_EQ(batches[0].front().interval, 0u);
  EXPECT_EQ(batches[1].front().interval, 1u);
}

TEST(StreamSink, WorksAsAppEkgSink) {
  // End to end: AppEKG aggregation flowing through the stream transport.
  std::vector<std::size_t> batch_sizes;
  StreamSink sink([&](std::span<const HeartbeatRecord> b) {
    batch_sizes.push_back(b.size());
  });
  EkgConfig cfg;
  cfg.interval_ns = 100;
  AppEkg ekg(cfg, sink);
  ekg.impulse(1, 10);
  ekg.impulse(2, 20);
  ekg.impulse(1, 150);
  ekg.finalize(200);
  // Interval 0 carried ids {1,2}; interval 1 carried {1}.
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{2, 1}));
}

}  // namespace
}  // namespace incprof::ekg
