#include "ekg/series.hpp"

#include <gtest/gtest.h>

namespace incprof::ekg {
namespace {

HeartbeatRecord rec(std::uint32_t interval, HeartbeatId id,
                    std::uint64_t count, double mean_ns) {
  HeartbeatRecord r;
  r.interval = interval;
  r.id = id;
  r.count = count;
  r.mean_duration_ns = mean_ns;
  return r;
}

TEST(Series, EmptyRecords) {
  const auto s = HeartbeatSeries::from_records({});
  EXPECT_EQ(s.num_intervals(), 0u);
  EXPECT_TRUE(s.lanes().empty());
  EXPECT_EQ(s.lane(1), nullptr);
}

TEST(Series, DenseLanesWithGaps) {
  const auto s = HeartbeatSeries::from_records({
      rec(0, 1, 2, 1000.0),
      rec(3, 1, 1, 3000.0),
      rec(1, 2, 5, 100.0),
  });
  EXPECT_EQ(s.num_intervals(), 4u);
  ASSERT_EQ(s.lanes().size(), 2u);

  const SeriesLane* lane1 = s.lane(1);
  ASSERT_NE(lane1, nullptr);
  EXPECT_EQ(lane1->counts, (std::vector<double>{2, 0, 0, 1}));
  EXPECT_EQ(lane1->mean_duration_us, (std::vector<double>{1, 0, 0, 3}));

  const SeriesLane* lane2 = s.lane(2);
  ASSERT_NE(lane2, nullptr);
  EXPECT_EQ(lane2->counts, (std::vector<double>{0, 5, 0, 0}));
}

TEST(Series, MinIntervalsExtendsAxis) {
  const auto s = HeartbeatSeries::from_records({rec(1, 1, 1, 0.0)}, 10);
  EXPECT_EQ(s.num_intervals(), 10u);
  EXPECT_EQ(s.lane(1)->counts.size(), 10u);
}

TEST(Series, LanesOrderedById) {
  const auto s = HeartbeatSeries::from_records({
      rec(0, 9, 1, 0.0),
      rec(0, 2, 1, 0.0),
      rec(0, 5, 1, 0.0),
  });
  ASSERT_EQ(s.lanes().size(), 3u);
  EXPECT_EQ(s.lanes()[0].id, 2u);
  EXPECT_EQ(s.lanes()[1].id, 5u);
  EXPECT_EQ(s.lanes()[2].id, 9u);
}

TEST(Series, ActivityFraction) {
  const auto s = HeartbeatSeries::from_records(
      {rec(0, 1, 1, 0.0), rec(2, 1, 1, 0.0)}, 4);
  EXPECT_DOUBLE_EQ(s.lane(1)->activity_fraction(), 0.5);
  SeriesLane empty;
  EXPECT_EQ(empty.activity_fraction(), 0.0);
}

TEST(Series, SetLabelAttachesToLane) {
  auto s = HeartbeatSeries::from_records({rec(0, 1, 1, 0.0)});
  s.set_label(1, "cg_solve/loop");
  s.set_label(42, "ignored");  // unknown id: no-op
  EXPECT_EQ(s.lane(1)->label, "cg_solve/loop");
}

TEST(Series, DuplicateRecordsForSameCellAccumulateCounts) {
  // Multiple sinks/ranks can emit into the same cell; counts add.
  const auto s = HeartbeatSeries::from_records(
      {rec(0, 1, 2, 10.0), rec(0, 1, 3, 20.0)});
  EXPECT_EQ(s.lane(1)->counts[0], 5.0);
}

}  // namespace
}  // namespace incprof::ekg
