#include "ekg/heartbeat.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace incprof::ekg {
namespace {

EkgConfig config(sim::vtime_t interval = 100) {
  EkgConfig cfg;
  cfg.interval_ns = interval;
  return cfg;
}

TEST(AppEkg, RejectsNonPositiveInterval) {
  MemorySink sink;
  EXPECT_THROW(AppEkg(config(0), sink), std::invalid_argument);
}

TEST(AppEkg, AggregatesCountAndMeanDurationPerInterval) {
  MemorySink sink;
  AppEkg ekg(config(), sink);
  ekg.begin(1, 0);
  ekg.end(1, 10);
  ekg.begin(1, 20);
  ekg.end(1, 50);
  ekg.finalize(99);
  ASSERT_EQ(sink.records().size(), 1u);
  const auto& rec = sink.records()[0];
  EXPECT_EQ(rec.interval, 0u);
  EXPECT_EQ(rec.id, 1u);
  EXPECT_EQ(rec.count, 2u);
  EXPECT_DOUBLE_EQ(rec.mean_duration_ns, 20.0);  // (10 + 30) / 2
  EXPECT_DOUBLE_EQ(rec.max_duration_ns, 30.0);
}

TEST(AppEkg, HeartbeatAttributedToIntervalWhereItEnds) {
  // The paper: long heartbeats "do not show up in all the intervals,
  // only those that they finish in".
  MemorySink sink;
  AppEkg ekg(config(), sink);
  ekg.begin(1, 50);
  ekg.end(1, 250);  // spans intervals 0..2, ends in 2
  ekg.finalize(300);
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].interval, 2u);
  EXPECT_DOUBLE_EQ(sink.records()[0].mean_duration_ns, 200.0);
}

TEST(AppEkg, SeparateIdsAggregateIndependently) {
  MemorySink sink;
  AppEkg ekg(config(), sink);
  ekg.begin(1, 0);
  ekg.end(1, 5);
  ekg.begin(2, 10);
  ekg.end(2, 40);
  ekg.finalize(150);
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.records()[0].id, 1u);
  EXPECT_DOUBLE_EQ(sink.records()[0].mean_duration_ns, 5.0);
  EXPECT_EQ(sink.records()[1].id, 2u);
  EXPECT_DOUBLE_EQ(sink.records()[1].mean_duration_ns, 30.0);
}

TEST(AppEkg, NestedBeginsPairLifo) {
  MemorySink sink;
  AppEkg ekg(config(), sink);
  ekg.begin(1, 0);
  ekg.begin(1, 10);
  ekg.end(1, 15);  // inner: 5
  ekg.end(1, 40);  // outer: 40
  ekg.finalize(99);
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].count, 2u);
  EXPECT_DOUBLE_EQ(sink.records()[0].mean_duration_ns, 22.5);
}

TEST(AppEkg, UnmatchedEndCountsWithZeroDuration) {
  MemorySink sink;
  AppEkg ekg(config(), sink);
  ekg.end(1, 30);
  ekg.finalize(99);
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].count, 1u);
  EXPECT_DOUBLE_EQ(sink.records()[0].mean_duration_ns, 0.0);
}

TEST(AppEkg, ImpulseIsZeroDurationHeartbeat) {
  MemorySink sink;
  AppEkg ekg(config(), sink);
  ekg.impulse(3, 42);
  ekg.finalize(99);
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].id, 3u);
  EXPECT_EQ(sink.records()[0].count, 1u);
  EXPECT_DOUBLE_EQ(sink.records()[0].mean_duration_ns, 0.0);
}

TEST(AppEkg, QuietIntervalsEmitNothing) {
  MemorySink sink;
  AppEkg ekg(config(), sink);
  ekg.impulse(1, 10);    // interval 0
  ekg.impulse(1, 450);   // interval 4
  ekg.finalize(500);
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.records()[0].interval, 0u);
  EXPECT_EQ(sink.records()[1].interval, 4u);
}

TEST(AppEkg, AdvanceFlushesCompletedIntervals) {
  MemorySink sink;
  AppEkg ekg(config(), sink);
  ekg.impulse(1, 10);
  EXPECT_TRUE(sink.records().empty());  // interval 0 still open
  ekg.advance(100);                     // interval 0 closes
  ASSERT_EQ(sink.records().size(), 1u);
}

TEST(AppEkg, FinalizeEmitsTrailingPartialAndIsIdempotent) {
  MemorySink sink;
  AppEkg ekg(config(), sink);
  ekg.impulse(1, 110);  // interval 1, never reaches boundary 200
  ekg.finalize(150);
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].interval, 1u);
  ekg.finalize(150);
  EXPECT_EQ(sink.records().size(), 1u);
}

TEST(AppEkg, KnownIdsAndBeginCalls) {
  MemorySink sink;
  AppEkg ekg(config(), sink);
  ekg.begin(5, 0);
  ekg.begin(2, 1);
  ekg.end(2, 2);
  ekg.end(5, 3);
  EXPECT_EQ(ekg.begin_calls(), 2u);
  EXPECT_EQ(ekg.known_ids(), (std::vector<HeartbeatId>{2, 5}));
}

TEST(CsvSink, HeaderAndRows) {
  std::ostringstream os;
  CsvSink sink(os);
  HeartbeatRecord rec;
  rec.interval = 3;
  rec.id = 1;
  rec.count = 4;
  rec.mean_duration_ns = 2500.0;
  rec.max_duration_ns = 5000.0;
  sink.emit(rec);
  EXPECT_EQ(os.str(),
            "interval,hb_id,count,mean_duration_us,max_duration_us\n"
            "3,1,4,2.5,5\n");
}

}  // namespace
}  // namespace incprof::ekg
